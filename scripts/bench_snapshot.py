#!/usr/bin/env python
"""Record a solver-performance snapshot into BENCH_solver.json.

Run from the repository root::

    PYTHONPATH=src python scripts/bench_snapshot.py

Measures the end-to-end engine sweeps of ``benchmarks/test_scaling.py``
(min-of-N wall time) plus the solver microbenchmark shapes, and appends
a dated entry to ``BENCH_solver.json`` so future PRs have a perf
trajectory to compare against.  The committed file also carries the
frozen ``seed`` entry measured before the bitmask/condensation kernel
landed; the acceptance bar is run_mono scale 8 at >= 2x that baseline.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from repro.cfront.sema import Program  # noqa: E402
from repro.benchsuite.generator import PositionMix, generate_benchmark  # noqa: E402
from repro.benchsuite.suite import benchmark_rows, scaling_specs  # noqa: E402
from repro.constinfer.engine import run_mono, run_poly  # noqa: E402
from repro.qual.qualifiers import const_lattice  # noqa: E402
from repro.qual.solver import solve, solve_reference  # noqa: E402

SNAPSHOT_PATH = REPO / "BENCH_solver.json"
REPEATS = 5


def sweep_program(scale: int) -> Program:
    mix = PositionMix(10 * scale, 10 * scale, 9 * scale, 10 * scale)
    source = generate_benchmark(f"sweep{scale}", 42 + scale, mix, 0)
    return Program.from_source(source)


def best_of(fn, *args, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def chain_system(lattice, n):
    from test_solver_bench import chain_system as make

    return make(lattice, n)


def measure() -> dict:
    entry: dict = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "run_mono_ms": {},
        "run_poly_ms": {},
        "solver_kernel_ms": {},
        "solver_stats": {},
    }

    for scale in (1, 4, 8):
        program = sweep_program(scale)
        entry["run_mono_ms"][str(scale)] = round(
            best_of(run_mono, program) * 1000, 2
        )
    program4 = sweep_program(4)
    entry["run_poly_ms"]["4"] = round(best_of(run_poly, program4) * 1000, 2)

    run = run_mono(sweep_program(8))
    stats = run.solution.stats
    if stats is not None:
        entry["solver_stats"]["mono_scale8"] = {
            "variables": stats.variables,
            "constraints": stats.constraints,
            "sccs": stats.sccs,
            "collapsed_sccs": stats.collapsed_sccs,
            "largest_scc": stats.largest_scc,
            "edges_before": stats.edges_before,
            "edges_after": stats.edges_after,
            "dag_edges": stats.dag_edges,
            "propagation_steps": stats.propagation_steps,
        }

    lattice = const_lattice()
    _, chain = chain_system(lattice, 10_000)
    entry["solver_kernel_ms"]["chain10k_condensation"] = round(
        best_of(solve, chain, lattice) * 1000, 2
    )
    entry["solver_kernel_ms"]["chain10k_reference"] = round(
        best_of(solve_reference, chain, lattice) * 1000, 2
    )
    entry["solver_kernel_ms"].update(measure_flatcore(lattice))

    entry["suite_ms"] = measure_suite()
    entry["checker"] = measure_checker()
    entry["whole_program"] = measure_whole()
    entry["serve"] = measure_serve()
    entry["testkit_fuzz"] = measure_fuzz()
    entry["ingest"] = measure_ingest()
    entry["flowsens"] = measure_flowsens()
    return entry


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a small sample set, in milliseconds."""
    ranked = sorted(samples)
    index = min(len(ranked) - 1, round(q / 100 * (len(ranked) - 1)))
    return round(ranked[index] * 1000, 2)


def measure_serve() -> dict:
    """Resident daemon (``python -m repro.serve``) vs cold one-shot CLI
    over a generated 40-TU corpus: p50/p99 of (a) a fresh ``python -m
    repro.checker`` process per run, (b) a warm resident ``analyze``,
    and (c) the single-TU edit turnaround (``didChange`` + ``analyze``).
    The daemon's report is asserted byte-identical to the one-shot
    stdout before any number is recorded."""
    import subprocess

    from repro.testkit.cgen import generate_c_corpus

    sources = generate_c_corpus(4242, n_units=40, n_families=60).sources()
    out: dict = {"corpus_units": len(sources)}
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))

    with tempfile.TemporaryDirectory() as root:
        root_path = Path(root)
        for name, text in sources.items():
            (root_path / name).write_text(text)
        argv = [sys.executable, "-m", "repro.checker", str(root_path), "--format", "json"]

        cold_samples = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            proc = subprocess.run(argv, env=env, capture_output=True, text=True)
            cold_samples.append(time.perf_counter() - start)
        one_shot = proc.stdout

        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.serve"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
            bufsize=1,
        )
        next_id = iter(range(1, 10_000))

        def rpc(method: str, params: dict | None = None) -> tuple[dict, float]:
            request = {"jsonrpc": "2.0", "id": next(next_id), "method": method}
            if params is not None:
                request["params"] = params
            start = time.perf_counter()
            daemon.stdin.write(json.dumps(request) + "\n")
            daemon.stdin.flush()
            response = json.loads(daemon.stdout.readline())
            return response, time.perf_counter() - start

        try:
            params = {"paths": [str(root_path)], "format": "json"}
            first, first_seconds = rpc("analyze", params)
            assert first["result"]["report"] == one_shot, (
                "daemon report drifted from one-shot CLI output"
            )

            warm_samples = []
            for _ in range(20):
                response, seconds = rpc("analyze", params)
                warm_samples.append(seconds)
            assert response["result"]["report"] == one_shot

            # Single-TU edit turnaround: push new text for one unit,
            # re-analyze the whole corpus (39 units stay memory-warm).
            target = str(root_path / "u0.c")
            edit_samples = []
            for i in range(20):
                start = time.perf_counter()
                rpc("didChange", {"file": target, "text": sources["u0.c"] + "\n" * (i + 1)})
                response, _ = rpc("analyze", params)
                edit_samples.append(time.perf_counter() - start)
            assert response["result"]["cache_misses"] == 1, (
                "an edit should re-analyse exactly the edited TU"
            )
            rpc("shutdown")
        finally:
            daemon.stdin.close()
            daemon.wait(timeout=30)

    out["cold_oneshot_ms"] = {
        "p50": _percentile(cold_samples, 50),
        "p99": _percentile(cold_samples, 99),
    }
    out["resident_first_ms"] = round(first_seconds * 1000, 2)
    out["resident_analyze_ms"] = {
        "p50": _percentile(warm_samples, 50),
        "p99": _percentile(warm_samples, 99),
    }
    out["resident_edit_turnaround_ms"] = {
        "p50": _percentile(edit_samples, 50),
        "p99": _percentile(edit_samples, 99),
    }
    out["edit_speedup_vs_cold_p50"] = round(
        out["cold_oneshot_ms"]["p50"] / out["resident_edit_turnaround_ms"]["p50"], 1
    )
    return out


def measure_flatcore(lattice) -> dict:
    """Flat-array CSR kernel times (condensation + both propagation
    passes over prebuilt buffers) on the three shapes that stress it:
    a 10k chain (longest DAG), a 10k-leaf fan-out (widest DAG), and a
    dense strongly-connected component (largest collapse).  These
    isolate the kernel the way ``chain10k_condensation`` isolates the
    whole ``solve`` call — the difference between the two numbers is
    the Python cost of iterating constraint *objects* into the arrays,
    which a warm (mmap) start never pays."""
    from test_solver_bench import cyclic_system, fanout_system

    from repro.qual.flatcore import FlatSystem, fast_available
    from repro.qual.solver import IndexedSystem

    def flat_of(constraints):
        system = IndexedSystem(lattice)
        system.add_many(constraints)
        return FlatSystem.from_indexed(system)

    _, chain = chain_system(lattice, 10_000)
    _, fan = fanout_system(lattice, 10_000)
    _, dense = cyclic_system(lattice, 5_000)

    out = {"flat_kernel_fast_path": fast_available()}
    for name, constraints in (
        ("flat_chain10k", chain),
        ("flat_fanout10k", fan),
        ("flat_dense_scc5k", dense),
    ):
        flat = flat_of(constraints)
        out[name] = round(best_of(flat.solve_masks) * 1000, 3)

    # The zero-copy warm start: serialise once (with the solution
    # section), then time mmap -> wrap -> read the recorded fixpoints.
    flat = flat_of(chain)
    flat.attach_solution()
    blob = flat.to_bytes()
    with tempfile.NamedTemporaryFile(suffix=".qfc") as handle:
        handle.write(blob)
        handle.flush()
        import mmap as mmap_mod

        def warm_load():
            with open(handle.name, "rb") as f:
                mapped = mmap_mod.mmap(f.fileno(), 0, access=mmap_mod.ACCESS_READ)
                system = FlatSystem.from_buffer(mapped)
                solution = system.stored_solution()
                assert solution is not None
        out["flat_chain10k_mmap_warm"] = round(best_of(warm_load) * 1000, 3)
    return out


def measure_fuzz() -> dict:
    """Testkit oracle-matrix throughput: generated programs per second
    through the full differential/metamorphic matrix at a fixed seed.
    A disagreement aborts the snapshot — perf numbers measured against a
    broken engine would be meaningless."""
    from repro.testkit.driver import FuzzSession

    report = FuzzSession(seed=42, budget_seconds=120.0, max_programs=150).run()
    assert report.ok, report.summary()
    return {
        "programs": report.programs,
        "lambda_programs": report.lambda_programs,
        "c_corpora": report.c_corpora,
        "elapsed_ms": round(report.elapsed_seconds * 1000, 2),
        "programs_per_sec": round(report.programs / report.elapsed_seconds, 1),
    }


def measure_ingest() -> dict:
    """Resilient ingestion over a 100-TU corpus with a fifth of its
    units error-seeded: best-effort TUs/sec (cold and warm cache) and
    the recovered-function ratio against the clean builds of the same
    seeds.  A crash or a sub-90% ratio aborts the snapshot — the bar
    the ingestion CI job holds."""
    from repro.cfront.cast import FuncDef
    from repro.cfront.cparser import parse_c
    from repro.checker.runner import analyze
    from repro.testkit.cgen import corrupt, generate_c_corpus

    n_corpora, per_corpus, corrupt_every = 25, 4, 5
    clean_functions = 0
    with tempfile.TemporaryDirectory() as root:
        root_path = Path(root)
        total = 0
        corrupted = 0
        for seed in range(n_corpora):
            corpus = generate_c_corpus(seed, n_units=per_corpus, n_families=4)
            subdir = root_path / f"c{seed}"
            subdir.mkdir()
            for name, text in sorted(corpus.sources().items()):
                clean_functions += sum(
                    1 for item in parse_c(text, name).items
                    if isinstance(item, FuncDef)
                )
                if total % corrupt_every == corrupt_every - 1:
                    text = corrupt(text, seed=total, n_errors=1 + total % 3)
                    corrupted += 1
                (subdir / name).write_text(text)
                total += 1

        with tempfile.TemporaryDirectory() as cache_dir:
            start = time.perf_counter()
            cold = analyze(
                [str(root_path)], best_effort=True, cache_dir=cache_dir
            )
            cold_seconds = time.perf_counter() - start
            assert cold.errors == {}, "best-effort run reported hard errors"

            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                warm = analyze(
                    [str(root_path)], best_effort=True, cache_dir=cache_dir
                )
                best = min(best, time.perf_counter() - start)
            assert warm.cache_misses == 0, "warm rerun did not hit the cache"
            assert warm.unit_status == cold.unit_status

    recovered = sum(cold.functions.values())
    ratio = recovered / clean_functions if clean_functions else 0.0
    assert ratio >= 0.9, f"recovered-function ratio {ratio:.2%} below 90%"
    return {
        "corpus_units": total,
        "corrupted_units": corrupted,
        "degraded_units": sum(
            1 for s in cold.unit_status.values() if s != "ok"
        ),
        "clean_functions": clean_functions,
        "recovered_functions": recovered,
        "recovered_function_ratio": round(ratio, 4),
        "cold_ms": round(cold_seconds * 1000, 2),
        "warm_ms": round(best * 1000, 2),
        "cold_tus_per_sec": round(total / cold_seconds, 1),
        "warm_tus_per_sec": round(total / best, 1),
    }


def measure_flowsens() -> dict:
    """Flow-sensitive linearity pack: lowering and resource-analysis
    throughput (functions/sec) over seeded resource programs, plus the
    full pack through the checker over the committed corpus, cold vs
    warm diagnostic cache."""
    from repro.checker.checks import ALL_CHECKS
    from repro.checker.runner import analyze
    from repro.flowsens.linear import analyze_function_resources
    from repro.flowsens.lower import lower_function
    from repro.qual.qualifiers import resource_lattice
    from repro.testkit.cgen import generate_resource_program

    lattice = resource_lattice()
    fdefs = []
    for seed in range(16):
        program = Program.from_source(
            generate_resource_program(seed).source, filename=f"r{seed}.c"
        )
        fdefs.extend(program.functions.values())

    lower_seconds = best_of(
        lambda: [lower_function(f, lattice) for f in fdefs], repeats=3
    )
    lowered = [lower_function(f, lattice) for f in fdefs]
    analyze_seconds = best_of(
        lambda: [analyze_function_resources(fn, lattice) for fn in lowered],
        repeats=3,
    )

    out: dict = {
        "functions": len(fdefs),
        "lower_ms": round(lower_seconds * 1000, 2),
        "analyze_ms": round(analyze_seconds * 1000, 2),
        "lower_functions_per_sec": round(len(fdefs) / lower_seconds, 1),
        "analyze_functions_per_sec": round(len(fdefs) / analyze_seconds, 1),
    }

    corpus = REPO / "examples" / "resource_bugs"
    check_names = tuple(c.name for c in ALL_CHECKS)
    out["corpus_files"] = len(sorted(corpus.glob("*.c")))
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = analyze([str(corpus)], checks=check_names, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start
        assert cold.cache_hits == 0, "cold run unexpectedly hit the cache"

        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            warm = analyze(
                [str(corpus)], checks=check_names, cache_dir=cache_dir
            )
            best = min(best, time.perf_counter() - start)
        assert warm.cache_misses == 0, "warm rerun did not hit the cache"
        assert [d.to_dict() for d in warm.diagnostics] == [
            d.to_dict() for d in cold.diagnostics
        ], "warm pack diagnostics differ from cold"

    out["pack_cold_ms"] = round(cold_seconds * 1000, 2)
    out["pack_warm_ms"] = round(best * 1000, 2)

    # Whole-program pack over the cross-TU ownership corpus: linking,
    # the bottom-up summary fixpoint, and the summary-aware lowering,
    # cold vs warm through the per-unit ownership cache tier.
    xtu = REPO / "examples" / "resource_bugs_xtu"
    out["xtu_files"] = len(sorted(xtu.glob("*.c")))
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = analyze(
            [str(xtu)], checks=check_names, whole_program=True, cache_dir=cache_dir
        )
        xtu_cold_seconds = time.perf_counter() - start
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            warm = analyze(
                [str(xtu)],
                checks=check_names,
                whole_program=True,
                cache_dir=cache_dir,
            )
            best = min(best, time.perf_counter() - start)
        assert [d.to_dict() for d in warm.diagnostics] == [
            d.to_dict() for d in cold.diagnostics
        ], "warm whole-program pack diagnostics differ from cold"
    out["xtu_whole_cold_ms"] = round(xtu_cold_seconds * 1000, 2)
    out["xtu_whole_warm_ms"] = round(best * 1000, 2)
    return out


def measure_checker() -> dict:
    """qlint batch throughput over the seeded-bug corpus, cold vs warm
    diagnostic cache (files/sec; warm runs deserialise finished
    diagnostics and skip parse, congen, and solve)."""
    from repro.checker import check_paths

    corpus = REPO / "examples" / "checker_corpus"
    files = sorted(corpus.glob("*.c"))
    out: dict = {"corpus_files": len(files)}

    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = check_paths([corpus], cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start
        assert cold.cache_hits == 0, "cold run unexpectedly hit the cache"

        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            warm = check_paths([corpus], cache_dir=cache_dir)
            best = min(best, time.perf_counter() - start)
        assert warm.cache_misses == 0, "warm rerun did not hit the cache"
        assert [d.to_dict() for d in warm.diagnostics] == [
            d.to_dict() for d in cold.diagnostics
        ], "warm diagnostics differ from cold"

    out["cold_ms"] = round(cold_seconds * 1000, 2)
    out["warm_ms"] = round(best * 1000, 2)
    out["cold_files_per_sec"] = round(len(files) / cold_seconds, 1)
    out["warm_files_per_sec"] = round(len(files) / best, 1)
    return out


def measure_whole() -> dict:
    """Whole-program link-and-infer over the multi-TU corpus, cold vs
    warm per-TU summary cache (warm re-links cached ``forall k. rho\\C``
    schemes and goes straight to the solve)."""
    from repro.whole import link_paths, run_whole_poly

    corpus = REPO / "examples" / "multi_tu"
    units = sorted(corpus.glob("*.c"))
    out: dict = {"corpus_units": len(units)}

    from repro.constinfer.cache import AnalysisCache

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = AnalysisCache(cache_dir)
        start = time.perf_counter()
        cold = run_whole_poly(link_paths([corpus]), cache=cache)
        cold_seconds = time.perf_counter() - start
        assert cold.summary_hits == 0, "cold link unexpectedly hit the cache"

        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            warm = run_whole_poly(link_paths([corpus]), cache=cache)
            best = min(best, time.perf_counter() - start)
        assert warm.summary_misses == 0, "warm re-link did not hit the cache"
        assert [str(c) for c in warm.run.inference.constraints] == [
            str(c) for c in cold.run.inference.constraints
        ], "warm constraints differ from cold"

    out["cold_link_ms"] = round(cold_seconds * 1000, 2)
    out["warm_link_ms"] = round(best * 1000, 2)
    return out


def measure_suite() -> dict:
    """Serial-vs-parallel suite wall time, and cold-vs-warm cache time,
    over the scaling sweep.

    The parallel number is only meaningful relative to ``cpu_count`` —
    on a single-core box the process pool adds fork/pickle overhead and
    cannot win; the warm-cache speedup is core-independent (it skips
    parse and constraint generation outright).
    """
    specs = scaling_specs((1, 2, 4, 8))
    out: dict = {"cpu_count": os.cpu_count(), "scales": [1, 2, 4, 8]}

    out["serial"] = round(best_of(benchmark_rows, specs, repeats=3) * 1000, 2)
    out["parallel_jobs4"] = round(
        best_of(lambda: benchmark_rows(specs, jobs=4, poly_jobs=4), repeats=3) * 1000,
        2,
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        benchmark_rows(specs, cache_dir=cache_dir)
        out["cache_cold"] = round((time.perf_counter() - start) * 1000, 2)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            rows = benchmark_rows(specs, cache_dir=cache_dir)
            best = min(best, time.perf_counter() - start)
        out["cache_warm"] = round(best * 1000, 2)
        assert all(
            r.mono_timings.from_cache and r.poly_timings.from_cache for r in rows
        ), "warm rerun did not hit the cache"
    return out


def main() -> None:
    if SNAPSHOT_PATH.exists():
        data = json.loads(SNAPSHOT_PATH.read_text())
    else:
        data = {"entries": []}
    entry = measure()
    if len(sys.argv) > 1:
        entry["label"] = sys.argv[1]
    data["entries"].append(entry)
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")

    seed = next((e for e in data["entries"] if e.get("label") == "seed"), None)
    print(json.dumps(entry, indent=2))
    if seed is not None:
        base = seed["run_mono_ms"]["8"]
        now = entry["run_mono_ms"]["8"]
        print(f"run_mono scale 8: {base} ms (seed) -> {now} ms "
              f"({base / now:.2f}x speedup)")


if __name__ == "__main__":
    main()
