#!/usr/bin/env python
"""CI gate for resilient ingestion.

Run from the repository root::

    PYTHONPATH=src python scripts/ingest_sweep.py

Builds a 100-TU generated corpus with 20% of its units error-seeded
(:func:`repro.testkit.cgen.corrupt`) and pushes it through every
pipeline shape — per-file and ``--whole-program``, cold cache and warm
cache, one-shot and resident daemon — asserting:

* zero uncaught exceptions anywhere;
* at least 90% of the functions living in valid regions are analysed;
* SARIF output is byte-stable across independent runs;
* the daemon survives a good -> broken -> fixed edit cycle with its
  resident state intact.

The ``examples/realworld`` fixture (multi-hundred-line units with
includes, plus deliberate out-of-subset tails) is held to the same bar.
Exits non-zero on the first violated invariant.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cfront.cast import FuncDef  # noqa: E402
from repro.cfront.cparser import parse_c  # noqa: E402
from repro.checker.render import render_report  # noqa: E402
from repro.checker.runner import analyze  # noqa: E402
from repro.testkit.cgen import corrupt, generate_c_corpus  # noqa: E402

N_CORPORA = 25
UNITS_PER_CORPUS = 4
CORRUPT_EVERY = 5  # 20%
MIN_FUNCTION_RATIO = 0.9

_failures: list[str] = []


def check(ok: bool, message: str) -> None:
    mark = "ok" if ok else "FAIL"
    print(f"  [{mark}] {message}")
    if not ok:
        _failures.append(message)


def build_corpus(root: Path) -> tuple[int, int, int]:
    """Write the seeded corpus; returns (units, corrupted, clean fns)."""
    total = 0
    corrupted = 0
    clean_functions = 0
    for seed in range(N_CORPORA):
        corpus = generate_c_corpus(seed, n_units=UNITS_PER_CORPUS, n_families=4)
        subdir = root / f"c{seed}"
        subdir.mkdir()
        for name, text in sorted(corpus.sources().items()):
            clean_functions += sum(
                1
                for item in parse_c(text, name).items
                if isinstance(item, FuncDef)
            )
            if total % CORRUPT_EVERY == CORRUPT_EVERY - 1:
                text = corrupt(text, seed=total, n_errors=1 + total % 3)
                corrupted += 1
            (subdir / name).write_text(text)
            total += 1
    return total, corrupted, clean_functions


def sweep_one_shot(root: Path, clean_functions: int) -> None:
    print("one-shot, per-file:")
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = analyze([str(root)], best_effort=True, cache_dir=cache_dir, jobs=2)
        cold_s = time.perf_counter() - start
        check(cold.errors == {}, "per-file cold: no hard errors")
        check(
            set(cold.unit_status) == set(cold.files),
            "per-file cold: every unit has a status",
        )
        recovered = sum(cold.functions.values())
        ratio = recovered / clean_functions if clean_functions else 0.0
        check(
            ratio >= MIN_FUNCTION_RATIO,
            f"per-file cold: {recovered}/{clean_functions} functions "
            f"analysed ({ratio:.1%} >= {MIN_FUNCTION_RATIO:.0%})",
        )
        print(f"    {len(cold.files)} TUs in {cold_s * 1000:.0f} ms "
              f"({len(cold.files) / cold_s:.0f} TU/s cold)")

        warm = analyze([str(root)], best_effort=True, cache_dir=cache_dir, jobs=2)
        check(warm.cache_misses == 0, "per-file warm: fully cache-served")
        check(
            warm.unit_status == cold.unit_status
            and warm.functions == cold.functions
            and [d.to_dict() for d in warm.diagnostics]
            == [d.to_dict() for d in cold.diagnostics],
            "per-file warm: identical to cold",
        )

    sarif_a = render_report(analyze([str(root)], best_effort=True), format="sarif")
    sarif_b = render_report(analyze([str(root)], best_effort=True), format="sarif")
    check(sarif_a == sarif_b, "per-file SARIF byte-stable across runs")

    print("one-shot, whole-program:")
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = analyze(
            [str(root)],
            whole_program=True,
            best_effort=True,
            cache_dir=cache_dir,
            jobs=2,
        )
        check(
            set(cold.unit_status) == set(cold.files),
            "whole cold: every unit has a status",
        )
        check(
            any(s != "ok" for s in cold.unit_status.values())
            and any(s == "ok" for s in cold.unit_status.values()),
            "whole cold: broken units linked around, good units kept",
        )
        warm = analyze(
            [str(root)],
            whole_program=True,
            best_effort=True,
            cache_dir=cache_dir,
            jobs=2,
        )
        check(warm.cache_hits > 0, "whole warm: served from cache")
        check(
            [d.to_dict() for d in warm.diagnostics]
            == [d.to_dict() for d in cold.diagnostics],
            "whole warm: identical to cold",
        )


def sweep_daemon(root: Path) -> None:
    print("resident daemon:")
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.serve"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        env=env,
        text=True,
        bufsize=1,
    )
    next_id = iter(range(1, 10_000))

    def rpc(method: str, params: dict | None = None) -> dict:
        request: dict = {"jsonrpc": "2.0", "id": next(next_id), "method": method}
        if params is not None:
            request["params"] = params
        assert daemon.stdin is not None and daemon.stdout is not None
        daemon.stdin.write(json.dumps(request) + "\n")
        daemon.stdin.flush()
        return json.loads(daemon.stdout.readline())

    try:
        params = {"paths": [str(root)], "best_effort": True, "format": "json"}
        first = rpc("analyze", params)
        check("result" in first, "daemon best-effort analyze answered")
        result = first.get("result", {})
        check(result.get("errors") == {}, "daemon analyze: no hard errors")
        check(bool(result.get("units")), "daemon analyze: degraded units named")

        again = rpc("analyze", params)
        check(
            again.get("result", {}).get("report") == result.get("report"),
            "daemon re-analyze: identical report",
        )

        # good -> broken -> fixed on one clean unit.
        target = str(root / "c0" / "u0.c")
        good_text = Path(target).read_text()
        good = rpc("didChange", {"file": target, "text": good_text})
        check(
            "parse_diagnostics" not in good.get("result", {}),
            "daemon clean edit: no recovery keys",
        )
        broken = rpc(
            "didChange", {"file": target, "text": good_text + "int broken(;\n"}
        )
        check(
            bool(broken.get("result", {}).get("parse_diagnostics")),
            "daemon broken edit: parse diagnostics returned",
        )
        check(
            "last_good" in broken.get("result", {}),
            "daemon broken edit: last-good findings retained",
        )
        fixed = rpc("didChange", {"file": target, "text": good_text})
        check(
            "parse_diagnostics" not in fixed.get("result", {}),
            "daemon fixed edit: recovery keys cleared",
        )
        after = rpc("analyze", params)
        check(
            after.get("result", {}).get("report") == result.get("report"),
            "daemon analyze after edit cycle: identical report",
        )
        rpc("shutdown")
    finally:
        if daemon.stdin is not None:
            daemon.stdin.close()
        daemon.wait(timeout=60)
    check(daemon.returncode == 0, "daemon exited cleanly")


def sweep_realworld() -> None:
    print("examples/realworld fixture:")
    fixture = REPO / "examples" / "realworld"
    include = (str(fixture / "include"),)
    report = analyze([str(fixture)], best_effort=True, include_paths=include)
    check(report.errors == {}, "realworld: no hard errors")
    check(
        any(s != "ok" for s in report.unit_status.values()),
        "realworld: out-of-subset tail actually exercised recovery",
    )

    # The fixture defines 26 functions; only the K&R-style tail of
    # args.c is allowed to be lost to recovery (>= 96% analysed).
    recovered = sum(report.functions.values())
    check(
        recovered >= 25,
        f"realworld: {recovered} functions analysed (>= 25 of 26)",
    )
    sarif_a = render_report(
        analyze([str(fixture)], best_effort=True, include_paths=include),
        format="sarif",
        src_root=str(REPO),
    )
    sarif_b = render_report(
        analyze([str(fixture)], best_effort=True, include_paths=include),
        format="sarif",
        src_root=str(REPO),
    )
    check(sarif_a == sarif_b, "realworld: SARIF byte-stable")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="ingest-sweep-") as tmp:
        root = Path(tmp)
        total, corrupted, clean_functions = build_corpus(root)
        print(
            f"corpus: {total} TUs, {corrupted} corrupted "
            f"({corrupted / total:.0%}), {clean_functions} clean functions"
        )
        sweep_one_shot(root, clean_functions)
        sweep_daemon(root)
    sweep_realworld()

    if _failures:
        print(f"\n{len(_failures)} invariant(s) violated:")
        for message in _failures:
            print(f"  - {message}")
        return 1
    print("\nall ingestion invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
