#!/usr/bin/env python
"""CI replay harness for the resident daemon.

Runs the one-shot CLI over a corpus, then starts ``python -m
repro.serve`` and replays a scripted session against it — N ``analyze``
requests plus M edit/revert cycles — asserting:

* **zero diagnostic drift**: every daemon report is byte-identical to
  the one-shot CLI's stdout for the same tree state;
* **residency wins**: the warm resident ``analyze`` p50 beats the cold
  one-shot p50 (which pays process start, parse, and analysis each run).

Usage::

    PYTHONPATH=src python scripts/serve_replay.py examples/multi_tu
    PYTHONPATH=src python scripts/serve_replay.py examples/multi_tu --whole-program

Exits non-zero on any drift or if residency fails to win.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def percentile(samples: list[float], q: float) -> float:
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, round(q / 100 * (len(ranked) - 1)))]


class DaemonClient:
    """Blocking JSON-RPC client over the daemon's stdio pipes."""

    def __init__(self, env: dict[str, str]) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
            bufsize=1,
        )
        self._next_id = 0

    def call(self, method: str, params: dict | None = None) -> tuple[dict, float]:
        self._next_id += 1
        request: dict = {"jsonrpc": "2.0", "id": self._next_id, "method": method}
        if params is not None:
            request["params"] = params
        start = time.perf_counter()
        assert self.proc.stdin is not None and self.proc.stdout is not None
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        elapsed = time.perf_counter() - start
        if not line:
            raise RuntimeError("daemon closed its stdout mid-session")
        response = json.loads(line)
        if "error" in response:
            raise RuntimeError(f"daemon error on {method}: {response['error']}")
        return response["result"], elapsed

    def close(self) -> None:
        try:
            self.call("shutdown")
        finally:
            assert self.proc.stdin is not None
            self.proc.stdin.close()
            self.proc.wait(timeout=30)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("corpus", help="directory of .c files to replay over")
    parser.add_argument("--analyzes", type=int, default=5, metavar="N")
    parser.add_argument("--edits", type=int, default=3, metavar="M")
    parser.add_argument("--format", default="json", choices=("json", "sarif", "human"))
    parser.add_argument("--whole-program", action="store_true")
    parser.add_argument("--cold-runs", type=int, default=3)
    args = parser.parse_args()

    corpus = str(Path(args.corpus).resolve())
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(REPO / "src"))
    argv = [sys.executable, "-m", "repro.checker", corpus, "--format", args.format]
    if args.whole_program:
        argv.append("--whole-program")

    cold_samples: list[float] = []
    expected = None
    for _ in range(args.cold_runs):
        start = time.perf_counter()
        proc = subprocess.run(argv, env=env, capture_output=True, text=True)
        cold_samples.append(time.perf_counter() - start)
        if expected is None:
            expected = proc.stdout
        elif proc.stdout != expected:
            print("FAIL: one-shot CLI output is not deterministic", file=sys.stderr)
            return 1
    assert expected is not None

    units = sorted(Path(corpus).glob("*.c"))
    if not units:
        print(f"FAIL: no .c files under {corpus}", file=sys.stderr)
        return 1

    client = DaemonClient(env)
    params = {
        "paths": [corpus],
        "format": args.format,
        "whole_program": args.whole_program,
    }
    drift = 0
    warm_samples: list[float] = []
    try:
        # First request warms the session (parse + analysis, no process start).
        result, first = client.call("analyze", params)
        if result["report"] != expected:
            drift += 1
            print("DRIFT: first resident analyze differs from one-shot", file=sys.stderr)

        for i in range(args.analyzes):
            result, elapsed = client.call("analyze", params)
            warm_samples.append(elapsed)
            if result["report"] != expected:
                drift += 1
                print(f"DRIFT: resident analyze #{i + 1}", file=sys.stderr)

        # Edit/revert cycles: an overlay edit changes the answer (or at
        # least must not crash), and the revert converges byte-exactly
        # back to the one-shot report.
        for i in range(args.edits):
            target = str(units[i % len(units)])
            text = Path(target).read_text(encoding="utf-8")
            client.call("didChange", {"file": target, "text": text + "\n" * (i + 1)})
            client.call("analyze", params)  # must stay serviceable mid-edit
            client.call("didChange", {"file": target, "text": None})
            result, elapsed = client.call("analyze", params)
            warm_samples.append(elapsed)
            if result["report"] != expected:
                drift += 1
                print(f"DRIFT: analyze after edit/revert cycle #{i + 1}", file=sys.stderr)

        stats, _ = client.call("stats")
    finally:
        client.close()

    cold_p50 = percentile(cold_samples, 50)
    warm_p50 = percentile(warm_samples, 50)
    print(
        f"serve replay: {len(units)} unit(s), {args.analyzes} analyze(s), "
        f"{args.edits} edit cycle(s), format={args.format}, "
        f"whole_program={args.whole_program}"
    )
    print(f"  cold one-shot p50: {cold_p50 * 1000:.1f} ms ({args.cold_runs} runs)")
    print(f"  resident first:    {first * 1000:.1f} ms")
    print(f"  resident p50:      {warm_p50 * 1000:.1f} ms ({len(warm_samples)} requests)")
    print(
        "  session cache: "
        f"{stats['cache']['hits']} hit(s), {stats['cache']['misses']} miss(es), "
        f"{stats['cache']['memory_hits']} from memory"
    )
    if drift:
        print(f"FAIL: {drift} drifting response(s)", file=sys.stderr)
        return 1
    if warm_p50 >= cold_p50:
        print(
            f"FAIL: resident p50 ({warm_p50 * 1000:.1f} ms) did not beat "
            f"cold p50 ({cold_p50 * 1000:.1f} ms)",
            file=sys.stderr,
        )
        return 1
    print(f"  OK: zero drift; resident beats cold by {cold_p50 / warm_p50:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
