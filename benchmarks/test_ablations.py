"""Ablation benches for the design choices DESIGN.md calls out.

1. **(SubRef) vs the (Unsound) covariant rule** (Section 2.4): the
   unsound rule admits the paper's nonzero counterexample, which then
   fails at run time; the sound rule rejects it statically.
2. **Polymorphism granularity** (Section 4.3): per-SCC generalisation vs
   whole-program monomorphic — the Mono vs Poly columns, measured here as
   a count delta and a constraint-volume/time cost.
3. **Struct field sharing** (Section 4.2): disabling the shared field
   qualifiers (fresh per access) inflates the const count by ignoring
   aliasing through the shared declaration.
4. **Library conservatism** (Section 4.2): treating undeclared extern
   parameters optimistically inflates the count by assuming libraries
   never write.
"""

import pytest

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from repro.lam.eval import AssertionFailure, Evaluator
from repro.lam.infer import QualTypeError, QualifiedLanguage, infer
from repro.lam.parser import parse
from repro.qual.qualifiers import make_lattice
from conftest import one_shot


class TestRefRuleAblation:
    SOURCE = """
    let x = ref ({nonzero} 37) in
    let u = ((fn y. y := ({} 0)) x) in
    (!x)|{nonzero}
    ni ni
    """

    def setup_method(self):
        self.lattice = make_lattice("const", "nonzero")
        self.lang = QualifiedLanguage(self.lattice, assign_restrictions=("const",))
        self.expr = parse(self.SOURCE)

    def test_sound_rule_rejects(self):
        with pytest.raises(QualTypeError):
            infer(self.expr, self.lang, ref_rule="sound")

    def test_unsound_rule_admits_then_fails_at_runtime(self):
        infer(self.expr, self.lang, ref_rule="unsound")
        with pytest.raises(AssertionFailure):
            Evaluator(self.lattice).run(self.expr)

    def test_bench_sound_vs_unsound_cost(self, benchmark):
        # soundness costs nothing: the equality rule emits one extra atom
        # per ref level, measured here on a ref-heavy program.
        source = "let a = ref 1 in " * 30 + "0" + " ni" * 30
        expr = parse(source)

        def run():
            return infer(expr, self.lang, ref_rule="unsound"), infer(
                expr, self.lang, ref_rule="sound"
            )

        unsound_result, sound_result = benchmark(run)
        assert len(sound_result.constraints) >= len(unsound_result.constraints)


MIXED_USE = """
int *id(int *x) { return x; }
void put(void) { int a; *id(&a) = 1; }
int get(void) { int b; return *id(&b); }
int reader(const int *p) { return *p; }
int scan(int *q) { return *q + reader(q); }
"""


class TestPolymorphismGranularity:
    def test_count_delta(self):
        program = Program.from_source(MIXED_USE)
        mono = run_mono(program)
        poly = run_poly(program)
        assert poly.inferred_const_count() - mono.inferred_const_count() == 2
        # poly pays in constraint volume (instantiation copies)
        assert poly.constraint_count > mono.constraint_count

    def test_bench_mono(self, benchmark):
        program = Program.from_source(MIXED_USE)
        run = one_shot(benchmark, run_mono, program)
        assert run.total_positions() == 4

    def test_bench_poly(self, benchmark):
        program = Program.from_source(MIXED_USE)
        run = one_shot(benchmark, run_poly, program)
        assert run.total_positions() == 4


SHARED_FIELDS = """
struct st { int *slot; };
void put(struct st *s, int *p) { s->slot = p; }
void zap(struct st *t) { *(t->slot) = 2; }
int probe(struct st *u, int *q) { u->slot = q; return 0; }
"""


class TestStructFieldSharing:
    def test_sharing_links_instances(self):
        program = Program.from_source(SHARED_FIELDS)
        shared = run_mono(program)
        unshared = run_mono(program, share_struct_fields=False)
        # with sharing, the write through t->slot pins p and q (stored
        # into the same field declaration); without, they stay free.
        assert unshared.inferred_const_count() > shared.inferred_const_count()

    def test_unshared_is_the_unsound_overcount(self):
        program = Program.from_source(SHARED_FIELDS)
        unshared = run_mono(program, share_struct_fields=False)
        from repro.qual.solver import Classification

        verdicts = {
            f"{p.function}/{p.where}": v
            for p, v in unshared.classified_positions()
        }
        # the ablation wrongly reports p as const-able even though the
        # cell it stores is written through the shared field elsewhere.
        assert verdicts["put/param 1 (p)"] is Classification.EITHER


LIBRARY_USE = """
extern void lib_fill(int *dst, int n);
extern int lib_len(const char *s);
void wrap1(int *a) { lib_fill(a, 3); }
void wrap2(int *b) { lib_fill(b, 4); }
int wrap3(char *s) { return lib_len(s); }
"""


class TestPolymorphicRecursionVsFDG:
    """Section 4.3: let-style polymorphism needs the FDG; polymorphic
    recursion avoids it at the cost of fixpoint iteration.  The bench
    quantifies the trade-off: identical counts, more rounds of work."""

    def test_results_identical_without_fdg(self):
        from repro.benchsuite import PAPER_BENCHMARKS, load_program
        from repro.constinfer.engine import run_polyrec

        program, _c, _l = load_program(PAPER_BENCHMARKS[0])
        poly = run_poly(program)
        polyrec = run_polyrec(program)
        assert polyrec.inferred_const_count() == poly.inferred_const_count()
        assert polyrec.total_positions() == poly.total_positions()

    def test_bench_letpoly_with_fdg(self, benchmark):
        from repro.benchsuite import PAPER_BENCHMARKS, load_program

        program, _c, _l = load_program(PAPER_BENCHMARKS[0])
        run = one_shot(benchmark, run_poly, program)
        assert run.mode == "poly"

    def test_bench_polyrec_without_fdg(self, benchmark):
        from repro.benchsuite import PAPER_BENCHMARKS, load_program
        from repro.constinfer.engine import run_polyrec

        program, _c, _l = load_program(PAPER_BENCHMARKS[0])
        run = one_shot(benchmark, run_polyrec, program)
        assert run.mode == "polyrec"


class TestLibraryConservatism:
    def test_conservative_vs_optimistic_counts(self):
        program = Program.from_source(LIBRARY_USE)
        conservative = run_mono(program)
        optimistic = run_mono(program, conservative_libraries=False)
        # optimistically, wrap1/wrap2's params look const-able (unsound:
        # lib_fill writes); declared-const library params are unaffected.
        assert (
            optimistic.inferred_const_count()
            - conservative.inferred_const_count()
            == 2
        )

    def test_declared_const_library_param_same_either_way(self):
        program = Program.from_source(LIBRARY_USE)
        from repro.qual.solver import Classification

        for options in ({}, {"conservative_libraries": False}):
            run = run_mono(program, **options)
            verdicts = {p.function: v for p, v in run.classified_positions()}
            assert verdicts["wrap3"] is Classification.EITHER
