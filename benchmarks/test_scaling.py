"""Timing-shape claims of Section 4.4.

The paper makes two quantitative timing claims:

* "the inference scales roughly linearly with the program size", and
* "the polymorphic inference takes at most 3 times longer than the
  monomorphic inference".

Absolute seconds are incomparable across a 1999 ML prototype and this
Python implementation, so the harness verifies the *shape*: a size sweep
of generated programs must show sub-quadratic growth, and poly/mono time
ratios must stay within a modest constant across the suite.
"""

import time

import pytest

from repro.benchsuite.generator import PositionMix, generate_benchmark
from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from conftest import one_shot


def timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def sweep_program(scale):
    mix = PositionMix(10 * scale, 10 * scale, 9 * scale, 10 * scale)
    source = generate_benchmark(f"sweep{scale}", 42 + scale, mix, 0)
    return Program.from_source(source), source.count("\n") + 1


class TestLinearScaling:
    def test_mono_scales_roughly_linearly(self, capsys):
        sizes, times = [], []
        for scale in (1, 2, 4, 8):
            program, lines = sweep_program(scale)
            best = min(timed(run_mono, program) for _ in range(3))
            sizes.append(lines)
            times.append(best)
        print()
        for lines, seconds in zip(sizes, times):
            print(f"  {lines:>7} lines  mono {seconds * 1000:8.1f} ms")
        # 8x the program size must cost well under 8x^2 the time; allow a
        # generous constant for noise: time ratio <= 3x the size ratio.
        size_ratio = sizes[-1] / sizes[0]
        time_ratio = times[-1] / times[0]
        assert time_ratio <= 3.0 * size_ratio

    def test_poly_scales_roughly_linearly(self):
        sizes, times = [], []
        for scale in (1, 4):
            program, lines = sweep_program(scale)
            best = min(timed(run_poly, program) for _ in range(3))
            sizes.append(lines)
            times.append(best)
        assert times[1] / times[0] <= 3.0 * (sizes[1] / sizes[0])


class TestPolyOverMonoFactor:
    def test_factor_bounded_across_suite(self, suite_rows, capsys):
        print()
        worst = 0.0
        for row in suite_rows:
            factor = row.poly_time_factor
            worst = max(worst, factor)
            print(f"  {row.name:<15} poly/mono time = {factor:4.2f}x")
        # the paper observed at most 3x; allow slack for timer noise on
        # the small benchmarks.
        assert worst <= 4.0

    def test_factor_on_sweep(self):
        program, _lines = sweep_program(6)
        mono = min(timed(run_mono, program) for _ in range(3))
        poly = min(timed(run_poly, program) for _ in range(3))
        assert poly / mono <= 4.0


@pytest.mark.parametrize("scale", [1, 4])
def test_bench_sweep_mono(scale, benchmark):
    program, _lines = sweep_program(scale)
    run = one_shot(benchmark, run_mono, program)
    assert run.total_positions() == 39 * scale
