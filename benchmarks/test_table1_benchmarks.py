"""Table 1: the benchmark suite (names, line counts, descriptions).

Regenerates the six benchmarks' metadata from the synthetic suite and
checks the line counts land near the paper's (the generator pads to the
paper's published size).  The pytest-benchmark measurement is the
"compile" column's substrate: tokenising + parsing + building semantic
tables for one benchmark.
"""

import pytest

from repro.benchsuite.suite import PAPER_BENCHMARKS, generate_source
from repro.cfront.sema import Program
from repro.constinfer.results import format_table1
from conftest import one_shot


def test_table1_metadata(suite_rows, capsys):
    rows = suite_rows
    assert [r.name for r in rows] == [s.name for s in PAPER_BENCHMARKS]
    print()
    print(format_table1(rows))
    for row, spec in zip(rows, PAPER_BENCHMARKS):
        assert row.description == spec.description
        # generated size within 25% of the paper's published line count
        assert spec.lines <= row.lines <= spec.lines * 1.25


def test_sizes_strictly_increasing(suite_rows):
    sizes = [r.lines for r in suite_rows]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 20 * sizes[0] / 2  # uucp dwarfs woman, as in Table 1


@pytest.mark.parametrize("spec", PAPER_BENCHMARKS[:3], ids=lambda s: s.name)
def test_bench_compile(spec, benchmark):
    """Time the front end (the Table 2 'Compile' column) per benchmark."""
    source = generate_source(spec)
    program = one_shot(benchmark, Program.from_source, source, spec.name)
    assert program.functions
