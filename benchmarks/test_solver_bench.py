"""Microbenchmarks of the atomic constraint solver: the Section 3.1
claim that qualifier constraints solve "in linear time for a fixed set
of qualifiers" [HR97], measured on the graph shapes inference produces
(chains, fan-outs, cycles, and a const-inference-like mix)."""

import pytest

from repro.qual.constraints import QualConstraint
from repro.qual.qtypes import fresh_qual_var
from repro.qual.qualifiers import const_lattice, paper_figure2_lattice
from repro.qual.solver import solve


def chain_system(lattice, n):
    variables = [fresh_qual_var() for _ in range(n)]
    constraints = [QualConstraint(lattice.atom("const"), variables[0])]
    constraints += [
        QualConstraint(variables[i], variables[i + 1]) for i in range(n - 1)
    ]
    return variables, constraints


def fanout_system(lattice, n):
    hub = fresh_qual_var()
    leaves = [fresh_qual_var() for _ in range(n)]
    constraints = [QualConstraint(lattice.atom("const"), hub)]
    constraints += [QualConstraint(hub, leaf) for leaf in leaves]
    return leaves, constraints


def cyclic_system(lattice, n):
    variables = [fresh_qual_var() for _ in range(n)]
    constraints = [
        QualConstraint(variables[i], variables[(i + 1) % n]) for i in range(n)
    ]
    constraints.append(QualConstraint(lattice.atom("const"), variables[0]))
    return variables, constraints


@pytest.mark.parametrize("size", [1_000, 10_000])
def test_bench_chain(benchmark, size):
    lattice = const_lattice()
    variables, constraints = chain_system(lattice, size)
    solution = benchmark(solve, constraints, lattice)
    assert solution.least_of(variables[-1]).has("const")


@pytest.mark.parametrize("size", [1_000, 10_000])
def test_bench_fanout(benchmark, size):
    lattice = const_lattice()
    leaves, constraints = fanout_system(lattice, size)
    solution = benchmark(solve, constraints, lattice)
    assert solution.least_of(leaves[0]).has("const")


def test_bench_cycle(benchmark):
    lattice = const_lattice()
    variables, constraints = cyclic_system(lattice, 5_000)
    solution = benchmark(solve, constraints, lattice)
    assert all(solution.least_of(v).has("const") for v in variables)


def test_bench_product_lattice(benchmark):
    """A three-qualifier lattice costs a constant factor, not more."""
    lattice = paper_figure2_lattice()
    variables, constraints = chain_system(lattice, 5_000)
    solution = benchmark(solve, constraints, lattice)
    assert solution.least_of(variables[-1]).has("const")


def test_linear_scaling_shape():
    """Doubling the system size should not quadruple the time."""
    import time

    from conftest import quiet_gc

    lattice = const_lattice()

    def timed(n):
        _vars, constraints = chain_system(lattice, n)
        best = float("inf")
        # quiet_gc: when the whole benchmark dir runs, the session
        # fixtures retain a large heap and collector pauses scale with
        # it — enough to make the bigger run look superlinear.
        with quiet_gc():
            for _ in range(3):
                start = time.perf_counter()
                solve(constraints, lattice)
                best = min(best, time.perf_counter() - start)
        return best

    small = timed(20_000)
    large = timed(40_000)
    assert large <= small * 3.5  # linear up to noise (2x size)
