"""Microbenchmarks of the performance kernel underneath the solver.

Three layers are measured separately so regressions localise:

* **lattice kernel** — raw ``join``/``meet``/``leq`` throughput on
  interned bitmask elements (the paper's fixed-lattice assumption is
  what makes these O(1));
* **condensation vs. reference** — the single-pass condensation
  pipeline (:func:`repro.qual.solver.solve`) against the provenance-
  tracking worklist oracle (:func:`repro.qual.solver.solve_reference`)
  on the graph shapes inference produces;
* **incremental fork** — re-solving a grown system via
  :meth:`IndexedSystem.fork` versus re-categorising from scratch, the
  ``run_polyrec`` round pattern.

``scripts/bench_snapshot.py`` records the headline numbers into
``BENCH_solver.json`` for the cross-PR perf trajectory.
"""

import pytest

from repro.qual.constraints import QualConstraint
from repro.qual.qtypes import fresh_qual_var
from repro.qual.qualifiers import const_lattice, paper_figure2_lattice
from repro.qual.solver import IndexedSystem, solve, solve_reference

from test_solver_bench import chain_system, cyclic_system, fanout_system


# ---------------------------------------------------------------------------
# Lattice kernel throughput
# ---------------------------------------------------------------------------


def test_bench_join_meet_throughput(benchmark):
    lattice = paper_figure2_lattice()
    elements = list(lattice.elements())
    pairs = [(a, b) for a in elements for b in elements]
    join, meet = lattice.join, lattice.meet

    def churn():
        acc = 0
        for a, b in pairs:
            acc += join(a, b).mask ^ meet(a, b).mask
        return acc

    result = benchmark(churn)
    assert result >= 0


def test_bench_leq_throughput(benchmark):
    lattice = paper_figure2_lattice()
    elements = list(lattice.elements())
    pairs = [(a, b) for a in elements for b in elements] * 4
    leq = lattice.leq

    def churn():
        return sum(1 for a, b in pairs if leq(a, b))

    count = benchmark(churn)
    assert count > 0


def test_join_returns_interned_not_allocated():
    """The kernel's point: joins resolve to existing interned elements."""
    lattice = paper_figure2_lattice()
    elements = list(lattice.elements())
    before = len(lattice._interned)
    for a in elements:
        for b in elements:
            lattice.join(a, b)
            lattice.meet(a, b)
    assert len(lattice._interned) == before


# ---------------------------------------------------------------------------
# Condensation vs. the reference worklist
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "shape,maker",
    [("chain", chain_system), ("fanout", fanout_system), ("cycle", cyclic_system)],
)
def test_bench_condensation(benchmark, shape, maker):
    lattice = const_lattice()
    _vars, constraints = maker(lattice, 5_000)
    solution = benchmark(solve, constraints, lattice)
    assert solution.stats is not None


@pytest.mark.parametrize(
    "shape,maker",
    [("chain", chain_system), ("fanout", fanout_system), ("cycle", cyclic_system)],
)
def test_bench_reference_worklist(benchmark, shape, maker):
    lattice = const_lattice()
    _vars, constraints = maker(lattice, 5_000)
    solution = benchmark(solve_reference, constraints, lattice)
    assert solution.stats is None  # the oracle does not report stats


def test_condensation_and_reference_agree_here():
    lattice = const_lattice()
    for maker in (chain_system, fanout_system, cyclic_system):
        variables, constraints = maker(lattice, 500)
        fast = solve(constraints, lattice)
        slow = solve_reference(constraints, lattice)
        for v in variables:
            assert fast.least_of(v) == slow.least_of(v)
            assert fast.greatest_of(v) == slow.greatest_of(v)


# ---------------------------------------------------------------------------
# Incremental fork vs. re-categorisation
# ---------------------------------------------------------------------------


def _grown_system(lattice, base_n=8_000, delta_n=200):
    _, base = chain_system(lattice, base_n)
    _, delta = chain_system(lattice, delta_n)
    return base, delta


def test_bench_fork_resolve(benchmark):
    lattice = const_lattice()
    base, delta = _grown_system(lattice)
    indexed = IndexedSystem(lattice)
    indexed.add_many(base)

    def round_trip():
        system = indexed.fork()
        system.add_many(delta)
        return system.solve()

    solution = benchmark(round_trip)
    assert solution.stats.constraints == len(base) + len(delta)


def test_bench_scratch_resolve(benchmark):
    lattice = const_lattice()
    base, delta = _grown_system(lattice)
    combined = base + delta

    def round_trip():
        return solve(combined, lattice)

    solution = benchmark(round_trip)
    assert solution.stats.constraints == len(combined)
