"""Benchmarks for the flow-sensitive extension (Section 6 prototype).

The cost of flow-sensitivity is one qualifier variable per variable per
program point.  These benches measure how the analysis scales with
program length and loop nesting, and verify it stays effectively linear
— the property that makes the paper's sketch practical.
"""

import time

import pytest

from repro.flowsens import (
    Assign,
    AssertStmt,
    If,
    Join,
    Literal,
    VarRef,
    While,
    analyze_flow,
    block,
)
from repro.qual.qualifiers import taint_lattice

LATTICE = taint_lattice()


def straightline(n):
    """n assignments threading one tainted value through fresh names."""
    stmts = [Assign("x0", Literal(LATTICE.element("tainted")))]
    for i in range(1, n):
        stmts.append(Assign(f"x{i}", VarRef(f"x{i - 1}")))
    stmts.append(
        AssertStmt(f"x{n - 1}", LATTICE.element(), label="sink")
    )
    return block(*stmts)


def loopy(width, loops):
    stmts = [Assign("n", Literal(LATTICE.element()))]
    for i in range(width):
        stmts.append(Assign(f"v{i}", Literal(LATTICE.element())))
    for _ in range(loops):
        body = tuple(
            Assign(f"v{i}", Join(VarRef(f"v{i}"), VarRef(f"v{(i + 1) % width}")))
            for i in range(width)
        )
        stmts.append(While("n", body=body))
    return block(*stmts)


def branchy(depth):
    stmts = [
        Assign("flag", Literal(LATTICE.element())),
        Assign("x", Literal(LATTICE.element())),
    ]
    inner: tuple = (Assign("x", Literal(LATTICE.element("tainted"))),)
    for _ in range(depth):
        inner = (If("flag", then=inner, else_=()),)
    stmts.extend(inner)
    stmts.append(AssertStmt("x", LATTICE.element(), label="sink"))
    return block(*stmts)


@pytest.mark.parametrize("size", [100, 1000])
def test_bench_straightline(benchmark, size):
    program = straightline(size)
    result = benchmark(analyze_flow, program, LATTICE)
    assert not result.ok  # the taint survives the whole chain


def test_bench_loops(benchmark):
    program = loopy(width=8, loops=10)
    result = benchmark(analyze_flow, program, LATTICE)
    assert result.ok


def test_bench_nested_branches(benchmark):
    program = branchy(depth=30)
    result = benchmark(analyze_flow, program, LATTICE)
    assert not result.ok


def test_linear_scaling_shape():
    def timed(n):
        program = straightline(n)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            analyze_flow(program, LATTICE)
            best = min(best, time.perf_counter() - start)
        return best

    small = timed(2_000)
    large = timed(4_000)
    assert large <= small * 3.5  # 2x the points, ~2x the time
