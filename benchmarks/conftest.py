"""Shared fixtures for the benchmark harness.

Each benchmark file regenerates one table or figure from the paper's
evaluation (Section 4.4).  Generated programs and engine runs are cached
at session scope so that asserting counts and timing the engines do not
redo identical work; pytest-benchmark timings use pedantic single-round
mode because each measured unit is itself a full whole-program analysis.
"""

import contextlib
import gc

import pytest

from repro.benchsuite.suite import PAPER_BENCHMARKS, generate_source, load_program
from repro.constinfer.engine import run_mono, run_poly
from repro.constinfer.results import make_row


@contextlib.contextmanager
def quiet_gc():
    """Keep collector pauses out of a timed region.

    The session-scoped fixtures hold every parsed program alive, and a
    full collection scans that entire heap — one landing inside a
    single-shot engine timing can double it.  Freezing moves the
    retained heap into the permanent generation, so collections during
    the region only scan what the region itself allocates.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


@pytest.fixture(scope="session")
def programs():
    """name -> (spec, Program, compile_seconds, lines) for the suite."""
    out = {}
    for spec in PAPER_BENCHMARKS:
        program, compile_seconds, lines = load_program(spec)
        out[spec.name] = (spec, program, compile_seconds, lines)
    return out


@pytest.fixture(scope="session")
def suite_rows(programs):
    """Fully-analysed Table 2 rows for every benchmark."""
    rows = []
    with quiet_gc():
        for name, (spec, program, compile_seconds, lines) in programs.items():
            mono = run_mono(program)
            poly = run_poly(program)
            rows.append(
                make_row(spec.name, lines, spec.description, compile_seconds, mono, poly)
            )
    return rows


def one_shot(benchmark, fn, *args, **kwargs):
    """Run a whole-program analysis exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
