"""Table 2: const-inference counts and times for every benchmark.

This is the paper's headline experiment.  For each of the six benchmarks
the harness runs monomorphic and polymorphic inference and checks the
four count columns against the paper's published numbers **exactly**
(the synthetic suite realises the same interesting-position mix; see
DESIGN.md).  Timings are measured and printed but compared only in shape
(see test_scaling.py for the timing claims).
"""

import pytest

from repro.benchsuite.suite import PAPER_BENCHMARKS, PAPER_TIMINGS
from repro.constinfer.engine import run_mono, run_poly
from repro.constinfer.results import format_table2, summarize_shape_claims
from conftest import one_shot


@pytest.mark.parametrize("spec", PAPER_BENCHMARKS, ids=lambda s: s.name)
def test_counts_match_paper(spec, programs):
    _spec, program, _compile, _lines = programs[spec.name]
    mono = run_mono(program)
    poly = run_poly(program)
    assert mono.declared_count() == spec.declared
    assert mono.inferred_const_count() == spec.mono
    assert poly.inferred_const_count() == spec.poly
    assert mono.total_positions() == spec.total
    assert poly.total_positions() == spec.total


def test_print_full_table2(suite_rows, capsys):
    print()
    print("Table 2 (regenerated; times ours):")
    print(format_table2(suite_rows))
    print()
    print("Table 2 (paper timings, for reference):")
    for spec in PAPER_BENCHMARKS:
        c, m, p = PAPER_TIMINGS[spec.name]
        print(f"  {spec.name:<15} compile {c:>7.2f}s  mono {m:>7.2f}s  poly {p:>7.2f}s")


def test_section44_shape_claims(suite_rows):
    claims = summarize_shape_claims(suite_rows)
    # "many more consts can be inferred than are typically present"
    assert claims["all_mono_geq_declared"]
    # "polymorphic analysis allows 5-16% more consts than monomorphic"
    assert claims["all_poly_geq_mono"]
    assert 4.0 <= claims["poly_gain_percent_min"]
    assert claims["poly_gain_percent_max"] <= 17.0


def test_uucp_ratio_claim(suite_rows):
    """uucp-1.04 'can have more than 2.5 times more consts than are
    actually present'."""
    uucp = [r for r in suite_rows if r.name == "uucp-1.04"][0]
    assert uucp.poly / uucp.declared > 2.5


@pytest.mark.parametrize("spec", PAPER_BENCHMARKS[:3], ids=lambda s: s.name)
def test_bench_mono_inference(spec, programs, benchmark):
    _spec, program, _c, _l = programs[spec.name]
    run = one_shot(benchmark, run_mono, program)
    assert run.total_positions() == spec.total


@pytest.mark.parametrize("spec", PAPER_BENCHMARKS[:3], ids=lambda s: s.name)
def test_bench_poly_inference(spec, programs, benchmark):
    _spec, program, _c, _l = programs[spec.name]
    run = one_shot(benchmark, run_poly, program)
    assert run.total_positions() == spec.total
