"""Figure 2: the example qualifier lattice (const x dynamic x nonzero).

Regenerates the eight-element lattice the paper draws, checks its
structure (a three-dimensional diamond whose Hasse diagram has levels of
size 1/3/3/1 and exactly 12 cover edges), and prints it.  The benchmark
times the core lattice operations the solver leans on.
"""

import itertools

from repro.qual.qualifiers import paper_figure2_lattice


def test_figure2_structure():
    lattice = paper_figure2_lattice()
    elements = list(lattice.elements())
    assert len(elements) == 8

    levels = lattice.hasse_levels()
    assert [len(level) for level in levels] == [1, 3, 3, 1]
    assert levels[0] == [lattice.bottom]
    assert levels[-1] == [lattice.top]

    covers = [
        (a, b)
        for a, b in itertools.permutations(elements, 2)
        if lattice.covers(a, b)
    ]
    assert len(covers) == 12  # the edges of a 3-cube

    # the labelled corners of Figure 2
    assert str(lattice.bottom) == "nonzero"
    assert str(lattice.top) == "const dynamic"
    assert lattice.element("const", "dynamic", "nonzero") in elements


def test_figure2_render(capsys):
    lattice = paper_figure2_lattice()
    art = lattice.render_hasse()
    print()
    print("Figure 2 (regenerated):")
    print(art)
    lines = art.split("\n")
    assert len(lines) == 4
    assert "nonzero" in lines[-1]  # bottom row
    assert "const dynamic" in lines[0]  # top row


def test_bench_lattice_operations(benchmark):
    lattice = paper_figure2_lattice()
    elements = list(lattice.elements())

    def workload():
        total = 0
        for a, b in itertools.product(elements, elements):
            if lattice.leq(a, b):
                total += 1
            lattice.meet(a, b)
            lattice.join(a, b)
        return total

    comparable_pairs = benchmark(workload)
    # of the 64 ordered pairs of the 2^3 lattice, 27 are comparable
    assert comparable_pairs == 27
