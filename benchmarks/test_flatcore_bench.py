"""Microbenchmarks of the flat-array (CSR) solver core: the kernel on
prebuilt buffers (what a warm mmap start pays), the end-to-end
``flat_solve`` (buffers built from constraint objects), and the
serialise/wrap round trip behind the binary cache."""

import pytest

from test_solver_bench import chain_system, cyclic_system, fanout_system

from repro.qual.flatcore import FlatSystem, flat_solve
from repro.qual.qualifiers import const_lattice
from repro.qual.solver import IndexedSystem


def flat_of(lattice, constraints):
    system = IndexedSystem(lattice)
    system.add_many(constraints)
    return FlatSystem.from_indexed(system)


@pytest.mark.parametrize(
    "shape", ["chain", "fanout", "dense_scc"], ids=["chain10k", "fanout10k", "scc5k"]
)
def test_bench_flat_kernel(benchmark, shape):
    """Condensation + both propagation passes over prebuilt arrays."""
    lattice = const_lattice()
    maker = {
        "chain": lambda: chain_system(lattice, 10_000),
        "fanout": lambda: fanout_system(lattice, 10_000),
        "dense_scc": lambda: cyclic_system(lattice, 5_000),
    }[shape]
    _, constraints = maker()
    flat = flat_of(lattice, constraints)
    result = benchmark(flat.solve_masks)
    assert result.violation == -1


def test_bench_flat_solve_end_to_end(benchmark):
    """Constraint objects -> flat buffers -> kernel -> lazy solution."""
    lattice = const_lattice()
    variables, constraints = chain_system(lattice, 10_000)
    solution = benchmark(flat_solve, constraints, lattice)
    assert solution.least_of(variables[-1]).has("const")


def test_bench_flat_roundtrip(benchmark):
    """Serialise -> wrap zero-copy -> read the stored solution."""
    lattice = const_lattice()
    variables, constraints = chain_system(lattice, 10_000)
    flat = flat_of(lattice, constraints)
    flat.attach_solution()
    blob = flat.to_bytes()

    def warm():
        system = FlatSystem.from_buffer(blob)
        return system.stored_solution()

    solution = benchmark(warm)
    assert solution is not None
    assert solution.least_of(variables[-1]).has("const")
