"""Figure 6: inferred consts as stacked percentages of total possible.

The figure presents Table 2's counts normalised per benchmark:
Declared / Mono-extra / Poly-extra / Other must sum to 100%.  The
regenerated percentages are checked against the values derived from the
paper's published counts, and the textual figure is printed.
"""

import pytest

from repro.benchsuite.suite import PAPER_BENCHMARKS
from repro.constinfer.results import format_figure6


def paper_percentages(spec):
    total = spec.total
    return {
        "declared": 100.0 * spec.declared / total,
        "mono": 100.0 * (spec.mono - spec.declared) / total,
        "poly": 100.0 * (spec.poly - spec.mono) / total,
        "other": 100.0 * (spec.total - spec.poly) / total,
    }


def test_percentages_match_paper(suite_rows):
    by_name = {r.name: r for r in suite_rows}
    for spec in PAPER_BENCHMARKS:
        measured = by_name[spec.name].percentages()
        expected = paper_percentages(spec)
        for key in ("declared", "mono", "poly", "other"):
            assert measured[key] == pytest.approx(expected[key], abs=1e-9), (
                spec.name,
                key,
            )


def test_each_bar_sums_to_100(suite_rows):
    for row in suite_rows:
        assert sum(row.percentages().values()) == pytest.approx(100.0)


def test_declared_fraction_spread(suite_rows):
    """Figure 6's visual spread: woman/patch are heavily annotated
    (declared > 50%), m4/ssh/uucp much less (< 30%)."""
    by_name = {r.name: r for r in suite_rows}
    assert by_name["woman-3.0a"].percentages()["declared"] > 50
    assert by_name["patch-2.5"].percentages()["declared"] > 50
    for name in ("m4-1.4", "ssh-1.2.26", "uucp-1.04"):
        assert by_name[name].percentages()["declared"] < 30


def test_print_figure6(suite_rows, capsys):
    print()
    print(format_figure6(suite_rows))


def test_bench_figure_rendering(suite_rows, benchmark):
    text = benchmark(format_figure6, suite_rows)
    assert text.count("|") == 2 * len(suite_rows)
