"""Tests for the linearity/resource pack (repro.flowsens.linear):
double-free, use-after-free, and leak-on-exit-path detection over
lowered C, with flow-path diagnostics and the clean-code guarantees."""

import pytest

from repro.cfront.sema import Program
from repro.flowsens.linear import (
    DOUBLE_FREE,
    RESOURCE_LEAK,
    USE_AFTER_FREE,
    analyze_function_resources,
    analyze_lowered,
)
from repro.flowsens.lower import lower_function
from repro.qual.qualifiers import resource_lattice

PROTOS = """
void *malloc(unsigned long size);
void free(void *ptr);
unsigned long strlen(const char *s);
int getchar(void);
int mystery(char *s);
"""


@pytest.fixture
def lattice():
    return resource_lattice()


def findings(source, name, lattice):
    program = Program.from_source(PROTOS + source, filename="t.c")
    lowered = lower_function(program.functions[name], lattice)
    return analyze_function_resources(lowered, lattice)


class TestPlantedBugs:
    def test_double_free_on_merged_path(self, lattice):
        out = findings(
            "int f(void) { char *p = malloc(8);\n"
            "if (!p) return -1;\n"
            "if (getchar() < 0) { free(p); }\n"
            "free(p); return 0; }",
            "f",
            lattice,
        )
        kinds = {fnd.kind for fnd in out}
        assert DOUBLE_FREE in kinds
        bug = next(fnd for fnd in out if fnd.kind == DOUBLE_FREE)
        assert bug.variable == "p"
        assert len(bug.flow) >= 2  # the first free, then the second

    def test_leak_on_early_exit_path(self, lattice):
        out = findings(
            "int f(void) { char *p = malloc(8);\n"
            "if (!p) return -1;\n"
            "if (getchar() < 0) return -2;\n"
            "free(p); return 0; }",
            "f",
            lattice,
        )
        leaks = [fnd for fnd in out if fnd.kind == RESOURCE_LEAK]
        assert leaks and leaks[0].variable == "p"
        assert len(leaks[0].flow) >= 2  # allocation, then the exit

    def test_use_after_free(self, lattice):
        out = findings(
            "unsigned long f(void) { char *p = malloc(8);\n"
            "if (!p) return 0;\n"
            "free(p);\n"
            "return strlen(p); }",
            "f",
            lattice,
        )
        assert USE_AFTER_FREE in {fnd.kind for fnd in out}

    def test_alias_double_free(self, lattice):
        out = findings(
            "void f(void) { char *p = malloc(8); char *q = p;\n"
            "free(q); free(p); }",
            "f",
            lattice,
        )
        assert DOUBLE_FREE in {fnd.kind for fnd in out}

    def test_findings_are_deterministically_ordered(self, lattice):
        src = (
            "void f(void) { char *p = malloc(8); char *q = malloc(8);\n"
            "free(p); free(p); free(q); free(q); }"
        )
        a = findings(src, "f", lattice)
        b = findings(src, "f", lattice)
        assert [
            (x.kind, x.variable, x.line, x.col) for x in a
        ] == [(x.kind, x.variable, x.line, x.col) for x in b]


class TestCleanCode:
    def test_balanced_alloc_free_is_clean(self, lattice):
        out = findings(
            "int f(void) { char *p = malloc(8);\n"
            "if (!p) return -1;\n"
            "unsigned long n = strlen(p);\n"
            "free(p); return (int)n; }",
            "f",
            lattice,
        )
        assert out == []

    def test_ownership_handoff_by_return_is_clean(self, lattice):
        out = findings(
            "char *f(void) { char *p = malloc(8);\n"
            "if (!p) return 0;\n"
            "return p; }",
            "f",
            lattice,
        )
        assert out == []

    def test_escape_to_unknown_callee_suppresses_leak(self, lattice):
        # mystery() may take ownership, so no leak is claimed
        out = findings(
            "int f(void) { char *p = malloc(8);\n"
            "if (!p) return -1;\n"
            "return mystery(p); }",
            "f",
            lattice,
        )
        assert out == []

    def test_free_on_every_path_is_clean(self, lattice):
        out = findings(
            "int f(void) { char *p = malloc(8);\n"
            "if (!p) return -1;\n"
            "if (getchar() < 0) { free(p); return -2; }\n"
            "free(p); return 0; }",
            "f",
            lattice,
        )
        assert out == []

    def test_unstructured_function_reports_nothing(self, lattice):
        out = findings(
            "void f(void) { char *p = malloc(8); goto out;\nout: free(p); free(p); }",
            "f",
            lattice,
        )
        assert out == []


class TestLoops:
    def test_free_inside_loop_is_double_free(self, lattice):
        out = findings(
            "void f(void) { char *p = malloc(8);\n"
            "int n = getchar();\n"
            "while (n) { free(p); n = getchar(); }\n"
            "}",
            "f",
            lattice,
        )
        assert DOUBLE_FREE in {fnd.kind for fnd in out}

    def test_realloc_style_loop_is_clean(self, lattice):
        out = findings(
            "void f(void) { int n = getchar();\n"
            "while (n) { char *p = malloc(8);\n"
            "if (p) { free(p); }\n"
            "n = getchar(); }\n"
            "}",
            "f",
            lattice,
        )
        assert out == []


class TestReportShape:
    def test_report_carries_evidence_for_suggestions(self, lattice):
        program = Program.from_source(
            PROTOS
            + "int f(void) { char *p = malloc(8);\n"
            "if (!p) return -1;\n"
            "free(p); return 0; }",
            filename="t.c",
        )
        lowered = lower_function(program.functions["f"], lattice)
        report = analyze_lowered(lowered, lattice)
        assert report.function.name == "f"
        assert "p" in report.evidence
        ev = report.evidence["p"]
        assert ev.qualifier == "alloc"
        assert ev.path_length >= 1 and ev.fan_in >= 1

    def test_flow_steps_carry_spans(self, lattice):
        out = findings(
            "void f(void) { char *p = malloc(8); free(p); free(p); }",
            "f",
            lattice,
        )
        bug = next(fnd for fnd in out if fnd.kind == DOUBLE_FREE)
        for step in bug.flow:
            assert step.file == "t.c"
            assert step.note
