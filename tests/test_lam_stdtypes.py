"""Unit tests for standard (unqualified) type inference — the substrate
of the Section 3.1 factorisation."""

import pytest

from repro.lam.ast import IntLit, Lam, Var, walk
from repro.lam.parser import parse
from repro.lam.stdtypes import StdTypeError, infer_std
from repro.qual.qtypes import (
    STD_INT,
    STD_UNIT,
    StdCon,
    StdVar,
    std_fun,
    std_ref,
)


class TestBasics:
    def test_int(self):
        assert infer_std(parse("42")).type == STD_INT

    def test_unit(self):
        assert infer_std(parse("()")).type == STD_UNIT

    def test_identity_polymorphic_shape(self):
        t = infer_std(parse("fn x. x")).type
        assert isinstance(t, StdCon)
        dom, rng = t.args
        assert dom == rng and isinstance(dom, StdVar)

    def test_application(self):
        assert infer_std(parse("(fn x. x) 1")).type == STD_INT

    def test_if_unifies_branches(self):
        assert infer_std(parse("if 1 then 2 else 3 fi")).type == STD_INT

    def test_let(self):
        assert infer_std(parse("let x = 1 in x ni")).type == STD_INT

    def test_env(self):
        assert infer_std(parse("f 1"), {"f": std_fun(STD_INT, STD_UNIT)}).type == STD_UNIT


class TestRefs:
    def test_ref(self):
        assert infer_std(parse("ref 1")).type == std_ref(STD_INT)

    def test_deref(self):
        assert infer_std(parse("!(ref 1)")).type == STD_INT

    def test_assign(self):
        assert infer_std(parse("let r = ref 1 in (r := 2) ni")).type == STD_UNIT

    def test_assign_type_mismatch(self):
        with pytest.raises(StdTypeError):
            infer_std(parse("let r = ref 1 in (r := ()) ni"))

    def test_aliasing_shapes_agree(self):
        t = infer_std(parse("let r = ref (fn x. x) in !r ni")).type
        assert isinstance(t, StdCon) and t.con.name == "->"


class TestAnnotationsTransparent:
    def test_annotation_does_not_change_type(self):
        assert infer_std(parse("{const} 1")).type == STD_INT

    def test_assertion_does_not_change_type(self):
        assert infer_std(parse("(ref 1)|{const}")).type == std_ref(STD_INT)


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(StdTypeError):
            infer_std(parse("x"))

    def test_apply_non_function(self):
        with pytest.raises(StdTypeError):
            infer_std(parse("1 2"))

    def test_if_branch_mismatch(self):
        with pytest.raises(StdTypeError):
            infer_std(parse("if 1 then 2 else () fi"))

    def test_if_guard_not_int(self):
        with pytest.raises(StdTypeError):
            infer_std(parse("if () then 1 else 2 fi"))

    def test_occurs_check(self):
        with pytest.raises(StdTypeError):
            infer_std(parse("fn x. x x"))

    def test_deref_non_ref(self):
        with pytest.raises(StdTypeError):
            infer_std(parse("!1"))

    def test_error_mentions_location(self):
        with pytest.raises(StdTypeError) as err:
            infer_std(parse("let f = fn x. x in\n!()\nni"))
        assert "2:" in str(err.value)


class TestNodeTypes:
    def test_every_node_typed(self):
        expr = parse("let r = ref 1 in if !r then (r := 2) else () fi ni")
        result = infer_std(expr)
        for node in walk(expr):
            assert id(node) in result.node_types

    def test_node_types_resolved(self):
        expr = parse("(fn x. x) 1")
        result = infer_std(expr)
        lam = expr.func  # type: ignore[attr-defined]
        assert result.node_types[id(lam)] == std_fun(STD_INT, STD_INT)

    def test_lambda_param_flows(self):
        expr = parse("fn x. !x")
        result = infer_std(expr)
        t = result.type
        dom, rng = t.args  # type: ignore[union-attr]
        assert dom == std_ref(rng)


class TestStoreTyping:
    def test_loc_typed_through_store_env(self):
        from repro.lam.ast import Deref, Loc

        expr = Deref(Loc(0))
        result = infer_std(expr, store_env={0: STD_INT})
        assert result.type == STD_INT

    def test_unknown_loc_rejected(self):
        from repro.lam.ast import Loc

        with pytest.raises(StdTypeError):
            infer_std(Loc(3))
