"""Wire-protocol tests for ``repro.serve``: the request-parsing ladder,
canonical encoding, golden request/response transcripts, and the
malformed-input contract (every failure is a JSON-RPC error response —
the loop never crashes)."""

import io
import json

import pytest

from repro.serve import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    ProtocolError,
    Server,
    Session,
    encode,
    parse_request,
)


@pytest.fixture
def server(tmp_path):
    session = Session(cache_dir=str(tmp_path / "cache"))
    yield Server(session)
    session.close()


# -- parse_request ladder -------------------------------------------------


def test_parse_valid_request():
    req = parse_request('{"jsonrpc":"2.0","id":7,"method":"stats","params":{"a":1}}')
    assert req.method == "stats"
    assert req.params == {"a": 1}
    assert req.id == 7
    assert not req.is_notification


def test_parse_defaults_params_to_empty_dict():
    req = parse_request('{"jsonrpc":"2.0","id":1,"method":"ping"}')
    assert req.params == {}


def test_missing_id_is_a_notification():
    req = parse_request('{"jsonrpc":"2.0","method":"didChange","params":{}}')
    assert req.is_notification
    # An explicit null id is NOT a notification, per JSON-RPC 2.0.
    req = parse_request('{"jsonrpc":"2.0","id":null,"method":"ping"}')
    assert not req.is_notification


def test_not_json_raises_parse_error():
    with pytest.raises(ProtocolError) as exc:
        parse_request("this is not json")
    assert exc.value.code == PARSE_ERROR


def test_non_object_raises_invalid_request():
    for line in ("[1,2,3]", '"hello"', "42"):
        with pytest.raises(ProtocolError) as exc:
            parse_request(line)
        assert exc.value.code == INVALID_REQUEST


def test_wrong_jsonrpc_version_rejected():
    with pytest.raises(ProtocolError) as exc:
        parse_request('{"jsonrpc":"1.0","id":3,"method":"ping"}')
    assert exc.value.code == INVALID_REQUEST
    assert exc.value.request_id == 3  # id recovered for the error response


def test_missing_or_empty_method_rejected():
    for line in (
        '{"jsonrpc":"2.0","id":1}',
        '{"jsonrpc":"2.0","id":1,"method":""}',
        '{"jsonrpc":"2.0","id":1,"method":5}',
    ):
        with pytest.raises(ProtocolError) as exc:
            parse_request(line)
        assert exc.value.code == INVALID_REQUEST


def test_non_object_params_rejected():
    with pytest.raises(ProtocolError) as exc:
        parse_request('{"jsonrpc":"2.0","id":1,"method":"ping","params":[1]}')
    assert exc.value.code == INVALID_PARAMS


# -- canonical encoding ---------------------------------------------------


def test_encode_is_canonical():
    line = encode({"b": 1, "a": {"z": True, "m": None}})
    assert line == '{"a":{"m":null,"z":true},"b":1}\n'


# -- golden transcripts ---------------------------------------------------
# Deterministic request/response pairs compared byte-for-byte: the
# canonical encoding makes whole lines stable.

GOLDEN = [
    (
        '{"jsonrpc":"2.0","id":1,"method":"ping"}',
        '{"id":1,"jsonrpc":"2.0","result":{"pong":true}}\n',
    ),
    (
        '{"jsonrpc":"2.0","id":"abc","method":"nosuch"}',
        '{"error":{"code":-32601,"message":"unknown method \'nosuch\'"},'
        '"id":"abc","jsonrpc":"2.0"}\n',
    ),
    (
        '{"jsonrpc":"2.0","id":2,"method":"didChange",'
        '"params":{"file":"a.c","text":"int x;\\n"}}',
        '{"id":2,"jsonrpc":"2.0","result":{"file":"a.c","ok":true,'
        '"overlay":true,"version":1}}\n',
    ),
    (
        '{"jsonrpc":"2.0","id":3,"method":"didChange","params":{"file":"a.c"}}',
        '{"id":3,"jsonrpc":"2.0","result":{"file":"a.c","ok":true,'
        '"overlay":false,"version":2}}\n',
    ),
    (
        '{"jsonrpc":"2.0","id":4,"method":"analyze","params":{}}',
        '{"error":{"code":-32602,"message":"analyze needs \'paths\': '
        'a non-empty list of strings"},"id":4,"jsonrpc":"2.0"}\n',
    ),
    (
        '{"jsonrpc":"2.0","id":5,"method":"shutdown"}',
        '{"id":5,"jsonrpc":"2.0","result":{"ok":true}}\n',
    ),
]


def test_golden_transcript(server):
    for request_line, expected in GOLDEN:
        assert server.handle_line(request_line) == expected
    assert server.shutting_down


# -- malformed input never crashes the loop -------------------------------


def test_malformed_lines_yield_errors_not_crashes(server):
    cases = {
        "{not json": PARSE_ERROR,
        "[]": INVALID_REQUEST,
        '{"jsonrpc":"2.0","id":1}': INVALID_REQUEST,
        '{"jsonrpc":"2.0","id":1,"method":"ping","params":"x"}': INVALID_PARAMS,
        '{"jsonrpc":"2.0","id":1,"method":"bogus"}': METHOD_NOT_FOUND,
        '{"jsonrpc":"2.0","id":1,"method":"analyze","params":{"paths":[]}}': INVALID_PARAMS,
        '{"jsonrpc":"2.0","id":1,"method":"analyze",'
        '"params":{"paths":["x.c"],"format":"xml"}}': INVALID_PARAMS,
        '{"jsonrpc":"2.0","id":1,"method":"analyze",'
        '"params":{"paths":["x.c"],"checks":["nope"]}}': INVALID_PARAMS,
        '{"jsonrpc":"2.0","id":1,"method":"didChange","params":{}}': INVALID_PARAMS,
    }
    for line, code in cases.items():
        response = json.loads(server.handle_line(line))
        assert response["error"]["code"] == code, line
    # ...and the loop is still alive.
    assert server.handle_line('{"jsonrpc":"2.0","id":9,"method":"ping"}') == (
        '{"id":9,"jsonrpc":"2.0","result":{"pong":true}}\n'
    )
    assert server.session.error_count == len(cases)


def test_handler_exception_becomes_internal_error(server):
    def boom(params):
        raise RuntimeError("kaboom")

    server.handlers["boom"] = boom
    response = json.loads(server.handle_line('{"jsonrpc":"2.0","id":1,"method":"boom"}'))
    assert response["error"]["code"] == INTERNAL_ERROR
    assert "kaboom" in response["error"]["message"]
    # Still serving afterwards.
    assert json.loads(server.handle_line('{"jsonrpc":"2.0","id":2,"method":"ping"}'))[
        "result"
    ] == {"pong": True}


def test_notifications_get_no_response(server):
    assert server.handle_line('{"jsonrpc":"2.0","method":"ping"}') is None
    assert (
        server.handle_line('{"jsonrpc":"2.0","method":"didChange","params":{"file":"a.c","text":"x"}}')
        is None
    )
    # The notification still took effect.
    assert server.session.overlay["a.c"] == "x"
    # Unknown-method and bad-params notifications are silently dropped...
    assert server.handle_line('{"jsonrpc":"2.0","method":"nosuch"}') is None
    assert server.handle_line('{"jsonrpc":"2.0","method":"didChange","params":{}}') is None
    # ...but unparseable lines answer with id null (sender intent unknowable).
    response = json.loads(server.handle_line("garbage"))
    assert response["id"] is None
    assert response["error"]["code"] == PARSE_ERROR


def test_blank_lines_ignored(server):
    assert server.handle_line("") is None
    assert server.handle_line("   \n") is None


# -- stream pump ----------------------------------------------------------


def test_serve_stream_until_shutdown(server):
    reader = io.StringIO(
        '{"jsonrpc":"2.0","id":1,"method":"ping"}\n'
        "\n"
        '{"jsonrpc":"2.0","id":2,"method":"shutdown"}\n'
        '{"jsonrpc":"2.0","id":3,"method":"ping"}\n'  # after shutdown: unread
    )
    writer = io.StringIO()
    assert server.serve_stream(reader, writer) == 0
    lines = writer.getvalue().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["result"] == {"pong": True}
    assert json.loads(lines[1])["result"] == {"ok": True}


def test_serve_stream_stops_at_eof(server):
    writer = io.StringIO()
    server.serve_stream(io.StringIO('{"jsonrpc":"2.0","id":1,"method":"ping"}\n'), writer)
    assert not server.shutting_down
    assert len(writer.getvalue().splitlines()) == 1
