"""Shared fixtures for the test suite."""

import pytest

from repro.qual.qualifiers import (
    binding_time_lattice,
    const_lattice,
    const_nonzero_lattice,
    paper_figure2_lattice,
)


@pytest.fixture
def const_lat():
    return const_lattice()


@pytest.fixture
def cn_lat():
    return const_nonzero_lattice()


@pytest.fixture
def fig2_lat():
    return paper_figure2_lattice()


@pytest.fixture
def bt_lat():
    return binding_time_lattice()
