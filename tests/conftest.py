"""Shared fixtures for the test suite.

Randomness policy: every source of randomness in the suite is routed
through the ``PYTEST_SEED`` environment variable so any run — local or
CI — is reproducible from its logs.  The default seed is 0; a failing
seeded run is replayed with e.g. ``PYTEST_SEED=1234 pytest ...``.

* the stdlib ``random`` module is reseeded once at session start;
* tests that want their own generator use the ``seeded_rng`` fixture
  (a fresh ``random.Random`` per test, derived from the session seed and
  the test's node id, so tests stay independent of execution order);
* hypothesis runs under a registered ``seeded`` profile with
  ``derandomize=True``: example generation is a pure function of the
  test, never of wall clock or process state.
"""

import hashlib
import os
import random

import pytest


def _session_seed() -> int:
    raw = os.environ.get("PYTEST_SEED", "0")
    try:
        return int(raw)
    except ValueError:
        # Accept arbitrary strings ("release-2026-08") by hashing.
        return int.from_bytes(hashlib.sha256(raw.encode()).digest()[:8], "big")


SESSION_SEED = _session_seed()

try:
    from hypothesis import settings

    settings.register_profile("seeded", derandomize=True)
    settings.load_profile("seeded")
except ImportError:  # pragma: no cover - hypothesis is a tier-1 dep
    pass


def pytest_configure(config):
    random.seed(SESSION_SEED)


def pytest_report_header(config):
    return f"randomness: PYTEST_SEED={SESSION_SEED}"


@pytest.fixture(scope="session")
def session_seed() -> int:
    """The suite-wide seed (set ``PYTEST_SEED`` to change it)."""
    return SESSION_SEED


@pytest.fixture
def seeded_rng(request, session_seed) -> random.Random:
    """A per-test ``random.Random``, stable across runs and independent
    of test execution order."""
    digest = hashlib.sha256(
        f"{session_seed}:{request.node.nodeid}".encode()
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


# ---------------------------------------------------------------------------
# Lattice fixtures
# ---------------------------------------------------------------------------

from repro.qual.qualifiers import (  # noqa: E402
    binding_time_lattice,
    const_lattice,
    const_nonzero_lattice,
    paper_figure2_lattice,
)


@pytest.fixture
def const_lat():
    return const_lattice()


@pytest.fixture
def cn_lat():
    return const_nonzero_lattice()


@pytest.fixture
def fig2_lat():
    return paper_figure2_lattice()


@pytest.fixture
def bt_lat():
    return binding_time_lattice()
