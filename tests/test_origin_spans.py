"""Regression tests for span-carrying constraint origins: every blame
step in :meth:`UnsatisfiableError.explain` should render a clickable
``file:line:col`` location, and origins produced by the C front end
should carry the real filename threaded through from the token stream.
"""

import re

import pytest

from repro.cfront.sema import Program
from repro.qual.constraints import Origin
from repro.qual.solver import UnsatisfiableError, solve

CLICKABLE = re.compile(r"[\w./<>-]+\.c:\d+:\d+")


class TestOriginSpans:
    def test_location_full_span(self):
        origin = Origin("assignment", filename="a.c", line=4, column=9)
        assert origin.location() == "a.c:4:9"
        assert origin.has_span
        assert str(origin) == "assignment at a.c:4:9"

    def test_location_degrades_gracefully(self):
        assert Origin("x", filename="a.c", line=7).location() == "a.c:7"
        assert Origin("x", filename="a.c").location() == "a.c"
        assert Origin("x", line=3).location() is None
        assert not Origin("x", line=3).has_span
        assert str(Origin("x", line=3)) == "x at line 3"
        assert str(Origin("x")) == "x"


def const_conflict(source, filename):
    """Generate constraints for ``source`` and return the solver error."""
    from repro.constinfer.analysis import ConstInference
    from repro.constinfer.engine import _create_shared_cells

    program = Program.from_source(source, filename=filename)
    inference = ConstInference(program)
    _create_shared_cells(inference)
    for function in program.functions.values():
        inference.signature_for(function)
    for function in program.functions.values():
        inference.analyze_function(function)
    inference.analyze_global_initializers()
    with pytest.raises(UnsatisfiableError) as err:
        solve(list(inference.constraints), inference.lattice)
    return err.value


class TestExplainIsClickable:
    SOURCE = "void bad(const int *p) {\n    *p = 1;\n}\n"

    def test_every_step_carries_a_span(self):
        exc = const_conflict(self.SOURCE, "bad.c")
        assert exc.path
        for step in exc.path:
            assert step.origin.has_span, f"no span on: {step.origin.reason}"
            assert step.origin.filename == "bad.c"

    def test_explain_renders_file_line_col(self):
        text = const_conflict(self.SOURCE, "bad.c").explain()
        spans = CLICKABLE.findall(text)
        assert spans, f"no clickable span in:\n{text}"
        assert any(s.startswith("bad.c:2:") for s in spans)  # the write

    def test_cross_function_blame_spans_both_sites(self):
        source = (
            "void writer(int *q) { *q = 1; }\n"
            "void entry(const int *p) { writer(p); }\n"
        )
        exc = const_conflict(source, "x.c")
        lines = {step.origin.line for step in exc.path if step.origin.has_span}
        # blame touches both the write (line 1) and the call (line 2)
        assert {1, 2} <= lines
