"""Unit tests for the C lexer."""

import pytest

from repro.cfront.clexer import (
    CLexError,
    CTokenKind,
    parse_char_constant,
    parse_int_constant,
    tokenize_c,
)


def kinds(source):
    return [(t.kind, t.text) for t in tokenize_c(source) if t.kind is not CTokenKind.EOF]


class TestBasics:
    def test_keywords_and_idents(self):
        out = kinds("int x const constant")
        assert out == [
            (CTokenKind.KEYWORD, "int"),
            (CTokenKind.IDENT, "x"),
            (CTokenKind.KEYWORD, "const"),
            (CTokenKind.IDENT, "constant"),
        ]

    def test_integer_forms(self):
        out = kinds("42 0x1F 017 10L 3U")
        assert all(k is CTokenKind.INT_CONST for k, _ in out)

    def test_float_forms(self):
        out = kinds("3.14 1e9 2.5f .5")
        assert all(k is CTokenKind.FLOAT_CONST for k, _ in out)

    def test_char_and_string(self):
        out = kinds(r"'a' '\n' \"hi\\tthere\"".replace("\\\"", '"'))
        assert out[0][0] is CTokenKind.CHAR_CONST
        assert out[1][0] is CTokenKind.CHAR_CONST

    def test_string_literal(self):
        out = kinds('"hello world"')
        assert out == [(CTokenKind.STRING, '"hello world"')]


class TestOperators:
    def test_multichar_longest_match(self):
        out = [t for _, t in kinds("a <<= b >> c -> d ... e")]
        assert "<<=" in out and ">>" in out and "->" in out and "..." in out

    def test_increment_vs_plus(self):
        out = [t for _, t in kinds("a++ + ++b")]
        assert out == ["a", "++", "+", "++", "b"]

    def test_all_assign_ops(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]:
            toks = kinds(f"a {op} b")
            assert toks[1][1] == op


class TestCommentsAndPreprocessor:
    def test_line_comment(self):
        assert [t for _, t in kinds("a // comment\nb")] == ["a", "b"]

    def test_block_comment(self):
        assert [t for _, t in kinds("a /* x\ny */ b")] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CLexError):
            tokenize_c("/* never closed")

    def test_preprocessor_lines_skipped(self):
        src = "#include <stdio.h>\n#define X 1\nint x;"
        assert [t for _, t in kinds(src)] == ["int", "x", ";"]

    def test_hash_mid_line_is_error(self):
        with pytest.raises(CLexError):
            tokenize_c("int x # y;")

    def test_line_continuation_in_directive(self):
        src = "#define M(a) \\\n  (a)\nint y;"
        assert [t for _, t in kinds(src)] == ["int", "y", ";"]


class TestPositions:
    def test_line_column_tracking(self):
        toks = tokenize_c("int\n  x;")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(CLexError) as err:
            tokenize_c("int x;\n  @")
        assert err.value.line == 2


class TestConstantParsing:
    def test_int_decimal(self):
        assert parse_int_constant("42") == 42

    def test_int_hex(self):
        assert parse_int_constant("0x1F") == 31

    def test_int_octal(self):
        assert parse_int_constant("017") == 15

    def test_int_suffixes(self):
        assert parse_int_constant("10UL") == 10

    def test_zero(self):
        assert parse_int_constant("0") == 0

    def test_char_plain(self):
        assert parse_char_constant("'a'") == ord("a")

    def test_char_escapes(self):
        assert parse_char_constant(r"'\n'") == 10
        assert parse_char_constant(r"'\0'") == 0
        assert parse_char_constant(r"'\\'") == ord("\\")

    def test_char_hex_escape(self):
        assert parse_char_constant(r"'\x41'") == 65

    def test_char_bad(self):
        with pytest.raises(ValueError):
            parse_char_constant("'ab'")
