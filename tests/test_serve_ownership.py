"""Daemon staleness across ownership-summary edits: a ``didChange`` on
the translation unit that *defines* a helper must re-link its dependents
before the next whole-program ``analyze``/``suggest`` is served — the
good → edit-ownership → fixed cycle round-trips as a golden transcript,
and the daemon's whole-program suggest stays byte-identical to the CLI
over the same overlay-free tree."""

import json

import pytest

from repro.checker.checks import ALL_CHECKS
from repro.serve import Server, Session

ALL_NAMES = tuple(c.name for c in ALL_CHECKS)

PROTOS = (
    "void *malloc(unsigned long size);\n"
    "void free(void *ptr);\n"
    "unsigned long strlen(const char *s);\n"
)

#: give() borrows: the caller's explicit free balances the allocation.
HELPER_BORROWS = PROTOS + (
    "unsigned long give(char *p) {\n"
    "    return strlen(p);\n"
    "}\n"
)
#: give() frees: the caller's explicit free is now a double-free.
HELPER_FREES = PROTOS + (
    "unsigned long give(char *p) {\n"
    "    free(p);\n"
    "    return 0;\n"
    "}\n"
)
CALLER = PROTOS + (
    "unsigned long give(char *p);\n"
    "void run(void) {\n"
    "    char *b = malloc(8);\n"
    "    if (!b)\n"
    "        return;\n"
    "    give(b);\n"
    "    free(b);\n"
    "}\n"
)


@pytest.fixture
def corpus(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "helper.c").write_text(HELPER_BORROWS)
    (tmp_path / "src" / "caller.c").write_text(CALLER)
    return tmp_path


@pytest.fixture
def session(corpus):
    s = Session(checks=ALL_NAMES, cache_dir=str(corpus / "cache"))
    yield s
    s.close()


def pack_checks(result):
    report = json.loads(result["report"])
    return sorted(d["check"] for d in report["diagnostics"])


def test_ownership_edit_is_visible_to_next_whole_analyze(session, corpus):
    src = str(corpus / "src")
    helper = str(corpus / "src" / "helper.c")

    clean = session.analyze({"paths": [src], "whole_program": True})
    assert pack_checks(clean) == []

    # The edit changes only helper.c, but it flips give()'s summary
    # from borrows to frees — caller.c must be re-linked against it.
    out = session.did_change({"file": helper, "text": HELPER_FREES})
    assert str(corpus / "src" / "caller.c") in out["invalidated_units"]

    broken = session.analyze({"paths": [src], "whole_program": True})
    assert pack_checks(broken) == ["double-free"]

    session.did_change({"file": helper, "text": None})
    fixed = session.analyze({"paths": [src], "whole_program": True})
    assert pack_checks(fixed) == []


def test_ownership_edit_is_visible_to_next_whole_suggest(session, corpus):
    src = str(corpus / "src")
    helper = str(corpus / "src" / "helper.c")

    before = session.suggest({"paths": [src], "whole_program": True, "format": "json"})
    session.did_change({"file": helper, "text": HELPER_FREES})
    after = session.suggest({"paths": [src], "whole_program": True, "format": "json"})
    # The overlay edit reaches the linked program: the helper's own
    # suggestions move (its parameter is now freed, not borrowed).
    assert before["report"] != after["report"]
    assert before["errors"] == after["errors"] == {}


def test_whole_suggest_sees_summaries_per_file_does_not(session, corpus):
    src = str(corpus / "src")
    flat = session.suggest({"paths": [src], "format": "json"})
    whole = session.suggest({"paths": [src], "whole_program": True, "format": "json"})

    def confidence(result, name):
        for s in result["suggestions"]:
            if s["name"] == name and s["qualifier"] == "alloc":
                return s["confidence"]
        return None

    flat_b = confidence(flat, "b")
    whole_b = confidence(whole, "b")
    assert flat_b is not None and whole_b is not None
    # Per-file, give() is an unknown callee and counts as an escape;
    # whole-program its borrows summary lifts the discount.
    assert whole_b > flat_b


def test_golden_transcript_good_edit_ownership_fixed(corpus):
    session = Session(checks=ALL_NAMES, cache_dir=str(corpus / "cache"))
    server = Server(session)
    src = str(corpus / "src")
    helper = str(corpus / "src" / "helper.c")

    def req(i, method, **params):
        return json.dumps(
            {"jsonrpc": "2.0", "id": i, "method": method, "params": params},
            sort_keys=True,
        )

    try:
        # 1. Whole-program analyze: the balanced hand-off is clean.
        response = json.loads(
            server.handle_line(req(1, "analyze", paths=[src], whole_program=True))
        )
        assert response["result"]["exit_code"] == 0
        assert pack_checks(response["result"]) == []

        # 2. Ownership edit: helper.c's summary flips to frees; the
        #    response names the dependent caller unit as invalidated.
        response = json.loads(
            server.handle_line(req(2, "didChange", file=helper, text=HELPER_FREES))
        )
        result = response["result"]
        assert result["ok"] is True
        assert "parse_diagnostics" not in result
        assert str(corpus / "src" / "caller.c") in result["invalidated_units"]

        # 3. The next analyze serves re-linked facts, not stale ones.
        response = json.loads(
            server.handle_line(req(3, "analyze", paths=[src], whole_program=True))
        )
        assert response["result"]["exit_code"] == 1
        assert pack_checks(response["result"]) == ["double-free"]

        # 4. Revert: clean again, byte-identical to step 1's report.
        server.handle_line(req(4, "didChange", file=helper, text=None))
        response = json.loads(
            server.handle_line(req(5, "analyze", paths=[src], whole_program=True))
        )
        assert response["result"]["exit_code"] == 0
        assert pack_checks(response["result"]) == []
    finally:
        session.close()
