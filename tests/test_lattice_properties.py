"""Property-based tests: the qualifier lattice really is a lattice.

Definition 2 builds L as a product of two-point lattices; these tests
verify the order-theoretic laws hold for arbitrary elements of arbitrary
small qualifier sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qual.lattice import QualifierLattice, negative, positive

_NAMES = ["const", "dynamic", "nonzero", "nonnull", "tainted"]


@st.composite
def lattices(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    names = _NAMES[:count]
    quals = []
    for name in names:
        if draw(st.booleans()):
            quals.append(positive(name))
        else:
            quals.append(negative(name))
    return QualifierLattice(quals)


@st.composite
def lattice_and_elements(draw, count=3):
    lattice = draw(lattices())
    elements = []
    for _ in range(count):
        present = [
            q.name for q in lattice.qualifiers if draw(st.booleans())
        ]
        elements.append(lattice.element(*present))
    return lattice, elements


@given(lattice_and_elements())
def test_meet_commutative(data):
    lat, (a, b, _) = data
    assert lat.meet(a, b) == lat.meet(b, a)


@given(lattice_and_elements())
def test_join_commutative(data):
    lat, (a, b, _) = data
    assert lat.join(a, b) == lat.join(b, a)


@given(lattice_and_elements())
def test_meet_associative(data):
    lat, (a, b, c) = data
    assert lat.meet(lat.meet(a, b), c) == lat.meet(a, lat.meet(b, c))


@given(lattice_and_elements())
def test_join_associative(data):
    lat, (a, b, c) = data
    assert lat.join(lat.join(a, b), c) == lat.join(a, lat.join(b, c))


@given(lattice_and_elements())
def test_idempotent(data):
    lat, (a, _, _) = data
    assert lat.meet(a, a) == a
    assert lat.join(a, a) == a


@given(lattice_and_elements())
def test_absorption(data):
    lat, (a, b, _) = data
    assert lat.meet(a, lat.join(a, b)) == a
    assert lat.join(a, lat.meet(a, b)) == a


@given(lattice_and_elements())
def test_order_agrees_with_meet_and_join(data):
    lat, (a, b, _) = data
    assert lat.leq(a, b) == (lat.meet(a, b) == a)
    assert lat.leq(a, b) == (lat.join(a, b) == b)


@given(lattice_and_elements())
def test_meet_is_lower_bound(data):
    lat, (a, b, _) = data
    m = lat.meet(a, b)
    assert lat.leq(m, a) and lat.leq(m, b)


@given(lattice_and_elements())
def test_join_is_upper_bound(data):
    lat, (a, b, _) = data
    j = lat.join(a, b)
    assert lat.leq(a, j) and lat.leq(b, j)


@given(lattice_and_elements())
def test_meet_is_greatest_lower_bound(data):
    lat, (a, b, c) = data
    if lat.leq(c, a) and lat.leq(c, b):
        assert lat.leq(c, lat.meet(a, b))


@given(lattice_and_elements())
def test_join_is_least_upper_bound(data):
    lat, (a, b, c) = data
    if lat.leq(a, c) and lat.leq(b, c):
        assert lat.leq(lat.join(a, b), c)


@given(lattice_and_elements())
def test_antisymmetry(data):
    lat, (a, b, _) = data
    if lat.leq(a, b) and lat.leq(b, a):
        assert a == b


@given(lattice_and_elements())
def test_transitivity(data):
    lat, (a, b, c) = data
    if lat.leq(a, b) and lat.leq(b, c):
        assert lat.leq(a, c)


@given(lattices())
@settings(max_examples=50)
def test_bounds(lat):
    for e in lat.elements():
        assert lat.leq(lat.bottom, e)
        assert lat.leq(e, lat.top)


@given(lattices())
@settings(max_examples=50)
def test_negate_is_extremal_lacking_element(lat):
    """negate(q) is the maximal (positive q) / minimal (negative q)
    element on which q is absent."""
    for q in lat.qualifiers:
        n = lat.negate(q.name)
        assert not n.has(q.name)
        lacking = [e for e in lat.elements() if not e.has(q.name)]
        if q.positive:
            assert all(lat.leq(e, n) for e in lacking)
        else:
            assert all(lat.leq(n, e) for e in lacking)


@given(lattices())
@settings(max_examples=50)
def test_assertion_bound_characterisation(lat):
    """e <= assertion_bound(q) holds iff e satisfies q's restrictive
    reading (absent for positive q, present for negative q)."""
    for q in lat.qualifiers:
        bound = lat.assertion_bound(q.name)
        for e in lat.elements():
            holds = lat.leq(e, bound)
            if q.positive:
                assert holds == (not e.has(q.name))
            else:
                assert holds == e.has(q.name)
