"""Tests for the two command-line drivers (quals-lam, quals-const)."""

import pytest

from repro.constinfer.cli import main as const_main
from repro.lam.cli import main as lam_main


@pytest.fixture
def lam_file(tmp_path):
    path = tmp_path / "prog.lam"
    path.write_text("let r = ref 10 in let u = (r := 32) in !r ni ni\n")
    return str(path)


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "mod.c"
    path.write_text(
        """
        int peek(int *p) { return *p; }
        void poke(int *q) { *q = 1; }
        int *id(int *x) { return x; }
        void use(void) { int v; *id(&v) = 2; }
        """
    )
    return str(path)


class TestLamCli:
    def test_check(self, lam_file, capsys):
        assert lam_main(["check", lam_file]) == 0
        out = capsys.readouterr().out
        assert "type:" in out and "constraints:" in out

    def test_check_poly_prints_schemes(self, tmp_path, capsys):
        path = tmp_path / "poly.lam"
        path.write_text("let id = fn x. x in id (ref 1) ni\n")
        assert lam_main(["check", "--poly", str(path)]) == 0
        assert "forall" in capsys.readouterr().out

    def test_check_rejects_bad_program(self, tmp_path, capsys):
        path = tmp_path / "bad.lam"
        path.write_text("let r = {const} ref 1 in r := 2 ni\n")
        assert lam_main(["check", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_run(self, lam_file, capsys):
        assert lam_main(["run", lam_file]) == 0
        out = capsys.readouterr().out
        assert "32" in out

    def test_trace(self, lam_file, capsys):
        assert lam_main(["trace", lam_file]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") > 3

    def test_derive(self, lam_file, capsys):
        assert lam_main(["derive", lam_file]) == 0
        out = capsys.readouterr().out
        assert "(Let)" in out and "(Assign')" in out

    def test_derive_rejects_ill_typed(self, tmp_path, capsys):
        path = tmp_path / "bad.lam"
        path.write_text("let r = {const} ref 1 in r := 2 ni\n")
        assert lam_main(["derive", str(path)]) == 1

    def test_qualifier_selection(self, tmp_path, capsys):
        path = tmp_path / "nz.lam"
        path.write_text("({nonzero} 1)|{nonzero}\n")
        assert lam_main(["check", "--qualifiers", "nonzero", str(path)]) == 0

    def test_unknown_qualifier(self, lam_file, capsys):
        assert lam_main(["check", "--qualifiers", "bogus", lam_file]) == 2

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "syntax.lam"
        path.write_text("let x = in\n")
        assert lam_main(["check", str(path)]) == 1

    def test_stuck_program(self, tmp_path, capsys):
        path = tmp_path / "stuck.lam"
        path.write_text("x\n")
        assert lam_main(["run", str(path)]) == 1
        assert "stuck" in capsys.readouterr().err


class TestConstCli:
    def test_report(self, c_file, capsys):
        assert const_main(["report", c_file]) == 0
        out = capsys.readouterr().out
        assert "peek" in out and "must NOT be const" in out

    def test_report_poly(self, c_file, capsys):
        assert const_main(["report", c_file, "--poly"]) == 0
        out = capsys.readouterr().out
        assert "poly const inference" in out

    def test_report_limit(self, c_file, capsys):
        assert const_main(["report", c_file, "--limit", "1"]) == 0

    def test_report_polyrec_engine(self, c_file, capsys):
        assert const_main(["report", c_file, "--engine", "polyrec"]) == 0
        out = capsys.readouterr().out
        assert "polyrec const inference" in out

    def test_engine_overrides_poly_flag(self, c_file, capsys):
        assert const_main(["report", c_file, "--poly", "--engine", "mono"]) == 0
        assert "mono const inference" in capsys.readouterr().out

    def test_table(self, c_file, capsys):
        assert const_main(["table", c_file]) == 0
        out = capsys.readouterr().out
        assert "Declared" in out

    def test_annotate(self, c_file, capsys):
        assert const_main(["annotate", c_file]) == 0
        out = capsys.readouterr().out
        assert "const int *p" in out

    def test_annotate_single_file_only(self, c_file, capsys):
        assert const_main(["annotate", c_file, c_file]) == 2

    def test_no_files(self, capsys):
        assert const_main(["report"]) == 2
