"""Daemon resilience to broken edits: a ``didChange`` that introduces a
syntax error must not drop resident state — the response carries parse
diagnostics plus the file's last-good findings, clean edits stay
byte-identical to the pre-recovery protocol, and a good → broken →
fixed cycle round-trips as a golden transcript."""

import json

import pytest

from repro.serve import Server, Session

GOOD = (
    "int printf(const char *fmt, ...);\n"
    "char *getenv(const char *name);\n"
    'void greet(void) { printf(getenv("NAME")); }\n'
)
BROKEN = (
    "int printf(const char *fmt, ...);\n"
    "char *getenv(const char *name);\n"
    "void greet(void) { printf(getenv(\n"
)
FIXED = GOOD


@pytest.fixture
def corpus(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "a.c").write_text(GOOD)
    return tmp_path


@pytest.fixture
def session(corpus):
    s = Session(cache_dir=str(corpus / "cache"))
    yield s
    s.close()


def findings(result):
    return json.loads(result["report"])["diagnostics"]


# -- session-level semantics ----------------------------------------------


def test_clean_edit_response_shape_unchanged(session, corpus):
    target = str(corpus / "src" / "a.c")
    out = session.did_change({"file": target, "text": GOOD + "\n"})
    # Exactly the pre-recovery keys: clean edits look exactly as before.
    assert set(out) == {"ok", "file", "version", "overlay"}


def test_broken_edit_reports_diagnostics_and_last_good(session, corpus):
    target = str(corpus / "src" / "a.c")
    analyzed = session.analyze({"paths": [target]})
    good_findings = findings(analyzed)
    assert [d["check"] for d in good_findings] == ["tainted-format"]

    out = session.did_change({"file": target, "text": BROKEN})
    assert out["ok"] is True  # the edit itself is accepted
    assert out["parse_diagnostics"], out
    diag = out["parse_diagnostics"][0]
    assert set(diag) == {"file", "line", "column", "severity", "message"}
    assert diag["severity"] == "error"
    # The resident findings from the last good analysis survive the break.
    assert out["last_good"] == good_findings


def test_last_good_empty_before_any_analysis(session, corpus):
    target = str(corpus / "src" / "a.c")
    out = session.did_change({"file": target, "text": BROKEN})
    assert out["parse_diagnostics"]
    assert out["last_good"] == []


def test_fixed_edit_clears_diagnostics(session, corpus):
    target = str(corpus / "src" / "a.c")
    session.analyze({"paths": [target]})
    session.did_change({"file": target, "text": BROKEN})
    out = session.did_change({"file": target, "text": FIXED})
    assert "parse_diagnostics" not in out
    assert "last_good" not in out
    assert [d["check"] for d in findings(session.analyze({"paths": [target]}))] == [
        "tainted-format"
    ]


def test_best_effort_analyze_reports_units(session, corpus):
    target = str(corpus / "src" / "a.c")
    session.did_change({"file": target, "text": BROKEN})
    out = session.analyze({"paths": [target], "best_effort": True})
    assert out["units"] == {target: "partial"}
    checks = [d["check"] for d in findings(out)]
    assert "parse-error" in checks
    # Strict analyze over the same broken overlay errors the unit instead.
    strict = session.analyze({"paths": [target]})
    assert target in strict["errors"]
    assert "units" not in strict


def test_whole_program_best_effort_links_around_broken_unit(session, corpus):
    broken = corpus / "src" / "b.c"
    broken.write_text("int helper(;\n")
    out = session.analyze(
        {"paths": [str(corpus / "src")], "whole_program": True, "best_effort": True}
    )
    assert out["units"][str(broken)] in ("partial", "skipped")
    assert str(corpus / "src" / "a.c") not in out["units"]  # the ok unit
    checks = [d["check"] for d in findings(out)]
    assert "parse-error" in checks
    assert "tainted-format" in checks  # the good unit still analysed


def test_analyze_include_paths_reach_daemon_preprocessor(session, corpus):
    include = corpus / "include"
    include.mkdir()
    (include / "api.h").write_text(
        "int printf(const char *fmt, ...);\n"
        "char *getenv(const char *name);\n"
    )
    target = corpus / "src" / "c.c"
    target.write_text(
        '#include "api.h"\n'
        'void greet(void) { printf(getenv("NAME")); }\n'
    )
    out = session.analyze(
        {
            "paths": [str(target)],
            "best_effort": True,
            "include_paths": [str(include)],
        }
    )
    # The header resolved: the unit is clean and the taint flow through
    # the included declarations is found.
    assert "units" not in out
    assert "tainted-format" in [d["check"] for d in findings(out)]
    # The search paths persist: a later didChange probe of header-using
    # text resolves includes the same way and stays diagnostic-free.
    probe = session.did_change({"file": str(target), "text": target.read_text()})
    assert "parse_diagnostics" not in probe


def test_analyze_include_paths_validated(session, corpus):
    from repro.serve.protocol import InvalidParams

    with pytest.raises(InvalidParams):
        session.analyze(
            {"paths": [str(corpus / "src")], "include_paths": [1, 2]}
        )


def test_resilient_memo_counts_in_stats(session, corpus):
    target = str(corpus / "src" / "a.c")
    session.did_change({"file": target, "text": BROKEN})
    stats = session.stats({})
    assert stats["resident"]["resilient_units"] == 1
    # Same text again: memo hit, no re-parse.
    before = stats["resident"]["parse_memo_hits"]
    session.did_change({"file": target, "text": BROKEN})
    after = session.stats({})["resident"]["parse_memo_hits"]
    assert after > before


# -- golden transcript: good -> broken -> fixed ---------------------------


def test_golden_transcript_good_broken_fixed(corpus):
    session = Session(cache_dir=str(corpus / "cache"))
    server = Server(session)
    target = str(corpus / "src" / "a.c")

    def req(i, method, **params):
        return json.dumps(
            {"jsonrpc": "2.0", "id": i, "method": method, "params": params},
            sort_keys=True,
        )

    try:
        # 1. Good edit: byte-identical to the pre-recovery protocol.
        line = server.handle_line(req(1, "didChange", file=target, text=GOOD))
        assert line == (
            '{"id":1,"jsonrpc":"2.0","result":{"file":"%s","ok":true,'
            '"overlay":true,"version":1}}\n' % target
        )

        # 2. Analyze: resident findings established.
        response = json.loads(server.handle_line(req(2, "analyze", paths=[target])))
        assert response["result"]["exit_code"] == 1
        good = json.loads(response["result"]["report"])["diagnostics"]
        assert [d["check"] for d in good] == ["tainted-format"]

        # 3. Broken edit: diagnostics + retained findings, still ok:true.
        response = json.loads(
            server.handle_line(req(3, "didChange", file=target, text=BROKEN))
        )
        result = response["result"]
        assert result["ok"] is True
        assert result["version"] == 2
        assert result["parse_diagnostics"][0]["severity"] == "error"
        assert result["last_good"] == good

        # 4. Fixed edit: the recovery keys vanish again.
        line = server.handle_line(req(4, "didChange", file=target, text=FIXED))
        assert line == (
            '{"id":4,"jsonrpc":"2.0","result":{"file":"%s","ok":true,'
            '"overlay":true,"version":3}}\n' % target
        )

        # 5. Re-analyze: identical report to step 2 (warm, not stale).
        response = json.loads(server.handle_line(req(5, "analyze", paths=[target])))
        assert json.loads(response["result"]["report"])["diagnostics"] == good
    finally:
        session.close()
