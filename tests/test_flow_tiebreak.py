"""``shortest_flow_path`` promises a witness that is independent of
constraint *emission order* — ties break by origin span, then variable
uid.  These tests permute the emission order of a fixed constraint
system every possible way and assert the rendered witness path is
byte-identical, then pin the documented tie-break rules one by one."""

import itertools

import pytest

from repro.qual.constraints import Origin, QualConstraint
from repro.qual.qtypes import QualVar
from repro.qual.qualifiers import const_lattice
from repro.qual.solver import shortest_flow_path


@pytest.fixture
def lat():
    return const_lattice()


def var(name, uid):
    return QualVar(name, uid)


def con(lhs, rhs, line, reason="flow", filename="t.c", column=1):
    return QualConstraint(lhs, rhs, Origin(reason, filename, line, column))


def rendered(path):
    """The witness as the byte string a diagnostic would print."""
    assert path is not None
    return "\n".join(f"{c.lhs} <= {c.rhs} [{c.origin}]" for c in path)


class TestPermutationInvariance:
    def build(self, lat):
        """Two equal-length witness candidates plus a longer decoy path:
        seed(a) -> a->t  and  seed(b) -> b->t  tie at length 2; the
        a->c->t chain is length 3 and must never win."""
        const = lat.element("const")
        a, b, c, t = (var(n, u) for n, u in (("a", 1), ("b", 2), ("c", 3), ("t", 4)))
        constraints = [
            con(const, a, line=1),
            con(const, b, line=2),
            con(a, t, line=3),
            con(b, t, line=4),
            con(a, c, line=5),
            con(c, t, line=6),
        ]
        return constraints, t

    def test_every_emission_order_gives_identical_witness(self, lat):
        constraints, target = self.build(lat)
        bound = lat.element()  # upper bound without const -> violated
        baseline = rendered(
            shortest_flow_path(constraints, lat, target, bound)
        )
        for perm in itertools.permutations(constraints):
            assert (
                rendered(shortest_flow_path(list(perm), lat, target, bound))
                == baseline
            )

    def test_the_winning_witness_is_the_lowest_span(self, lat):
        constraints, target = self.build(lat)
        bound = lat.element()
        path = shortest_flow_path(constraints, lat, target, bound)
        assert [c.origin.line for c in path] == [1, 3]


TIE_CASES = [
    # (description, origin kwargs for edge A, for edge B, expected winner)
    (
        "earlier filename wins",
        dict(filename="a.c", line=9),
        dict(filename="b.c", line=1),
        "A",
    ),
    (
        "same file: earlier line wins",
        dict(filename="t.c", line=2),
        dict(filename="t.c", line=7),
        "A",
    ),
    (
        "same line: earlier column wins",
        dict(filename="t.c", line=3, column=4),
        dict(filename="t.c", line=3, column=9),
        "A",
    ),
    (
        "same span: reason string breaks the tie",
        dict(filename="t.c", line=3, column=4, reason="arg flow"),
        dict(filename="t.c", line=3, column=4, reason="return flow"),
        "A",
    ),
]


class TestDocumentedTiebreakRules:
    @pytest.mark.parametrize(
        "description,origin_a,origin_b,winner",
        TIE_CASES,
        ids=[case[0] for case in TIE_CASES],
    )
    def test_parallel_edges(self, lat, description, origin_a, origin_b, winner):
        """Two parallel edges between the same variables: the kept edge
        is the one with the smaller (filename, line, column, reason)
        rank, regardless of which was emitted first."""
        const = lat.element("const")
        source, target = var("src", 1), var("dst", 2)
        seed = con(const, source, line=1)
        edge_a = QualConstraint(source, target, Origin(**{"reason": "flow", **origin_a}))
        edge_b = QualConstraint(source, target, Origin(**{"reason": "flow", **origin_b}))
        expected = edge_a if winner == "A" else edge_b

        for emission in ([seed, edge_a, edge_b], [seed, edge_b, edge_a],
                         [edge_b, seed, edge_a], [edge_a, edge_b, seed]):
            path = shortest_flow_path(emission, lat, target, lat.element())
            assert path is not None
            assert path[-1] is expected, description

    def test_seed_ties_break_by_span_then_uid(self, lat):
        """Two seeds reaching the target at equal depth: the lower span
        seeds first; with identical spans the lower uid wins."""
        const = lat.element("const")
        t = var("t", 10)
        lo, hi = var("lo", 1), var("hi", 2)
        same_span = dict(line=5, column=5)
        system = [
            con(const, hi, **same_span),
            con(const, lo, **same_span),
            con(hi, t, line=8),
            con(lo, t, line=8),
        ]
        for perm in itertools.permutations(system):
            path = shortest_flow_path(list(perm), lat, t, lat.element())
            assert path is not None
            assert path[0].rhs is lo  # uid 1 < uid 2

    def test_satisfied_bound_has_no_witness(self, lat):
        const = lat.element("const")
        a, t = var("a", 1), var("t", 2)
        system = [con(const, a, line=1), con(a, t, line=2)]
        assert shortest_flow_path(system, lat, t, const) is None
