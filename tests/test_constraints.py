"""Unit tests for the constraint language (Section 3.1)."""

import pytest

from repro.qual.constraints import (
    ConstraintSet,
    Origin,
    QualConstraint,
    SubtypeConstraint,
)
from repro.qual.qtypes import fresh_qual_var, q_int, q_ref
from repro.qual.qualifiers import const_lattice


class TestOrigin:
    def test_plain_reason(self):
        assert str(Origin("assignment")) == "assignment"

    def test_with_file_line_column(self):
        o = Origin("cast", filename="m.c", line=12, column=3)
        assert str(o) == "cast at m.c:12:3"

    def test_with_line_only(self):
        assert str(Origin("x", line=9)) == "x at line 9"

    def test_file_without_line(self):
        assert str(Origin("x", filename="a.c")) == "x at a.c"


class TestQualConstraint:
    def test_trivial(self, const_lat):
        k = fresh_qual_var()
        assert QualConstraint(k, k).is_trivial
        assert not QualConstraint(k, fresh_qual_var()).is_trivial

    def test_ground(self, const_lat):
        assert QualConstraint(const_lat.bottom, const_lat.top).is_ground
        assert not QualConstraint(fresh_qual_var(), const_lat.top).is_ground

    def test_str(self, const_lat):
        k = fresh_qual_var()
        text = str(QualConstraint(const_lat.atom("const"), k))
        assert "const" in text and "<=" in text

    def test_str_bottom_rendered(self, const_lat):
        text = str(QualConstraint(const_lat.bottom, fresh_qual_var()))
        assert "<none>" in text


class TestConstraintSet:
    def test_add_and_iterate(self, const_lat):
        cs = ConstraintSet()
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        cs.add_qual(k1, k2)
        cs.add_subtype(q_int(k1), q_int(k2))
        assert len(cs) == 2
        assert len(list(cs)) == 2

    def test_trivial_atomic_dropped(self):
        cs = ConstraintSet()
        k = fresh_qual_var()
        cs.add_qual(k, k)
        assert len(cs) == 0

    def test_add_equal_emits_both_directions(self, const_lat):
        cs = ConstraintSet()
        a, b = q_int(fresh_qual_var()), q_int(fresh_qual_var())
        cs.add_equal(a, b)
        assert len(cs.subtype_constraints) == 2

    def test_add_qual_equal(self):
        cs = ConstraintSet()
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        cs.add_qual_equal(k1, k2)
        pairs = {(c.lhs, c.rhs) for c in cs.atomic_constraints}
        assert pairs == {(k1, k2), (k2, k1)}

    def test_merge(self):
        a, b = ConstraintSet(), ConstraintSet()
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        a.add_qual(k1, k2)
        b.add_qual(k2, k1)
        b.quantify([k2])
        a.merge(b)
        assert len(a) == 2
        assert k2 in a.quantified

    def test_variables(self):
        cs = ConstraintSet()
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        cs.add_qual(k1, k2)
        cs.add_subtype(q_ref(k3, q_int(k1)), q_ref(k3, q_int(k1)))
        assert cs.variables() == {k1, k2, k3}

    def test_copy_is_independent(self):
        cs = ConstraintSet()
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        cs.add_qual(k1, k2)
        clone = cs.copy()
        clone.add_qual(k2, k1)
        assert len(cs) == 1 and len(clone) == 2

    def test_str_mentions_quantifier(self):
        cs = ConstraintSet()
        k = fresh_qual_var()
        cs.add_qual(k, fresh_qual_var())
        cs.quantify([k])
        assert "exists" in str(cs)

    def test_rejects_non_constraint(self):
        with pytest.raises(TypeError):
            ConstraintSet().add("not a constraint")  # type: ignore[arg-type]

    def test_constructor_accepts_iterable(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        cs = ConstraintSet([QualConstraint(k1, k2)])
        assert len(cs) == 1

    def test_empty_str(self):
        assert str(ConstraintSet()) == "<empty>"
