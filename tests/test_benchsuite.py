"""Tests for the synthetic benchmark generator and suite: determinism,
exact position-mix realisation, and the Table 1/2 spec integrity."""

import pytest

from repro.benchsuite.generator import (
    BenchmarkGenerator,
    PositionMix,
    generate_benchmark,
)
from repro.benchsuite.suite import (
    PAPER_BENCHMARKS,
    PAPER_TIMINGS,
    generate_source,
    load_program,
    run_benchmark,
    spec_by_name,
)
from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly


class TestPositionMix:
    def test_from_table2(self):
        mix = PositionMix.from_table2(50, 67, 72, 95)
        assert (mix.declared, mix.mono_extra, mix.poly_extra, mix.other) == (
            50, 17, 5, 23,
        )
        assert (mix.mono, mix.poly, mix.total) == (67, 72, 95)

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError):
            PositionMix.from_table2(10, 5, 20, 30)


class TestGeneratorDeterminism:
    def test_same_seed_same_source(self):
        mix = PositionMix(3, 3, 3, 3)
        a = generate_benchmark("x", 7, mix, 300)
        b = generate_benchmark("x", 7, mix, 300)
        assert a == b

    def test_different_seed_different_source(self):
        mix = PositionMix(3, 3, 3, 3)
        a = generate_benchmark("x", 7, mix, 300)
        b = generate_benchmark("x", 8, mix, 300)
        assert a != b


@pytest.mark.parametrize(
    "mix",
    [
        PositionMix(0, 0, 0, 0),
        PositionMix(5, 0, 0, 0),
        PositionMix(0, 5, 0, 0),
        PositionMix(0, 0, 1, 0),   # single gap position (global getter)
        PositionMix(0, 0, 2, 0),   # forwarder
        PositionMix(0, 0, 3, 0),   # selector
        PositionMix(0, 0, 7, 0),   # composed: 3 + 3 + ... remainders
        PositionMix(0, 0, 0, 4),
        PositionMix(4, 6, 5, 3),
    ],
)
def test_generator_realises_exact_mix(mix):
    source = generate_benchmark("probe", 99, mix, target_lines=0)
    program = Program.from_source(source)
    mono, poly = run_mono(program), run_poly(program)
    assert mono.total_positions() == mix.total
    assert mono.declared_count() == mix.declared
    assert mono.inferred_const_count() == mix.mono
    assert poly.inferred_const_count() == mix.poly


class TestLineTargets:
    def test_padding_reaches_target(self):
        mix = PositionMix(1, 1, 1, 1)
        source = generate_benchmark("padded", 5, mix, target_lines=800)
        lines = source.count("\n") + 1
        assert lines >= 800
        # padding should not wildly overshoot
        assert lines < 800 * 1.25

    def test_units_alone_can_exceed_target(self):
        mix = PositionMix(10, 10, 9, 10)
        source = generate_benchmark("tight", 5, mix, target_lines=10)
        assert source.count("\n") + 1 > 10


class TestSuiteSpecs:
    def test_six_benchmarks(self):
        assert len(PAPER_BENCHMARKS) == 6
        names = [s.name for s in PAPER_BENCHMARKS]
        assert names[0] == "woman-3.0a" and names[-1] == "uucp-1.04"

    def test_counts_are_the_papers(self):
        uucp = spec_by_name("uucp-1.04")
        assert (uucp.declared, uucp.mono, uucp.poly, uucp.total) == (
            433, 1116, 1299, 1773,
        )

    def test_timings_recorded_for_all(self):
        assert set(PAPER_TIMINGS) == {s.name for s in PAPER_BENCHMARKS}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            spec_by_name("emacs")

    def test_generate_source_cached(self):
        spec = PAPER_BENCHMARKS[0]
        assert generate_source(spec) is generate_source(spec)


class TestEndToEnd:
    def test_smallest_benchmark_reproduces_paper_counts(self):
        spec = spec_by_name("woman-3.0a")
        row = run_benchmark(spec)
        assert (row.declared, row.mono, row.poly, row.total_possible) == (
            spec.declared, spec.mono, spec.poly, spec.total,
        )

    def test_load_program_parses(self):
        program, compile_seconds, lines = load_program(PAPER_BENCHMARKS[0])
        assert compile_seconds > 0
        assert lines >= PAPER_BENCHMARKS[0].lines
        assert program.functions
