"""Unit tests for the function dependence graph (Definition 4) and its
SCC decomposition."""

from repro.cfront.sema import Program
from repro.constinfer.fdg import FunctionDependenceGraph


def graph_of(source):
    return FunctionDependenceGraph.build(Program.from_source(source))


class TestBuild:
    def test_edges_to_defined_functions_only(self):
        g = graph_of(
            """
            extern int lib(int);
            int callee(void) { return 0; }
            int caller(void) { return callee() + lib(1); }
            """
        )
        assert g.edges["caller"] == {"callee"}

    def test_vertices_are_defined_functions(self):
        g = graph_of("extern int lib(int); int f(void) { return 0; }")
        assert g.vertices == ["f"]

    def test_occurrence_not_call_still_edge(self):
        g = graph_of(
            """
            int target(void) { return 0; }
            void user(void) { int (*p)(void) = target; }
            """
        )
        assert "target" in g.edges["user"]


class TestSCCs:
    def test_straight_line_reverse_topological(self):
        g = graph_of(
            """
            int c(void) { return 0; }
            int b(void) { return c(); }
            int a(void) { return b(); }
            """
        )
        order = [component[0] for component in g.sccs()]
        assert order.index("c") < order.index("b") < order.index("a")

    def test_mutual_recursion_single_component(self):
        g = graph_of(
            """
            int is_odd(int n);
            int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
            int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
            """
        )
        components = g.sccs()
        assert ["is_even", "is_odd"] in components

    def test_self_recursion(self):
        g = graph_of("int fact(int n) { return n ? n * fact(n - 1) : 1; }")
        assert g.sccs() == [["fact"]]
        assert g.is_recursive(["fact"])

    def test_non_recursive_component(self):
        g = graph_of("int f(void) { return 1; }")
        assert not g.is_recursive(["f"])

    def test_callees_before_callers_with_scc(self):
        g = graph_of(
            """
            int base(void) { return 1; }
            int pong(int n);
            int ping(int n) { return n ? pong(n - 1) : base(); }
            int pong(int n) { return ping(n); }
            int top(void) { return ping(3); }
            """
        )
        components = g.sccs()
        index = {name: i for i, comp in enumerate(components) for name in comp}
        assert index["base"] < index["ping"]
        assert index["ping"] == index["pong"]
        assert index["ping"] < index["top"]

    def test_all_functions_covered_once(self):
        g = graph_of(
            """
            int a(void) { return b(); }
            int b(void) { return a(); }
            int c(void) { return a(); }
            int d(void) { return 0; }
            """
        )
        components = g.sccs()
        flattened = [name for comp in components for name in comp]
        assert sorted(flattened) == ["a", "b", "c", "d"]
        assert len(flattened) == len(set(flattened))

    def test_large_chain_no_recursion_limit(self):
        # the iterative Tarjan must handle deep chains
        n = 3000
        parts = ["int f0(void) { return 0; }"]
        for i in range(1, n):
            parts.append(f"int f{i}(void) {{ return f{i-1}(); }}")
        g = graph_of("\n".join(parts))
        components = g.sccs()
        assert len(components) == n
        assert components[0] == ["f0"]
        assert components[-1] == [f"f{n-1}"]


class TestWavefronts:
    def test_levels_partition_sccs(self):
        g = graph_of(
            """
            int base(void) { return 1; }
            int other(void) { return 2; }
            int mid(void) { return base(); }
            int top(void) { return mid() + other(); }
            """
        )
        levels = g.wavefronts()
        flattened = [comp for level in levels for comp in level]
        assert sorted(flattened) == sorted(g.sccs())

    def test_leaves_in_level_zero(self):
        g = graph_of(
            """
            int base(void) { return 1; }
            int other(void) { return 2; }
            int top(void) { return base() + other(); }
            """
        )
        levels = g.wavefronts()
        assert levels[0] == [["base"], ["other"]]
        assert levels[1] == [["top"]]

    def test_edges_cross_to_strictly_lower_levels(self):
        g = graph_of(
            """
            int c(void) { return 0; }
            int pong(int n);
            int ping(int n) { return n ? pong(n - 1) : c(); }
            int pong(int n) { return ping(n); }
            int b(void) { return c(); }
            int a(void) { return b() + ping(2); }
            """
        )
        levels = g.wavefronts()
        level_of = {
            name: depth
            for depth, level in enumerate(levels)
            for comp in level
            for name in comp
        }
        for src, targets in g.edges.items():
            for dst in targets:
                if level_of[src] != level_of[dst]:
                    assert level_of[dst] < level_of[src]
                else:
                    # same level only within one SCC (mutual recursion)
                    assert any(
                        src in comp and dst in comp
                        for level in levels
                        for comp in level
                    )

    def test_concatenation_is_callees_first(self):
        g = graph_of(
            """
            int c(void) { return 0; }
            int b(void) { return c(); }
            int a(void) { return b(); }
            """
        )
        order = [comp[0] for level in g.wavefronts() for comp in level]
        assert order.index("c") < order.index("b") < order.index("a")

    def test_levels_sorted_for_determinism(self):
        g = graph_of(
            """
            int zeta(void) { return 1; }
            int alpha(void) { return 2; }
            int mid(void) { return zeta() + alpha(); }
            """
        )
        levels = g.wavefronts()
        assert levels[0] == sorted(levels[0])

    def test_diamond_dependency_depths(self):
        g = graph_of(
            """
            int bottom(void) { return 0; }
            int left(void) { return bottom(); }
            int right(void) { return bottom(); }
            int top(void) { return left() + right(); }
            """
        )
        levels = g.wavefronts()
        assert levels == [[["bottom"]], [["left"], ["right"]], [["top"]]]
