"""Unit tests for the function dependence graph (Definition 4) and its
SCC decomposition."""

from repro.cfront.sema import Program
from repro.constinfer.fdg import FunctionDependenceGraph


def graph_of(source):
    return FunctionDependenceGraph.build(Program.from_source(source))


class TestBuild:
    def test_edges_to_defined_functions_only(self):
        g = graph_of(
            """
            extern int lib(int);
            int callee(void) { return 0; }
            int caller(void) { return callee() + lib(1); }
            """
        )
        assert g.edges["caller"] == {"callee"}

    def test_vertices_are_defined_functions(self):
        g = graph_of("extern int lib(int); int f(void) { return 0; }")
        assert g.vertices == ["f"]

    def test_occurrence_not_call_still_edge(self):
        g = graph_of(
            """
            int target(void) { return 0; }
            void user(void) { int (*p)(void) = target; }
            """
        )
        assert "target" in g.edges["user"]


class TestSCCs:
    def test_straight_line_reverse_topological(self):
        g = graph_of(
            """
            int c(void) { return 0; }
            int b(void) { return c(); }
            int a(void) { return b(); }
            """
        )
        order = [component[0] for component in g.sccs()]
        assert order.index("c") < order.index("b") < order.index("a")

    def test_mutual_recursion_single_component(self):
        g = graph_of(
            """
            int is_odd(int n);
            int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
            int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
            """
        )
        components = g.sccs()
        assert ["is_even", "is_odd"] in components

    def test_self_recursion(self):
        g = graph_of("int fact(int n) { return n ? n * fact(n - 1) : 1; }")
        assert g.sccs() == [["fact"]]
        assert g.is_recursive(["fact"])

    def test_non_recursive_component(self):
        g = graph_of("int f(void) { return 1; }")
        assert not g.is_recursive(["f"])

    def test_callees_before_callers_with_scc(self):
        g = graph_of(
            """
            int base(void) { return 1; }
            int pong(int n);
            int ping(int n) { return n ? pong(n - 1) : base(); }
            int pong(int n) { return ping(n); }
            int top(void) { return ping(3); }
            """
        )
        components = g.sccs()
        index = {name: i for i, comp in enumerate(components) for name in comp}
        assert index["base"] < index["ping"]
        assert index["ping"] == index["pong"]
        assert index["ping"] < index["top"]

    def test_all_functions_covered_once(self):
        g = graph_of(
            """
            int a(void) { return b(); }
            int b(void) { return a(); }
            int c(void) { return a(); }
            int d(void) { return 0; }
            """
        )
        components = g.sccs()
        flattened = [name for comp in components for name in comp]
        assert sorted(flattened) == ["a", "b", "c", "d"]
        assert len(flattened) == len(set(flattened))

    def test_large_chain_no_recursion_limit(self):
        # the iterative Tarjan must handle deep chains
        n = 3000
        parts = ["int f0(void) { return 0; }"]
        for i in range(1, n):
            parts.append(f"int f{i}(void) {{ return f{i-1}(); }}")
        g = graph_of("\n".join(parts))
        components = g.sccs()
        assert len(components) == n
        assert components[0] == ["f0"]
        assert components[-1] == [f"f{n-1}"]
