"""Further property-based tests for the example language: printer
round-trips, inference determinism, and evaluation determinism."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lam.ast import (
    Annot,
    App,
    Assert,
    Deref,
    If,
    IntLit,
    Lam,
    Let,
    QualLiteral,
    Ref,
    Var,
    free_vars,
    strip_expr,
    walk,
)
from repro.lam.check import is_well_typed
from repro.lam.eval import Evaluator
from repro.lam.infer import QualTypeError, QualifiedLanguage, infer
from repro.lam.parser import parse
from repro.qual.qualifiers import const_nonzero_lattice

LATTICE = const_nonzero_lattice()
LANGUAGE = QualifiedLanguage(LATTICE, assign_restrictions=("const",))

_SUBSETS = [
    frozenset(),
    frozenset({"const"}),
    frozenset({"nonzero"}),
    frozenset({"const", "nonzero"}),
]


@st.composite
def expressions(draw, scope=(), depth=3):
    """Arbitrary (not necessarily well-typed) closed-ish expressions."""
    choices = ["int"]
    if scope:
        choices.append("var")
    if depth > 0:
        choices += ["lam", "app", "if", "let", "ref", "deref", "annot", "assert"]
    kind = draw(st.sampled_from(choices))
    if kind == "int":
        return IntLit(draw(st.integers(min_value=-99, max_value=99)))
    if kind == "var":
        return Var(draw(st.sampled_from(list(scope))))
    if kind == "lam":
        name = f"x{len(scope)}"
        return Lam(name, draw(expressions(scope + (name,), depth - 1)))
    if kind == "app":
        return App(
            draw(expressions(scope, depth - 1)),
            draw(expressions(scope, depth - 1)),
        )
    if kind == "if":
        return If(
            draw(expressions(scope, depth - 1)),
            draw(expressions(scope, depth - 1)),
            draw(expressions(scope, depth - 1)),
        )
    if kind == "let":
        name = f"x{len(scope)}"
        return Let(
            name,
            draw(expressions(scope, depth - 1)),
            draw(expressions(scope + (name,), depth - 1)),
        )
    if kind == "ref":
        return Ref(draw(expressions(scope, depth - 1)))
    if kind == "deref":
        return Deref(draw(expressions(scope, depth - 1)))
    if kind == "annot":
        return Annot(
            QualLiteral(draw(st.sampled_from(_SUBSETS))),
            draw(expressions(scope, depth - 1)),
        )
    return Assert(
        draw(expressions(scope, depth - 1)),
        QualLiteral(draw(st.sampled_from(_SUBSETS))),
    )


@given(expressions())
@settings(max_examples=300, deadline=None)
def test_printer_parser_roundtrip(expr):
    """str() of any expression re-parses to an equal expression."""
    assert parse(str(expr)) == expr


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_strip_removes_all_annotations(expr):
    stripped = strip_expr(expr)
    for node in walk(stripped):
        assert not isinstance(node, (Annot, Assert))


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_strip_idempotent(expr):
    once = strip_expr(expr)
    assert strip_expr(once) == once


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_free_vars_of_closed_generated_terms(expr):
    # the generator only references in-scope binders
    assert free_vars(expr) == set()


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_inference_deterministic_up_to_solution(expr):
    """Two runs of inference agree on acceptance and on the ground least
    type (fresh variable names differ; solutions must not)."""
    try:
        first = infer(expr, LANGUAGE)
    except QualTypeError:
        try:
            infer(expr, LANGUAGE)
            raise AssertionError("nondeterministic acceptance")
        except QualTypeError:
            return
    second = infer(expr, LANGUAGE)
    assert str(first.least_qtype()) == str(second.least_qtype())
    assert str(first.greatest_qtype()) == str(second.greatest_qtype())


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_evaluation_deterministic(expr):
    """Figure 5's reduction is a function: two runs agree step for step
    (compared on final value and step count)."""
    assume(is_well_typed(expr, LANGUAGE))
    ev = Evaluator(LATTICE)

    def run_once():
        steps = 0
        last = None
        for config, _store in ev.trace(expr):
            steps += 1
            last = config
            if steps > 2000:
                return None, steps
        return last, steps

    first_value, first_steps = run_once()
    second_value, second_steps = run_once()
    assert first_steps == second_steps
    assert str(first_value) == str(second_value)


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_monomorphic_acceptance_implies_annotated_strip_types(expr):
    """If the qualified program typechecks, so does its strip, under the
    same language (strip only removes checks)."""
    try:
        infer(expr, LANGUAGE)
    except QualTypeError:
        assume(False)
    stripped = strip_expr(expr)
    infer(stripped, LANGUAGE)  # must not raise
