"""Unit tests for polymorphic constrained qualifier types (Section 3.2)."""

from repro.qual.constraints import QualConstraint
from repro.qual.poly import (
    QualScheme,
    generalize,
    monomorphic,
    rename_constraints,
    restrict_constraints,
    simplify_scheme,
)
from repro.qual.qtypes import fresh_qual_var, q_fun, q_int, q_ref, qual_vars
from repro.qual.qualifiers import const_lattice


class TestMonomorphic:
    def test_monomorphic_scheme(self):
        k = fresh_qual_var()
        scheme = monomorphic(q_int(k))
        assert scheme.is_monomorphic
        body, carried = scheme.instantiate()
        assert body == q_int(k)  # no renaming
        assert carried == []


class TestGeneralize:
    def test_quantifies_body_vars(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        body = q_fun(k1, q_int(k2), q_int(k2))
        scheme = generalize(body, [], set())
        assert set(scheme.quantified) == {k1, k2}

    def test_env_vars_not_quantified(self):
        k_env, k_local = fresh_qual_var(), fresh_qual_var()
        body = q_fun(k_local, q_int(k_env), q_int(k_local))
        scheme = generalize(body, [], {k_env})
        assert k_env not in scheme.quantified
        assert k_local in scheme.quantified

    def test_connected_vars_swept_in(self):
        k_body, k_mid, k_far = (fresh_qual_var() for _ in range(3))
        body = q_int(k_body)
        constraints = [
            QualConstraint(k_body, k_mid),
            QualConstraint(k_mid, k_far),
        ]
        scheme = generalize(body, constraints, set())
        assert set(scheme.quantified) == {k_body, k_mid, k_far}
        assert len(scheme.constraints) == 2

    def test_sweep_stops_at_env_vars(self):
        k_body, k_env = fresh_qual_var(), fresh_qual_var()
        constraints = [QualConstraint(k_body, k_env)]
        scheme = generalize(q_int(k_body), constraints, {k_env})
        assert set(scheme.quantified) == {k_body}
        # the env-linking constraint is still carried (it mentions k_body)
        assert len(scheme.constraints) == 1

    def test_unrelated_constraints_not_carried(self):
        k_body, k_other1, k_other2 = (fresh_qual_var() for _ in range(3))
        constraints = [QualConstraint(k_other1, k_other2)]
        scheme = generalize(q_int(k_body), constraints, {k_other1, k_other2})
        assert scheme.constraints == ()

    def test_constant_bounds_carried(self):
        lat = const_lattice()
        k = fresh_qual_var()
        constraints = [QualConstraint(lat.atom("const"), k)]
        scheme = generalize(q_int(k), constraints, set())
        assert len(scheme.constraints) == 1


class TestInstantiate:
    def test_renames_quantified(self):
        k = fresh_qual_var()
        scheme = generalize(q_int(k), [], set())
        body1, _ = scheme.instantiate()
        body2, _ = scheme.instantiate()
        assert body1.qual != k and body2.qual != k
        assert body1.qual != body2.qual  # fresh per instantiation

    def test_carried_constraints_renamed_consistently(self):
        lat = const_lattice()
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        body = q_fun(k1, q_int(k2), q_int(k2))
        constraints = [QualConstraint(k2, k1), QualConstraint(lat.atom("const"), k2)]
        scheme = generalize(body, constraints, set())
        new_body, carried = scheme.instantiate()
        new_vars = qual_vars(new_body)
        assert k1 not in new_vars and k2 not in new_vars
        # the renamed var/var constraint relates the new body's own vars
        var_pairs = [
            c for c in carried if not isinstance(c.lhs, type(lat.bottom))
        ]
        for c in carried:
            for side in (c.lhs, c.rhs):
                assert side not in (k1, k2)

    def test_free_vars_survive_instantiation(self):
        k_env, k_local = fresh_qual_var(), fresh_qual_var()
        constraints = [QualConstraint(k_local, k_env)]
        scheme = generalize(q_int(k_local), constraints, {k_env})
        _body, carried = scheme.instantiate()
        assert any(c.rhs == k_env for c in carried)


class TestFreeVars:
    def test_free_qual_vars(self):
        k_bound, k_free = fresh_qual_var(), fresh_qual_var()
        scheme = QualScheme(
            (k_bound,),
            q_int(k_bound),
            (QualConstraint(k_bound, k_free),),
        )
        assert scheme.free_qual_vars() == {k_free}


class TestHelpers:
    def test_rename_constraints(self):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        renamed = rename_constraints(
            [QualConstraint(k1, k2)], {k1: k3}
        )
        assert renamed[0].lhs == k3 and renamed[0].rhs == k2

    def test_restrict_constraints(self):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        cs = [QualConstraint(k1, k2), QualConstraint(k3, k3)]
        kept = restrict_constraints(cs, {k1})
        assert kept == [cs[0]]

    def test_simplify_drops_unused_quantifier(self):
        k_used, k_unused = fresh_qual_var(), fresh_qual_var()
        scheme = QualScheme((k_used, k_unused), q_int(k_used), ())
        simplified = simplify_scheme(scheme)
        assert simplified.quantified == (k_used,)

    def test_simplify_dedupes_constraints(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        c = QualConstraint(k1, k2)
        scheme = QualScheme((k1, k2), q_int(k1), (c, c))
        assert len(simplify_scheme(scheme).constraints) == 1

    def test_str_rendering(self):
        k = fresh_qual_var()
        scheme = generalize(q_int(k), [], set())
        assert "forall" in str(scheme)
        assert str(monomorphic(q_int(k))) == "int" or "k" in str(monomorphic(q_int(k)))
