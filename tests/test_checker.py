"""Tests for the qlint checker subsystem: per-check planted violations
(with provenance spans on every flow step), provably shortest taint
paths, suppression comments, fingerprints/baselines, the batch runner,
and the lambda adapter."""

import json

import pytest

from repro.checker import (
    Baseline,
    Diagnostic,
    Span,
    apply_suppressions,
    assign_fingerprints,
    check_by_name,
    check_lambda_source,
    check_paths,
    check_source,
    render_human,
    render_json,
)

TAINT_SRC = """\
char *getenv(const char *n);
int printf(const char *f, ...);
int main(void) {
    char *a = getenv("X");
    char *b = a;
    char *c = b;
    char *d = c;
    printf(d);
    printf(a);
    return 0;
}
"""

NULL_SRC = """\
void *malloc(unsigned long n);
int main(void) {
    int *p = malloc(16);
    *p = 3;
    return 0;
}
"""

CAST_SRC = """\
void f(const char *s) {
    char *w = (char *)s;
    w[0] = 'x';
}
"""

BINDING_SRC = """\
int rand(void);
void *alloca(int n);
int main(void) {
    int n = rand() + 1;
    alloca(n);
    return 0;
}
"""

CLEAN_SRC = """\
int printf(const char *f, ...);
int main(void) {
    printf("%d", 42);
    return 0;
}
"""


def findings(source, name="unit.c", checks=None):
    if checks is None:
        return check_source(source, filename=name)
    return check_source(source, filename=name, checks=tuple(checks))


class TestPlantedViolations:
    def test_tainted_format_reported(self):
        diags = [d for d in findings(TAINT_SRC) if d.check == "tainted-format"]
        assert len(diags) == 1
        assert diags[0].severity == "error"
        assert "printf" in diags[0].message

    def test_every_flow_step_has_valid_span(self):
        for source in (TAINT_SRC, NULL_SRC, CAST_SRC, BINDING_SRC):
            for diag in findings(source):
                assert diag.flow, f"{diag.check} has no flow path"
                for step in diag.flow:
                    assert step.span.is_valid, f"{diag.check}: {step.note}"
                assert diag.span.is_valid

    def test_nonnull_deref_reported_at_deref_site(self):
        diags = [d for d in findings(NULL_SRC) if d.check == "nonnull-deref"]
        assert len(diags) == 1
        # primary span is the dereference, line 4
        assert diags[0].span.line == 4
        assert "malloc" in diags[0].message
        assert diags[0].flow[-1].note == "dereferenced here"

    def test_cast_away_const_reported(self):
        diags = [d for d in findings(CAST_SRC) if d.check == "casts-away-const"]
        assert len(diags) == 1
        assert diags[0].span.line == 2
        assert "casts away const" in diags[0].message

    def test_binding_time_survives_arithmetic(self):
        diags = [d for d in findings(BINDING_SRC) if d.check == "binding-time"]
        assert len(diags) == 1
        assert "rand" in diags[0].message or "alloca" in diags[0].message

    def test_clean_unit_reports_nothing(self):
        assert findings(CLEAN_SRC) == []


class TestShortestPath:
    def test_taint_path_is_the_hand_computed_shortest(self):
        """Two routes reach the printf sink: a -> b -> c -> d -> printf
        (5 constraint hops) and a -> printf directly (2 hops).  BFS must
        return the short one: seed, initializer of a, call argument."""
        [diag] = [d for d in findings(TAINT_SRC) if d.check == "tainted-format"]
        notes = [step.note for step in diag.flow]
        assert notes == [
            "tainted source getenv",
            "initializer of a",
            "call argument",
        ]
        assert [step.span.line for step in diag.flow] == [1, 4, 9]

    def test_solver_flow_path_unit(self):
        from repro.qual.constraints import Origin, QualConstraint
        from repro.qual.qtypes import fresh_qual_var
        from repro.qual.qualifiers import make_lattice
        from repro.qual.solver import shortest_flow_path

        lattice = make_lattice("tainted")
        a, b, c, sink = (fresh_qual_var(n) for n in "abcs")
        seed = lattice.atom("tainted")
        constraints = [
            QualConstraint(seed, a, Origin("seed")),
            QualConstraint(a, b, Origin("e1")),
            QualConstraint(b, c, Origin("e2")),
            QualConstraint(c, sink, Origin("e3")),
            QualConstraint(a, sink, Origin("direct")),
        ]
        path = shortest_flow_path(
            constraints, lattice, sink, lattice.assertion_bound("tainted")
        )
        assert [c.origin.reason for c in path] == ["seed", "direct"]

    def test_no_path_when_bound_satisfied(self):
        from repro.qual.constraints import Origin, QualConstraint
        from repro.qual.qtypes import fresh_qual_var
        from repro.qual.qualifiers import make_lattice
        from repro.qual.solver import shortest_flow_path

        lattice = make_lattice("tainted")
        a = fresh_qual_var("a")
        constraints = [QualConstraint(lattice.bottom, a, Origin("clean"))]
        assert (
            shortest_flow_path(
                constraints, lattice, a, lattice.assertion_bound("tainted")
            )
            is None
        )


class TestSuppression:
    def test_allow_comment_silences_exactly_that_diagnostic(self):
        source = (
            "void *malloc(unsigned long n);\n"
            "int f(void) {\n"
            "    int *p = malloc(4);\n"
            "    int *q = malloc(4);\n"
            "    /* qlint: allow(nonnull-deref) */\n"
            "    *p = 1;\n"
            "    *q = 2;\n"
            "    return 0;\n"
            "}\n"
        )
        diags = check_source(source, filename="s.c")
        diags = apply_suppressions(diags, {"s.c": source})
        nonnull = [d for d in diags if d.check == "nonnull-deref"]
        assert len(nonnull) == 2
        by_line = {d.span.line: d.suppressed for d in nonnull}
        assert by_line[6] is True  # guarded by the allow comment above
        assert by_line[7] is False  # untouched

    def test_allow_by_qualifier_name(self):
        source = "line one\n/* qlint: allow(tainted) */\nflagged line\n"
        diag = Diagnostic(
            check="tainted-format",
            qualifier="tainted",
            severity="error",
            message="m",
            span=Span("f.c", 3, 1),
        )
        [out] = apply_suppressions([diag], {"f.c": source})
        assert out.suppressed

    def test_unrelated_allow_does_not_suppress(self):
        source = "/* qlint: allow(casts-away-const) */\nflagged\n"
        diag = Diagnostic(
            check="tainted-format",
            qualifier="tainted",
            severity="error",
            message="m",
            span=Span("f.c", 2, 1),
        )
        [out] = apply_suppressions([diag], {"f.c": source})
        assert not out.suppressed


class TestFingerprintsAndBaseline:
    def _diag(self, message="m", line=2):
        return Diagnostic(
            check="tainted-format",
            qualifier="tainted",
            severity="error",
            message=message,
            span=Span("f.c", line, 1),
        )

    def test_fingerprint_stable_under_line_insertion(self):
        source_v1 = "int x;\nbad line\n"
        source_v2 = "int x;\n// new comment\nbad line\n"
        [d1] = assign_fingerprints([self._diag(line=2)], {"f.c": source_v1})
        [d2] = assign_fingerprints([self._diag(line=3)], {"f.c": source_v2})
        assert d1.fingerprint and d1.fingerprint == d2.fingerprint

    def test_identical_lines_disambiguated(self):
        source = "bad\nbad\n"
        out = assign_fingerprints(
            [self._diag(line=1), self._diag(line=2)], {"f.c": source}
        )
        assert out[0].fingerprint != out[1].fingerprint

    def test_baseline_roundtrip_and_compare(self, tmp_path):
        source = "aaa\nbbb\n"
        diags = assign_fingerprints(
            [self._diag(line=1), self._diag(line=2, message="other")],
            {"f.c": source},
        )
        baseline = Baseline.from_diagnostics(diags)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        new, lost = loaded.compare(diags)
        assert new == [] and lost == set()
        new, lost = loaded.compare(diags[:1])
        assert new == [] and lost == {diags[1].fingerprint}
        extra = assign_fingerprints([self._diag(message="brand new")], {"f.c": source})
        new, _ = loaded.compare(diags + extra)
        assert [d.message for d in new] == ["brand new"]


class TestRunner:
    def _write_corpus(self, tmp_path):
        (tmp_path / "bug.c").write_text(NULL_SRC)
        (tmp_path / "ok.c").write_text(CLEAN_SRC)
        sub = tmp_path / "nested"
        sub.mkdir()
        (sub / "cast.c").write_text(CAST_SRC)
        return tmp_path

    def test_batch_walks_directories(self, tmp_path):
        corpus = self._write_corpus(tmp_path)
        report = check_paths([corpus])
        assert len(report.files) == 3
        assert {d.check for d in report.diagnostics} == {
            "nonnull-deref",
            "casts-away-const",
        }
        assert report.errors == {}
        assert report.exit_code == 1  # nonnull-deref is an error

    def test_cache_warm_run_matches_cold(self, tmp_path):
        corpus = self._write_corpus(tmp_path)
        cache = tmp_path / ".cache"
        cold = check_paths([corpus], cache_dir=cache)
        warm = check_paths([corpus], cache_dir=cache)
        assert cold.cache_hits == 0 and cold.cache_misses == 3
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert [d.to_dict() for d in warm.diagnostics] == [
            d.to_dict() for d in cold.diagnostics
        ]

    def test_jobs_parallel_is_deterministic(self, tmp_path):
        corpus = self._write_corpus(tmp_path)
        serial = check_paths([corpus])
        parallel = check_paths([corpus], jobs=2)
        assert [d.to_dict() for d in parallel.diagnostics] == [
            d.to_dict() for d in serial.diagnostics
        ]

    def test_unparseable_file_reported_not_fatal(self, tmp_path):
        (tmp_path / "broken.c").write_text("int main( {{{\n")
        (tmp_path / "ok.c").write_text(CLEAN_SRC)
        report = check_paths([tmp_path])
        assert list(report.errors) == [str(tmp_path / "broken.c")]
        assert report.exit_code == 1

    def test_unknown_check_name_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            check_paths([tmp_path], checks=["no-such-check"])


class TestRenderers:
    def test_human_includes_caret_and_flow(self):
        diags = findings(TAINT_SRC, name="t.c")
        diags = assign_fingerprints(diags, {"t.c": TAINT_SRC})
        text = render_human(diags, {"t.c": TAINT_SRC})
        assert "t.c:9:11: error:" in text
        assert "qualifier flow:" in text
        assert "^" in text
        assert "tainted source getenv" in text

    def test_human_empty(self):
        assert render_human([]) == "qlint: no findings\n"

    def test_json_roundtrips(self):
        diags = findings(TAINT_SRC, name="t.c")
        payload = json.loads(render_json(diags))
        assert payload["tool"] == "qlint"
        assert payload["diagnostics"][0]["check"] == "tainted-format"
        assert payload["diagnostics"][0]["flow"]


class TestConstViolationDegradation:
    def test_write_through_const_becomes_diagnostic(self):
        source = "void f(void) {\n    const int x = 1;\n    *(&x) = 2;\n}\n"
        diags = check_source(source, filename="c.c")
        const = [d for d in diags if d.check == "const-violation"]
        assert len(const) == 1
        assert const[0].severity == "error"
        assert const[0].span.is_valid


class TestLambdaAdapter:
    def test_insecure_program_reports_flow(self):
        diags = check_lambda_source(
            "let x = {tainted} 7 in (x)|{} ni", filename="leak.lam"
        )
        assert len(diags) == 1
        assert diags[0].qualifier == "tainted"
        assert diags[0].flow
        assert all(step.span.file == "leak.lam" for step in diags[0].flow)

    def test_secure_program_is_clean(self):
        assert check_lambda_source("let x = 7 in (x)|{} ni") == []

    def test_registry_lookup(self):
        assert check_by_name("tainted-format").qualifier == "tainted"
        with pytest.raises(KeyError):
            check_by_name("bogus")


class TestConfigInCacheKey:
    """The active check configuration participates in the cache content
    hash: cached diagnostics must never be served for a different set
    (or definition) of checks."""

    def test_config_digest_is_stable_and_order_sensitive(self):
        from repro.checker.checks import config_digest

        a = config_digest(("tainted-format", "casts-away-const"))
        assert a == config_digest(("tainted-format", "casts-away-const"))
        assert a != config_digest(("casts-away-const", "tainted-format"))
        assert a != config_digest(("tainted-format",))

    def test_changing_active_checks_misses_the_cache(self, tmp_path):
        (tmp_path / "bug.c").write_text(TAINT_SRC)
        cache = tmp_path / ".cache"
        cold = check_paths([tmp_path], cache_dir=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        narrowed = check_paths(
            [tmp_path], checks=("casts-away-const",), cache_dir=cache
        )
        # same source, different configuration: a fresh cache entry
        assert (narrowed.cache_hits, narrowed.cache_misses) == (0, 1)
        assert narrowed.diagnostics == []
        # and the original configuration still hits its own entry
        warm = check_paths([tmp_path], cache_dir=cache)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        assert [d.to_dict() for d in warm.diagnostics] == [
            d.to_dict() for d in cold.diagnostics
        ]
