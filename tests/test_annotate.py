"""Unit tests for source re-annotation (Section 4.2's goal: the original
program text with extra consts inserted)."""

from repro.cfront.sema import Program
from repro.constinfer.annotate import (
    annotate_source,
    format_report,
    suggestions,
)
from repro.constinfer.engine import run_mono, run_poly


SOURCE = """\
int peek(int *p) { return *p; }
void poke(int *q) { *q = 1; }
int skim(const char *s) { return *s; }
int deep(int **pp) { return **pp; }
"""


def run_on(source, poly=False):
    program = Program.from_source(source)
    return run_poly(program) if poly else run_mono(program)


class TestSuggestions:
    def test_read_only_param_suggested(self):
        run = run_on(SOURCE)
        names = {s.function for s in suggestions(run)}
        assert "peek" in names

    def test_writer_not_suggested(self):
        run = run_on(SOURCE)
        assert "poke" not in {s.function for s in suggestions(run)}

    def test_declared_not_suggested_again(self):
        run = run_on(SOURCE)
        assert "skim" not in {s.function for s in suggestions(run)}

    def test_deep_positions_reported(self):
        run = run_on(SOURCE)
        deep_suggestions = [s for s in suggestions(run) if s.function == "deep"]
        assert any(s.depth == 2 for s in deep_suggestions)

    def test_str(self):
        run = run_on(SOURCE)
        text = str(suggestions(run)[0])
        assert "may be declared const" in text


class TestAnnotateSource:
    def test_const_inserted_on_reader(self):
        run = run_on(SOURCE)
        out = annotate_source(SOURCE, run)
        assert "int peek(const int *p)" in out

    def test_writer_untouched(self):
        run = run_on(SOURCE)
        out = annotate_source(SOURCE, run)
        assert "void poke(int *q)" in out

    def test_already_const_untouched(self):
        run = run_on(SOURCE)
        out = annotate_source(SOURCE, run)
        assert out.count("const char *s") == 1
        assert "const const" not in out

    def test_annotated_source_reanalyzes_clean(self):
        # the rewritten program must still be type-correct, with the
        # suggested positions now declared.
        run = run_on(SOURCE)
        rewritten = annotate_source(SOURCE, run)
        new_run = run_on(rewritten)
        assert new_run.declared_count() > run.declared_count()
        assert new_run.total_positions() == run.total_positions()

    def test_idempotent(self):
        run = run_on(SOURCE)
        once = annotate_source(SOURCE, run)
        run2 = run_on(once)
        twice = annotate_source(once, run2)
        assert once == twice

    def test_struct_pointer_param(self):
        src = "struct st { int v; };\nint get(struct st *s) { return s->v; }\n"
        run = run_on(src)
        out = annotate_source(src, run)
        assert "const struct st *s" in out


class TestFormatReport:
    def test_mentions_all_positions(self):
        run = run_on(SOURCE)
        report = format_report(run)
        for name in ("peek", "poke", "skim", "deep"):
            assert name in report

    def test_verdict_labels(self):
        report = format_report(run_on(SOURCE))
        assert "may be const" in report
        assert "must NOT be const" in report
        assert "must be const" in report

    def test_limit(self):
        full = format_report(run_on(SOURCE))
        limited = format_report(run_on(SOURCE), limit=1)
        assert len(limited.split("\n")) < len(full.split("\n"))
