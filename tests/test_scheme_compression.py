"""Tests for transitive bound compression at generalisation time."""

import pytest

from repro.qual.constraints import Origin, QualConstraint
from repro.qual.poly import generalize
from repro.qual.qtypes import INT, REF, QCon, QType, QualVar, fresh_qual_var
from repro.qual.solver import satisfiable, solve


def c(lhs, rhs, reason="test"):
    return QualConstraint(lhs, rhs, Origin(reason))


def two_var_body(ka, kb):
    """A body mentioning exactly ``ka`` (outer) and ``kb`` (inner)."""
    return QType(ka, QCon(REF, (QType(kb, QCon(INT)),)))


class TestInteriorElimination:
    def test_chain_through_interior_is_compressed(self, const_lat):
        ka, ki, kb = (fresh_qual_var() for _ in range(3))
        body = two_var_body(ka, kb)
        constraints = [c(ka, ki, "in"), c(ki, kb, "out")]

        plain = generalize(body, constraints, set())
        assert ki in plain.quantified  # default keeps the chain whole

        compressed = generalize(
            body, constraints, set(), lattice=const_lat, compress=True
        )
        assert ki not in compressed.quantified
        assert set(compressed.quantified) == {ka, kb}
        assert [(cc.lhs, cc.rhs) for cc in compressed.constraints] == [(ka, kb)]

    def test_projection_onto_interface_is_preserved(self, fig2_lat):
        ka, ki, kb = (fresh_qual_var() for _ in range(3))
        body = two_var_body(ka, kb)
        constraints = [
            c(fig2_lat.atom("const"), ki, "lower"),
            c(ki, ka, "to a"),
            c(ki, kb, "to b"),
            c(kb, fig2_lat.negate("dynamic"), "upper"),
        ]
        plain = generalize(body, constraints, set())
        compressed = generalize(
            body, constraints, set(), lattice=fig2_lat, compress=True
        )
        sol_plain = solve(plain.constraints, fig2_lat, extra_vars=[ka, kb])
        sol_comp = solve(compressed.constraints, fig2_lat, extra_vars=[ka, kb])
        for v in (ka, kb):
            assert sol_comp.least_of(v) == sol_plain.least_of(v)
            assert sol_comp.greatest_of(v) == sol_plain.greatest_of(v)

    def test_instantiation_copies_fewer_constraints(self, const_lat):
        ka, kb = fresh_qual_var(), fresh_qual_var()
        body = two_var_body(ka, kb)
        interior = [fresh_qual_var() for _ in range(4)]
        chain = [ka, *interior, kb]
        constraints = [c(a, b) for a, b in zip(chain, chain[1:])]
        plain = generalize(body, constraints, set())
        compressed = generalize(
            body, constraints, set(), lattice=const_lat, compress=True
        )
        assert len(compressed.constraints) < len(plain.constraints)
        _, carried = compressed.instantiate()
        assert len(carried) == len(compressed.constraints)


def nested_body(variables):
    """A ref-nest whose levels carry every given variable, innermost int."""
    out = QType(variables[-1], QCon(INT))
    for v in reversed(variables[:-1]):
        out = QType(v, QCon(REF, (out,)))
    return out


class TestFanGuard:
    def test_high_fan_interior_variable_is_kept(self, const_lat):
        outer = [fresh_qual_var() for _ in range(5)]
        ki = fresh_qual_var()
        body = nested_body(outer)  # every outer var is interface
        constraints = [c(v, ki) for v in outer[:2]]
        constraints += [c(ki, v) for v in outer[2:]]
        compressed = generalize(
            body, constraints, set(), lattice=const_lat, compress=True
        )
        # 2 lowers x 3 uppers = 6 products > 5 removed constraints: the
        # elimination would grow the system, so the variable survives.
        assert ki in compressed.quantified
        assert set(compressed.constraints) == set(constraints)


class TestGroundByProducts:
    def test_unsatisfiable_ground_product_is_kept(self, const_lat):
        ka = fresh_qual_var()
        ki = fresh_qual_var()
        nc = const_lat.negate("const")
        body = QType(ka, QCon(INT))
        constraints = [
            c(const_lat.top, ki, "forced low"),
            c(ki, nc, "forced high"),
            c(ki, ka, "tether"),
        ]
        compressed = generalize(
            body, constraints, set(), lattice=const_lat, compress=True
        )
        _, carried = compressed.instantiate()
        assert not satisfiable(carried, const_lat)

    def test_true_ground_product_is_dropped(self, const_lat):
        ka = fresh_qual_var()
        ki = fresh_qual_var()
        body = QType(ka, QCon(INT))
        constraints = [
            c(const_lat.bottom, ki, "low"),
            c(ki, const_lat.top, "high"),
            c(ki, ka, "tether"),
        ]
        compressed = generalize(
            body, constraints, set(), lattice=const_lat, compress=True
        )
        assert not any(
            isinstance(cc.lhs, type(const_lat.bottom))
            and isinstance(cc.rhs, type(const_lat.bottom))
            for cc in compressed.constraints
        )


class TestEnvVarsStayFree:
    def test_env_variables_are_never_quantified_or_eliminated(self, const_lat):
        ka = fresh_qual_var()
        kenv = fresh_qual_var()
        ki = fresh_qual_var()
        body = QType(ka, QCon(INT))
        constraints = [c(kenv, ki, "from env"), c(ki, ka, "to body")]
        # with no env restriction both kenv and ki are quantified interior
        # variables with no lower bounds: eliminating them is sound and
        # leaves nothing to carry
        compressed = generalize(
            body, constraints, set(), lattice=const_lat, compress=True,
        )
        assert compressed.constraints == ()
        assert set(compressed.quantified) == {ka}

        restricted = generalize(
            body, constraints, {kenv}, lattice=const_lat, compress=True
        )
        assert kenv not in restricted.quantified
        flat = [(cc.lhs, cc.rhs) for cc in restricted.constraints]
        assert (kenv, ka) in flat
