"""Tests for the bitmask lattice kernel: hash-consing, mask round-trips,
and agreement of the mask-level operations with the set-level definitions."""

import itertools
import pickle

import pytest

from repro.qual.lattice import LatticeError
from repro.qual.qualifiers import const_lattice, paper_figure2_lattice


def all_elements(lattice):
    names = [q.name for q in lattice.qualifiers]
    out = []
    for r in range(len(names) + 1):
        for combo in itertools.combinations(names, r):
            out.append(lattice.element(*combo))
    return out


class TestInterning:
    def test_equal_elements_are_identical(self, fig2_lat):
        a = fig2_lat.element("const")
        b = fig2_lat.element("const")
        assert a is b

    def test_construction_orders_agree(self, fig2_lat):
        a = fig2_lat.element("const", "dynamic")
        b = fig2_lat.element("dynamic", "const")
        assert a is b

    def test_join_meet_return_interned(self, fig2_lat):
        a = fig2_lat.atom("const")
        b = fig2_lat.atom("dynamic")
        j = fig2_lat.join(a, b)
        assert j is fig2_lat.join(a, b)
        assert fig2_lat.meet(j, a) is a

    def test_bottom_top_are_interned(self, const_lat):
        assert const_lat.bottom is const_lat.element(*const_lat.bottom.present)
        assert const_lat.top is const_lat.element(*const_lat.top.present)

    def test_distinct_but_equal_lattices_compare_equal(self):
        first, second = const_lattice(), const_lattice()
        a = first.element("const")
        b = second.element("const")
        assert a is not b  # separate intern tables
        assert a == b  # structural equality still holds
        assert hash(a) == hash(b)

    def test_unknown_qualifier_rejected(self, const_lat):
        with pytest.raises(LatticeError):
            const_lat.element("no_such_qualifier")

    def test_pickle_roundtrip(self, fig2_lat):
        original = fig2_lat.atom("const")
        copy = pickle.loads(pickle.dumps(original))
        assert copy == original
        assert copy.present == original.present


class TestMaskRoundTrip:
    def test_from_mask_inverts_mask(self, fig2_lat):
        for element in all_elements(fig2_lat):
            assert fig2_lat.from_mask(element.mask) is element

    def test_stray_bits_rejected(self, fig2_lat):
        full = fig2_lat.top.mask | fig2_lat.bottom.mask
        with pytest.raises(LatticeError):
            fig2_lat.from_mask((full << 1) | full | (1 << 60))


class TestMaskOpsMatchSetSemantics:
    """Exhaustive check over every element pair of the Figure 2 lattice
    that the bitmask formulas implement the paper's polarity order."""

    def _leq_by_definition(self, lattice, a, b):
        for q in lattice.qualifiers:
            if q.positive:
                if q.name in a.present and q.name not in b.present:
                    return False
            else:
                if q.name in b.present and q.name not in a.present:
                    return False
        return True

    def test_leq_matches(self, fig2_lat):
        for a in all_elements(fig2_lat):
            for b in all_elements(fig2_lat):
                assert fig2_lat.leq(a, b) == self._leq_by_definition(
                    fig2_lat, a, b
                ), (a.present, b.present)

    def test_join_is_least_upper_bound(self, fig2_lat):
        elements = all_elements(fig2_lat)
        for a in elements:
            for b in elements:
                j = fig2_lat.join(a, b)
                assert fig2_lat.leq(a, j) and fig2_lat.leq(b, j)
                for other in elements:
                    if fig2_lat.leq(a, other) and fig2_lat.leq(b, other):
                        assert fig2_lat.leq(j, other)

    def test_meet_is_greatest_lower_bound(self, fig2_lat):
        elements = all_elements(fig2_lat)
        for a in elements:
            for b in elements:
                m = fig2_lat.meet(a, b)
                assert fig2_lat.leq(m, a) and fig2_lat.leq(m, b)
                for other in elements:
                    if fig2_lat.leq(other, a) and fig2_lat.leq(other, b):
                        assert fig2_lat.leq(other, m)
