"""Unit tests for the structural subtyping rules (Figure 4a, Section 2.4):
decomposition to atomic constraints, the ground subtype check, and the
deliberately unsound covariant-ref rule used in the ablation."""

import pytest

from repro.qual.constraints import SubtypeConstraint
from repro.qual.qtypes import (
    PAIR,
    fresh_qual_var,
    q_fun,
    q_int,
    q_ref,
    q_unit,
    q_var,
    qt,
)
from repro.qual.qualifiers import const_lattice, const_nonzero_lattice
from repro.qual.subtype import (
    ShapeMismatch,
    decompose,
    decompose_all,
    is_equal,
    is_subtype,
    unsound_ref_decompose,
)


def atoms(lhs, rhs):
    return decompose(SubtypeConstraint(lhs, rhs))


class TestSubInt:
    def test_int_yields_single_atom(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        out = atoms(q_int(k1), q_int(k2))
        assert len(out) == 1
        assert (out[0].lhs, out[0].rhs) == (k1, k2)

    def test_unit_same(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        out = atoms(q_unit(k1), q_unit(k2))
        assert len(out) == 1


class TestSubFun:
    def test_contravariant_domain(self):
        ks = [fresh_qual_var() for _ in range(6)]
        lhs = q_fun(ks[0], q_int(ks[1]), q_int(ks[2]))
        rhs = q_fun(ks[3], q_int(ks[4]), q_int(ks[5]))
        out = atoms(lhs, rhs)
        pairs = {(a.lhs, a.rhs) for a in out}
        assert (ks[0], ks[3]) in pairs  # top-level covariant
        assert (ks[4], ks[1]) in pairs  # domain flipped
        assert (ks[2], ks[5]) in pairs  # range covariant
        assert len(out) == 3

    def test_ground_fun_subtyping(self):
        lat = const_lattice()
        # (const int -> int)  <=  (int -> const int)?  domain: int <= const int ok;
        # range: int <= const int ok; so lhs <= rhs when lhs domain is larger.
        sub = q_fun(lat.bottom, q_int(lat.top), q_int(lat.bottom))
        sup = q_fun(lat.bottom, q_int(lat.bottom), q_int(lat.top))
        assert is_subtype(sub, sup, lat)
        assert not is_subtype(sup, sub, lat)


class TestSubRef:
    def test_ref_contents_equated(self):
        k1, k2, k3, k4 = (fresh_qual_var() for _ in range(4))
        out = atoms(q_ref(k1, q_int(k2)), q_ref(k3, q_int(k4)))
        pairs = {(a.lhs, a.rhs) for a in out}
        assert (k1, k3) in pairs
        # invariance: both directions on contents
        assert (k2, k4) in pairs and (k4, k2) in pairs

    def test_ground_ref_promotion_top_level_only(self):
        lat = const_nonzero_lattice()
        inner = q_int(lat.bottom)
        assert is_subtype(q_ref(lat.bottom, inner), q_ref(lat.top, inner), lat)

    def test_ground_ref_different_contents_rejected(self):
        lat = const_nonzero_lattice()
        nz = q_int(lat.element("nonzero"))
        plain = q_int(lat.element())
        assert not is_subtype(q_ref(lat.bottom, nz), q_ref(lat.bottom, plain), lat)
        assert not is_subtype(q_ref(lat.bottom, plain), q_ref(lat.bottom, nz), lat)


class TestShapeVars:
    def test_same_var_ok(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        out = atoms(q_var(k1, "a"), q_var(k2, "a"))
        assert len(out) == 1

    def test_different_vars_mismatch(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        with pytest.raises(ShapeMismatch):
            atoms(q_var(k1, "a"), q_var(k2, "b"))

    def test_var_vs_constructor_mismatch(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        with pytest.raises(ShapeMismatch):
            atoms(q_var(k1, "a"), q_int(k2))


class TestShapeMismatch:
    def test_different_constructors(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        with pytest.raises(ShapeMismatch):
            atoms(q_int(k1), q_unit(k2))

    def test_is_subtype_false_on_mismatch(self):
        lat = const_lattice()
        assert not is_subtype(q_int(lat.bottom), q_unit(lat.bottom), lat)

    def test_mismatch_carries_origin(self):
        from repro.qual.constraints import Origin

        k1, k2 = fresh_qual_var(), fresh_qual_var()
        with pytest.raises(ShapeMismatch) as err:
            decompose(
                SubtypeConstraint(q_int(k1), q_unit(k2), Origin("here", line=7))
            )
        assert "here" in str(err.value)


class TestGroundChecks:
    def test_is_subtype_requires_ground(self):
        lat = const_lattice()
        with pytest.raises(TypeError):
            is_subtype(q_int(fresh_qual_var()), q_int(lat.bottom), lat)

    def test_is_equal(self):
        lat = const_lattice()
        a = q_ref(lat.bottom, q_int(lat.top))
        b = q_ref(lat.bottom, q_int(lat.top))
        c = q_ref(lat.top, q_int(lat.top))
        assert is_equal(a, b, lat)
        assert not is_equal(a, c, lat)

    def test_covariant_pair(self):
        lat = const_lattice()
        lo = qt(lat.bottom, PAIR, q_int(lat.bottom), q_int(lat.bottom))
        hi = qt(lat.top, PAIR, q_int(lat.top), q_int(lat.top))
        assert is_subtype(lo, hi, lat)
        assert not is_subtype(hi, lo, lat)


class TestUnsoundRule:
    def test_unsound_covariant_ref(self):
        k1, k2, k3, k4 = (fresh_qual_var() for _ in range(4))
        out = unsound_ref_decompose(
            SubtypeConstraint(q_ref(k1, q_int(k2)), q_ref(k3, q_int(k4)))
        )
        pairs = {(a.lhs, a.rhs) for a in out}
        assert (k2, k4) in pairs
        assert (k4, k2) not in pairs  # only one direction: the unsoundness

    def test_unsound_keeps_fun_contravariance(self):
        ks = [fresh_qual_var() for _ in range(6)]
        lhs = q_fun(ks[0], q_int(ks[1]), q_int(ks[2]))
        rhs = q_fun(ks[3], q_int(ks[4]), q_int(ks[5]))
        out = unsound_ref_decompose(SubtypeConstraint(lhs, rhs))
        pairs = {(a.lhs, a.rhs) for a in out}
        assert (ks[4], ks[1]) in pairs

    def test_unsound_still_rejects_shape_mismatch(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        with pytest.raises(ShapeMismatch):
            unsound_ref_decompose(SubtypeConstraint(q_int(k1), q_unit(k2)))


class TestDecomposeAll:
    def test_batches(self):
        k = [fresh_qual_var() for _ in range(4)]
        out = decompose_all(
            [
                SubtypeConstraint(q_int(k[0]), q_int(k[1])),
                SubtypeConstraint(q_int(k[2]), q_int(k[3])),
            ]
        )
        assert len(out) == 2
