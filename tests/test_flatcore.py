"""The flat-array (CSR) solver core against the object pipeline.

Three promises are enforced here:

* **agreement** — ``flat_solve`` produces the same per-variable extreme
  solutions, the same verdicts (including byte-identical unsat
  messages), and the same :class:`SolverStats` as ``solve`` and the
  same fixpoints as ``solve_reference``, on hypothesis-generated
  systems and on the benchmark shapes, through both kernels (numpy and
  the pure-stdlib fallback);
* **round trip** — serialise -> ``mmap`` -> wrap zero-copy -> solve is
  byte-identical to the in-memory solve, and re-serialising reproduces
  the original buffer bit for bit;
* **laziness** — a deserialised system rehydrates variable names and
  ``QualVar`` objects only on demand.
"""

import mmap
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.qual.flatcore as flatcore
from repro.qual.constraints import QualConstraint
from repro.qual.flatcore import FlatSystem, fast_available, flat_solve
from repro.qual.lattice import QualifierLattice, negative, positive
from repro.qual.qtypes import QualVar
from repro.qual.qualifiers import const_lattice
from repro.qual.solver import (
    IndexedSystem,
    UnsatisfiableError,
    solve,
    solve_reference,
)

_LATTICES = [
    QualifierLattice([positive("const")]),
    QualifierLattice([negative("nonzero")]),
    QualifierLattice([positive("const"), negative("nonzero")]),
]

_VARS = [QualVar(f"v{i}", 20_000_000 + i) for i in range(5)]


@st.composite
def constraint_systems(draw):
    lattice = draw(st.sampled_from(_LATTICES))
    elements = list(lattice.elements())
    n = draw(st.integers(min_value=0, max_value=8))
    constraints = []
    for _ in range(n):
        side = draw(st.integers(min_value=0, max_value=2))
        if side == 0:
            lhs = draw(st.sampled_from(_VARS))
            rhs = draw(st.sampled_from(_VARS))
        elif side == 1:
            lhs = draw(st.sampled_from(elements))
            rhs = draw(st.sampled_from(_VARS))
        else:
            lhs = draw(st.sampled_from(_VARS))
            rhs = draw(st.sampled_from(elements))
        constraints.append(QualConstraint(lhs, rhs))
    return lattice, constraints


def verdict(solve_fn, constraints, lattice, extra_vars=()):
    """('sat', fingerprint-with-stats) or ('unsat', full message)."""
    try:
        solution = solve_fn(constraints, lattice, extra_vars=extra_vars)
    except UnsatisfiableError as exc:
        return ("unsat", str(exc))
    fingerprint = {
        f"{v.name}#{v.uid}": (
            tuple(sorted(solution.least_of(v).present)),
            tuple(sorted(solution.greatest_of(v).present)),
        )
        for v in set(solution.least) | set(solution.greatest)
    }
    return ("sat", fingerprint, str(solution.stats) if solution.stats else None)


@given(constraint_systems())
@settings(max_examples=200, deadline=None)
def test_flat_solve_fingerprints_match_both_solvers(data):
    lattice, constraints = data
    flat = verdict(flat_solve, constraints, lattice, _VARS)
    pipeline = verdict(solve, constraints, lattice, _VARS)
    assert flat == pipeline
    reference = verdict(solve_reference, constraints, lattice, _VARS)
    # solve_reference carries no stats; fingerprints and verdicts agree.
    assert flat[:2] == reference[:2]


@given(constraint_systems())
@settings(max_examples=100, deadline=None)
def test_stdlib_kernel_matches_fast_kernel(data):
    lattice, constraints = data
    fast = verdict(flat_solve, constraints, lattice, _VARS)
    saved = flatcore._FAST
    flatcore._FAST = None
    try:
        slow = verdict(flat_solve, constraints, lattice, _VARS)
    finally:
        flatcore._FAST = saved
    assert fast == slow


@given(constraint_systems())
@settings(max_examples=100, deadline=None)
def test_serialised_solve_matches_in_memory(data):
    lattice, constraints = data
    system = IndexedSystem(lattice)
    system.add_many(constraints)
    for v in _VARS:
        system.add_var(v)
    flat = FlatSystem.from_indexed(system)
    try:
        in_memory = flat.solve()
    except UnsatisfiableError:
        return
    revived = FlatSystem.from_buffer(flat.to_bytes())
    rerun = revived.solve()
    for v in _VARS:
        assert rerun.least_of(v) == in_memory.least_of(v)
        assert rerun.greatest_of(v) == in_memory.greatest_of(v)
    assert str(rerun.stats) == str(in_memory.stats)


def big_system(lattice, n=2000):
    """Large enough to cross the solver's fast-path threshold: a chain
    with embedded cycles, a lower bound, and an upper bound."""
    variables = [QualVar(f"b{i}", 30_000_000 + i) for i in range(n)]
    constraints = [
        QualConstraint(variables[i], variables[i + 1]) for i in range(n - 1)
    ]
    for i in range(0, n - 10, 97):
        constraints.append(QualConstraint(variables[i + 5], variables[i]))
    constraints.append(QualConstraint(lattice.atom("const"), variables[0]))
    constraints.append(QualConstraint(variables[-1], lattice.atom("const")))
    return variables, constraints


class TestFastPathParity:
    """The fast kernel inside ``IndexedSystem.solve`` against the object
    loops, on systems big enough to actually take it."""

    def test_values_and_stats_identical(self, monkeypatch):
        import repro.qual.solver as solver_mod

        lattice = const_lattice()
        variables, constraints = big_system(lattice)
        fast = solve(constraints, lattice)
        monkeypatch.setattr(solver_mod, "_FLAT_FAST_MIN", 10**9)
        slow = solve(constraints, lattice)
        # Without numpy (or under REPRO_FLATCORE=stdlib) the large-system
        # dispatch falls back to the object pipeline; the values/stats
        # parity checks below still hold, only the types coincide.
        if fast_available():
            assert type(fast).__name__ == "FlatSolution"
        assert type(slow).__name__ == "Solution"
        for v in variables:
            assert fast.least_of(v) == slow.least_of(v)
            assert fast.greatest_of(v) == slow.greatest_of(v)
        assert str(fast.stats) == str(slow.stats)
        assert fast.least == slow.least
        assert fast.greatest == slow.greatest

    def test_unsat_blame_identical(self, monkeypatch):
        import repro.qual.solver as solver_mod

        lattice = const_lattice()
        variables, constraints = big_system(lattice)
        constraints.append(QualConstraint(variables[0], lattice.element()))
        with pytest.raises(UnsatisfiableError) as fast:
            solve(constraints, lattice)
        monkeypatch.setattr(solver_mod, "_FLAT_FAST_MIN", 10**9)
        with pytest.raises(UnsatisfiableError) as slow:
            solve(constraints, lattice)
        assert str(fast.value) == str(slow.value)
        assert fast.value.explain() == slow.value.explain()


class TestRoundTrip:
    def flat_chain(self, with_solution=True):
        lattice = const_lattice()
        variables, constraints = big_system(lattice, n=300)
        system = IndexedSystem(lattice)
        system.add_many(constraints)
        flat = FlatSystem.from_indexed(system)
        if with_solution:
            flat.attach_solution()
        return lattice, variables, flat

    def test_serialise_is_deterministic_and_stable(self):
        _, _, flat = self.flat_chain()
        blob = flat.to_bytes()
        assert flat.to_bytes() == blob
        revived = FlatSystem.from_buffer(blob)
        revived.attach_solution()
        assert revived.to_bytes() == blob

    def test_mmap_solve_byte_identical_to_in_memory(self, tmp_path):
        _, variables, flat = self.flat_chain()
        in_memory = flat.stored_solution()
        path = tmp_path / "system.qfc"
        path.write_bytes(flat.to_bytes())
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            revived = FlatSystem.from_buffer(mapped)
            stored = revived.stored_solution()
            resolved = revived.solve()
            for v in variables:
                assert stored.least_of(v) == in_memory.least_of(v)
                assert resolved.least_of(v) == in_memory.least_of(v)
                assert stored.greatest_of(v) == in_memory.greatest_of(v)
                assert resolved.greatest_of(v) == in_memory.greatest_of(v)
            assert str(stored.stats) == str(in_memory.stats)
            assert str(resolved.stats) == str(in_memory.stats)

    def test_lattice_survives_serialisation(self):
        lattice = QualifierLattice([positive("const"), negative("nonzero")])
        system = IndexedSystem(lattice)
        system.add_many(
            [QualConstraint(lattice.element("const"), _VARS[0])]
        )
        revived = FlatSystem.from_buffer(FlatSystem.from_indexed(system).to_bytes())
        assert revived.lattice.signature() == lattice.signature()
        assert revived.lattice == lattice

    def test_truncated_buffers_raise_value_error(self):
        _, _, flat = self.flat_chain()
        blob = flat.to_bytes()
        for cut in (0, 3, flatcore._HEADER.size - 1, flatcore._HEADER.size + 7,
                    len(blob) // 2, len(blob) - 8):
            with pytest.raises((ValueError, struct.error)):
                FlatSystem.from_buffer(blob[:cut])

    def test_bad_magic_and_version_raise(self):
        _, _, flat = self.flat_chain()
        blob = bytearray(flat.to_bytes())
        with pytest.raises(ValueError, match="magic"):
            FlatSystem.from_buffer(b"NOPE" + bytes(blob[4:]))
        blob[4] = 0xFF
        with pytest.raises(ValueError, match="version"):
            FlatSystem.from_buffer(bytes(blob))

    def test_corrupt_name_table_raises(self):
        _, _, flat = self.flat_chain()
        good = flat.to_bytes()
        # Shrink the declared name-blob length without moving the table.
        header = list(flatcore._HEADER.unpack_from(good, 0))
        header[6] -= 1  # names_len
        bad = flatcore._HEADER.pack(*header) + good[flatcore._HEADER.size :]
        with pytest.raises(ValueError):
            FlatSystem.from_buffer(bad)


class TestLazyRehydration:
    def test_names_decoded_on_demand(self):
        lattice = const_lattice()
        system = IndexedSystem(lattice)
        system.add_many(
            [QualConstraint(_VARS[0], _VARS[1]), QualConstraint(_VARS[1], _VARS[2])]
        )
        revived = FlatSystem.from_buffer(FlatSystem.from_indexed(system).to_bytes())
        assert revived._name_cache == {} and revived._var_cache == {}
        var = revived.var(1)
        assert (var.name, var.uid) == (_VARS[1].name, _VARS[1].uid)
        assert set(revived._var_cache) == {1}
        assert revived.var(1) is var  # memoised

    def test_index_of_roundtrips_and_rejects_strangers(self):
        lattice = const_lattice()
        system = IndexedSystem(lattice)
        system.add_many([QualConstraint(_VARS[0], _VARS[1])])
        revived = FlatSystem.from_buffer(FlatSystem.from_indexed(system).to_bytes())
        assert revived.index_of(_VARS[0]) == 0
        assert revived.index_of(_VARS[1]) == 1
        assert revived.index_of(QualVar("stranger", 999_999_999)) is None
        # Same uid but a different name is not the same variable.
        assert revived.index_of(QualVar("impostor", _VARS[0].uid)) is None

    def test_solution_defaults_for_unknown_vars(self):
        lattice = const_lattice()
        solution = flat_solve([QualConstraint(_VARS[0], _VARS[1])], lattice)
        stranger = QualVar("stranger", 999_999_998)
        assert solution.least_of(stranger) == lattice.bottom
        assert solution.greatest_of(stranger) == lattice.top


def test_fits_flat_rejects_oversized_lattices():
    lattice = QualifierLattice([positive(f"q{i}") for i in range(63)])
    assert not flatcore.fits_flat(lattice)
    assert flatcore.fits_flat(const_lattice())


def test_benchmark_shapes_agree_end_to_end():
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
    try:
        from test_solver_bench import chain_system, cyclic_system, fanout_system
    finally:
        sys.path.pop(0)

    lattice = const_lattice()
    for _, constraints in (
        chain_system(lattice, 1500),
        fanout_system(lattice, 1500),
        cyclic_system(lattice, 1500),
    ):
        flat = verdict(flat_solve, constraints, lattice)
        pipeline = verdict(solve, constraints, lattice)
        assert flat == pipeline
