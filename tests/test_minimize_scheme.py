"""Tests for scheme minimisation (the Section 6 presentation problem).

Correctness criterion: minimisation must preserve the scheme's meaning —
the set of instantiations of the *body's* qualifier variables admitted
by the carried constraints.  The property test checks that by brute
force over small lattices.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qual.constraints import QualConstraint
from repro.qual.poly import QualScheme, minimize_scheme
from repro.qual.qtypes import QualVar, q_fun, q_int, qual_vars
from repro.qual.qualifiers import const_lattice, const_nonzero_lattice
from repro.qual.solver import check_ground


def var(i):
    return QualVar(f"m{i}", 20_000_000 + i)


class TestCycleCollapse:
    def test_cycle_merges_variables(self):
        lat = const_lattice()
        a, b = var(1), var(2)
        scheme = QualScheme(
            (a, b),
            q_fun(a, q_int(b), q_int(b)),
            (QualConstraint(a, b), QualConstraint(b, a)),
        )
        out = minimize_scheme(scheme, lat)
        assert len(out.quantified) == 1
        assert not out.constraints  # the cycle collapsed away
        assert len(qual_vars(out.body)) == 1

    def test_three_cycle(self):
        lat = const_lattice()
        a, b, c = var(3), var(4), var(5)
        scheme = QualScheme(
            (a, b, c),
            q_int(a),
            (
                QualConstraint(a, b),
                QualConstraint(b, c),
                QualConstraint(c, a),
            ),
        )
        out = minimize_scheme(scheme, lat)
        assert out.quantified == (a,)  # body var kept as representative
        assert not out.constraints


class TestInteriorElimination:
    def test_chain_through_interior(self):
        lat = const_lattice()
        a, mid, b = var(6), var(7), var(8)
        scheme = QualScheme(
            (a, mid, b),
            q_fun(a, q_int(a), q_int(b)),
            (QualConstraint(a, mid), QualConstraint(mid, b)),
        )
        out = minimize_scheme(scheme, lat)
        assert mid not in out.quantified
        assert QualConstraint(a, b) in out.constraints

    def test_interior_with_constant_bounds(self):
        lat = const_lattice()
        a, mid = var(9), var(10)
        scheme = QualScheme(
            (a, mid),
            q_int(a),
            (
                QualConstraint(lat.atom("const"), mid),
                QualConstraint(mid, a),
            ),
        )
        out = minimize_scheme(scheme, lat)
        assert mid not in out.quantified
        assert QualConstraint(lat.atom("const"), a) in out.constraints

    def test_unconstrained_interior_disappears(self):
        lat = const_lattice()
        a, junk = var(11), var(12)
        scheme = QualScheme((a, junk), q_int(a), ())
        out = minimize_scheme(scheme, lat)
        assert out.quantified == (a,)


class TestTransitiveReduction:
    def test_implied_edge_dropped(self):
        lat = const_lattice()
        a, b, c = var(13), var(14), var(15)
        scheme = QualScheme(
            (a, b, c),
            q_fun(a, q_int(b), q_int(c)),
            (
                QualConstraint(a, b),
                QualConstraint(b, c),
                QualConstraint(a, c),  # implied
            ),
        )
        out = minimize_scheme(scheme, lat)
        assert QualConstraint(a, c) not in out.constraints
        assert len(out.constraints) == 2

    def test_trivial_constant_bounds_dropped(self):
        lat = const_lattice()
        a = var(16)
        scheme = QualScheme(
            (a,),
            q_int(a),
            (
                QualConstraint(lat.bottom, a),  # trivial
                QualConstraint(a, lat.top),  # trivial
            ),
        )
        out = minimize_scheme(scheme, lat)
        assert not out.constraints


# ---------------------------------------------------------------------------
# The semantic preservation property
# ---------------------------------------------------------------------------

_VARS = [var(100 + i) for i in range(4)]


@st.composite
def schemes(draw):
    lattice = draw(st.sampled_from([const_lattice(), const_nonzero_lattice()]))
    elements = list(lattice.elements())
    body_count = draw(st.integers(min_value=1, max_value=2))
    body_vars = _VARS[:body_count]
    body = q_fun(body_vars[0], q_int(body_vars[-1]), q_int(body_vars[0]))
    n = draw(st.integers(min_value=0, max_value=5))
    constraints = []
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            constraints.append(
                QualConstraint(
                    draw(st.sampled_from(_VARS)), draw(st.sampled_from(_VARS))
                )
            )
        elif kind == 1:
            constraints.append(
                QualConstraint(
                    draw(st.sampled_from(elements)), draw(st.sampled_from(_VARS))
                )
            )
        else:
            constraints.append(
                QualConstraint(
                    draw(st.sampled_from(_VARS)), draw(st.sampled_from(elements))
                )
            )
    return lattice, QualScheme(tuple(_VARS), body, tuple(constraints)), body_vars


def projection(lattice, scheme, body_vars):
    """All assignments of the body vars extendable to full solutions."""
    elements = list(lattice.elements())
    all_vars = sorted(
        set(scheme.quantified)
        | {
            q
            for c in scheme.constraints
            for q in (c.lhs, c.rhs)
            if isinstance(q, QualVar)
        }
        | set(body_vars),
        key=lambda v: v.uid,
    )
    admitted = set()
    for values in itertools.product(elements, repeat=len(all_vars)):
        assignment = dict(zip(all_vars, values))
        if check_ground(scheme.constraints, lattice, assignment) is None:
            admitted.add(tuple(assignment[v] for v in body_vars))
    return admitted


@given(schemes())
@settings(max_examples=120, deadline=None)
def test_minimize_preserves_body_solution_set(data):
    lattice, scheme, body_vars = data
    before = projection(lattice, scheme, body_vars)
    minimized = minimize_scheme(scheme, lattice)
    # the body may have been rewritten by cycle collapse: build the var
    # mapping by position in the body structure.
    from repro.qual.qtypes import quals_of

    mapping = dict(zip(quals_of(scheme.body), quals_of(minimized.body)))
    mapped_body_vars = [mapping[v] for v in body_vars]
    after_raw = projection(lattice, minimized, mapped_body_vars)
    assert before == after_raw


@given(schemes())
@settings(max_examples=60, deadline=None)
def test_minimize_never_grows(data):
    lattice, scheme, _ = data
    minimized = minimize_scheme(scheme, lattice)
    assert len(minimized.constraints) <= len(scheme.constraints)
    assert len(minimized.quantified) <= len(scheme.quantified)


def test_real_inferred_scheme_shrinks():
    """The paper's id function: the raw inferred scheme carries the
    internal plumbing; minimisation leaves the essential shape."""
    from repro.lam.infer import const_language, infer
    from repro.lam.parser import parse

    result = infer(
        parse("let id = fn x. x in id (ref 1) ni"),
        const_language(),
        polymorphic=True,
    )
    scheme = next(iter(result.let_schemes.values()))
    minimized = minimize_scheme(scheme, const_language().lattice)
    assert len(minimized.constraints) <= len(scheme.constraints)
    assert len(minimized.quantified) <= len(scheme.quantified)
