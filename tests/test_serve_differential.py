"""Differential tests: the daemon's ``analyze`` response must carry the
same rendered report, **byte for byte**, as the stdout of the one-shot
``python -m repro.checker`` over the same tree — across formats,
per-file and whole-program modes, and cold versus warm (memory-tier)
session states."""

from pathlib import Path

import pytest

from repro.checker.cli import main as checker_main
from repro.serve import Session

CORPUS = Path(__file__).resolve().parent.parent / "examples" / "multi_tu"


def one_shot(capsys, argv):
    """One-shot CLI stdout + exit code, exactly as a subprocess would see."""
    code = checker_main(argv)
    captured = capsys.readouterr()
    return captured.out, code


@pytest.fixture
def session(tmp_path):
    s = Session(cache_dir=str(tmp_path / "serve-cache"))
    yield s
    s.close()


@pytest.mark.parametrize("fmt", ["json", "sarif", "human"])
@pytest.mark.parametrize("whole", [False, True])
def test_daemon_matches_one_shot_cold_and_warm(capsys, session, fmt, whole):
    argv = [str(CORPUS), "--format", fmt] + (["--whole-program"] if whole else [])
    expected_out, expected_code = one_shot(capsys, argv)
    assert expected_out  # the corpus produces a report in every format

    params = {"paths": [str(CORPUS)], "format": fmt, "whole_program": whole}
    cold = session.analyze(params)
    assert cold["report"] == expected_out
    assert cold["exit_code"] == expected_code

    # Warm: diagnostics now come from the in-memory tier; output must
    # not drift by a byte.
    warm = session.analyze(params)
    assert warm["report"] == expected_out
    assert warm["exit_code"] == expected_code
    if not whole:
        assert warm["cache_hits"] == len(warm["files"])


def test_daemon_matches_one_shot_single_file(capsys, session):
    target = str(CORPUS / "input.c")
    expected_out, expected_code = one_shot(capsys, [target, "--format", "json"])
    result = session.analyze({"paths": [target], "format": "json"})
    assert result["report"] == expected_out
    assert result["exit_code"] == expected_code


def test_edit_then_revert_matches_one_shot_again(capsys, session):
    """After an overlay edit is reverted, the daemon converges back to
    the one-shot answer — stale resident state must not leak."""
    argv = [str(CORPUS), "--format", "json"]
    expected_out, _ = one_shot(capsys, argv)
    params = {"paths": [str(CORPUS)], "format": "json"}
    target = str(CORPUS / "main.c")

    assert session.analyze(params)["report"] == expected_out
    session.did_change({"file": target, "text": "int main(void) { return 0; }\n"})
    edited = session.analyze(params)
    assert edited["report"] != expected_out
    session.did_change({"file": target, "text": None})
    assert session.analyze(params)["report"] == expected_out


def test_check_subset_matches_one_shot(capsys, session):
    expected_out, _ = one_shot(
        capsys, [str(CORPUS), "--format", "json", "--checks", "tainted-format"]
    )
    result = session.analyze(
        {"paths": [str(CORPUS)], "format": "json", "checks": ["tainted-format"]}
    )
    assert result["report"] == expected_out
