"""Extended C parser coverage: gnarlier declarators, abstract types,
expression corner cases, and realistic code shapes from the paper's
benchmark domain (string utilities, tables, parsers)."""

import pytest

from repro.cfront.cast import (
    Cast,
    FuncDecl,
    FuncDef,
    SizeofType,
    StructDef,
    VarDecl,
)
from repro.cfront.cparser import CParseError, parse_c
from repro.cfront.ctypes import (
    CArray,
    CBase,
    CFunc,
    CPointer,
    CStruct,
    format_ctype,
)


def only(unit, kind):
    out = [i for i in unit.items if isinstance(i, kind)]
    assert len(out) == 1
    return out[0]


class TestDeclaratorZoo:
    def test_array_of_pointers(self):
        decl = only(parse_c("char *names[8];"), VarDecl)
        assert isinstance(decl.type, CArray)
        assert isinstance(decl.type.element, CPointer)

    def test_pointer_to_array(self):
        decl = only(parse_c("int (*grid)[4];"), VarDecl)
        assert isinstance(decl.type, CPointer)
        assert isinstance(decl.type.target, CArray)

    def test_two_dimensional_array(self):
        decl = only(parse_c("char screen[24][80];"), VarDecl)
        assert isinstance(decl.type, CArray) and decl.type.size == 24
        assert isinstance(decl.type.element, CArray)
        assert decl.type.element.size == 80

    def test_array_of_function_pointers(self):
        decl = only(parse_c("int (*table[4])(int);"), VarDecl)
        assert isinstance(decl.type, CArray)
        assert isinstance(decl.type.element, CPointer)
        assert isinstance(decl.type.element.target, CFunc)

    def test_function_returning_function_pointer(self):
        decl = only(parse_c("int (*pick(int which))(char);"), FuncDecl)
        assert decl.name == "pick"
        assert isinstance(decl.ret, CPointer)
        assert isinstance(decl.ret.target, CFunc)

    def test_const_pointer_to_const(self):
        decl = only(parse_c("const char * const path;"), VarDecl)
        assert "const" in decl.type.quals
        assert "const" in decl.type.target.quals

    def test_unnamed_prototype_params(self):
        decl = only(parse_c("int cmp(const void *, const void *);"), FuncDecl)
        assert [p.name for p in decl.params] == [None, None]
        assert all(isinstance(p.type, CPointer) for p in decl.params)

    def test_volatile_tracked(self):
        decl = only(parse_c("volatile int ticks;"), VarDecl)
        assert "volatile" in decl.type.quals

    def test_unsigned_char_pointer(self):
        decl = only(parse_c("unsigned char *bytes;"), VarDecl)
        assert decl.type.target == CBase("char")

    def test_format_of_complex_type(self):
        decl = only(parse_c("int (*table[4])(int);"), VarDecl)
        rendered = format_ctype(decl.type, "table")
        reparsed = only(parse_c(rendered + ";"), VarDecl)
        assert reparsed.type == decl.type


class TestAbstractDeclarators:
    def _cast_type(self, code):
        unit = parse_c(f"void f(void) {{ x = {code}; }}")
        expr = unit.functions()[0].body.body[0].expr.value
        assert isinstance(expr, (Cast, SizeofType))
        return expr.target_type

    def test_cast_to_pointer_pointer(self):
        t = self._cast_type("(char **)v")
        assert isinstance(t, CPointer) and isinstance(t.target, CPointer)

    def test_cast_to_function_pointer(self):
        t = self._cast_type("(int (*)(int))v")
        assert isinstance(t, CPointer)
        assert isinstance(t.target, CFunc)

    def test_sizeof_struct(self):
        unit = parse_c("struct st { int a; }; void f(void) { x = sizeof(struct st); }")
        fdef = unit.functions()[0]
        expr = fdef.body.body[0].expr.value
        assert isinstance(expr, SizeofType)
        assert isinstance(expr.target_type, CStruct)

    def test_sizeof_array_type(self):
        t = self._cast_type("sizeof(int [4])")
        assert isinstance(t, CArray)

    def test_cast_to_const_pointer(self):
        t = self._cast_type("(const char *)v")
        assert "const" in t.target.quals


class TestExpressionCorners:
    def _expr(self, code):
        unit = parse_c(f"void f(void) {{ x = {code}; }}")
        return unit.functions()[0].body.body[0].expr.value

    def test_nested_ternary_in_arg(self):
        e = self._expr("g(a ? b : c, d)")
        assert len(e.args) == 2

    def test_call_of_call(self):
        e = self._expr("outer(1)(2)")
        assert e.func.func.name == "outer"

    def test_address_of_member(self):
        e = self._expr("&rec->field")
        assert e.op == "&"

    def test_dereference_of_cast(self):
        e = self._expr("*(int *)blob")
        assert e.op == "*"
        assert isinstance(e.operand, Cast)

    def test_postfix_on_parenthesised(self):
        e = self._expr("(*p)++")
        assert e.postfix and e.op == "++"

    def test_chained_comparison_parses_left(self):
        e = self._expr("a < b < c")  # legal C, means (a<b)<c
        assert e.op == "<" and e.left.op == "<"

    def test_bitwise_mix(self):
        e = self._expr("a & b | c ^ d")
        assert e.op == "|"

    def test_shift_in_index(self):
        e = self._expr("buf[i << 2]")
        assert e.index.op == "<<"

    def test_negative_literal_argument(self):
        e = self._expr("g(-1, +2)")
        assert len(e.args) == 2

    def test_logical_not_chain(self):
        e = self._expr("!!flag")
        assert e.op == "!" and e.operand.op == "!"


class TestRealisticShapes:
    def test_string_table_module(self):
        source = """
        struct entry { const char *name; int code; };
        static struct entry table[] = {
            { "alpha", 1 },
            { "beta", 2 },
        };
        static int table_size = 2;
        int lookup(const char *name) {
            int i;
            for (i = 0; i < table_size; i++) {
                const char *a = table[i].name;
                const char *b = name;
                while (*a && *b && *a == *b) { a++; b++; }
                if (*a == *b) return table[i].code;
            }
            return -1;
        }
        """
        unit = parse_c(source)
        assert len(unit.functions()) == 1
        assert only(unit, StructDef).tag == "entry"

    def test_tokenizer_fragment(self):
        source = """
        enum tok { T_EOF, T_IDENT, T_NUM };
        static const char *cursor;
        static enum tok peeked;
        enum tok next_token(void) {
            while (*cursor == ' ' || *cursor == '\\t') cursor++;
            if (*cursor == 0) return T_EOF;
            if (*cursor >= '0' && *cursor <= '9') {
                while (*cursor >= '0' && *cursor <= '9') cursor++;
                return T_NUM;
            }
            cursor++;
            return T_IDENT;
        }
        """
        unit = parse_c(source)
        fdef = unit.functions()[0]
        assert fdef.name == "next_token"

    def test_callback_dispatch(self):
        source = """
        typedef void (*handler_t)(int code, void *ctx);
        struct dispatch { int code; handler_t fn; };
        void run(struct dispatch *d, int n, void *ctx) {
            int i;
            for (i = 0; i < n; i++) {
                if (d[i].fn) {
                    d[i].fn(d[i].code, ctx);
                }
            }
        }
        """
        unit = parse_c(source)
        assert unit.functions()[0].name == "run"

    def test_analysis_runs_on_realistic_module(self):
        from repro.cfront.sema import Program
        from repro.constinfer.engine import run_mono, run_poly

        source = """
        struct buf { char *data; int len; int cap; };
        extern void *xmalloc(int n);
        void buf_init(struct buf *b, int cap) {
            b->data = (char *)xmalloc(cap);
            b->len = 0;
            b->cap = cap;
        }
        void buf_push(struct buf *b, char c) {
            if (b->len < b->cap) {
                b->data[b->len] = c;
                b->len = b->len + 1;
            }
        }
        int buf_sum(struct buf *b) {
            int i, total = 0;
            for (i = 0; i < b->len; i++) total += b->data[i];
            return total;
        }
        """
        program = Program.from_source(source)
        mono = run_mono(program)
        poly = run_poly(program)
        assert mono.total_positions() == poly.total_positions() > 0


class TestErrorRecoveryPositions:
    def test_deep_error_reports_line(self):
        source = "int ok;\nint also_ok;\nvoid f(void) {\n  int x = (;\n}\n"
        with pytest.raises(CParseError) as err:
            parse_c(source)
        assert err.value.token.line == 4

    def test_struct_without_tag_or_body(self):
        with pytest.raises(CParseError):
            parse_c("struct;")

    def test_enum_without_tag_or_body(self):
        with pytest.raises(CParseError):
            parse_c("enum;")

    def test_bad_parameter_list(self):
        with pytest.raises(CParseError):
            parse_c("int f(int,);")
