"""The in-memory LRU tier fronting :class:`AnalysisCache`: bounds and
eviction order, ``memory_hits`` accounting, read-through-only population
(corrupt-on-disk stays a miss), ``get_bytes``, and picklability."""

import pickle

from repro.constinfer.cache import (
    DEFAULT_MEMORY_ENTRIES,
    AnalysisCache,
    CacheStats,
    _MemoryTier,
    _MISS,
)


def make_cache(tmp_path, **kwargs):
    return AnalysisCache(tmp_path / "cache", **kwargs)


def key_for(cache, text):
    return cache.key("test", source=text)


# -- the tier itself ------------------------------------------------------


def test_tier_bounds_and_lru_eviction():
    tier = _MemoryTier(maxsize=3)
    for i in range(3):
        tier.put("obj", f"k{i}", i)
    assert len(tier) == 3
    # Touch k0 so k1 becomes least-recently-used, then overflow.
    assert tier.get("obj", "k0") == 0
    tier.put("obj", "k3", 3)
    assert len(tier) == 3
    assert tier.get("obj", "k1") is _MISS
    assert tier.get("obj", "k0") == 0
    assert tier.get("obj", "k3") == 3


def test_tier_keys_are_per_accessor():
    tier = _MemoryTier(maxsize=4)
    tier.put("obj", "k", "decoded")
    tier.put("bytes", "k", b"raw")
    assert tier.get("obj", "k") == "decoded"
    assert tier.get("bytes", "k") == b"raw"


def test_tier_disabled_at_zero():
    tier = _MemoryTier(maxsize=0)
    tier.put("obj", "k", 1)
    assert len(tier) == 0
    assert tier.get("obj", "k") is _MISS


def test_tier_caches_none_values():
    tier = _MemoryTier(maxsize=2)
    tier.put("obj", "k", None)
    assert tier.get("obj", "k") is None  # a cached None is not a miss
    assert tier.get("obj", "other") is _MISS


# -- read-through behaviour on the cache handle ---------------------------


def test_second_get_is_a_memory_hit(tmp_path):
    cache = make_cache(tmp_path)
    key = key_for(cache, "src")
    cache.put(key, {"answer": 42})
    assert cache.get(key) == {"answer": 42}  # disk read populates the tier
    assert cache.stats.memory_hits == 0
    # Remove the on-disk entry: the tier alone must answer now.
    cache._path(key).unlink()
    assert cache.get(key) == {"answer": 42}
    assert cache.stats.memory_hits == 1
    assert cache.stats.hits == 2
    assert cache.stats.misses == 0


def test_put_does_not_populate_the_tier(tmp_path):
    """Writes are not read back through memory: a corrupt on-disk entry
    must stay a miss even right after the put that created it."""
    cache = make_cache(tmp_path)
    key = key_for(cache, "src")
    cache.put(key, [1, 2, 3])
    assert len(cache.memory) == 0
    cache._path(key).write_bytes(b"not a pickle")
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    assert cache.stats.memory_hits == 0


def test_get_bytes_memory_tier(tmp_path):
    cache = make_cache(tmp_path)
    key = key_for(cache, "src")
    cache.put_bytes(key, b"\x01\x02\x03")
    assert cache.get_bytes(key) == b"\x01\x02\x03"
    cache._path(key).unlink()
    assert cache.get_bytes(key) == b"\x01\x02\x03"
    assert cache.stats.memory_hits == 1
    # Memory hits never masquerade as zero-copy mmap hits.
    assert cache.stats.binary_hits == 0


def test_obj_and_bytes_tiers_are_independent(tmp_path):
    cache = make_cache(tmp_path)
    key = key_for(cache, "src")
    cache.put(key, "value")
    assert cache.get(key) == "value"
    # get_bytes for the same key still reads disk the first time.
    blob = cache.get_bytes(key)
    assert blob is not None
    assert cache.stats.memory_hits == 0


def test_eviction_bound_respected_on_cache(tmp_path):
    cache = make_cache(tmp_path, memory_entries=2)
    keys = [key_for(cache, f"src{i}") for i in range(4)]
    for i, key in enumerate(keys):
        cache.put(key, i)
        cache.get(key)
    assert len(cache.memory) == 2


def test_memory_disabled_cache_still_works(tmp_path):
    cache = make_cache(tmp_path, memory_entries=0)
    key = key_for(cache, "src")
    cache.put(key, "v")
    assert cache.get(key) == "v"
    assert cache.get(key) == "v"
    assert cache.stats.memory_hits == 0
    assert cache.stats.hits == 2


def test_pickling_drops_tier_and_counters(tmp_path):
    cache = make_cache(tmp_path, memory_entries=7)
    key = key_for(cache, "src")
    cache.put(key, "v")
    cache.get(key)
    cache.get(key)
    assert cache.stats.memory_hits == 1
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.root == cache.root
    assert clone.memory.maxsize == 7  # bound survives; contents do not
    assert len(clone.memory) == 0
    assert clone.stats.hits == 0 and clone.stats.memory_hits == 0
    # The clone still reads the shared on-disk store.
    assert clone.get(key) == "v"


def test_default_memory_entries(tmp_path):
    assert make_cache(tmp_path).memory.maxsize == DEFAULT_MEMORY_ENTRIES


# -- stats plumbing -------------------------------------------------------


def test_stats_merge_and_summary_include_memory_hits():
    a = CacheStats(hits=2, misses=1, stores=1, binary_hits=1, memory_hits=1)
    b = CacheStats(hits=3, memory_hits=2)
    a.merge(b)
    assert a.memory_hits == 3
    assert "3 memory hit(s)" in a.summary()
