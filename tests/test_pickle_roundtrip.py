"""Pickling round-trips for everything the process-pool suite runner
and the on-disk analysis cache ship between processes: parsed
:class:`Program` objects, generated constraint systems (constraints and
positions in one blob, preserving qualifier-variable identity), and
solved :class:`Solution` objects."""

import pickle

import pytest

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from repro.qual.lattice import QualifierLattice
from repro.qual.qualifiers import const_lattice
from repro.qual.solver import solve
from repro.qual.qtypes import QualVar

SOURCE = """
struct point { int *coords; };
int *shared_cell;
const char *greet(const char *name) { return name; }
int deref(int *p) { return *p; }
void touch(struct point *pt) { *pt->coords = 1; }
int use(int *q) { shared_cell = q; return deref(q); }
"""


def roundtrip(value):
    return pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


class TestProgramPickling:
    def test_program_roundtrips(self):
        program = Program.from_source(SOURCE)
        copy = roundtrip(program)
        assert sorted(copy.functions) == sorted(program.functions)
        assert sorted(copy.globals) == sorted(program.globals)
        assert sorted(copy.structs) == sorted(program.structs)

    def test_unpickled_program_analyzes_identically(self):
        program = Program.from_source(SOURCE)
        copy = roundtrip(program)
        original = run_mono(program)
        again = run_mono(copy)
        key = lambda run: sorted(
            (p.function, p.where, p.depth, run.classify(p).name)
            for p in run.positions
        )
        assert key(original) == key(again)


class TestLatticePickling:
    def test_lattice_roundtrips(self):
        lattice = const_lattice()
        copy = roundtrip(lattice)
        assert isinstance(copy, QualifierLattice)
        assert copy.names == lattice.names

    def test_elements_reintern_into_their_lattice(self):
        lattice = const_lattice()
        element = lattice.top
        copy = roundtrip(element)
        # structural equality survives; the copy is interned in *its*
        # (rebuilt) lattice and equal to the original
        assert copy == element
        assert copy.present == element.present

    def test_element_identity_within_one_blob(self):
        lattice = const_lattice()
        pair = roundtrip((lattice.top, lattice.top))
        assert pair[0] is pair[1]


class TestConstraintSystemPickling:
    def test_constraints_and_positions_share_variables(self):
        """The cache stores (constraints, positions) as ONE blob exactly
        so that a variable appearing in both keeps a single identity."""
        program = Program.from_source(SOURCE)
        run = run_mono(program)
        constraints, positions = roundtrip(
            (run.inference.constraints, run.inference.positions)
        )
        assert len(constraints) == len(run.inference.constraints)
        assert len(positions) == len(run.inference.positions)
        by_uid = {}
        for c in constraints:
            for side in (c.lhs, c.rhs):
                if isinstance(side, QualVar):
                    assert by_uid.setdefault((side.uid, side.name), side) is side
        for p in positions:
            known = by_uid.get((p.var.uid, p.var.name))
            if known is not None:
                assert known is p.var

    def test_unpickled_system_solves_identically(self):
        program = Program.from_source(SOURCE)
        run = run_poly(program, jobs=1)
        constraints, positions = roundtrip(
            (run.inference.constraints, run.inference.positions)
        )
        lattice = None
        for c in constraints:
            for side in (c.lhs, c.rhs):
                owner = getattr(side, "lattice", None)
                if owner is not None:
                    lattice = owner
                    break
            if lattice:
                break
        assert lattice is not None
        solution = solve(constraints, lattice, extra_vars=[p.var for p in positions])
        for original_pos, copied_pos in zip(run.positions, positions):
            assert (
                solution.classify(copied_pos.var, "const")
                == run.solution.classify(original_pos.var, "const")
            )


class TestSolutionPickling:
    def test_solution_roundtrips_with_classifications(self):
        program = Program.from_source(SOURCE)
        run = run_mono(program)
        copy = roundtrip(run.solution)
        for p in roundtrip(run.inference.positions):
            # classify by uid/name-equal variables from the same blob
            matching = [q for q in run.positions if q.var.uid == p.var.uid]
            assert matching
            assert copy.classify(p.var, "const") == run.solution.classify(
                matching[0].var, "const"
            )

    def test_stats_survive(self):
        program = Program.from_source(SOURCE)
        run = run_mono(program)
        copy = roundtrip(run.solution)
        assert copy.stats == run.solution.stats


class TestBenchmarkRowPickling:
    def test_row_roundtrips(self):
        from repro.benchsuite.suite import run_benchmark, scaling_spec

        row = run_benchmark(scaling_spec(1))
        copy = roundtrip(row)
        assert copy == row
