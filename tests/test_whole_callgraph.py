"""Tests for the cross-TU call graph and its function-pointer
resolution (address-taken + type-shape filter)."""

from repro.whole.callgraph import WholeProgramCallGraph
from repro.whole.linker import link_sources


def build(sources):
    linked = link_sources(sources)
    assert linked.diagnostics == []
    return WholeProgramCallGraph.build(linked.program)


def test_direct_cross_tu_edges():
    graph = build(
        {
            "a.c": "int base(void) { return 1; }\n",
            "b.c": "extern int base(void);\nint lift(void) { return base() + 1; }\n",
        }
    )
    assert graph.direct["lift"] == {"base"}
    assert graph.direct["base"] == set()


def test_address_taken_via_assignment():
    graph = build(
        {
            "a.c": "int f(int x) { return x; }\n",
            "b.c": (
                "extern int f(int x);\n"
                "int (*fp)(int);\n"
                "void wire(void) { fp = f; }\n"
                "int call(void) { return fp(3); }\n"
            ),
        }
    )
    assert graph.address_taken == {"f"}
    assert graph.indirect["call"] == {"f"}
    (site,) = graph.indirect_sites
    assert site.caller == "call"
    assert site.targets == ("f",)


def test_directly_called_functions_are_not_address_taken():
    graph = build(
        {
            "a.c": "int f(int x) { return x; }\nint g(void) { return f(1); }\n",
        }
    )
    assert graph.address_taken == set()


def test_address_taken_in_global_initializer_table():
    graph = build(
        {
            "ops.c": "int inc(int x) { return x + 1; }\nint dec(int x) { return x - 1; }\n",
            "table.c": (
                "extern int inc(int x);\n"
                "extern int dec(int x);\n"
                "int (*ops[2])(int) = { inc, dec };\n"
                "int run(int i, int v) { return ops[i](v); }\n"
            ),
        }
    )
    assert graph.address_taken == {"dec", "inc"}
    assert graph.indirect["run"] == {"dec", "inc"}


def test_arity_filter_prunes_candidates():
    graph = build(
        {
            "a.c": (
                "int unary(int x) { return x; }\n"
                "int binary(int x, int y) { return x + y; }\n"
            ),
            "b.c": (
                "extern int unary(int x);\n"
                "extern int binary(int x, int y);\n"
                "int (*u)(int);\n"
                "int (*b)(int, int);\n"
                "void wire(void) { u = unary; b = binary; }\n"
                "int call_u(void) { return u(1); }\n"
                "int call_b(void) { return b(1, 2); }\n"
            ),
        }
    )
    assert graph.indirect["call_u"] == {"unary"}
    assert graph.indirect["call_b"] == {"binary"}


def test_pointer_depth_shape_filter():
    # both candidates are unary, but one takes char* and one takes int:
    # the declared pointer type disambiguates by per-param pointer depth
    graph = build(
        {
            "a.c": (
                "int by_value(int x) { return x; }\n"
                "int by_pointer(char *p) { return 1; }\n"
            ),
            "b.c": (
                "extern int by_value(int x);\n"
                "extern int by_pointer(char *p);\n"
                "int (*fp)(char *);\n"
                "void wire(void) { fp = by_value; fp = by_pointer; }\n"
                "int call(char *s) { return fp(s); }\n"
            ),
        }
    )
    assert graph.indirect["call"] == {"by_pointer"}


def test_varargs_arity_compatibility():
    graph = build(
        {
            "a.c": "int many(int first, ...) { return first; }\n",
            "b.c": (
                "extern int many(int first, ...);\n"
                "int (*fp)(int, ...);\n"
                "void wire(void) { fp = many; }\n"
                "int call(void) { return fp(1, 2, 3); }\n"
            ),
        }
    )
    assert graph.indirect["call"] == {"many"}


def test_function_graph_contains_resolution_edges():
    graph = build(
        {
            "a.c": "int target(int x) { return x; }\n",
            "b.c": (
                "extern int target(int x);\n"
                "int (*fp)(int);\n"
                "void wire(void) { fp = target; }\n"
                "int call(void) { return fp(9); }\n"
            ),
        }
    )
    fdg = graph.function_graph()
    assert "target" in fdg.edges["call"]
    # wire names target, so the occurrence edge is there too
    assert "target" in fdg.edges["wire"]


def test_stats_shape():
    graph = build(
        {
            "a.c": "int f(int x) { return x; }\n",
            "b.c": (
                "extern int f(int x);\n"
                "int (*fp)(int);\n"
                "void wire(void) { fp = f; }\n"
                "int call(void) { return fp(0); }\n"
            ),
        }
    )
    stats = graph.stats()
    assert stats["functions"] == 3
    assert stats["address_taken"] == 1
    assert stats["indirect_sites"] == 1
    assert stats["indirect_edges"] == 1
