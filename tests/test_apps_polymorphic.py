"""Polymorphic-mode tests for the application instances: every app runs
on the same inference core, so qualifier polymorphism must compose with
each of them."""

import pytest

from repro.lam.infer import QualTypeError, infer
from repro.lam.parser import parse


class TestBindingTimePolymorphic:
    def test_poly_helper_used_static_and_dynamic(self):
        from repro.apps.bta import analyze_binding_times

        # `twice` is applied to a static and a dynamic argument; with
        # polymorphism the static use stays static.
        source = """
        let choose = fn x. if x then x else 0 fi in
        let s = choose 1 in
        let d = choose ({dynamic} 2) in
        s
        ni ni ni
        """
        expr = parse(source)
        poly = analyze_binding_times(expr, polymorphic=True)
        mono = analyze_binding_times(expr, polymorphic=False)
        # whole-program result is the static s
        assert poly.is_static(expr)
        # monomorphic analysis merges the uses: s is dragged dynamic
        assert not mono.is_static(expr)

    def test_wellformedness_still_enforced_under_poly(self):
        from repro.apps.bta import binding_time_language

        bad = """
        let input = {dynamic} 1 in
        let f = fn x. if input then x else 0 fi in
        (f)|{}
        ni ni
        """
        with pytest.raises(QualTypeError):
            infer(parse(bad), binding_time_language(), polymorphic=True)


class TestTaintPolymorphic:
    def test_poly_identity_does_not_cross_contaminate(self):
        from repro.apps.taint import analyze_taint

        source = """
        let id = fn x. x in
        let secret = id ({tainted} 1) in
        let clean = id 2 in
        (clean)|{}
        ni ni ni
        """
        expr = parse(source)
        assert analyze_taint(expr, polymorphic=True).secure
        assert not analyze_taint(expr, polymorphic=False).secure

    def test_poly_still_catches_real_leak(self):
        from repro.apps.taint import analyze_taint

        source = """
        let id = fn x. x in
        let secret = id ({tainted} 1) in
        (secret)|{}
        ni ni
        """
        assert not analyze_taint(parse(source), polymorphic=True).secure


class TestNonnullPolymorphic:
    def test_poly_wrapper_over_both_kinds(self):
        from repro.apps.nonnull import analyze_nonnull

        # `hold` wraps both a definite and a maybe-null ref; only the
        # definite one is dereferenced.
        source = """
        let hold = fn r. r in
        let sure = hold (ref 1) in
        let maybe = hold ({} ref 2) in
        !sure
        ni ni ni
        """
        expr = parse(source)
        assert analyze_nonnull(expr, polymorphic=True).safe
        # monomorphic sharing poisons `sure` through the shared wrapper
        assert not analyze_nonnull(expr, polymorphic=False).safe

    def test_poly_rejects_deref_of_maybe(self):
        from repro.apps.nonnull import analyze_nonnull

        source = """
        let hold = fn r. r in
        let maybe = hold ({} ref 2) in
        !maybe
        ni ni
        """
        assert not analyze_nonnull(parse(source), polymorphic=True).safe


class TestLocalPolymorphic:
    def test_poly_accessor_keeps_local_fast(self):
        from repro.apps.localptr import analyze_locality

        source = """
        let pass = fn r. r in
        let near = pass (ref 1) in
        let far = pass ({} ref 2) in
        let a = !near in
        !far
        ni ni ni ni
        """
        expr = parse(source)
        poly = analyze_locality(expr, polymorphic=True)
        mono = analyze_locality(expr, polymorphic=False)
        assert poly.local_fraction(expr) == 0.5
        # monomorphically, the remote use contaminates the local one
        assert mono.local_fraction(expr) == 0.0


class TestSortedPolymorphic:
    def test_generic_passthrough_preserves_sortedness(self):
        from repro.apps.sortedlist import library_env, sorted_language

        env = library_env()
        lang = sorted_language()
        source = """
        let keep = fn l. l in
        merge (keep (sort (cons 1 nil))) (keep nil)
        ni
        """
        infer(parse(source), lang, env=env, polymorphic=True)

    def test_generic_passthrough_no_free_sortedness(self):
        from repro.apps.sortedlist import library_env, sorted_language

        env = library_env()
        lang = sorted_language()
        source = """
        let keep = fn l. l in
        merge (keep (cons 1 nil)) nil
        ni
        """
        with pytest.raises(QualTypeError):
            infer(parse(source), lang, env=env, polymorphic=True)
