"""Differential testing of const inference against a reference model.

A generator builds random C programs from a tiny vocabulary whose
qualifier semantics is computable by an independent reference model:

* every function takes some ``int *`` parameters;
* bodies may write through a parameter (``*p = k``), read one, pass
  parameters (or addresses of locals) to other functions, and return 0.

For such programs the monomorphic analysis has an exact graph-theoretic
characterisation: build one node per parameter *cell* (and local), an
edge ``arg -> param`` for every call argument (value flow: the argument
cell must be usable as the parameter cell, so an upper bound on the
parameter propagates back), and mark nodes written through.  A
parameter position must-not-be-const iff a written node is reachable
from it; a position declared const is MUST; everything else is EITHER.

The hypothesis test compares the engine's classification against BFS
reachability on hundreds of random programs — any disagreement in
constraint generation, solving, or classification shows up immediately.
"""

from collections import deque
from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from repro.qual.solver import Classification


@dataclass
class FnSpec:
    """One generated function: which params it writes/reads, and its
    calls (callee index, argument sources)."""

    index: int
    param_count: int
    const_params: set[int] = field(default_factory=set)
    writes: set[int] = field(default_factory=set)
    reads: set[int] = field(default_factory=set)
    #: (callee index, tuple of argument sources); a source is either
    #: ("param", i) or ("local", j)
    calls: list[tuple[int, tuple[tuple[str, int], ...]]] = field(default_factory=list)
    local_count: int = 0


@st.composite
def program_specs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    specs = []
    for index in range(n):
        param_count = draw(st.integers(min_value=1, max_value=3))
        spec = FnSpec(index, param_count)
        # declared const only on params that are never written directly;
        # writes through const params would (correctly) be type errors,
        # and the generator targets *correct* programs like the paper.
        spec.writes = {
            i for i in range(param_count) if draw(st.booleans()) and draw(st.booleans())
        }
        for i in range(param_count):
            if i not in spec.writes and draw(st.booleans()) and draw(st.booleans()):
                spec.const_params.add(i)
        spec.reads = {i for i in range(param_count) if draw(st.booleans())}
        spec.local_count = draw(st.integers(min_value=0, max_value=2))
        call_count = draw(st.integers(min_value=0, max_value=3))
        for _ in range(call_count):
            # only call earlier functions: keeps the call graph acyclic
            # so the reference model needs no fixpoint of its own.
            callee = draw(st.integers(min_value=0, max_value=index))
            callee_spec = specs[callee] if callee < index else spec
            args = []
            ok = True
            for param_index in range(callee_spec.param_count):
                # Correct C only (like the paper's benchmarks): a const
                # parameter of the caller may not be passed where the
                # callee expects a non-const pointer.
                if param_index in callee_spec.const_params:
                    param_candidates = list(range(spec.param_count))
                else:
                    param_candidates = [
                        i
                        for i in range(spec.param_count)
                        if i not in spec.const_params
                    ]
                use_param = bool(param_candidates) and draw(st.booleans())
                if use_param:
                    args.append(("param", draw(st.sampled_from(param_candidates))))
                elif spec.local_count > 0:
                    args.append(("local", draw(st.integers(0, spec.local_count - 1))))
                else:
                    ok = False
                    break
            if ok:
                spec.calls.append((callee, tuple(args)))
        specs.append(spec)
    return specs


def render(specs: list[FnSpec]) -> str:
    """Emit the C program for a spec list."""
    lines = []
    for spec in specs:
        params = ", ".join(
            f"{'const ' if i in spec.const_params else ''}int *p{i}"
            for i in range(spec.param_count)
        )
        lines.append(f"static int f{spec.index}({params});")
    for spec in specs:
        params = ", ".join(
            f"{'const ' if i in spec.const_params else ''}int *p{i}"
            for i in range(spec.param_count)
        )
        lines.append(f"static int f{spec.index}({params}) {{")
        for j in range(spec.local_count):
            lines.append(f"    int v{j};")
            lines.append(f"    v{j} = 0;")
        lines.append("    int acc = 0;")
        for i in sorted(spec.writes):
            lines.append(f"    *p{i} = {i + 1};")
        for i in sorted(spec.reads):
            lines.append(f"    acc = acc + *p{i};")
        for callee, args in spec.calls:
            rendered = ", ".join(
                f"p{i}" if kind == "param" else f"&v{i}" for kind, i in args
            )
            lines.append(f"    acc = acc + f{callee}({rendered});")
        lines.append("    return acc;")
        lines.append("}")
    return "\n".join(lines) + "\n"


def reference_classification(specs: list[FnSpec]) -> dict[tuple[int, int], Classification]:
    """BFS reference model: (function, param) -> expected verdict."""
    # nodes: ("p", f, i) and ("l", f, j); edges arg -> param
    edges: dict[tuple, set[tuple]] = {}
    written: set[tuple] = set()
    for spec in specs:
        for i in spec.writes:
            written.add(("p", spec.index, i))
        for callee, args in spec.calls:
            for param_index, (kind, source_index) in enumerate(args):
                source = (
                    ("p", spec.index, source_index)
                    if kind == "param"
                    else ("l", spec.index, source_index)
                )
                edges.setdefault(source, set()).add(("p", callee, param_index))

    def write_reachable(start: tuple) -> bool:
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            if node in written:
                return True
            for succ in edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        return False

    out = {}
    for spec in specs:
        for i in range(spec.param_count):
            if i in spec.const_params:
                out[(spec.index, i)] = Classification.MUST
            elif write_reachable(("p", spec.index, i)):
                out[(spec.index, i)] = Classification.MUST_NOT
            else:
                out[(spec.index, i)] = Classification.EITHER
    return out


def engine_classification(source: str) -> dict[tuple[int, int], Classification]:
    program = Program.from_source(source)
    run = run_mono(program)
    out = {}
    for position, verdict in run.classified_positions():
        function_index = int(position.function[1:])
        param_index = int(position.where.split(" ")[1])
        out[(function_index, param_index)] = verdict
    return out


@given(program_specs())
@settings(max_examples=200, deadline=None)
def test_mono_matches_reference_model(specs):
    source = render(specs)
    expected = reference_classification(specs)
    actual = engine_classification(source)
    assert actual == expected, source


@given(program_specs())
@settings(max_examples=100, deadline=None)
def test_poly_dominates_mono_on_random_programs(specs):
    source = render(specs)
    program = Program.from_source(source)
    mono = run_mono(program)
    poly = run_poly(program)
    assert poly.total_positions() == mono.total_positions()
    assert poly.declared_count() == mono.declared_count()
    assert poly.inferred_const_count() >= mono.inferred_const_count()
    # per-position: poly never downgrades EITHER to MUST_NOT
    mono_map = {p.describe(): v for p, v in mono.classified_positions()}
    poly_map = {p.describe(): v for p, v in poly.classified_positions()}
    for key, mono_verdict in mono_map.items():
        if mono_verdict is not Classification.MUST_NOT:
            assert poly_map[key] is not Classification.MUST_NOT, key
