"""Session-semantics tests for the resident daemon: edit ordering
(``didChange`` → ``analyze`` sees the new text), overlay reverts,
overlay-only buffers, warm-path counters, whole-program invalidation
reporting, and ``stats`` bookkeeping."""

import json
from pathlib import Path

import pytest

from repro.serve import InvalidParams, Server, Session

CLEAN = (
    "int printf(const char *fmt, ...);\n"
    'void greet(void) { printf("hi"); }\n'
)
TAINTED = (
    "int printf(const char *fmt, ...);\n"
    "char *getenv(const char *name);\n"
    'void greet(void) { printf(getenv("NAME")); }\n'
)
PRODUCER = (
    "char *getenv(const char *name);\n"
    'char *fetch_name(void) { return getenv("NAME"); }\n'
)
CONSUMER = (
    "int printf(const char *fmt, ...);\n"
    "extern char *fetch_name(void);\n"
    "void show(void) { printf(fetch_name()); }\n"
)


@pytest.fixture
def corpus(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "greet.c").write_text(CLEAN)
    return tmp_path


@pytest.fixture
def session(corpus):
    s = Session(cache_dir=str(corpus / "cache"))
    yield s
    s.close()


def findings(result):
    return json.loads(result["report"])["diagnostics"]


def test_didchange_then_analyze_sees_new_text(session, corpus):
    target = str(corpus / "src" / "greet.c")
    clean = session.analyze({"paths": [str(corpus / "src")]})
    assert findings(clean) == []

    session.did_change({"file": target, "text": TAINTED})
    edited = session.analyze({"paths": [str(corpus / "src")]})
    assert [d["check"] for d in findings(edited)] == ["tainted-format"]
    # The file on disk is untouched — only the overlay changed.
    assert (corpus / "src" / "greet.c").read_text() == CLEAN


def test_revert_restores_disk_text(session, corpus):
    target = str(corpus / "src" / "greet.c")
    session.did_change({"file": target, "text": TAINTED})
    assert findings(session.analyze({"paths": [target]}))
    reverted = session.did_change({"file": target, "text": None})
    assert reverted["overlay"] is False
    assert reverted["version"] == 2
    assert findings(session.analyze({"paths": [target]})) == []


def test_overlay_only_buffer_joins_directory(session, corpus):
    unsaved = str(corpus / "src" / "unsaved.c")
    session.did_change({"file": unsaved, "text": TAINTED})
    result = session.analyze({"paths": [str(corpus / "src")]})
    assert sorted(result["files"]) == [str(corpus / "src" / "greet.c"), unsaved]
    assert [d["file"] for d in findings(result)] == [unsaved]


def test_unchanged_reanalysis_is_served_from_memory(session, corpus):
    paths = {"paths": [str(corpus / "src")]}
    cold = session.analyze(paths)
    assert (cold["cache_hits"], cold["cache_misses"]) == (0, 1)
    warm = session.analyze(paths)  # disk hit: populates the memory tier
    assert (warm["cache_hits"], warm["cache_misses"]) == (1, 0)
    hot = session.analyze(paths)  # answered without touching disk
    assert (hot["cache_hits"], hot["cache_misses"]) == (1, 0)
    stats = session.stats({})
    assert stats["cache"]["memory_hits"] == 1
    assert stats["cache"]["memory_entries"] >= 1


def test_edit_reanalyses_only_the_edited_file(session, corpus):
    for name in ("a.c", "b.c", "c.c"):
        (corpus / "src" / name).write_text(CLEAN.replace("greet", name[0] * 2))
    paths = {"paths": [str(corpus / "src")]}
    session.analyze(paths)  # 4 misses
    session.did_change({"file": str(corpus / "src" / "a.c"), "text": TAINTED})
    after = session.analyze(paths)
    assert (after["cache_hits"], after["cache_misses"]) == (3, 1)


def test_whole_program_didchange_reports_invalidated_units(session, corpus):
    producer = corpus / "src" / "producer.c"
    consumer = corpus / "src" / "consumer.c"
    producer.write_text(PRODUCER)
    consumer.write_text(CONSUMER)
    session.analyze({"paths": [str(corpus / "src")], "whole_program": True})

    # Editing the producer invalidates its dependent (the consumer) too.
    result = session.did_change({"file": str(producer), "text": PRODUCER + "\n"})
    assert set(result["invalidated_units"]) >= {str(producer), str(consumer)}
    # Editing the consumer (top of the flow) invalidates only itself.
    result = session.did_change({"file": str(consumer), "text": CONSUMER + "\n"})
    assert str(producer) not in result["invalidated_units"]
    assert str(consumer) in result["invalidated_units"]
    # A file outside the linked program carries no invalidation info.
    result = session.did_change({"file": "/elsewhere/x.c", "text": "int x;\n"})
    assert "invalidated_units" not in result


def test_whole_program_warm_parse_memo(session, corpus):
    params = {"paths": [str(corpus / "src")], "whole_program": True}
    session.analyze(params)
    before = session.stats({})["resident"]
    session.analyze(params)
    after = session.stats({})["resident"]
    assert after["parsed_units"] == before["parsed_units"]  # nothing re-parsed
    assert after["parse_memo_hits"] > before["parse_memo_hits"]


def test_stats_bookkeeping(session, corpus):
    server = Server(session)
    server.handle_line('{"jsonrpc":"2.0","id":1,"method":"ping"}')
    server.handle_line('{"jsonrpc":"2.0","id":2,"method":"bogus"}')
    server.handle_line(
        json.dumps(
            {
                "jsonrpc": "2.0",
                "id": 3,
                "method": "analyze",
                "params": {"paths": [str(corpus / "src")]},
            }
        )
    )
    stats = session.stats({})
    assert stats["requests"] == {"analyze": 1, "ping": 1}
    assert stats["errors"] == 1
    assert stats["uptime_ms"] >= 0
    assert stats["checks"]
    assert set(stats["stage_totals_ms"]) == {"parse", "analyze", "render"}
    assert "congen" in stats["stage_timings"]


def test_analyze_param_validation(session):
    for params in (
        {},
        {"paths": []},
        {"paths": [1]},
        {"paths": ["x.c"], "format": "yaml"},
        {"paths": ["x.c"], "checks": "tainted-format"},
        {"paths": ["x.c"], "checks": ["no-such-check"]},
        {"paths": ["x.c"], "src_root": 5},
    ):
        with pytest.raises(InvalidParams):
            session.analyze(params)


def test_didchange_param_validation(session):
    for params in ({}, {"file": ""}, {"file": 3}, {"file": "a.c", "text": 7}):
        with pytest.raises(InvalidParams):
            session.did_change(params)


def test_session_rejects_unknown_check_names():
    with pytest.raises(Exception):
        Session(checks=("no-such-check",))


def test_close_removes_private_cache_dir():
    s = Session()
    root = Path(s.cache.root)
    assert root.exists()
    s.close()
    assert not root.exists()


def test_explicit_cache_dir_survives_close(tmp_path):
    s = Session(cache_dir=str(tmp_path / "cache"))
    s.cache.put(s.cache.key("test", source="x"), "v")
    s.close()
    assert (tmp_path / "cache").exists()
