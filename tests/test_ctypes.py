"""Unit tests for C types and the Section 4.1 ``l`` translation."""

import pytest

from repro.cfront.ctypes import (
    CArray,
    CBase,
    CEnum,
    CFunc,
    CPointer,
    CStruct,
    add_qual,
    base_con,
    decay,
    format_ctype,
    fun_con,
    is_arithmetic,
    is_const,
    is_pointerish,
    lvalue_qtype,
    pointee,
    pointer_depth,
    pointer_levels,
    with_quals,
)
from repro.qual.qtypes import QualVar, REF


class TestCTypeBasics:
    def test_quals(self):
        t = add_qual(CBase("int"), "const")
        assert is_const(t)
        assert not is_const(CBase("int"))

    def test_with_quals_replaces(self):
        t = with_quals(add_qual(CBase("int"), "const"), frozenset())
        assert not is_const(t)

    def test_func_never_const(self):
        f = CFunc(CBase("int"), ())
        assert not is_const(f)
        assert add_qual(f, "const") is f

    def test_pointerish(self):
        assert is_pointerish(CPointer(CBase("int")))
        assert is_pointerish(CArray(CBase("int"), 4))
        assert not is_pointerish(CBase("int"))

    def test_pointee(self):
        assert pointee(CPointer(CBase("char"))) == CBase("char")
        assert pointee(CArray(CBase("char"), None)) == CBase("char")
        with pytest.raises(TypeError):
            pointee(CBase("int"))

    def test_decay(self):
        assert decay(CArray(CBase("int"), 3)) == CPointer(CBase("int"))
        f = CFunc(CBase("int"), ())
        assert decay(f) == CPointer(f)
        assert decay(CBase("int")) == CBase("int")

    def test_pointer_depth(self):
        assert pointer_depth(CBase("int")) == 0
        assert pointer_depth(CPointer(CPointer(CBase("int")))) == 2
        assert pointer_depth(CArray(CPointer(CBase("int")), 2)) == 2

    def test_pointer_levels(self):
        t = CPointer(CPointer(CBase("int")))
        levels = list(pointer_levels(t))
        assert levels == [CPointer(CBase("int")), CBase("int")]

    def test_is_arithmetic(self):
        assert is_arithmetic(CBase("int"))
        assert is_arithmetic(CEnum("e"))
        assert not is_arithmetic(CBase("void"))
        assert not is_arithmetic(CPointer(CBase("int")))


class TestConstructorInterning:
    def test_base_con_interned(self):
        assert base_con("int") is base_con("int")
        assert base_con("int") is not base_con("char")

    def test_fun_con_variances(self):
        con = fun_con(2)
        assert con.arity == 3  # 2 params + result
        from repro.qual.qtypes import Variance

        assert con.variances[:2] == (Variance.CONTRAVARIANT,) * 2
        assert con.variances[2] is Variance.COVARIANT

    def test_fun_con_interned(self):
        assert fun_con(3) is fun_con(3)


class TestLTranslation:
    """l(CTyp) = Q' ref(rho): one outer ref, C quals shifted up a level."""

    def test_plain_int(self):
        t = lvalue_qtype(CBase("int"))
        assert t.qtype.constructor is REF
        assert len(t.levels) == 1
        assert t.levels[0].depth == 0
        assert not t.levels[0].declared_const

    def test_const_int_marks_level0(self):
        # const int y: the const attaches to y's own cell (the ref).
        t = lvalue_qtype(add_qual(CBase("int"), "const"))
        assert t.levels[0].declared_const

    def test_pointer_shape(self):
        # int *x: ref(ref(int)) with depths 0 and 1.
        t = lvalue_qtype(CPointer(CBase("int")))
        assert t.qtype.constructor is REF
        inner = t.qtype.args[0]
        assert inner.constructor is REF
        assert [lv.depth for lv in t.levels] == [0, 1]

    def test_pointer_to_const_marks_depth1(self):
        # const int *y: l = ref(const ref(int)) — paper Section 4.1.
        t = lvalue_qtype(CPointer(add_qual(CBase("int"), "const")))
        by_depth = {lv.depth: lv.declared_const for lv in t.levels}
        assert by_depth == {0: False, 1: True}

    def test_const_pointer_marks_depth0(self):
        # int * const y: the pointer cell itself is const.
        t = lvalue_qtype(add_qual(CPointer(CBase("int")), "const"))
        by_depth = {lv.depth: lv.declared_const for lv in t.levels}
        assert by_depth == {0: True, 1: False}

    def test_double_pointer_depths(self):
        t = lvalue_qtype(CPointer(CPointer(CBase("char"))))
        assert sorted(lv.depth for lv in t.levels) == [0, 1, 2]

    def test_array_treated_as_pointer(self):
        t = lvalue_qtype(CArray(CBase("int"), 8))
        assert [lv.depth for lv in t.levels] == [0, 1]

    def test_fresh_vars_distinct(self):
        t = lvalue_qtype(CPointer(CBase("int")))
        vars_seen = [lv.var for lv in t.levels]
        assert len(set(vars_seen)) == len(vars_seen)
        assert all(isinstance(v, QualVar) for v in vars_seen)

    def test_rvalue_drops_outer_ref(self):
        t = lvalue_qtype(CPointer(CBase("int")))
        rv = t.rvalue
        assert rv.constructor is REF  # the pointer value is itself a ref

    def test_function_type_shape(self):
        t = lvalue_qtype(CFunc(CBase("int"), (CPointer(CBase("char")),)))
        rv = t.rvalue
        assert rv.constructor is not None
        assert rv.constructor.name == "cfun1"

    def test_struct_opaque_shape(self):
        t = lvalue_qtype(CStruct("st"))
        rv = t.rvalue
        assert rv.constructor.name == "struct st"

    def test_union_shape(self):
        t = lvalue_qtype(CStruct("u", is_union=True))
        assert t.rvalue.constructor.name == "union u"

    def test_enum_is_int_shaped(self):
        t = lvalue_qtype(CEnum("color"))
        assert t.rvalue.constructor.name == "int"


class TestFormatting:
    def test_simple(self):
        assert format_ctype(CBase("int")) == "int"

    def test_pointer(self):
        assert format_ctype(CPointer(CBase("char")), "s") == "char *s"

    def test_const_levels(self):
        t = CPointer(add_qual(CBase("int"), "const"))
        assert format_ctype(t, "p") == "const int *p"
        t2 = add_qual(CPointer(CBase("int")), "const")
        assert format_ctype(t2, "p") == "int *const p"

    def test_array(self):
        assert format_ctype(CArray(CBase("int"), 4), "a") == "int a[4]"

    def test_function_pointer(self):
        t = CPointer(CFunc(CBase("void"), (CBase("int"),)))
        assert format_ctype(t, "cb") == "void (*cb)(int)"

    def test_struct(self):
        assert format_ctype(CStruct("st"), "v") == "struct st v"
