"""Panic-mode recovery tests: a parse error yields a structured
diagnostic and a partial translation unit, never an exception; recovery
is conservative (clean sources are untouched); and the error-seeding
fuzz loop never crashes the resilient front end."""

import pytest

from repro.cfront import parse_c, parse_c_resilient
from repro.cfront.cparser import CParseError
from repro.checker.engine import check_source_resilient
from repro.testkit.cgen import corrupt, generate_c_corpus

CLEAN = """\
int reader(const int *p) {
    return p[0];
}
int writer(int *p) {
    p[0] = 1;
    return p[0];
}
"""


# -- conservatism ----------------------------------------------------------


def test_clean_source_identical_through_recovery():
    strict = parse_c(CLEAN, "a.c")
    result = parse_c_resilient(CLEAN, "a.c")
    assert result.ok
    assert result.diagnostics == []
    assert repr(result.unit) == repr(strict)


def test_strict_parser_still_raises():
    with pytest.raises(CParseError):
        parse_c("int broken(;\n", "a.c")


# -- structured diagnostics ------------------------------------------------


def test_diagnostic_carries_location_and_expectation():
    result = parse_c_resilient("int broken(;\nint fine;\n", "a.c")
    assert not result.ok
    err = result.errors[0]
    assert err.file == "a.c"
    assert err.line == 1
    assert err.column > 0
    assert err.severity == "error"
    assert err.stage == "parse"
    # The rendered form is gcc-style file:line:col.
    assert str(err).startswith("a.c:1:")


def test_recovery_salvages_surrounding_declarations():
    src = "int before(void) { return 1; }\nint broken(;\n" + CLEAN
    result = parse_c_resilient(src, "a.c")
    assert not result.ok
    names = [getattr(item, "name", None) for item in result.unit.items]
    assert "before" in names
    assert "reader" in names
    assert "writer" in names


def test_statement_level_recovery_keeps_function():
    src = (
        "int f(int *p) {\n"
        "    p[0] = 1;\n"
        "    $$$;\n"
        "    p[1] = 2;\n"
        "    return p[0];\n"
        "}\n"
        "int g(void) { return 0; }\n"
    )
    result = parse_c_resilient(src, "a.c")
    assert not result.ok
    names = [getattr(item, "name", None) for item in result.unit.items]
    assert "f" in names  # the broken statement is dropped, not the function
    assert "g" in names


def test_unterminated_block_diagnosed_not_crashed():
    result = parse_c_resilient("int f(void) {\n    return 1;\n", "a.c")
    assert not result.ok
    assert any("unterminated" in d.message for d in result.errors)
    names = [getattr(item, "name", None) for item in result.unit.items]
    assert "f" in names


def test_lexer_problems_become_diagnostics():
    result = parse_c_resilient("int x; /* never closed\n", "a.c")
    assert any(d.stage == "lex" for d in result.diagnostics)
    names = [getattr(item, "name", None) for item in result.unit.items]
    assert "x" in names


def test_multiple_errors_all_recorded():
    src = "int a(;\nint ok1;\nint b(;\nint ok2;\n"
    result = parse_c_resilient(src, "a.c")
    assert len(result.errors) >= 2
    names = [getattr(item, "name", None) for item in result.unit.items]
    assert "ok1" in names and "ok2" in names


def test_empty_and_garbage_inputs_never_raise():
    for text in ("", ";", "}}}}", "$$$", "((((", "int", "int f(void"):
        result = parse_c_resilient(text, "a.c")
        assert isinstance(result.diagnostics, list)


# -- seeded-corruption fuzz loop ------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_corrupted_corpus_units_never_crash(seed):
    corpus = generate_c_corpus(seed)
    for name, text in sorted(corpus.sources().items()):
        for salt in range(2):
            broken = corrupt(text, seed * 31 + salt, n_errors=salt + 1)
            result = parse_c_resilient(broken, name)
            assert isinstance(result.diagnostics, list)
            diagnostics, status, functions = check_source_resilient(broken, name)
            assert status in ("ok", "partial", "skipped")
            assert functions >= 0


def test_corrupt_is_deterministic():
    src = CLEAN * 3
    assert corrupt(src, 42) == corrupt(src, 42)
    assert corrupt(src, 42, n_errors=3) == corrupt(src, 42, n_errors=3)


def test_corrupt_changes_text():
    src = CLEAN * 3
    changed = sum(1 for seed in range(10) if corrupt(src, seed) != src)
    assert changed >= 8  # mutations may occasionally be no-ops, most aren't
