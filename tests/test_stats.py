"""Tests for constraint-system statistics (the linearity evidence)."""

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from repro.constinfer.stats import collect_stats, format_stats_table

SOURCE = """
int reader(const int *p) { return *p; }
void writer(int *q) { *q = 1; }
int relay(int *r) { return reader(r); }
"""


def test_breakdown_adds_up():
    run = run_mono(Program.from_source(SOURCE))
    stats = collect_stats(run, lines=SOURCE.count("\n") + 1)
    assert (
        stats.var_var_edges
        + stats.constant_lower_bounds
        + stats.constant_upper_bounds
        + stats.ground_constraints
        == stats.constraint_count
    )
    assert stats.constraint_count == run.constraint_count


def test_classification_tallies():
    run = run_mono(Program.from_source(SOURCE))
    stats = collect_stats(run)
    assert stats.positions == stats.must + stats.must_not + stats.either == 3
    assert stats.must == 1  # reader's declared const
    assert stats.must_not == 1  # writer's param


def test_const_bounds_counted():
    run = run_mono(Program.from_source(SOURCE))
    stats = collect_stats(run)
    assert stats.constant_lower_bounds >= 1  # declared const
    assert stats.constant_upper_bounds >= 1  # the write restriction


def test_per_line_density():
    lines = SOURCE.count("\n") + 1
    run = run_mono(Program.from_source(SOURCE))
    stats = collect_stats(run, lines=lines)
    assert stats.constraints_per_line is not None
    assert stats.constraints_per_line > 0
    no_lines = collect_stats(run)
    assert no_lines.constraints_per_line is None


def test_poly_has_more_constraints_than_mono():
    program = Program.from_source(SOURCE)
    mono = collect_stats(run_mono(program))
    poly = collect_stats(run_poly(program))
    assert poly.constraint_count >= mono.constraint_count


def test_density_roughly_constant_across_sizes():
    """Constraints per line must not grow with program size: the linear
    claim, checked on two generated programs 8x apart."""
    from repro.benchsuite.generator import PositionMix, generate_benchmark

    densities = []
    for scale in (1, 8):
        mix = PositionMix(5 * scale, 5 * scale, 3 * scale, 5 * scale)
        source = generate_benchmark(f"d{scale}", 3, mix, 0)
        lines = source.count("\n") + 1
        run = run_mono(Program.from_source(source))
        densities.append(collect_stats(run, lines=lines).constraints_per_line)
    assert densities[1] <= densities[0] * 1.5


def test_summary_and_table_render():
    run = run_mono(Program.from_source(SOURCE))
    stats = collect_stats(run, lines=5)
    text = stats.summary()
    assert "constraints over" in text and "must-not" in text
    table = format_stats_table([("tiny", stats)])
    assert "tiny" in table and "C/line" in table
