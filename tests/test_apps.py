"""Tests for the qualifier application instances (Sections 1, 2.3, 5):
binding time, taint, nonnull, sorted lists, and Titanium local pointers."""

import pytest

from repro.lam.ast import Let, walk
from repro.lam.infer import QualTypeError, infer
from repro.lam.parser import parse


class TestBindingTime:
    def test_dynamic_input_propagates(self):
        from repro.apps.bta import analyze_binding_times

        expr = parse("let x = {dynamic} 1 in if x then 2 else 3 fi ni")
        result = analyze_binding_times(expr)
        lets = [n for n in walk(expr) if isinstance(n, Let)]
        assert result.is_dynamic(lets[0].bound)
        # the whole if depends on the dynamic guard
        assert result.is_dynamic(lets[0].body)

    def test_static_stays_static(self):
        from repro.apps.bta import analyze_binding_times

        expr = parse("let x = 1 in if x then 2 else 3 fi ni")
        result = analyze_binding_times(expr)
        assert result.is_static(expr)

    def test_static_fraction_bounds(self):
        from repro.apps.bta import analyze_binding_times

        all_static = analyze_binding_times(parse("if 1 then 2 else 3 fi"))
        assert all_static.static_fraction() == 1.0
        some_dynamic = analyze_binding_times(
            parse("if {dynamic} 1 then 2 else 3 fi")
        )
        assert 0.0 < some_dynamic.static_fraction() < 1.0

    def test_wellformedness_rejects_static_closure_over_dynamic(self):
        from repro.apps.bta import binding_time_language

        bad = """
        let input = {dynamic} 1 in
        let f = fn x. if input then x else 0 fi in
        (f)|{}
        ni ni
        """
        with pytest.raises(QualTypeError):
            infer(parse(bad), binding_time_language())

    def test_dynamic_closure_accepted(self):
        from repro.apps.bta import binding_time_language

        ok = """
        let input = {dynamic} 1 in
        let f = fn x. if input then x else 0 fi in
        (f)|{dynamic}
        ni ni
        """
        infer(parse(ok), binding_time_language())


class TestTaint:
    def test_direct_leak_rejected(self):
        from repro.apps.taint import check_source

        report = check_source("let d = {tainted} 1 in (d)|{} ni")
        assert not report.secure
        assert report.violation is not None

    def test_clean_flow_accepted(self):
        from repro.apps.taint import check_source

        assert check_source("let c = 1 in (c)|{} ni").secure

    def test_leak_through_ref_rejected(self):
        from repro.apps.taint import check_source

        source = """
        let d = {tainted} 1 in
        let cell = ref 0 in
        let w = (cell := d) in
        (!cell)|{}
        ni ni ni
        """
        assert not check_source(source).secure

    def test_sanitizer_env(self):
        from repro.apps.taint import analyze_taint
        from repro.qual.qtypes import q_fun, q_int
        from repro.qual.qualifiers import taint_lattice

        lat = taint_lattice()
        env = {"sanitize": q_fun(lat.bottom, q_int(lat.top), q_int(lat.bottom))}
        good = parse("let d = {tainted} 1 in (sanitize d)|{} ni")
        assert analyze_taint(good, env=env).secure

    def test_merge_taints_result(self):
        from repro.apps.taint import analyze_taint

        expr = parse("let d = {tainted} 1 in if 1 then d else 2 fi ni")
        report = analyze_taint(expr)
        assert report.secure  # no sink: nothing to violate
        assert report.is_tainted(expr)

    def test_is_tainted_requires_success(self):
        from repro.apps.taint import check_source

        report = check_source("let d = {tainted} 1 in (d)|{} ni")
        with pytest.raises(AssertionError):
            report.is_tainted(parse("1"))


class TestNonnull:
    def test_fresh_ref_dereferencable(self):
        from repro.apps.nonnull import check_source

        assert check_source("let p = ref 5 in !p ni").safe

    def test_maybe_null_deref_rejected(self):
        from repro.apps.nonnull import check_source

        report = check_source("let p = {} ref 5 in !p ni")
        assert not report.safe
        assert "nonnull" in (report.violation or "")

    def test_maybe_null_can_be_passed_around(self):
        from repro.apps.nonnull import check_source

        # holding a maybe-null pointer is fine; only deref is restricted
        assert check_source("let p = {} ref 5 in 1 ni").safe

    def test_flow_insensitivity_documented(self):
        from repro.apps.nonnull import check_source

        # Even behind a guard, a maybe-null pointer cannot be deref'd:
        # the system is flow-insensitive (paper, Future Work).
        source = "let p = {} ref 5 in if 1 then !p else 0 fi ni"
        assert not check_source(source).safe


class TestSortedLists:
    def setup_method(self):
        from repro.apps.sortedlist import library_env, sorted_language

        self.env = library_env()
        self.lang = sorted_language()

    def check(self, source):
        return infer(parse(source), self.lang, env=self.env)

    def test_nil_is_sorted(self):
        self.check("merge nil nil")

    def test_sort_launders(self):
        self.check("merge (sort (cons 2 nil)) nil")

    def test_cons_result_not_sorted(self):
        with pytest.raises(QualTypeError):
            self.check("merge (cons 2 nil) nil")

    def test_head_accepts_anything(self):
        self.check("head (cons 1 nil)")
        self.check("head nil")

    def test_merge_result_is_sorted(self):
        self.check("merge (merge nil nil) nil")


class TestLocalPointers:
    def test_local_and_remote_costs(self):
        from repro.apps.localptr import analyze_locality

        expr = parse("let p = ref 1 in let q = {} ref 2 in let a = !p in !q ni ni ni")
        costs = analyze_locality(expr, remote_factor=50)
        by_cost = sorted(cost for _n, cost in costs.dereference_costs(expr))
        assert by_cost == [1, 50]
        assert costs.local_fraction(expr) == 0.5
        assert costs.total_cost(expr) == 51

    def test_all_local(self):
        from repro.apps.localptr import analyze_locality

        expr = parse("let p = ref 1 in let a = !p in !p ni ni")
        costs = analyze_locality(expr)
        assert costs.local_fraction(expr) == 1.0
        assert costs.total_cost(expr) == 2

    def test_remote_taints_alias(self):
        from repro.apps.localptr import analyze_locality

        # merging a remote pointer into a local one makes derefs remote
        source = """
        let p = ref 1 in
        let q = {} ref 2 in
        let r = if 1 then p else q fi in
        !r
        ni ni ni
        """
        expr = parse(source)
        costs = analyze_locality(expr, remote_factor=10)
        assert costs.local_fraction(expr) == 0.0

    def test_no_derefs_fraction_one(self):
        from repro.apps.localptr import analyze_locality

        expr = parse("42")
        assert analyze_locality(expr).local_fraction(expr) == 1.0
