"""Unit tests for the Table 2 casts-away-const classifier
(:mod:`repro.cfront.cast`): value casts, const-preserving and
const-adding pointer casts, nested pointers, and function pointers."""

from repro.cfront.cast import CastClass, casts_away_const, classify_cast
from repro.cfront.ctypes import CArray, CBase, CFunc, CPointer

CONST = frozenset({"const"})

INT = CBase("int")
CHAR = CBase("char")
CONST_CHAR = CBase("char", CONST)
CHAR_P = CPointer(CHAR)
CONST_CHAR_P = CPointer(CONST_CHAR)


class TestValueCasts:
    def test_scalar_to_scalar(self):
        assert classify_cast(INT, CBase("long")) is CastClass.VALUE

    def test_pointer_to_int(self):
        assert classify_cast(CONST_CHAR_P, INT) is CastClass.VALUE

    def test_int_to_pointer(self):
        assert classify_cast(INT, CHAR_P) is CastClass.VALUE


class TestSingleLevel:
    def test_same_type_preserves(self):
        assert classify_cast(CHAR_P, CHAR_P) is CastClass.PRESERVES

    def test_const_both_sides_preserves(self):
        assert classify_cast(CONST_CHAR_P, CONST_CHAR_P) is CastClass.PRESERVES

    def test_adding_const_is_safe(self):
        assert classify_cast(CHAR_P, CONST_CHAR_P) is CastClass.ADDS_CONST
        assert not casts_away_const(CHAR_P, CONST_CHAR_P)

    def test_dropping_const_flags(self):
        assert classify_cast(CONST_CHAR_P, CHAR_P) is CastClass.AWAY_CONST
        assert casts_away_const(CONST_CHAR_P, CHAR_P)

    def test_cross_base_still_away(self):
        # (int *) of a const char * still drops the protection.
        assert casts_away_const(CONST_CHAR_P, CPointer(INT))

    def test_top_level_const_is_not_referenced(self):
        # const on the pointer itself (char * const) protects the
        # pointer cell, not a referenced type; dropping it is fine.
        const_ptr = CPointer(CHAR, CONST)
        assert classify_cast(const_ptr, CHAR_P) is CastClass.PRESERVES


class TestNestedPointers:
    def test_deep_drop_detected(self):
        # const char ** -> char **
        src = CPointer(CONST_CHAR_P)
        dst = CPointer(CHAR_P)
        assert casts_away_const(src, dst)

    def test_middle_level_drop_detected(self):
        # char * const * -> char **
        src = CPointer(CPointer(CHAR, CONST))
        dst = CPointer(CHAR_P)
        assert casts_away_const(src, dst)

    def test_deep_add_is_safe(self):
        assert (
            classify_cast(CPointer(CHAR_P), CPointer(CONST_CHAR_P))
            is CastClass.ADDS_CONST
        )

    def test_mixed_add_and_drop_reports_drop(self):
        # dropping at one level dominates adding at another
        src = CPointer(CONST_CHAR_P)  # const char **
        dst = CPointer(CPointer(CHAR, CONST))  # char * const *
        assert casts_away_const(src, dst)

    def test_unmatched_depth_ignored(self):
        # only matched levels compare: char ** -> char * is a value-ish
        # reinterpretation, nothing const-related
        assert not casts_away_const(CPointer(CHAR_P), CHAR_P)


class TestArraysDecay:
    def test_const_array_to_pointer(self):
        src = CArray(CONST_CHAR, 8)
        assert casts_away_const(src, CHAR_P)

    def test_array_of_const_pointers(self):
        src = CArray(CONST_CHAR_P, None)
        dst = CPointer(CHAR_P)
        assert casts_away_const(src, dst)


class TestFunctionPointers:
    def test_param_const_dropped(self):
        # void (*)(const char *) -> void (*)(char *)
        src = CPointer(CFunc(CBase("void"), (CONST_CHAR_P,)))
        dst = CPointer(CFunc(CBase("void"), (CHAR_P,)))
        assert casts_away_const(src, dst)

    def test_return_const_dropped(self):
        # const char *(*)(void) -> char *(*)(void)
        src = CPointer(CFunc(CONST_CHAR_P, ()))
        dst = CPointer(CFunc(CHAR_P, ()))
        assert casts_away_const(src, dst)

    def test_matching_signature_preserves(self):
        src = CPointer(CFunc(CBase("void"), (CONST_CHAR_P, INT)))
        dst = CPointer(CFunc(CBase("void"), (CONST_CHAR_P, INT)))
        assert classify_cast(src, dst) is CastClass.PRESERVES

    def test_param_const_added_is_safe(self):
        src = CPointer(CFunc(CBase("void"), (CHAR_P,)))
        dst = CPointer(CFunc(CBase("void"), (CONST_CHAR_P,)))
        assert not casts_away_const(src, dst)
