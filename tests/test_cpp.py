"""Minimal-preprocessor tests: include resolution and cycles, nested
conditionals, object-like macros with redefinition warnings, and
line-map fidelity (a finding inside an included header must report the
header's own path and line)."""

from repro.cfront import parse_c_resilient, preprocess
from repro.cfront.cpp import PreprocessResult


def loader_for(files):
    """An in-memory include loader over a {path: text} dict."""

    def load(path):
        return files.get(path)

    return load


# -- identity fast path ----------------------------------------------------


def test_directive_free_source_is_identity():
    src = "int f(const int *p) {\n    return p[0];\n}\n"
    result = preprocess(src, "a.c")
    assert isinstance(result, PreprocessResult)
    assert result.text == src
    assert result.line_map is None  # signals "no remap needed"
    assert result.diagnostics == []


# -- object-like macros ----------------------------------------------------


def test_define_substitutes_word_boundaries_only():
    src = "#define N 4\nint buf[N];\nint xN;\n"
    result = preprocess(src, "a.c")
    assert "int buf[4];" in result.text
    assert "int xN;" in result.text  # no substitution inside identifiers


def test_macro_redefinition_warns():
    src = "#define N 4\n#define N 8\nint buf[N];\n"
    result = preprocess(src, "a.c")
    warnings = [d for d in result.diagnostics if d.severity == "warning"]
    assert any("redefin" in d.message for d in warnings)
    assert "int buf[8];" in result.text  # later definition wins


def test_undef_then_use_leaves_identifier():
    src = "#define N 4\n#undef N\nint buf[N];\n"
    result = preprocess(src, "a.c")
    assert "int buf[N];" in result.text


def test_function_like_macro_warned_and_skipped():
    src = "#define MAX(a, b) ((a) > (b) ? (a) : (b))\nint x;\n"
    result = preprocess(src, "a.c")
    assert any(
        d.severity == "warning" and "function-like" in d.message
        for d in result.diagnostics
    )
    assert "int x;" in result.text


# -- conditionals ----------------------------------------------------------


def test_ifdef_skips_undefined_region():
    src = "#ifdef MISSING\nint hidden;\n#endif\nint shown;\n"
    result = preprocess(src, "a.c")
    assert "hidden" not in result.text
    assert "int shown;" in result.text


def test_nested_ifdefs():
    src = (
        "#define OUTER 1\n"
        "#ifdef OUTER\n"
        "int a;\n"
        "#ifdef INNER\n"
        "int b;\n"
        "#else\n"
        "int c;\n"
        "#endif\n"
        "#endif\n"
        "#ifndef OUTER\n"
        "int d;\n"
        "#endif\n"
    )
    result = preprocess(src, "a.c")
    kept = result.text
    assert "int a;" in kept
    assert "int b;" not in kept
    assert "int c;" in kept
    assert "int d;" not in kept


def test_inactive_outer_suppresses_inner_branches():
    src = (
        "#ifdef MISSING\n"
        "#ifdef ALSO_MISSING\n"
        "int a;\n"
        "#else\n"
        "int b;\n"
        "#endif\n"
        "#endif\n"
        "int keep;\n"
    )
    result = preprocess(src, "a.c")
    assert "int a;" not in result.text
    assert "int b;" not in result.text
    assert "int keep;" in result.text


def test_unterminated_conditional_diagnosed():
    src = "#ifdef X\nint a;\n"
    result = preprocess(src, "a.c")
    assert any(
        d.stage == "cpp" and "unterminated" in d.message.lower()
        for d in result.diagnostics
    )


def test_stray_endif_diagnosed():
    result = preprocess("#endif\nint a;\n", "a.c")
    assert any(d.severity == "error" for d in result.diagnostics)
    assert "int a;" in result.text


def test_if_defined_expression():
    src = "#define A 1\n#if defined(A) && !defined(B)\nint yes;\n#endif\n"
    result = preprocess(src, "a.c")
    assert "int yes;" in result.text


def test_if_arithmetic_with_hex_literal():
    src = "#define LIMIT 0x10\n#if LIMIT > 0x0F\nint big;\n#endif\n"
    result = preprocess(src, "a.c")
    assert "int big;" in result.text


def test_unevaluable_if_keeps_region_with_warning():
    src = "#if SOME_MACRO(1)\nint kept;\n#endif\n"
    result = preprocess(src, "a.c")
    assert "int kept;" in result.text  # conservative: keep when unsure
    assert any(d.severity == "warning" for d in result.diagnostics)


# -- includes --------------------------------------------------------------


def test_quoted_include_spliced():
    files = {"h.h": "int from_header;\n"}
    result = preprocess('#include "h.h"\nint local;\n', "a.c", loader=loader_for(files))
    assert "int from_header;" in result.text
    assert "int local;" in result.text
    assert "h.h" in result.includes


def test_angle_include_searches_paths_only():
    files = {"inc/std.h": "int from_std;\n"}
    result = preprocess(
        "#include <std.h>\nint local;\n",
        "a.c",
        include_paths=("inc",),
        loader=loader_for(files),
    )
    assert "int from_std;" in result.text


def test_missing_include_is_a_warning_not_a_crash():
    result = preprocess('#include "nope.h"\nint x;\n', "a.c", loader=loader_for({}))
    assert any(
        d.severity == "warning" and "nope.h" in d.message for d in result.diagnostics
    )
    assert "int x;" in result.text


def test_include_cycle_detected():
    files = {
        "a.h": '#include "b.h"\nint a_sym;\n',
        "b.h": '#include "a.h"\nint b_sym;\n',
    }
    result = preprocess('#include "a.h"\n', "main.c", loader=loader_for(files))
    cycle = [d for d in result.diagnostics if "cycle" in d.message.lower()]
    assert cycle, [str(d) for d in result.diagnostics]
    # The chain names the files involved.
    assert "a.h" in cycle[0].message and "b.h" in cycle[0].message
    # Each header's own symbols still survive once.
    assert "int a_sym;" in result.text
    assert "int b_sym;" in result.text


def test_macros_cross_include_boundaries():
    files = {"config.h": "#define SIZE 3\n"}
    result = preprocess(
        '#include "config.h"\nint buf[SIZE];\n', "a.c", loader=loader_for(files)
    )
    assert "int buf[3];" in result.text


# -- line maps -------------------------------------------------------------


def test_line_map_points_into_original_files():
    files = {"h.h": "int helper(int *p) {\n    *p = 1;\n    return 0;\n}\n"}
    src = '#include "h.h"\nint local;\n'
    result = preprocess(src, "a.c", loader=loader_for(files))
    assert result.line_map is not None
    # Output line 2 ("    *p = 1;") came from h.h line 2.
    idx = result.text.split("\n").index("    *p = 1;")
    assert result.line_map[idx] == ("h.h", 2)
    # "int local;" maps back to a.c line 2.
    idx = result.text.split("\n").index("int local;")
    assert result.line_map[idx] == ("a.c", 2)


def test_parse_diagnostic_in_header_reports_header_location():
    files = {"bad.h": "int broken(;\nint fine;\n"}
    src = '#include "bad.h"\nint ok(void) { return 1; }\n'
    result = parse_c_resilient(src, "a.c", loader=loader_for(files))
    errors = [d for d in result.diagnostics if d.severity == "error"]
    assert errors
    # The offending token sits in bad.h line 1, and the diagnostic says so.
    assert any(d.file == "bad.h" and d.line == 1 for d in errors), [
        str(d) for d in errors
    ]
    # Recovery still salvaged the clean declarations around it.
    names = [getattr(item, "name", None) for item in result.unit.items]
    assert "fine" in names and "ok" in names


def test_conditional_skips_preserve_following_lines_in_map():
    src = "#ifdef MISSING\nint skipped;\n#endif\nint kept(void) { return 0; }\n"
    result = parse_c_resilient(src, "a.c")
    assert result.ok
    func = result.unit.items[0]
    # The definition sits on line 4 of the original file.
    assert func.line == 4


def test_error_directive_reported():
    result = preprocess('#error "unsupported"\nint x;\n', "a.c")
    assert any(
        d.severity == "error" and "unsupported" in d.message
        for d in result.diagnostics
    )
