"""Negative paths for the analysis cache: corrupt, truncated, stale, or
concurrently-written entries must behave as misses — recompute and
rewrite — and must never raise out of the cache layer."""

import pickle

import pytest

import repro.constinfer.cache as cache_mod
from repro.constinfer.cache import AnalysisCache, code_fingerprint


SOURCE = """
int reader(const int *p) { return p[0]; }
void writer(int *q) { q[0] = 1; }
int use(void) {
    int buf[1];
    writer(buf);
    return reader(buf);
}
"""


@pytest.fixture
def cache(tmp_path):
    return AnalysisCache(tmp_path / "cache")


def entry_paths(cache):
    return sorted(cache.root.rglob("*.pkl"))


def classifications(run):
    return sorted(
        (p.function, p.where, run.classify(p).name) for p in run.positions
    )


class TestCorruptEntries:
    def test_truncated_entry_is_a_miss(self, cache):
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        [program_entry, constraint_entry] = entry_paths(cache)
        for path in (program_entry, constraint_entry):
            path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        before = cache.stats.misses
        rerun = cache.cached_run(SOURCE, "t.c", "mono")
        assert classifications(rerun) == classifications(cold)
        assert cache.stats.misses > before
        assert not (rerun.timings and rerun.timings.from_cache)

    def test_garbage_bytes_are_a_miss(self, cache):
        cache.cached_run(SOURCE, "t.c", "mono")
        for path in entry_paths(cache):
            path.write_bytes(b"\x80\x05not a pickle at all")
        rerun = cache.cached_run(SOURCE, "t.c", "mono")
        assert rerun.positions  # recomputed, not raised

    def test_empty_entry_is_a_miss(self, cache):
        key = cache.key("program", source=SOURCE)
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_wrong_type_entry_is_recomputed(self, cache):
        """An entry that unpickles to the wrong type (e.g. written by a
        different tool against the same key) must not be served."""
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        for path in entry_paths(cache):
            path.write_bytes(pickle.dumps({"not": "a program"}))
        rerun = cache.cached_run(SOURCE, "t.c", "mono")
        assert classifications(rerun) == classifications(cold)
        assert not (rerun.timings and rerun.timings.from_cache)

    def test_directory_in_entry_place_is_a_miss(self, cache):
        key = cache.key("program", source=SOURCE)
        cache._path(key).mkdir(parents=True)
        assert cache.get(key) is None


class TestCorruptBinaryEntries:
    """The v2 binary (QCE2) encoding has more ways to be malformed than
    a pickle — short headers, lying section lengths — and every one of
    them must be a miss.  ``tests/test_cache_binary.py`` covers the
    format exhaustively; these are the negative paths."""

    def constraint_entry(self, cache):
        key = cache.key(
            "constraints", source=SOURCE, lattice=None, mode="mono", options={}
        )
        return cache._path(key)

    def test_truncated_binary_header_is_a_miss(self, cache):
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        path = self.constraint_entry(cache)
        assert path.read_bytes()[:4] == cache_mod.ENTRY_MAGIC
        path.write_bytes(path.read_bytes()[:12])  # magic survives, header doesn't
        before = cache.stats.misses
        rerun = cache.cached_run(SOURCE, "t.c", "mono")
        assert cache.stats.misses > before
        assert classifications(rerun) == classifications(cold)
        assert not (rerun.timings and rerun.timings.from_cache)

    def test_binary_header_on_pickle_body_is_a_miss(self, cache):
        """Magic bytes grafted onto a pickle body dispatch to the binary
        decoder, which must reject them rather than raise."""
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        path = self.constraint_entry(cache)
        path.write_bytes(cache_mod.ENTRY_MAGIC + pickle.dumps(([], [])))
        rerun = cache.cached_run(SOURCE, "t.c", "mono")
        assert classifications(rerun) == classifications(cold)

    def test_mixed_v1_and_v2_stores(self, cache, monkeypatch):
        """A store carrying v1 pickle entries (older writer) next to v2
        binary ones serves both encodings from the same keyspace."""
        monkeypatch.setattr(cache_mod, "_encode_entry", lambda *a: None)
        v1_cold = cache.cached_run(SOURCE, "t.c", "mono")
        monkeypatch.undo()
        v2_cold = cache.cached_run(SOURCE, "t.c", "poly")

        v1_warm = cache.cached_run(SOURCE, "t.c", "mono")
        v2_warm = cache.cached_run(SOURCE, "t.c", "poly")
        assert v1_warm.timings and v1_warm.timings.from_cache
        assert v2_warm.timings and v2_warm.timings.from_cache
        assert classifications(v1_warm) == classifications(v1_cold)
        assert classifications(v2_warm) == classifications(v2_cold)
        # Only the poly entry was binary; the mono one took the pickle path.
        assert cache.stats.binary_hits == 1


class TestStaleEntries:
    def test_format_version_bump_invalidates(self, cache, monkeypatch):
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        warm = cache.cached_run(SOURCE, "t.c", "mono")
        assert warm.timings and warm.timings.from_cache

        monkeypatch.setattr(cache_mod, "CACHE_FORMAT_VERSION", 999_999)
        monkeypatch.setattr(cache_mod, "_code_fingerprint_memo", None)
        try:
            bumped = cache.cached_run(SOURCE, "t.c", "mono")
            # New format version -> new keys -> the old entries are never
            # served, the run is recomputed from scratch.
            assert not (bumped.timings and bumped.timings.from_cache)
            assert classifications(bumped) == classifications(cold)
        finally:
            # monkeypatch restores the module globals; the memo must not
            # leak the bumped fingerprint into later tests.
            cache_mod._code_fingerprint_memo = None

    def test_fingerprint_memo_is_version_sensitive(self, monkeypatch):
        baseline = code_fingerprint()
        monkeypatch.setattr(cache_mod, "CACHE_FORMAT_VERSION", 999_999)
        monkeypatch.setattr(cache_mod, "_code_fingerprint_memo", None)
        try:
            assert code_fingerprint() != baseline
        finally:
            cache_mod._code_fingerprint_memo = None


class TestConcurrentWriters:
    def test_leftover_tmp_files_are_harmless(self, cache):
        """A writer that died mid-``put`` leaves a ``*.tmp`` beside the
        entries; readers and later writers must not trip over it."""
        cache.cached_run(SOURCE, "t.c", "mono")
        [entry, *_] = entry_paths(cache)
        (entry.parent / "deadbeef.tmp").write_bytes(b"partial write")
        warm = cache.cached_run(SOURCE, "t.c", "mono")
        assert warm.timings and warm.timings.from_cache

    def test_two_handles_share_entries(self, cache, tmp_path):
        first = AnalysisCache(cache.root)
        second = AnalysisCache(cache.root)
        cold = first.cached_run(SOURCE, "t.c", "poly")
        warm = second.cached_run(SOURCE, "t.c", "poly")
        assert warm.timings and warm.timings.from_cache
        assert classifications(warm) == classifications(cold)

    def test_racing_put_last_writer_wins(self, cache):
        key = cache.key("program", source="x")
        cache.put(key, {"writer": 1})
        cache.put(key, {"writer": 2})
        assert cache.get(key) == {"writer": 2}
        assert cache.stats.stores == 2
