"""Tests for the heap-cell layer of the flow-sensitive prototype:
weak updates on aliased cells vs strong updates on locals."""

import pytest

from repro.flowsens.heap import analyze_heap_flow
from repro.flowsens.language import (
    AnnotStmt,
    Assign,
    AssertStmt,
    CopyPtr,
    If,
    Literal,
    LoadCell,
    NewCell,
    StoreCell,
    VarRef,
    While,
    block,
)
from repro.flowsens.analysis import FlowError
from repro.qual.qualifiers import taint_lattice


@pytest.fixture
def taint():
    return taint_lattice()


def lit(lattice, *names):
    return Literal(lattice.element(*names))


class TestWeakCellUpdates:
    def test_store_then_load(self, taint):
        program = block(
            NewCell("p", "buf"),
            StoreCell("p", lit(taint, "tainted")),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok  # the tainted store reaches the load

    def test_weak_update_does_not_forget(self, taint):
        # unlike a local, overwriting a cell does NOT clear it: the old
        # value may still be visible through an alias, so stores join.
        program = block(
            NewCell("p", "buf"),
            StoreCell("p", lit(taint, "tainted")),
            StoreCell("p", lit(taint)),  # "clean" store joins, not replaces
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok

    def test_local_contrast_is_strong(self, taint):
        # the same history on a LOCAL is fine: assignment is strong.
        program = block(
            Assign("x", lit(taint, "tainted")),
            Assign("x", lit(taint)),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok

    def test_clean_cell_passes(self, taint):
        program = block(
            NewCell("p", "buf"),
            StoreCell("p", lit(taint)),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok


class TestAliasing:
    def test_alias_sees_store(self, taint):
        program = block(
            NewCell("p", "buf"),
            CopyPtr("q", "p"),
            StoreCell("q", lit(taint, "tainted")),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert not analyze_heap_flow(program, taint).ok

    def test_distinct_sites_independent(self, taint):
        program = block(
            NewCell("p", "dirty_site"),
            NewCell("q", "clean_site"),
            StoreCell("p", lit(taint, "tainted")),
            StoreCell("q", lit(taint)),
            LoadCell("x", "q"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok

    def test_merge_unions_points_to(self, taint):
        program = block(
            Assign("flag", lit(taint)),
            NewCell("a", "site_a"),
            NewCell("b", "site_b"),
            CopyPtr("p", "a"),
            If("flag", then=(CopyPtr("p", "b"),), else_=()),
            StoreCell("p", lit(taint, "tainted")),  # may hit either site
            LoadCell("x", "a"),
            AssertStmt("x", taint.element(), label="sink-a"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok  # site_a may have been written

    def test_pointer_reassignment_is_strong(self, taint):
        program = block(
            NewCell("p", "old"),
            StoreCell("p", lit(taint, "tainted")),
            NewCell("p", "fresh"),  # strong update of the POINTER
            StoreCell("p", lit(taint)),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok


class TestLoops:
    def test_points_to_fixpoint_through_loop(self, taint):
        # p alternates between two cells across iterations; the store
        # must be seen to reach both.
        program = block(
            Assign("n", lit(taint)),
            NewCell("a", "site_a"),
            NewCell("b", "site_b"),
            CopyPtr("p", "a"),
            While(
                "n",
                body=(
                    StoreCell("p", lit(taint, "tainted")),
                    CopyPtr("p", "b"),
                ),
            ),
            LoadCell("x", "b"),
            AssertStmt("x", taint.element(), label="sink-b"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok  # second iteration stores through b

    def test_loop_clean_stores_ok(self, taint):
        program = block(
            Assign("n", lit(taint)),
            NewCell("p", "acc"),
            While("n", body=(StoreCell("p", lit(taint)),)),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok


class TestErrors:
    def test_store_through_non_pointer(self, taint):
        program = block(
            Assign("x", lit(taint)),
            StoreCell("x", lit(taint)),
        )
        with pytest.raises(FlowError):
            analyze_heap_flow(program, taint)

    def test_load_through_undefined(self, taint):
        with pytest.raises(FlowError):
            analyze_heap_flow(block(LoadCell("x", "ghost")), taint)

    def test_copy_of_non_pointer(self, taint):
        program = block(Assign("x", lit(taint)), CopyPtr("q", "x"))
        with pytest.raises(FlowError):
            analyze_heap_flow(program, taint)

    def test_scalar_layer_still_works(self, taint):
        program = block(
            Assign("x", lit(taint, "tainted")),
            AnnotStmt("x", taint.element("tainted")),
            AssertStmt("x", taint.element("tainted"), label="ok"),
        )
        assert analyze_heap_flow(program, taint).ok
