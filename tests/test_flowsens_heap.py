"""Tests for the heap-cell layer of the flow-sensitive prototype:
weak updates on aliased cells vs strong updates on locals."""

import pytest

from repro.flowsens.heap import analyze_heap_flow
from repro.flowsens.language import (
    AnnotStmt,
    Assign,
    AssertStmt,
    CopyPtr,
    If,
    Literal,
    LoadCell,
    NewCell,
    StoreCell,
    VarRef,
    While,
    block,
)
from repro.flowsens.analysis import FlowError
from repro.qual.qualifiers import taint_lattice


@pytest.fixture
def taint():
    return taint_lattice()


def lit(lattice, *names):
    return Literal(lattice.element(*names))


class TestWeakCellUpdates:
    def test_store_then_load(self, taint):
        program = block(
            NewCell("p", "buf"),
            StoreCell("p", lit(taint, "tainted")),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok  # the tainted store reaches the load

    def test_weak_update_does_not_forget(self, taint):
        # unlike a local, overwriting a cell does NOT clear it: the old
        # value may still be visible through an alias, so stores join.
        program = block(
            NewCell("p", "buf"),
            StoreCell("p", lit(taint, "tainted")),
            StoreCell("p", lit(taint)),  # "clean" store joins, not replaces
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok

    def test_local_contrast_is_strong(self, taint):
        # the same history on a LOCAL is fine: assignment is strong.
        program = block(
            Assign("x", lit(taint, "tainted")),
            Assign("x", lit(taint)),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok

    def test_clean_cell_passes(self, taint):
        program = block(
            NewCell("p", "buf"),
            StoreCell("p", lit(taint)),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok


class TestAliasing:
    def test_alias_sees_store(self, taint):
        program = block(
            NewCell("p", "buf"),
            CopyPtr("q", "p"),
            StoreCell("q", lit(taint, "tainted")),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert not analyze_heap_flow(program, taint).ok

    def test_distinct_sites_independent(self, taint):
        program = block(
            NewCell("p", "dirty_site"),
            NewCell("q", "clean_site"),
            StoreCell("p", lit(taint, "tainted")),
            StoreCell("q", lit(taint)),
            LoadCell("x", "q"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok

    def test_merge_unions_points_to(self, taint):
        program = block(
            Assign("flag", lit(taint)),
            NewCell("a", "site_a"),
            NewCell("b", "site_b"),
            CopyPtr("p", "a"),
            If("flag", then=(CopyPtr("p", "b"),), else_=()),
            StoreCell("p", lit(taint, "tainted")),  # may hit either site
            LoadCell("x", "a"),
            AssertStmt("x", taint.element(), label="sink-a"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok  # site_a may have been written

    def test_pointer_reassignment_is_strong(self, taint):
        program = block(
            NewCell("p", "old"),
            StoreCell("p", lit(taint, "tainted")),
            NewCell("p", "fresh"),  # strong update of the POINTER
            StoreCell("p", lit(taint)),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok


class TestLoops:
    def test_points_to_fixpoint_through_loop(self, taint):
        # p alternates between two cells across iterations; the store
        # must be seen to reach both.
        program = block(
            Assign("n", lit(taint)),
            NewCell("a", "site_a"),
            NewCell("b", "site_b"),
            CopyPtr("p", "a"),
            While(
                "n",
                body=(
                    StoreCell("p", lit(taint, "tainted")),
                    CopyPtr("p", "b"),
                ),
            ),
            LoadCell("x", "b"),
            AssertStmt("x", taint.element(), label="sink-b"),
        )
        result = analyze_heap_flow(program, taint)
        assert not result.ok  # second iteration stores through b

    def test_loop_clean_stores_ok(self, taint):
        program = block(
            Assign("n", lit(taint)),
            NewCell("p", "acc"),
            While("n", body=(StoreCell("p", lit(taint)),)),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok


class TestErrors:
    def test_store_through_non_pointer(self, taint):
        program = block(
            Assign("x", lit(taint)),
            StoreCell("x", lit(taint)),
        )
        with pytest.raises(FlowError):
            analyze_heap_flow(program, taint)

    def test_load_through_undefined(self, taint):
        with pytest.raises(FlowError):
            analyze_heap_flow(block(LoadCell("x", "ghost")), taint)

    def test_copy_of_non_pointer(self, taint):
        program = block(Assign("x", lit(taint)), CopyPtr("q", "x"))
        with pytest.raises(FlowError):
            analyze_heap_flow(program, taint)

    def test_scalar_layer_still_works(self, taint):
        program = block(
            Assign("x", lit(taint, "tainted")),
            AnnotStmt("x", taint.element("tainted")),
            AssertStmt("x", taint.element("tainted"), label="ok"),
        )
        assert analyze_heap_flow(program, taint).ok


class TestWeakUpdateCorners:
    """The corners the lowering leans on: branch merges over aliased
    cells, points-to joins at loop heads, and CopyPtr chains."""

    def test_aliased_cells_merge_across_branches(self, taint):
        # p -> site_a on one branch, site_b on the other; after the
        # merge a store through p must weak-update BOTH cells.
        program = block(
            Assign("flag", lit(taint)),
            NewCell("a", "site_a"),
            NewCell("b", "site_b"),
            If("flag", then=(CopyPtr("p", "a"),), else_=(CopyPtr("p", "b"),)),
            StoreCell("p", lit(taint, "tainted")),
            LoadCell("x", "b"),
            AssertStmt("x", taint.element(), label="sink-b"),
        )
        assert not analyze_heap_flow(program, taint).ok

    def test_branch_merge_keeps_unaliased_cell_clean(self, taint):
        # a third cell never aliased by p must not be hit by the store.
        program = block(
            Assign("flag", lit(taint)),
            NewCell("a", "site_a"),
            NewCell("b", "site_b"),
            NewCell("c", "site_c"),
            If("flag", then=(CopyPtr("p", "a"),), else_=(CopyPtr("p", "b"),)),
            StoreCell("p", lit(taint, "tainted")),
            LoadCell("x", "c"),
            AssertStmt("x", taint.element(), label="sink-c"),
        )
        assert analyze_heap_flow(program, taint).ok

    def test_loop_head_join_carries_body_alias(self, taint):
        # the alias q -> p's cell is created inside the body; the join
        # at the loop head must keep it live for the store on the next
        # iteration, so p's cell is dirty after the loop.
        program = block(
            Assign("n", lit(taint)),
            NewCell("p", "site"),
            While(
                "n",
                body=(
                    CopyPtr("q", "p"),
                    StoreCell("q", lit(taint, "tainted")),
                ),
            ),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert not analyze_heap_flow(program, taint).ok

    def test_loop_head_join_unions_entry_and_back_edge(self, taint):
        # at the head p may point to site_a (entry) or site_b (back
        # edge); a store at the top of the body must hit both.
        program = block(
            Assign("n", lit(taint)),
            NewCell("a", "site_a"),
            NewCell("b", "site_b"),
            CopyPtr("p", "a"),
            While(
                "n",
                body=(
                    StoreCell("p", lit(taint, "tainted")),
                    CopyPtr("p", "b"),
                ),
            ),
            LoadCell("x", "a"),
            AssertStmt("x", taint.element(), label="sink-a"),
        )
        assert not analyze_heap_flow(program, taint).ok

    def test_copyptr_chain_three_deep(self, taint):
        program = block(
            NewCell("p", "site"),
            CopyPtr("q", "p"),
            CopyPtr("r", "q"),
            StoreCell("r", lit(taint, "tainted")),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert not analyze_heap_flow(program, taint).ok

    def test_copyptr_chain_broken_by_strong_repoint(self, taint):
        # repointing q at a fresh cell breaks the chain: the store
        # through q no longer reaches p's cell.
        program = block(
            NewCell("p", "site"),
            CopyPtr("q", "p"),
            NewCell("q", "fresh"),
            StoreCell("q", lit(taint, "tainted")),
            LoadCell("x", "p"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        assert analyze_heap_flow(program, taint).ok
