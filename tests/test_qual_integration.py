"""Framework-level integration properties: spread -> decompose -> solve
pipelines over randomly generated standard types, and the sound/unsound
ref-rule contrast at the constraint level."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qual.constraints import QualConstraint, SubtypeConstraint
from repro.qual.lattice import LatticeElement
from repro.qual.qtypes import (
    STD_INT,
    STD_UNIT,
    StdVar,
    qual_vars,
    quals_of,
    spread,
    std_fun,
    std_ref,
    strip,
)
from repro.qual.qualifiers import const_nonzero_lattice
from repro.qual.solver import check_ground, solve
from repro.qual.subtype import decompose, unsound_ref_decompose

LATTICE = const_nonzero_lattice()


@st.composite
def std_types(draw, depth=3):
    if depth == 0:
        return draw(st.sampled_from([STD_INT, STD_UNIT, StdVar("a"), StdVar("b")]))
    kind = draw(st.sampled_from(["int", "unit", "var", "fun", "ref"]))
    if kind == "int":
        return STD_INT
    if kind == "unit":
        return STD_UNIT
    if kind == "var":
        return StdVar(draw(st.sampled_from(["a", "b"])))
    if kind == "fun":
        return std_fun(
            draw(std_types(depth=depth - 1)), draw(std_types(depth=depth - 1))
        )
    return std_ref(draw(std_types(depth=depth - 1)))


@given(std_types())
@settings(max_examples=200, deadline=None)
def test_spread_strip_inverse(std):
    assert strip(spread(std)) == std


@given(std_types())
@settings(max_examples=200, deadline=None)
def test_self_subtype_constraints_always_satisfiable(std):
    """rho <= rho' between two spreads of the same type is always
    solvable (take everything equal), for any constructor mix."""
    lhs = spread(std)
    rhs = spread(std)
    atoms = decompose(SubtypeConstraint(lhs, rhs))
    solution = solve(atoms, LATTICE)
    assert check_ground(atoms, LATTICE, solution.least) is None
    assert check_ground(atoms, LATTICE, solution.greatest) is None


@given(std_types())
@settings(max_examples=200, deadline=None)
def test_decomposition_covers_every_position(std):
    """Every qualifier position of both sides appears in some atom of
    the decomposition (no position escapes the subtype relation)."""
    lhs = spread(std)
    rhs = spread(std)
    atoms = decompose(SubtypeConstraint(lhs, rhs))
    mentioned = set()
    for atom in atoms:
        mentioned.add(atom.lhs)
        mentioned.add(atom.rhs)
    for side in (lhs, rhs):
        for qual in quals_of(side):
            assert qual in mentioned


@given(std_types())
@settings(max_examples=200, deadline=None)
def test_unsound_rule_is_strictly_weaker(std):
    """Every atom the unsound rule emits is also entailed by the sound
    decomposition (the sound rule only ever adds the reverse direction
    under refs)."""
    lhs = spread(std)
    rhs = spread(std)
    sound = {(a.lhs, a.rhs) for a in decompose(SubtypeConstraint(lhs, rhs))}
    unsound = {
        (a.lhs, a.rhs)
        for a in unsound_ref_decompose(SubtypeConstraint(lhs, rhs))
    }
    assert unsound <= sound


@given(std_types())
@settings(max_examples=100, deadline=None)
def test_atom_count_linear_in_type_size(std):
    """Decomposition emits at most two atoms per qualifier position
    (the invariant-ref doubling), never more — the linear-size claim."""
    lhs = spread(std)
    rhs = spread(std)
    atoms = decompose(SubtypeConstraint(lhs, rhs))
    positions = len(list(quals_of(lhs)))
    assert len(atoms) <= 2 * positions


@given(std_types())
@settings(max_examples=100, deadline=None)
def test_ground_embedding_reflexive(std):
    """bottom(tau) <= bottom(tau) holds under the ground checker."""
    from repro.qual.qtypes import embed_bottom
    from repro.qual.subtype import is_subtype

    t = embed_bottom(std, LATTICE)
    assert is_subtype(t, t, LATTICE)


@given(std_types(), st.integers(min_value=0, max_value=3))
@settings(max_examples=150, deadline=None)
def test_top_level_promotion_only(std, seed):
    """Raising only the top-level qualifier of a ground embedding is a
    valid supertype for any constructor (the generic constructor rule)."""
    from repro.qual.qtypes import embed_bottom
    from repro.qual.subtype import is_subtype

    lo = embed_bottom(std, LATTICE)
    hi = lo.with_qual(LATTICE.top)
    assert is_subtype(lo, hi, LATTICE)
    if LATTICE.top != LATTICE.bottom:
        assert not is_subtype(hi, lo, LATTICE)
