"""Unit tests for the atomic qualifier-constraint solver (Section 3.1)."""

import pytest

from repro.qual.constraints import Origin, QualConstraint
from repro.qual.qtypes import fresh_qual_var
from repro.qual.qualifiers import const_lattice, const_nonzero_lattice
from repro.qual.solver import (
    Classification,
    UnsatisfiableError,
    check_ground,
    satisfiable,
    solve,
)


def c(lhs, rhs, reason="test"):
    return QualConstraint(lhs, rhs, Origin(reason))


class TestLeastSolution:
    def test_lower_bound_propagates_forward(self, const_lat):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        sol = solve(
            [c(const_lat.top, k1), c(k1, k2), c(k2, k3)], const_lat
        )
        assert sol.least_of(k3) == const_lat.top

    def test_no_bound_stays_bottom(self, const_lat):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        sol = solve([c(k1, k2)], const_lat)
        assert sol.least_of(k1) == const_lat.bottom
        assert sol.least_of(k2) == const_lat.bottom

    def test_join_of_lower_bounds(self, fig2_lat):
        k = fresh_qual_var()
        sol = solve(
            [c(fig2_lat.atom("const"), k), c(fig2_lat.atom("dynamic"), k)],
            fig2_lat,
        )
        assert sol.least_of(k).has("const") and sol.least_of(k).has("dynamic")

    def test_cycle_converges(self, const_lat):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        sol = solve(
            [c(k1, k2), c(k2, k1), c(const_lat.top, k1)], const_lat
        )
        assert sol.least_of(k1) == const_lat.top
        assert sol.least_of(k2) == const_lat.top


class TestGreatestSolution:
    def test_upper_bound_propagates_backward(self, const_lat):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        nc = const_lat.negate("const")
        sol = solve([c(k1, k2), c(k2, k3), c(k3, nc)], const_lat)
        assert sol.greatest_of(k1) == nc

    def test_unbounded_stays_top(self, const_lat):
        k = fresh_qual_var()
        sol = solve([c(const_lat.bottom, k)], const_lat)
        assert sol.greatest_of(k) == const_lat.top

    def test_meet_of_upper_bounds(self, fig2_lat):
        k = fresh_qual_var()
        sol = solve(
            [c(k, fig2_lat.negate("const")), c(k, fig2_lat.negate("dynamic"))],
            fig2_lat,
        )
        g = sol.greatest_of(k)
        assert not g.has("const") and not g.has("dynamic")


class TestUnsatisfiable:
    def test_ground_violation(self, const_lat):
        with pytest.raises(UnsatisfiableError):
            solve([c(const_lat.top, const_lat.bottom)], const_lat)

    def test_lower_exceeds_upper(self, const_lat):
        k = fresh_qual_var()
        with pytest.raises(UnsatisfiableError):
            solve(
                [c(const_lat.atom("const"), k), c(k, const_lat.negate("const"))],
                const_lat,
            )

    def test_conflict_through_chain(self, const_lat):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        with pytest.raises(UnsatisfiableError):
            solve(
                [
                    c(const_lat.atom("const"), k1),
                    c(k1, k2),
                    c(k2, k3),
                    c(k3, const_lat.negate("const")),
                ],
                const_lat,
            )

    def test_error_carries_origin(self, const_lat):
        k = fresh_qual_var()
        with pytest.raises(UnsatisfiableError) as err:
            solve(
                [
                    c(const_lat.atom("const"), k, "annotation at foo:3"),
                    c(k, const_lat.negate("const"), "assignment at foo:9"),
                ],
                const_lat,
            )
        assert "foo:9" in str(err.value)

    def test_satisfiable_helper(self, const_lat):
        k = fresh_qual_var()
        assert satisfiable([c(const_lat.bottom, k)], const_lat)
        assert not satisfiable([c(const_lat.top, const_lat.bottom)], const_lat)


class TestClassification:
    def test_must(self, const_lat):
        k = fresh_qual_var()
        sol = solve([c(const_lat.atom("const"), k)], const_lat)
        assert sol.classify(k, "const") is Classification.MUST

    def test_must_not(self, const_lat):
        k = fresh_qual_var()
        sol = solve([c(k, const_lat.negate("const"))], const_lat)
        assert sol.classify(k, "const") is Classification.MUST_NOT

    def test_either(self, const_lat):
        k = fresh_qual_var()
        sol = solve([], const_lat, extra_vars=[k])
        assert sol.classify(k, "const") is Classification.EITHER
        assert sol.is_unconstrained(k)

    def test_negative_qualifier_classification(self, cn_lat):
        k_must = fresh_qual_var()
        k_not = fresh_qual_var()
        k_free = fresh_qual_var()
        sol = solve(
            [
                # presence of a negative qualifier is forced by an upper
                # bound (present is low)...
                c(k_must, cn_lat.assertion_bound("nonzero")),
                # ...and forbidden by a lower bound.
                c(cn_lat.negate("nonzero"), k_not),
            ],
            cn_lat,
            extra_vars=[k_free],
        )
        assert sol.classify(k_must, "nonzero") is Classification.MUST
        assert sol.classify(k_not, "nonzero") is Classification.MUST_NOT
        assert sol.classify(k_free, "nonzero") is Classification.EITHER


class TestExtremesAreSolutions:
    def test_least_and_greatest_satisfy_system(self, fig2_lat):
        ks = [fresh_qual_var() for _ in range(5)]
        constraints = [
            c(fig2_lat.atom("const"), ks[0]),
            c(ks[0], ks[1]),
            c(ks[1], ks[2]),
            c(ks[3], ks[2]),
            c(ks[2], fig2_lat.top),
            c(ks[4], fig2_lat.negate("dynamic")),
        ]
        sol = solve(constraints, fig2_lat)
        assert check_ground(constraints, fig2_lat, sol.least) is None
        assert check_ground(constraints, fig2_lat, sol.greatest) is None

    def test_least_below_greatest(self, fig2_lat):
        ks = [fresh_qual_var() for _ in range(3)]
        constraints = [
            c(fig2_lat.atom("const"), ks[0]),
            c(ks[0], ks[1]),
            c(ks[1], ks[2]),
        ]
        sol = solve(constraints, fig2_lat)
        for k in ks:
            assert fig2_lat.leq(sol.least_of(k), sol.greatest_of(k))

    def test_check_ground_reports_violation(self, const_lat):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        constraints = [c(k1, k2)]
        bad = {k1: const_lat.top, k2: const_lat.bottom}
        assert check_ground(constraints, const_lat, bad) is constraints[0]


class TestScaling:
    def test_long_chain_linear(self, const_lat):
        # 5000-variable chain solves comfortably (the HR97 linear claim).
        ks = [fresh_qual_var() for _ in range(5000)]
        constraints = [c(const_lat.atom("const"), ks[0])]
        constraints += [c(ks[i], ks[i + 1]) for i in range(len(ks) - 1)]
        sol = solve(constraints, const_lat)
        assert sol.least_of(ks[-1]).has("const")

    def test_wide_fanout(self, const_lat):
        hub = fresh_qual_var()
        leaves = [fresh_qual_var() for _ in range(2000)]
        constraints = [c(const_lat.atom("const"), hub)]
        constraints += [c(hub, leaf) for leaf in leaves]
        sol = solve(constraints, const_lat)
        assert all(sol.least_of(leaf).has("const") for leaf in leaves)


class TestFlowPathDeterminism:
    """``shortest_flow_path`` must pick the same witness no matter how
    the constraint list was assembled (regression: the pre-fix picker
    broke ties by emission order, so ``--jobs`` absorption order and
    cache-restored summaries could flip the reported path)."""

    @staticmethod
    def _spanned(lhs, rhs, filename, line, column=1, reason="flow"):
        from repro.qual.constraints import Origin, QualConstraint

        return QualConstraint(lhs, rhs, Origin(reason, filename, line, column))

    def _two_equal_paths(self, const_lat):
        # two seeds, two disjoint length-2 paths to the same target:
        #   top <= ka ; ka <= kt   (spans in a.c)
        #   top <= kb ; kb <= kt   (spans in b.c)
        ka, kb, kt = (fresh_qual_var() for _ in range(3))
        constraints = [
            self._spanned(const_lat.top, ka, "a.c", 1),
            self._spanned(ka, kt, "a.c", 2),
            self._spanned(const_lat.top, kb, "b.c", 1),
            self._spanned(kb, kt, "b.c", 2),
        ]
        return kt, constraints

    def test_tie_breaks_by_origin_span_not_list_order(self, const_lat):
        import itertools

        from repro.qual.solver import shortest_flow_path

        kt, constraints = self._two_equal_paths(const_lat)
        expected = None
        for perm in itertools.permutations(constraints):
            path = shortest_flow_path(perm, const_lat, kt, const_lat.bottom)
            assert path is not None and len(path) == 2
            # earliest origin span wins the tie: the a.c path
            assert [p.origin.filename for p in path] == ["a.c", "a.c"]
            if expected is None:
                expected = path
            assert path == list(expected)

    def test_tie_on_identical_spans_breaks_by_uid(self, const_lat):
        import itertools

        from repro.qual.solver import shortest_flow_path

        # both paths carry byte-identical origins; the seed whose
        # variable has the smaller uid must win, in every ordering
        ka, kb, kt = (fresh_qual_var() for _ in range(3))
        assert ka.uid < kb.uid
        constraints = [
            self._spanned(const_lat.top, ka, "same.c", 1),
            self._spanned(ka, kt, "same.c", 2),
            self._spanned(const_lat.top, kb, "same.c", 1),
            self._spanned(kb, kt, "same.c", 2),
        ]
        for perm in itertools.permutations(constraints):
            path = shortest_flow_path(perm, const_lat, kt, const_lat.bottom)
            assert path is not None
            assert path[0].rhs is ka

    def test_parallel_edges_pick_earliest_span(self, const_lat):
        from repro.qual.solver import shortest_flow_path

        # duplicate ka <= kt edges with different spans: the witness
        # must use the textually earliest one regardless of order
        ka, kt = fresh_qual_var(), fresh_qual_var()
        seed = self._spanned(const_lat.top, ka, "m.c", 1)
        early = self._spanned(ka, kt, "m.c", 5)
        late = self._spanned(ka, kt, "m.c", 9)
        for ordering in ([seed, early, late], [seed, late, early], [late, seed, early]):
            path = shortest_flow_path(ordering, const_lat, kt, const_lat.bottom)
            assert path == [seed, early]

    def test_satisfied_bound_yields_no_path(self, const_lat):
        from repro.qual.solver import shortest_flow_path

        kt, constraints = self._two_equal_paths(const_lat)
        assert shortest_flow_path(constraints, const_lat, kt, const_lat.top) is None
