"""Unit tests for whole-program semantic tables and traversals."""

from repro.cfront.sema import (
    Program,
    expressions_of,
    occurring_names,
    statements,
    subexpressions,
)


class TestProgramTables:
    def test_basic_tables(self):
        program = Program.from_source(
            """
            struct st { int x; };
            enum color { RED, GREEN = 7, BLUE };
            typedef int myint;
            int global_v = 1;
            extern int lib(const char *s);
            int defined(int a) { return a; }
            """
        )
        assert "st" in program.structs
        assert program.enum_constants == {"RED": 0, "GREEN": 7, "BLUE": 8}
        assert "myint" in program.typedefs
        assert "global_v" in program.globals
        assert "lib" in program.prototypes
        assert "defined" in program.functions

    def test_undefined_function_names(self):
        program = Program.from_source(
            "extern int lib(int); int f(void) { return lib(1); }"
        )
        assert program.undefined_function_names() == {"lib"}
        assert program.defined_function_names() == {"f"}

    def test_prototype_of_defined_function_not_library(self):
        program = Program.from_source(
            "int f(int); int f(int a) { return a; }"
        )
        assert program.undefined_function_names() == set()

    def test_duplicate_definitions_renamed(self):
        program = Program.from_sources(
            {
                "a.c": "int work(void) { return 1; }",
                "b.c": "int work(void) { return 2; }",
            }
        )
        assert "work" in program.functions
        assert "work__dup2" in program.functions

    def test_extern_global_does_not_shadow_definition(self):
        program = Program.from_sources(
            {
                "a.c": "int counter = 5;",
                "b.c": "extern int counter;",
            }
        )
        assert program.globals["counter"].init is not None

    def test_struct_redeclaration_keeps_fields(self):
        program = Program.from_sources(
            {
                "a.c": "struct st { int x; };",
                "b.c": "struct st; struct st *p;",
            }
        )
        assert len(program.structs["st"].fields) == 1

    def test_total_lines(self):
        program = Program.from_source("int a;\nint b;\nint c;\n")
        assert program.total_lines() == 3


class TestTraversals:
    def test_subexpressions_complete(self):
        program = Program.from_source(
            "int f(int a) { return a ? g(a + 1) : h[a]; }"
        )
        fdef = program.functions["f"]
        names = {
            e.name
            for e in expressions_of(fdef.body)
            if type(e).__name__ == "Ident"
        }
        assert names == {"a", "g", "h"}

    def test_statements_nested(self):
        program = Program.from_source(
            "void f(void) { if (1) { while (2) { x = 3; } } }"
        )
        stmts = list(statements(program.functions["f"].body))
        kinds = {type(s).__name__ for s in stmts}
        assert {"Compound", "IfStmt", "WhileStmt", "ExprStmt"} <= kinds

    def test_expressions_in_declarations(self):
        program = Program.from_source("void f(void) { int x = seed(); }")
        names = {
            e.name
            for e in expressions_of(program.functions["f"].body)
            if type(e).__name__ == "Ident"
        }
        assert "seed" in names

    def test_expressions_in_for_clauses(self):
        program = Program.from_source(
            "void f(void) { for (i = a; i < b; i += c) ; }"
        )
        names = {
            e.name
            for e in expressions_of(program.functions["f"].body)
            if type(e).__name__ == "Ident"
        }
        assert {"a", "b", "c", "i"} <= names


class TestOccurringNames:
    def test_calls_count(self):
        program = Program.from_source(
            "int g(void){return 0;} int f(void) { return g(); }"
        )
        assert "g" in occurring_names(program.functions["f"])

    def test_address_of_counts(self):
        # Definition 4: ANY occurrence of the name, not just calls.
        program = Program.from_source(
            """
            int g(void) { return 0; }
            void f(void) { int (*p)(void) = g; }
            """
        )
        assert "g" in occurring_names(program.functions["f"])

    def test_no_occurrence(self):
        program = Program.from_source(
            "int g(void){return 0;} int f(void) { return 1; }"
        )
        assert "g" not in occurring_names(program.functions["f"])
