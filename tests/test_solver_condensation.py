"""Tests for the condensation solver pipeline (indexing, SCC collapse,
stats) and its agreement with the reference worklist solver."""

import random

import pytest

from repro.qual.constraints import Origin, QualConstraint
from repro.qual.lattice import QualifierLattice
from repro.qual.qtypes import QualVar, fresh_qual_var
from repro.qual.solver import (
    IndexedSystem,
    UnsatisfiableError,
    _explain_path,
    check_ground,
    solve,
    solve_reference,
)


def c(lhs, rhs, reason="test"):
    return QualConstraint(lhs, rhs, Origin(reason))


def random_system(lattice, rng, n_vars=40, n_edges=80, n_bounds=12):
    """A random atomic system mixing chains, cycles, and constant bounds."""
    variables = [fresh_qual_var("r") for _ in range(n_vars)]
    elements = [
        lattice.bottom,
        lattice.top,
        *(lattice.atom(q.name) for q in lattice.qualifiers),
    ]
    constraints = []
    for _ in range(n_edges):
        u, v = rng.choice(variables), rng.choice(variables)
        constraints.append(c(u, v))
    for _ in range(n_bounds):
        v = rng.choice(variables)
        e = rng.choice(elements)
        if rng.random() < 0.5:
            constraints.append(c(e, v))
        else:
            constraints.append(c(v, e))
    return variables, constraints


class TestDifferentialAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_same_solutions_on_random_systems(self, fig2_lat, seed):
        rng = random.Random(seed)
        variables, constraints = random_system(fig2_lat, rng)
        try:
            expected = solve_reference(constraints, fig2_lat, extra_vars=variables)
        except UnsatisfiableError:
            with pytest.raises(UnsatisfiableError):
                solve(constraints, fig2_lat, extra_vars=variables)
            return
        actual = solve(constraints, fig2_lat, extra_vars=variables)
        for v in variables:
            assert actual.least_of(v) == expected.least_of(v)
            assert actual.greatest_of(v) == expected.greatest_of(v)

    @pytest.mark.parametrize("seed", range(8, 12))
    def test_dense_cyclic_systems(self, const_lat, seed):
        rng = random.Random(seed)
        variables, constraints = random_system(
            const_lat, rng, n_vars=12, n_edges=60, n_bounds=8
        )
        try:
            expected = solve_reference(constraints, const_lat, extra_vars=variables)
        except UnsatisfiableError:
            with pytest.raises(UnsatisfiableError):
                solve(constraints, const_lat, extra_vars=variables)
            return
        actual = solve(constraints, const_lat, extra_vars=variables)
        for v in variables:
            assert actual.least_of(v) == expected.least_of(v)
            assert actual.greatest_of(v) == expected.greatest_of(v)


class TestSolverStats:
    def test_chain_stats(self, const_lat):
        ks = [fresh_qual_var() for _ in range(5)]
        constraints = [c(const_lat.top, ks[0])]
        constraints += [c(a, b) for a, b in zip(ks, ks[1:])]
        # a parallel duplicate edge that dedup must fold away
        constraints.append(c(ks[0], ks[1], "duplicate"))
        sol = solve(constraints, const_lat)
        stats = sol.stats
        assert stats is not None
        assert stats.variables == 5
        assert stats.sccs == 5
        assert stats.collapsed_sccs == 0
        assert stats.edges_before == 5
        assert stats.edges_after == 4  # duplicate folded
        assert stats.dag_edges == 4
        assert stats.propagation_steps >= 4
        assert "5 vars" in stats.summary()

    def test_cycle_collapses_into_one_component(self, const_lat):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        sol = solve(
            [c(k1, k2), c(k2, k1), c(k2, k3), c(const_lat.top, k1)], const_lat
        )
        stats = sol.stats
        assert stats.sccs == 2
        assert stats.collapsed_sccs == 1
        assert stats.largest_scc == 2
        # every member of the cycle carries the forced bound
        assert sol.least_of(k1) == sol.least_of(k2) == const_lat.top

    def test_self_loop_is_dropped(self, const_lat):
        k = fresh_qual_var()
        sol = solve([c(k, k)], const_lat)
        assert sol.stats.edges_before == 1
        assert sol.stats.edges_after == 0


class TestExplainThroughCollapsedCycle:
    def test_blame_path_spans_the_cycle(self, const_lat):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        nc = const_lat.negate("const")
        constraints = [
            c(const_lat.top, k1, "source"),
            c(k1, k2, "into cycle"),
            c(k2, k1, "back edge"),
            c(k2, k3, "out of cycle"),
            c(k3, nc, "sink"),
        ]
        with pytest.raises(UnsatisfiableError) as exc_info:
            solve(constraints, const_lat)
        exc = exc_info.value
        assert exc.path, "expected a non-empty blame path"
        reasons = [step.origin.reason for step in exc.path]
        assert reasons[0] == "source"
        assert reasons[-1] == "sink"
        assert "source" in exc.explain() and "sink" in exc.explain()

    def test_unsat_inside_the_cycle_itself(self, const_lat):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        nc = const_lat.negate("const")
        constraints = [
            c(const_lat.top, k1, "source"),
            c(k1, k2, "cycle a"),
            c(k2, k1, "cycle b"),
            c(k2, nc, "sink"),
        ]
        with pytest.raises(UnsatisfiableError) as exc_info:
            solve(constraints, const_lat)
        exc = exc_info.value
        assert exc.path
        assert exc.path[-1].origin.reason == "sink"


class TestExplainPathCyclicProvenance:
    """Direct unit tests of the ``if cursor in seen: break`` branches."""

    def test_lower_chain_cycle_terminates(self):
        a, b = QualVar("a", 1), QualVar("b", 2)
        ab, ba = c(a, b, "a->b"), c(b, a, "b->a")
        # provenance walks backwards: b came from a, a came from b — a loop
        lower_pred = {b: (a, ab), a: (b, ba)}
        path = _explain_path(b, lower_pred, {}, {}, {})
        assert path  # terminated rather than looping forever
        assert len(path) <= 2

    def test_upper_chain_cycle_terminates(self):
        a, b = QualVar("a", 1), QualVar("b", 2)
        ab, ba = c(a, b, "a->b"), c(b, a, "b->a")
        upper_pred = {a: (b, ab), b: (a, ba)}
        path = _explain_path(a, {}, upper_pred, {}, {})
        assert path
        assert len(path) <= 2

    def test_endpoint_origins_are_attached(self, const_lat):
        a, b = QualVar("a", 1), QualVar("b", 2)
        ab = c(a, b, "edge")
        lower_origin = c(const_lat.top, a, "low")
        upper_origin = c(b, const_lat.bottom, "high")
        path = _explain_path(
            b, {b: (a, ab)}, {}, {a: lower_origin}, {b: [upper_origin]}
        )
        assert [s.origin.reason for s in path] == ["low", "edge", "high"]


class TestWitnessFallback:
    def test_violated_upper_preferred_over_first_recorded(self, const_lat):
        """Regression: the witness must be the *violated* recorded upper
        bound, not merely the first recorded (possibly loose) one."""
        k = fresh_qual_var()
        nc = const_lat.negate("const")
        constraints = [
            c(k, const_lat.top, "loose bound"),  # recorded first, never violated
            c(const_lat.top, k, "forcing lower"),
            c(k, nc, "tight bound"),
        ]
        with pytest.raises(UnsatisfiableError) as exc_info:
            solve(constraints, const_lat)
        exc = exc_info.value
        assert exc.constraint.origin.reason == "tight bound"
        assert exc.path[-1].origin.reason == "tight bound"

    def test_no_path_unsat_still_carries_real_constraint(self, const_lat):
        k = fresh_qual_var()
        nc = const_lat.negate("const")
        constraints = [c(const_lat.top, k, "low"), c(k, nc, "high")]
        with pytest.raises(UnsatisfiableError) as exc_info:
            solve(constraints, const_lat)
        exc = exc_info.value
        assert exc.path
        assert exc.constraint.origin.reason != "derived bound"
        assert exc.explain()


class TestCheckGround:
    def test_rejects_wrong_assignment(self, const_lat):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        constraints = [c(const_lat.top, k1, "low"), c(k1, k2, "edge")]
        violated = check_ground(
            constraints,
            const_lat,
            {k1: const_lat.top, k2: const_lat.bottom},
        )
        assert violated is not None
        assert violated.origin.reason == "edge"

    def test_accepts_solver_solution(self, const_lat):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        constraints = [c(const_lat.top, k1), c(k1, k2)]
        sol = solve(constraints, const_lat)
        assert check_ground(constraints, const_lat, sol.least) is None
        assert check_ground(constraints, const_lat, sol.greatest) is None


class TestIndexedSystem:
    def test_fork_is_independent(self, const_lat):
        k = fresh_qual_var()
        nc = const_lat.negate("const")
        base = IndexedSystem(const_lat)
        base.add_many([c(const_lat.top, k)])
        twin = base.fork()
        twin.add(c(k, nc))
        with pytest.raises(UnsatisfiableError):
            twin.solve()
        # the base system is untouched by the fork's conflict
        assert base.solve().least_of(k) == const_lat.top

    def test_fork_reuses_categorisation(self, const_lat):
        ks = [fresh_qual_var() for _ in range(4)]
        base = IndexedSystem(const_lat)
        base.add_many([c(a, b) for a, b in zip(ks, ks[1:])])
        twin = base.fork()
        twin.add(c(const_lat.top, ks[0]))
        sol = twin.solve()
        assert sol.least_of(ks[-1]) == const_lat.top
        assert sol.stats.constraints == 4

    def test_extra_vars_appear_unconstrained(self, const_lat):
        lonely = fresh_qual_var()
        sol = solve([], const_lat, extra_vars=[lonely])
        assert sol.is_unconstrained(lonely)

    def test_ground_conflict_raised_at_solve(self, const_lat):
        bad = c(const_lat.top, const_lat.bottom, "ground")
        system = IndexedSystem(const_lat)
        system.add(bad)
        with pytest.raises(UnsatisfiableError) as exc_info:
            system.solve()
        assert exc_info.value.constraint is bad
