"""Unit tests for standard/qualified types and the Section 2.3/3.1
translations (strip, bottom embedding, spread)."""

import pytest

from repro.qual.lattice import LatticeElement
from repro.qual.qtypes import (
    FUN,
    INT,
    QCon,
    QType,
    QualVar,
    REF,
    ShapeVar,
    StdCon,
    StdVar,
    STD_INT,
    STD_UNIT,
    TypeConstructor,
    UNIT,
    Variance,
    apply_qual_subst,
    apply_shape_subst,
    embed_bottom,
    embed_const,
    format_qtype,
    fresh_qual_var,
    map_quals,
    q_fun,
    q_int,
    q_ref,
    q_var,
    qual_vars,
    quals_of,
    same_shape,
    shape_vars,
    spread,
    std_fun,
    std_ref,
    std_type_vars,
    strip,
)
from repro.qual.qualifiers import const_lattice


class TestConstructors:
    def test_arities(self):
        assert INT.arity == 0
        assert UNIT.arity == 0
        assert FUN.arity == 2
        assert REF.arity == 1

    def test_fun_variance(self):
        assert FUN.variances == (Variance.CONTRAVARIANT, Variance.COVARIANT)

    def test_ref_invariant(self):
        assert REF.variances == (Variance.INVARIANT,)

    def test_std_wrong_arity_rejected(self):
        with pytest.raises(TypeError):
            StdCon(FUN, (STD_INT,))

    def test_qcon_wrong_arity_rejected(self):
        lat = const_lattice()
        with pytest.raises(TypeError):
            QCon(REF, (q_int(lat.bottom), q_int(lat.bottom)))


class TestStdTypes:
    def test_str_formats(self):
        assert str(STD_INT) == "int"
        assert str(std_fun(STD_INT, STD_UNIT)) == "(int -> unit)"
        assert str(std_ref(STD_INT)) == "ref(int)"
        assert str(StdVar("a")) == "a"

    def test_type_vars(self):
        t = std_fun(StdVar("a"), std_ref(StdVar("b")))
        assert std_type_vars(t) == {"a", "b"}
        assert std_type_vars(STD_INT) == set()

    def test_equality_structural(self):
        assert std_ref(STD_INT) == std_ref(STD_INT)
        assert std_ref(STD_INT) != std_ref(STD_UNIT)


class TestFreshVars:
    def test_fresh_vars_distinct(self):
        a, b = fresh_qual_var(), fresh_qual_var()
        assert a != b and a.uid != b.uid

    def test_hint_in_name(self):
        assert fresh_qual_var("zz").name.startswith("zz")


class TestQTypeAccessors:
    def test_constructor_and_args(self):
        lat = const_lattice()
        t = q_ref(lat.bottom, q_int(lat.bottom))
        assert t.constructor is REF
        assert len(t.args) == 1
        v = q_var(lat.bottom, "a")
        assert v.constructor is None
        assert v.args == ()

    def test_with_qual(self):
        lat = const_lattice()
        t = q_int(lat.bottom)
        t2 = t.with_qual(lat.top)
        assert t2.qual == lat.top and t2.shape == t.shape


class TestStripAndEmbed:
    def test_strip_removes_all_quals(self):
        lat = const_lattice()
        t = q_fun(lat.top, q_ref(lat.bottom, q_int(lat.top)), q_int(lat.bottom))
        assert strip(t) == std_fun(std_ref(STD_INT), STD_INT)

    def test_strip_shape_var(self):
        lat = const_lattice()
        assert strip(q_var(lat.bottom, "a")) == StdVar("a")

    def test_embed_bottom_roundtrip(self):
        lat = const_lattice()
        std = std_fun(std_ref(STD_INT), StdVar("a"))
        embedded = embed_bottom(std, lat)
        assert strip(embedded) == std
        assert all(q == lat.bottom for q in quals_of(embedded))

    def test_embed_const(self):
        lat = const_lattice()
        embedded = embed_const(std_ref(STD_INT), lat.top)
        assert all(q == lat.top for q in quals_of(embedded))


class TestSpread:
    def test_spread_strips_back(self):
        std = std_fun(std_ref(STD_INT), std_fun(STD_UNIT, StdVar("a")))
        assert strip(spread(std)) == std

    def test_spread_fresh_vars_everywhere(self):
        std = std_fun(STD_INT, STD_INT)
        q = spread(std)
        vars_seen = list(quals_of(q))
        assert all(isinstance(v, QualVar) for v in vars_seen)
        assert len(set(vars_seen)) == len(vars_seen)

    def test_spread_consistent_on_type_vars(self):
        # sp maps each standard type variable to ONE kappa alpha.
        std = std_fun(StdVar("a"), StdVar("a"))
        q = spread(std)
        dom, rng = q.args
        assert dom == rng
        assert isinstance(dom.shape, ShapeVar)

    def test_spread_shared_var_map(self):
        var_map = {}
        a = spread(StdVar("a"), var_map)
        b = spread(StdVar("a"), var_map)
        assert a == b

    def test_spread_custom_fresh(self):
        lat = const_lattice()
        q = spread(std_ref(STD_INT), fresh=lambda: lat.bottom)
        assert all(v == lat.bottom for v in quals_of(q))


class TestTraversals:
    def test_qual_vars_collects_all(self):
        k1, k2, k3 = (fresh_qual_var() for _ in range(3))
        t = q_fun(k1, q_ref(k2, q_var(k3, "a")), q_int(k1))
        assert qual_vars(t) == {k1, k2, k3}

    def test_shape_vars(self):
        lat = const_lattice()
        t = q_fun(lat.bottom, q_var(lat.bottom, "a"), q_var(lat.bottom, "b"))
        assert shape_vars(t) == {"a", "b"}

    def test_quals_of_order_outermost_first(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        t = q_ref(k1, q_int(k2))
        assert list(quals_of(t)) == [k1, k2]

    def test_map_quals(self):
        lat = const_lattice()
        k = fresh_qual_var()
        t = q_ref(k, q_int(k))
        mapped = map_quals(t, lambda q: lat.top)
        assert all(q == lat.top for q in quals_of(mapped))

    def test_same_shape(self):
        lat = const_lattice()
        a = q_ref(lat.bottom, q_int(lat.top))
        b = q_ref(lat.top, q_int(lat.bottom))
        c = q_int(lat.bottom)
        assert same_shape(a, b)
        assert not same_shape(a, c)


class TestSubstitution:
    def test_apply_qual_subst(self):
        lat = const_lattice()
        k = fresh_qual_var()
        t = q_ref(k, q_int(k))
        out = apply_qual_subst(t, {k: lat.top})
        assert all(q == lat.top for q in quals_of(out))

    def test_apply_qual_subst_leaves_others(self):
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        t = q_ref(k1, q_int(k2))
        out = apply_qual_subst(t, {k1: fresh_qual_var("r")})
        assert out.args[0].qual == k2

    def test_apply_shape_subst(self):
        lat = const_lattice()
        t = q_ref(lat.bottom, q_var(lat.top, "a"))
        replacement = q_int(lat.bottom)
        out = apply_shape_subst(t, {"a": replacement})
        assert out.args[0] == replacement


class TestFormatting:
    def test_format_constant_qualifiers(self):
        lat = const_lattice()
        t = q_ref(lat.top, q_int(lat.bottom))
        assert format_qtype(t) == "const ref(int)"

    def test_format_fun(self):
        lat = const_lattice()
        t = q_fun(lat.bottom, q_int(lat.top), q_int(lat.bottom))
        assert format_qtype(t) == "(const int -> int)"

    def test_format_vars(self):
        k = QualVar("k9", 9)
        assert format_qtype(QType(k, ShapeVar("a"))) == "k9 a"

    def test_str_dunder(self):
        lat = const_lattice()
        assert str(q_int(lat.bottom)) == "int"
