"""The seeded resource-bug corpus and its oracles: every planted bug in
examples/resource_bugs is found with a multi-step flow path, the clean
files and the real-world fixture stay silent, findings survive the
metamorphic transforms, and cold/warm cached runs render byte-identical
SARIF."""

from pathlib import Path

import pytest

from repro.checker.checks import ALL_CHECKS, DEFAULT_CHECKS, FLOW_PACK_CHECKS
from repro.checker.render import render_report
from repro.checker.runner import analyze
from repro.testkit.cgen import generate_resource_program
from repro.testkit.oracles import check_resource_program

REPO = Path(__file__).resolve().parent.parent
CORPUS = REPO / "examples" / "resource_bugs"
REALWORLD = REPO / "examples" / "realworld"

ALL_NAMES = tuple(c.name for c in ALL_CHECKS)
PACK_NAMES = {c.name for c in FLOW_PACK_CHECKS}


@pytest.fixture(scope="module")
def corpus_report():
    return analyze([CORPUS], checks=ALL_NAMES)


def pack_findings(report):
    return [d for d in report.diagnostics if d.check in PACK_NAMES]


class TestSeededCorpus:
    def test_every_planted_bug_is_found(self, corpus_report):
        by_file = {}
        for d in pack_findings(corpus_report):
            by_file.setdefault(Path(d.span.file).name, set()).add(d.check)
        assert "double-free" in by_file.get("double_free.c", set())
        assert "double-free" in by_file.get("alias.c", set())
        assert "resource-leak" in by_file.get("leak_on_path.c", set())
        assert "use-after-free" in by_file.get("use_after_free.c", set())

    def test_clean_files_stay_silent(self, corpus_report):
        files = {Path(d.span.file).name for d in pack_findings(corpus_report)}
        assert "clean.c" not in files
        assert "suggest.c" not in files

    def test_every_finding_has_a_multi_step_flow_path(self, corpus_report):
        for d in pack_findings(corpus_report):
            assert len(d.flow) >= 2, (d.check, d.span)

    def test_corpus_matches_checked_in_baseline(self, monkeypatch):
        from repro.checker.diagnostics import Baseline

        # fingerprints cover the path as spelled; the baseline is
        # recorded repo-relative, exactly as CI invokes qlint
        monkeypatch.chdir(REPO)
        report = analyze(["examples/resource_bugs"], checks=ALL_NAMES)
        baseline = Baseline.load(CORPUS / "qlint-baseline.json")
        current = {d.fingerprint for d in report.diagnostics}
        assert current == set(baseline.fingerprints)

    def test_default_checks_exclude_the_pack(self):
        report = analyze([CORPUS], checks=tuple(c.name for c in DEFAULT_CHECKS))
        assert pack_findings(report) == []


class TestRealWorldFixture:
    def test_realworld_has_zero_resource_findings(self):
        report = analyze(
            [REALWORLD],
            checks=ALL_NAMES,
            best_effort=True,
            include_paths=(str(REALWORLD / "include"),),
        )
        assert pack_findings(report) == []


class TestByteStability:
    def test_cold_and_warm_sarif_are_identical(self, tmp_path):
        cache = tmp_path / "cache"
        cold = analyze([CORPUS], checks=ALL_NAMES, cache_dir=cache)
        warm = analyze([CORPUS], checks=ALL_NAMES, cache_dir=cache)
        assert warm.cache_hits >= 1
        assert render_report(cold, format="sarif") == render_report(
            warm, format="sarif"
        )


class TestSeededGeneratorOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_oracle_passes(self, seed):
        assert check_resource_program(seed) == []

    def test_generator_is_deterministic(self):
        a = generate_resource_program(11)
        b = generate_resource_program(11)
        assert a == b

    def test_rename_salt_changes_text_not_structure(self):
        base = generate_resource_program(11)
        renamed = generate_resource_program(11, rename_salt=2)
        assert base.source != renamed.source
        assert base.expected == renamed.expected
        assert base.source.count("\n") == renamed.source.count("\n")

    def test_dead_decls_add_lines_only(self):
        base = generate_resource_program(11)
        dead = generate_resource_program(11, dead_decls=True)
        assert dead.source.count("\n") > base.source.count("\n")
        assert base.expected == dead.expected
