"""Unit tests for well-formedness conditions (Sections 1-2): the binding
time "nothing dynamic under static" rule and constructor restrictions."""

import pytest

from repro.qual.qtypes import REF, INT, fresh_qual_var, q_fun, q_int, q_ref
from repro.qual.qualifiers import binding_time_lattice, paper_figure2_lattice
from repro.qual.solver import UnsatisfiableError, solve
from repro.qual.wellformed import (
    ChildQualLeqParent,
    OnlyOnConstructors,
    ParentQualLeqChild,
    generate,
    is_wellformed,
    violations,
)


class TestBindingTimeCondition:
    """static (dynamic a -> dynamic b) is ill-formed (Section 1)."""

    def setup_method(self):
        self.lat = binding_time_lattice()
        self.rule = ChildQualLeqParent("dynamic")
        self.dyn = self.lat.element("dynamic")
        self.static = self.lat.element()

    def test_static_fun_with_dynamic_children_ill_formed(self):
        bad = q_fun(self.static, q_int(self.dyn), q_int(self.dyn))
        assert not is_wellformed(bad, [self.rule], self.lat)
        assert len(violations(bad, [self.rule], self.lat)) >= 1

    def test_dynamic_fun_with_dynamic_children_ok(self):
        good = q_fun(self.dyn, q_int(self.dyn), q_int(self.dyn))
        assert is_wellformed(good, [self.rule], self.lat)

    def test_all_static_ok(self):
        good = q_fun(self.static, q_int(self.static), q_int(self.static))
        assert is_wellformed(good, [self.rule], self.lat)

    def test_violation_nested(self):
        bad = q_ref(self.dyn, q_ref(self.static, q_int(self.dyn)))
        found = violations(bad, [self.rule], self.lat)
        assert len(found) == 1
        assert "dynamic" in found[0].rule_description

    def test_generate_constraints_enforce_rule(self):
        k_parent, k_child = fresh_qual_var(), fresh_qual_var()
        from repro.qual.qtypes import QCon, QType

        t = QType(k_parent, QCon(REF, (QType(k_child, QCon(INT)),)))
        constraints = generate(t, [ChildQualLeqParent("dynamic")], self.lat)
        # forcing the child dynamic and the parent static is unsat
        constraints = list(constraints)
        from repro.qual.constraints import QualConstraint

        constraints.append(QualConstraint(self.dyn, k_child))
        constraints.append(QualConstraint(k_parent, self.static))
        with pytest.raises(UnsatisfiableError):
            solve(constraints, self.lat)

    def test_generate_allows_consistent_assignment(self):
        k_parent, k_child = fresh_qual_var(), fresh_qual_var()
        from repro.qual.constraints import QualConstraint
        from repro.qual.qtypes import QCon, QType

        t = QType(k_parent, QCon(REF, (QType(k_child, QCon(INT)),)))
        constraints = generate(t, [ChildQualLeqParent("dynamic")], self.lat)
        constraints = list(constraints) + [QualConstraint(self.dyn, k_child)]
        sol = solve(constraints, self.lat)
        assert sol.least_of(k_parent).has("dynamic")  # forced up


class TestParentLeqChild:
    def test_tainted_container_taints_contents(self):
        from repro.qual.qualifiers import taint_lattice

        lat = taint_lattice()
        rule = ParentQualLeqChild("tainted")
        tainted, clean = lat.element("tainted"), lat.element()
        bad = q_ref(tainted, q_int(clean))
        good = q_ref(tainted, q_int(tainted))
        assert not is_wellformed(bad, [rule], lat)
        assert is_wellformed(good, [rule], lat)


class TestOnlyOnConstructors:
    def test_const_only_on_refs(self):
        lat = paper_figure2_lattice()
        rule = OnlyOnConstructors("const", [REF])
        const_on_ref = q_ref(lat.element("const", "nonzero"), q_int(lat.bottom))
        assert is_wellformed(const_on_ref, [rule], lat)
        const_on_int = q_int(lat.element("const", "nonzero"))
        assert not is_wellformed(const_on_int, [rule], lat)

    def test_negative_qualifier_restriction(self):
        lat = paper_figure2_lattice()
        rule = OnlyOnConstructors("nonzero", ["int"])
        ok = q_int(lat.bottom)
        assert is_wellformed(ok, [rule], lat)
        # nonzero present on a ref is ill-formed under the rule
        bad = q_ref(lat.bottom, q_int(lat.bottom))
        assert not is_wellformed(bad, [rule], lat)

    def test_accepts_constructor_names_or_objects(self):
        rule = OnlyOnConstructors("const", [REF, "int"])
        assert rule.constructors == frozenset({"ref", "int"})

    def test_describe(self):
        rule = OnlyOnConstructors("const", ["ref"])
        assert "const" in rule.describe()


class TestGroundRequirement:
    def test_violations_requires_ground(self):
        lat = binding_time_lattice()
        t = q_int(fresh_qual_var())
        with pytest.raises(TypeError):
            violations(
                q_ref(lat.bottom, t), [ChildQualLeqParent("dynamic")], lat
            )

    def test_shape_var_node_ok(self):
        from repro.qual.qtypes import q_var

        lat = binding_time_lattice()
        t = q_var(lat.bottom, "a")
        assert is_wellformed(t, [ChildQualLeqParent("dynamic")], lat)
