"""Unit tests for qualifier lattices (Definitions 1 and 2, Figure 2)."""

import pytest

from repro.qual.lattice import (
    LatticeElement,
    LatticeError,
    Polarity,
    Qualifier,
    QualifierLattice,
    negative,
    positive,
    product,
    two_point,
)
from repro.qual.qualifiers import (
    CONST,
    DYNAMIC,
    NONZERO,
    paper_figure2_lattice,
)


class TestQualifier:
    def test_positive_constructor(self):
        q = positive("const")
        assert q.name == "const"
        assert q.positive and not q.negative
        assert q.polarity is Polarity.POSITIVE

    def test_negative_constructor(self):
        q = negative("nonzero")
        assert q.negative and not q.positive

    def test_str(self):
        assert str(positive("const")) == "const"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Qualifier("", Polarity.POSITIVE)
        with pytest.raises(ValueError):
            Qualifier("has space", Polarity.POSITIVE)

    def test_underscores_allowed(self):
        assert positive("may_alias").name == "may_alias"

    def test_qualifiers_hashable_and_ordered(self):
        qs = {positive("a"), positive("a"), negative("b")}
        assert len(qs) == 2
        assert sorted(qs)[0].name == "a"


class TestLatticeConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(LatticeError):
            QualifierLattice([positive("q"), negative("q")])

    def test_contains_and_len(self):
        lat = paper_figure2_lattice()
        assert "const" in lat and "nonzero" in lat
        assert "sorted" not in lat
        assert len(lat) == 3

    def test_qualifier_lookup(self):
        lat = paper_figure2_lattice()
        assert lat.qualifier("const") is CONST
        with pytest.raises(LatticeError):
            lat.qualifier("bogus")

    def test_qualifiers_sorted_by_name(self):
        lat = paper_figure2_lattice()
        names = [q.name for q in lat.qualifiers]
        assert names == sorted(names)

    def test_structural_equality(self):
        a = QualifierLattice([CONST, NONZERO])
        b = QualifierLattice([NONZERO, CONST])
        assert a == b
        assert hash(a) == hash(b)
        assert a != QualifierLattice([CONST])

    def test_product(self):
        lat = product(two_point(CONST), two_point(NONZERO))
        assert len(lat) == 2
        assert "const" in lat and "nonzero" in lat

    def test_product_duplicate_rejected(self):
        with pytest.raises(LatticeError):
            product(two_point(CONST), two_point(CONST))


class TestBottomTop:
    def test_bottom_has_negatives_only(self):
        lat = paper_figure2_lattice()
        assert lat.bottom.present == frozenset({"nonzero"})

    def test_top_has_positives_only(self):
        lat = paper_figure2_lattice()
        assert lat.top.present == frozenset({"const", "dynamic"})

    def test_bottom_leq_everything(self):
        lat = paper_figure2_lattice()
        for e in lat.elements():
            assert lat.leq(lat.bottom, e)

    def test_everything_leq_top(self):
        lat = paper_figure2_lattice()
        for e in lat.elements():
            assert lat.leq(e, lat.top)

    def test_single_positive_two_point(self):
        lat = two_point(CONST)
        assert lat.bottom.present == frozenset()
        assert lat.top.present == frozenset({"const"})

    def test_single_negative_two_point(self):
        lat = two_point(NONZERO)
        assert lat.bottom.present == frozenset({"nonzero"})
        assert lat.top.present == frozenset()


class TestOrder:
    def test_positive_present_moves_up(self):
        lat = two_point(CONST)
        assert lat.leq(lat.element(), lat.element("const"))
        assert not lat.leq(lat.element("const"), lat.element())

    def test_negative_present_moves_down(self):
        lat = two_point(NONZERO)
        assert lat.leq(lat.element("nonzero"), lat.element())
        assert not lat.leq(lat.element(), lat.element("nonzero"))

    def test_incomparable_elements(self):
        lat = paper_figure2_lattice()
        a = lat.element("const", "nonzero")
        b = lat.element("dynamic", "nonzero")
        assert not lat.leq(a, b) and not lat.leq(b, a)

    def test_reflexive(self):
        lat = paper_figure2_lattice()
        for e in lat.elements():
            assert lat.leq(e, e)

    def test_operator_aliases(self):
        lat = paper_figure2_lattice()
        assert lat.bottom <= lat.top
        assert lat.top >= lat.bottom
        assert lat.bottom < lat.top
        assert lat.top > lat.bottom
        assert (lat.bottom & lat.top) == lat.bottom
        assert (lat.bottom | lat.top) == lat.top

    def test_foreign_element_rejected(self):
        lat = paper_figure2_lattice()
        other = two_point(positive("other"))
        with pytest.raises(LatticeError):
            lat.leq(lat.bottom, other.bottom)


class TestMeetJoin:
    def test_meet_join_const_dynamic(self):
        lat = paper_figure2_lattice()
        c = lat.element("const", "nonzero")
        d = lat.element("dynamic", "nonzero")
        assert lat.meet(c, d) == lat.element("nonzero")
        assert lat.join(c, d) == lat.element("const", "dynamic", "nonzero")

    def test_negative_meet_keeps_presence(self):
        lat = two_point(NONZERO)
        assert lat.meet(lat.element("nonzero"), lat.element()) == lat.element("nonzero")
        assert lat.join(lat.element("nonzero"), lat.element()) == lat.element()

    def test_meet_all_empty_is_top(self, fig2_lat):
        assert fig2_lat.meet_all([]) == fig2_lat.top

    def test_join_all_empty_is_bottom(self, fig2_lat):
        assert fig2_lat.join_all([]) == fig2_lat.bottom

    def test_meet_all_join_all(self, fig2_lat):
        elements = list(fig2_lat.elements())
        assert fig2_lat.meet_all(elements) == fig2_lat.bottom
        assert fig2_lat.join_all(elements) == fig2_lat.top


class TestNegateAtomAssertion:
    def test_negate_positive_is_max_lacking(self):
        lat = paper_figure2_lattice()
        nc = lat.negate("const")
        assert not nc.has("const")
        assert nc.has("dynamic")  # other positives at top
        assert not nc.has("nonzero")  # negatives absent at top

    def test_negate_negative_is_min_lacking(self):
        lat = paper_figure2_lattice()
        nz = lat.negate("nonzero")
        assert not nz.has("nonzero")
        assert not nz.has("const") and not nz.has("dynamic")

    def test_negate_bounds_work(self):
        # Q <= negate(const) holds exactly for elements lacking const.
        lat = paper_figure2_lattice()
        nc = lat.negate("const")
        for e in lat.elements():
            assert lat.leq(e, nc) == (not e.has("const"))

    def test_negate_negative_lower_bound(self):
        # negate(nonzero) <= Q holds exactly for elements lacking nonzero.
        lat = paper_figure2_lattice()
        nz = lat.negate("nonzero")
        for e in lat.elements():
            assert lat.leq(nz, e) == (not e.has("nonzero"))

    def test_atom_positive(self):
        lat = paper_figure2_lattice()
        a = lat.atom("const")
        assert a.has("const") and a.has("nonzero") and not a.has("dynamic")

    def test_atom_negative_removes(self):
        lat = paper_figure2_lattice()
        a = lat.atom("nonzero")
        assert not a.has("nonzero") and not a.has("const")

    def test_assertion_bound_positive_checks_absence(self):
        lat = paper_figure2_lattice()
        bound = lat.assertion_bound("const")
        assert bound == lat.negate("const")

    def test_assertion_bound_negative_checks_presence(self):
        lat = paper_figure2_lattice()
        bound = lat.assertion_bound("nonzero")
        for e in lat.elements():
            assert lat.leq(e, bound) == e.has("nonzero")


class TestElements:
    def test_element_count(self, fig2_lat):
        assert len(list(fig2_lat.elements())) == 8

    def test_unknown_name_rejected(self, fig2_lat):
        with pytest.raises(LatticeError):
            fig2_lat.element("bogus")
        with pytest.raises(LatticeError):
            fig2_lat.bottom.has("bogus")

    def test_with_without(self, fig2_lat):
        e = fig2_lat.element()
        assert e.with_qualifier("const").has("const")
        assert not e.with_qualifier("const").without_qualifier("const").has("const")

    def test_with_accepts_qualifier_object(self, fig2_lat):
        assert fig2_lat.element().with_qualifier(CONST).has(CONST)

    def test_str(self, fig2_lat):
        assert str(fig2_lat.element()) == "<none>"
        assert str(fig2_lat.element("const", "dynamic")) == "const dynamic"

    def test_hashable(self, fig2_lat):
        assert len({fig2_lat.bottom, fig2_lat.bottom, fig2_lat.top}) == 2


class TestHasse:
    def test_covers(self, fig2_lat):
        bottom = fig2_lat.bottom
        step = bottom.with_qualifier("const")
        assert fig2_lat.covers(bottom, step)
        assert not fig2_lat.covers(bottom, fig2_lat.top)
        assert not fig2_lat.covers(step, bottom)

    def test_hasse_levels_shape(self, fig2_lat):
        levels = fig2_lat.hasse_levels()
        # Figure 2's diamond: 1, 3, 3, 1 elements per height.
        assert [len(level) for level in levels] == [1, 3, 3, 1]
        assert levels[0] == [fig2_lat.bottom]
        assert levels[-1] == [fig2_lat.top]

    def test_render_hasse_mentions_everything(self, fig2_lat):
        art = fig2_lat.render_hasse()
        assert "const dynamic" in art
        assert "nonzero" in art
        assert "<none>" in art
