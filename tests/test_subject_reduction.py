"""Subject reduction, tested configuration by configuration (Theorem 1).

For each program we walk the Figure 5 reduction sequence and re-typecheck
*every intermediate configuration* ``<store, expr>``: the expression is
inferred with the store's locations given the (ground, least) qualified
types of the values they hold, per the paper's store-typing definition
(Definition 3).  Theorem 1 promises every configuration of a well-typed
program stays well-typed; the final value's type strips to the original
program's standard type.
"""

import pytest

from repro.lam.ast import Annot, Expr, Loc
from repro.lam.eval import Evaluator, Store
from repro.lam.infer import (
    QualTypeError,
    QualifiedLanguage,
    infer,
)
from repro.lam.parser import parse
from repro.qual.qtypes import QType, strip
from repro.qual.qualifiers import const_nonzero_lattice

LATTICE = const_nonzero_lattice()
LANGUAGE = QualifiedLanguage(LATTICE, assign_restrictions=("const",))


def store_typing(store: Store) -> dict[int, QType]:
    """Definition 3's store typing: each location's contents type,
    taken as the least qualified type of the stored value."""
    out: dict[int, QType] = {}
    # Values may reference other locations; iterate until closed (stores
    # here are tiny, a fixed-point over two passes suffices because
    # addresses only ever point "backwards" to earlier allocations).
    remaining = dict(store.cells)
    progress = True
    while remaining and progress:
        progress = False
        for address, value in list(remaining.items()):
            try:
                result = infer(value, LANGUAGE, store_qtypes=out)
            except QualTypeError:
                continue
            out[address] = result.least_qtype()
            del remaining[address]
            progress = True
    assert not remaining, "store typing did not close"
    return out


def check_configuration(expr: Expr, store: Store) -> QType:
    """Typecheck one configuration; returns the least qualified type."""
    result = infer(expr, LANGUAGE, store_qtypes=store_typing(store))
    return result.least_qtype()


PROGRAMS = [
    "(fn x. x) 7",
    "let r = ref 10 in let u = (r := 32) in !r ni ni",
    "if 1 then {const} 2 else 3 fi",
    "let x = ref ({nonzero} 37) in (!x)|{nonzero} ni",
    "let a = ref 1 in let b = ref (!a) in let u = (a := !b) in !a ni ni ni",
    "((fn x. fn y. x) 1) 2",
    "let mk = fn n. ref n in !(mk 5) ni",
    "({const nonzero} 9)|{const nonzero}",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_every_configuration_stays_well_typed(source):
    expr = parse(source)
    initial_type = check_configuration(expr, Store())

    evaluator = Evaluator(LATTICE)
    types = []
    for config, store in evaluator.trace(expr):
        types.append(check_configuration(config, store))

    # The final configuration is a value whose type strips to the same
    # standard type as the original program's.
    assert strip(types[-1]) == strip(initial_type)


@pytest.mark.parametrize("source", PROGRAMS)
def test_standard_type_preserved_throughout(source):
    """The *shape* of the type never changes during reduction (qualifier
    erasure of subject reduction)."""
    expr = parse(source)
    evaluator = Evaluator(LATTICE)
    shapes = []
    for config, store in evaluator.trace(expr):
        shapes.append(strip(check_configuration(config, store)))
    assert len(set(map(str, shapes))) == 1


def test_store_extension_is_monotone():
    """A' extends A (Theorem 1): locations never change their type."""
    expr = parse(
        "let a = ref 1 in let b = ref 2 in let u = (a := !b) in !a ni ni ni"
    )
    evaluator = Evaluator(LATTICE)
    previous: dict[int, str] = {}
    for config, store in evaluator.trace(expr):
        typing = {addr: str(strip(t)) for addr, t in store_typing(store).items()}
        for address, shape in previous.items():
            assert typing[address] == shape
        previous = typing


def test_final_value_annotation_wellformed():
    expr = parse("let r = ref ({nonzero} 3) in !r ni")
    evaluator = Evaluator(LATTICE)
    value, store = evaluator.run(expr)
    assert isinstance(value, Annot)
    assert value.qual.resolve(LATTICE).has("nonzero")
    qtype = check_configuration(value, store)
    assert qtype.qual.has("nonzero")
