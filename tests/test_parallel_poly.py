"""The wavefront-parallel polymorphic engine: bit-determinism across
job counts, agreement with the sequential traversal, and the uid-band
machinery that makes both hold."""

import itertools

import pytest

from repro.cfront.sema import Program
from repro.constinfer.engine import run_poly
from repro.qual import qtypes
from repro.qual.qtypes import (
    UidBand,
    UidBandExhausted,
    advance_fresh_uids,
    fresh_qual_var,
    fresh_uid_band,
)

SOURCE = """
int *shared;
struct node { int *payload; };
int leaf_a(int *p) { return *p; }
int leaf_b(const char *s) { return s ? 1 : 0; }
int pong(int n);
int ping(int n) { return n ? pong(n - 1) : leaf_a(shared); }
int pong(int n) { return ping(n); }
void store(struct node *n, int *v) { n->payload = v; }
int top(struct node *n) { store(n, shared); return ping(3) + leaf_b("x"); }
"""


@pytest.fixture
def program():
    return Program.from_source(SOURCE)


def pinned_run(program, **kwargs):
    """Run poly inference from a fixed uid base so variable numbering
    can be compared byte-for-byte between runs."""
    saved = qtypes._fresh_counter
    qtypes._fresh_counter = itertools.count(1 << 40)
    try:
        return run_poly(program, **kwargs)
    finally:
        qtypes._fresh_counter = saved


def full_snapshot(run):
    """Everything observable: positions (with variable names), every
    constraint's repr, and every classification."""
    return (
        [(str(p.var), p.function, p.where, p.depth, p.declared) for p in run.positions],
        [repr(c) for c in run.inference.constraints],
        [run.classify(p).name for p in run.positions],
    )


def count_summary(run):
    return (
        run.declared_count(),
        run.inferred_const_count(),
        run.either_count(),
        run.total_positions(),
    )


class TestUidBands:
    def test_band_allocates_contiguously(self):
        band = UidBand(100, 10)
        assert [band.take() for _ in range(3)] == [100, 101, 102]

    def test_band_exhaustion_raises(self):
        band = UidBand(0, 2)
        band.take()
        band.take()
        with pytest.raises(UidBandExhausted):
            band.take()

    def test_fresh_uid_band_scopes_allocation(self):
        with fresh_uid_band(1 << 50, 16):
            v = fresh_qual_var("k")
            assert v.uid == 1 << 50
        outside = fresh_qual_var("k")
        assert outside.uid != (1 << 50) + 1

    def test_bands_nest_and_restore(self):
        with fresh_uid_band(1 << 51, 16):
            with fresh_uid_band(1 << 52, 16):
                assert fresh_qual_var().uid == 1 << 52
            assert fresh_qual_var().uid == 1 << 51

    def test_advance_fresh_uids_is_monotone(self):
        advance_fresh_uids(0)  # never moves backwards
        before = fresh_qual_var().uid
        advance_fresh_uids(before + 1000)
        assert fresh_qual_var().uid >= before + 1000


class TestWavefrontDeterminism:
    def test_jobs_1_vs_4_byte_identical(self, program):
        one = pinned_run(program, jobs=1)
        four = pinned_run(program, jobs=4)
        assert full_snapshot(one) == full_snapshot(four)

    def test_jobs_2_repeat_runs_identical(self, program):
        first = pinned_run(program, jobs=2)
        second = pinned_run(program, jobs=2)
        assert full_snapshot(first) == full_snapshot(second)

    def test_counts_match_sequential_engine(self, program):
        sequential = run_poly(program)
        wavefront = run_poly(program, jobs=2)
        assert count_summary(sequential) == count_summary(wavefront)
        seq_classes = sorted(
            (p.function, p.where, p.depth, c.name)
            for p, c in sequential.classified_positions()
        )
        wav_classes = sorted(
            (p.function, p.where, p.depth, c.name)
            for p, c in wavefront.classified_positions()
        )
        assert seq_classes == wav_classes

    def test_invalid_jobs_rejected(self, program):
        with pytest.raises(ValueError):
            run_poly(program, jobs=0)

    def test_benchmark_counts_stable_across_job_counts(self):
        from repro.benchsuite.suite import load_program, scaling_spec

        prog, _, _ = load_program(scaling_spec(1))
        runs = [run_poly(prog, jobs=j) for j in (1, 2, 4)]
        assert len({count_summary(r) for r in runs}) == 1

    def test_timings_populated(self, program):
        run = run_poly(program, jobs=2)
        assert run.timings is not None
        assert run.timings.congen_seconds >= 0
        assert run.timings.solve_seconds > 0
        assert not run.timings.from_cache


class TestSuiteParallelism:
    def test_process_pool_rows_match_serial(self):
        from repro.benchsuite.suite import benchmark_rows, scaling_specs

        specs = scaling_specs((1, 2))
        serial = benchmark_rows(specs)
        pooled = benchmark_rows(specs, jobs=2)
        key = lambda r: (r.name, r.declared, r.mono, r.poly, r.total_possible)
        assert [key(r) for r in serial] == [key(r) for r in pooled]

    def test_pool_preserves_spec_order(self):
        from repro.benchsuite.suite import benchmark_rows, scaling_specs

        specs = scaling_specs((2, 1))
        rows = benchmark_rows(specs, jobs=2)
        assert [r.name for r in rows] == ["sweep-2", "sweep-1"]
