"""Tests for the C pretty-printer, including parse -> print -> parse
round-trips over hand-written programs and the whole synthetic suite."""

import pytest

from repro.cfront.cparser import parse_c
from repro.cfront.cpretty import (
    format_expr,
    format_stmt,
    format_unit,
    normalize_toplevel,
)


def roundtrip(source: str):
    first = parse_c(source)
    printed = format_unit(first)
    second = parse_c(printed)
    return first, printed, second


def normalized(unit):
    """Compare modulo optional braces: the printer always emits blocks,
    so both sides are canonicalised before comparison."""
    return [normalize_toplevel(item) for item in unit.items]


class TestExpressions:
    def _expr(self, code: str) -> str:
        unit = parse_c(f"void f(void) {{ x = {code}; }}")
        stmt = unit.functions()[0].body.body[0]
        return format_expr(stmt.expr.value)  # type: ignore[attr-defined]

    def test_precedence_no_spurious_parens(self):
        assert self._expr("1 + 2 * 3") == "1 + 2 * 3"

    def test_precedence_needed_parens(self):
        assert self._expr("(1 + 2) * 3") == "(1 + 2) * 3"

    def test_left_associativity(self):
        assert self._expr("1 - 2 - 3") == "1 - 2 - 3"
        assert self._expr("1 - (2 - 3)") == "1 - (2 - 3)"

    def test_unary_spacing(self):
        assert self._expr("- -x") == "- -x"
        assert self._expr("-~x") == "-~x"

    def test_conditional(self):
        assert self._expr("a ? b : c") == "a ? b : c"

    def test_member_chain(self):
        assert self._expr("a.b->c[0]") == "a.b->c[0]"

    def test_cast(self):
        assert self._expr("(char *)s") == "(char *)s"

    def test_sizeof(self):
        assert self._expr("sizeof(int)") == "sizeof(int)"

    def test_char_escapes(self):
        assert self._expr(r"'\n'") == r"'\n'"
        assert self._expr("'a'") == "'a'"

    def test_string_escapes(self):
        unit = parse_c(r'char *s = "a\tb";')
        assert r'"a\tb"' in format_unit(unit)


PROGRAMS = [
    "int x;",
    "const char *greeting = \"hi\";",
    "int a, *b, c[4];",
    "char * const p;",
    "typedef struct pt { int x, y; } point;",
    "struct node { struct node *next; int v; };",
    "enum color { RED, GREEN = 5, BLUE };",
    "extern int printf(const char *fmt, ...);",
    "int (*handler)(int, char *);",
    """
    int fact(int n) {
        if (n <= 1) return 1;
        return n * fact(n - 1);
    }
    """,
    """
    void control(int n) {
        int i;
        for (i = 0; i < n; i++) {
            while (i) { i--; }
            do { i++; } while (i < 2);
            switch (i) {
                case 0: break;
                default: continue;
            }
        }
    }
    """,
    """
    char *find(const char *s, int c) {
        while (*s) {
            if (*s == c) return (char *)s;
            s++;
        }
        return (char *)0;
    }
    """,
    """
    void gotoish(int n) {
        if (n) goto out;
        n = 1;
    out:
        return;
    }
    """,
    """
    struct st { int *slot; };
    void put(struct st *s, int *p) { s->slot = p; }
    int probe(struct st *u) { return *(u->slot); }
    """,
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_roundtrip_structural_equality(source):
    first, printed, second = roundtrip(source)
    assert normalized(first) == normalized(second), printed


def test_roundtrip_idempotent():
    source = PROGRAMS[-1]
    unit = parse_c(source)
    once = format_unit(unit)
    twice = format_unit(parse_c(once))
    assert once == twice


class TestSuiteRoundTrip:
    def test_generated_benchmark_roundtrips(self):
        from repro.benchsuite.generator import PositionMix, generate_benchmark

        source = generate_benchmark(
            "roundtrip", 3, PositionMix(4, 4, 3, 4), target_lines=0
        )
        first, printed, second = roundtrip(source)
        assert normalized(first) == normalized(second)

    def test_roundtrip_preserves_analysis_results(self):
        """The printer must not change the meaning the analysis sees."""
        from repro.benchsuite.generator import PositionMix, generate_benchmark
        from repro.cfront.sema import Program
        from repro.constinfer.engine import run_mono

        source = generate_benchmark(
            "meaning", 9, PositionMix(3, 3, 3, 3), target_lines=0
        )
        original = run_mono(Program.from_source(source))
        reprinted = run_mono(
            Program.from_source(format_unit(parse_c(source)))
        )
        assert original.declared_count() == reprinted.declared_count()
        assert original.inferred_const_count() == reprinted.inferred_const_count()
        assert original.total_positions() == reprinted.total_positions()


class TestStatements:
    def test_empty_compound(self):
        unit = parse_c("void f(void) { }")
        assert "{" in format_unit(unit)

    def test_decl_with_storage(self):
        unit = parse_c("void f(void) { static int cache = 1; }")
        assert "static int cache = 1;" in format_unit(unit)

    def test_if_else_blocks(self):
        unit = parse_c("void f(int n) { if (n) n--; else n++; }")
        text = format_unit(unit)
        assert "else" in text
        # bodies are always blockified: no dangling-else hazards
        assert text.count("{") >= 3
