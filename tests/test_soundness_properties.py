"""Property-based soundness tests (Section 3.3, Theorem 1/Corollary 1).

A typed term generator produces random programs in the example language
(with refs, annotations, and assertions over the const x nonzero
lattice).  For every generated program the tests check the paper's
soundness story end-to-end:

* **Progress + preservation, observably**: a program accepted by
  qualified inference never gets *stuck* under the Figure 5 semantics —
  in particular no assertion or annotation check ever fails at run time.
* **Annotation containment**: the final value's run-time qualifier is
  below the greatest solution of the inferred result qualifier.
* **Observation 1**: stripping a well-typed program yields a
  standard-typable program with the stripped type, and re-embedding a
  standard-typable program at bottom is qualified-typable.

The generated terms contain no recursion, so evaluation always
terminates well within the fuel bound.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lam.ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    If,
    IntLit,
    Lam,
    Let,
    QualLiteral,
    Ref,
    UnitLit,
    Var,
    strip_expr,
)
from repro.lam.check import is_well_typed, observation1_forward
from repro.lam.eval import Evaluator, StuckError
from repro.lam.infer import QualTypeError, QualifiedLanguage, infer
from repro.lam.stdtypes import StdTypeError, infer_std
from repro.qual.qtypes import QualVar, strip
from repro.qual.qualifiers import const_nonzero_lattice

LATTICE = const_nonzero_lattice()
LANGUAGE = QualifiedLanguage(LATTICE, assign_restrictions=("const",))
SUBSETS = [
    frozenset(),
    frozenset({"const"}),
    frozenset({"nonzero"}),
    frozenset({"const", "nonzero"}),
]


@st.composite
def qual_literals(draw):
    return QualLiteral(draw(st.sampled_from(SUBSETS)))


@st.composite
def int_exprs(draw, scope, depth):
    """An expression of standard type int; ``scope`` maps names to
    'int' or 'ref'."""
    choices = ["lit"]
    int_vars = [n for n, t in scope.items() if t == "int"]
    ref_vars = [n for n, t in scope.items() if t == "ref"]
    if int_vars:
        choices.append("var")
    if depth > 0:
        choices += ["if", "let", "app", "annot", "assert"]
        if ref_vars:
            choices.append("deref")
    kind = draw(st.sampled_from(choices))
    if kind == "lit":
        return IntLit(draw(st.integers(min_value=0, max_value=9)))
    if kind == "var":
        return Var(draw(st.sampled_from(int_vars)))
    if kind == "deref":
        return Deref(Var(draw(st.sampled_from(ref_vars))))
    if kind == "if":
        return If(
            draw(int_exprs(scope, depth - 1)),
            draw(int_exprs(scope, depth - 1)),
            draw(int_exprs(scope, depth - 1)),
        )
    if kind == "let":
        name = f"v{len(scope)}"
        if draw(st.booleans()):
            bound = draw(int_exprs(scope, depth - 1))
            body = draw(int_exprs({**scope, name: "int"}, depth - 1))
        else:
            bound = Ref(draw(int_exprs(scope, depth - 1)))
            body = draw(int_exprs({**scope, name: "ref"}, depth - 1))
        return Let(name, bound, body)
    if kind == "app":
        name = f"p{len(scope)}"
        body = draw(int_exprs({**scope, name: "int"}, depth - 1))
        arg = draw(int_exprs(scope, depth - 1))
        return App(Lam(name, body), arg)
    if kind == "annot":
        return Annot(draw(qual_literals()), draw(int_exprs(scope, depth - 1)))
    assert kind == "assert"
    return Assert(draw(int_exprs(scope, depth - 1)), draw(qual_literals()))


@st.composite
def programs(draw):
    base = draw(int_exprs({}, draw(st.integers(min_value=1, max_value=4))))
    # Occasionally exercise assignment at the top.
    if draw(st.booleans()):
        return Let(
            "cell",
            Ref(IntLit(0)),
            Let("w", Assign(Var("cell"), base), Deref(Var("cell"))),
        )
    return base


@given(programs())
@settings(max_examples=200, deadline=None)
def test_well_typed_programs_never_get_stuck(expr):
    """Corollary 1 observed: accepted programs evaluate to a value."""
    assume(is_well_typed(expr, LANGUAGE))
    value, _store = Evaluator(LATTICE).run(expr, fuel=50_000)
    assert isinstance(value, Annot)


@given(programs())
@settings(max_examples=200, deadline=None)
def test_final_annotation_below_greatest_solution(expr):
    """The run-time qualifier of the result is bounded by the inferred
    (greatest) qualifier — the semantic content of subject reduction."""
    try:
        result = infer(expr, LANGUAGE)
    except QualTypeError:
        assume(False)
    value, _ = Evaluator(LATTICE).run(expr, fuel=50_000)
    assert isinstance(value, Annot)
    runtime = value.qual.resolve(LATTICE)
    top = result.qtype.qual
    bound = (
        result.solution.greatest_of(top) if isinstance(top, QualVar) else top
    )
    assert LATTICE.leq(runtime, bound)


@given(programs())
@settings(max_examples=200, deadline=None)
def test_rejected_or_runs_clean(expr):
    """Inference rejecting a program is the ONLY way an assertion can be
    unsatisfiable: accepted programs never fail checks at run time, and
    programs that fail at run time are always rejected statically."""
    ev = Evaluator(LATTICE)
    accepted = is_well_typed(expr, LANGUAGE)
    try:
        ev.run(expr, fuel=50_000)
        failed = False
    except StuckError:
        failed = True
    if accepted:
        assert not failed


@given(programs())
@settings(max_examples=150, deadline=None)
def test_observation1_strip_direction(expr):
    """If the annotated program is qualified-typable, its strip is
    standard-typable at the stripped type."""
    try:
        result = infer(expr, LANGUAGE)
    except QualTypeError:
        assume(False)
    stripped = strip_expr(expr)
    std = infer_std(stripped)
    assert std.type == strip(result.least_qtype())


@given(programs())
@settings(max_examples=150, deadline=None)
def test_observation1_embed_direction(expr):
    """If the strip is standard-typable, the bottom embedding is
    qualified-typable with the same structure."""
    stripped = strip_expr(expr)
    try:
        std_type, qualified = observation1_forward(stripped, LANGUAGE)
    except StdTypeError:
        assume(False)
    assert strip(qualified) == std_type


@given(programs())
@settings(max_examples=100, deadline=None)
def test_polymorphic_accepts_everything_monomorphic_does(expr):
    """(Letv)/(Var') only generalise; they never reject a program the
    monomorphic system accepts."""
    assume(is_well_typed(expr, LANGUAGE, polymorphic=False))
    assert is_well_typed(expr, LANGUAGE, polymorphic=True)
