"""Ownership summaries: the per-function verdict lattice, the
bottom-up SCC fixpoint over the cross-TU call graph, and the per-unit
cache tier whose invalidation must track the dependency closure."""

import pytest

from repro.cfront import parse_c
from repro.constinfer.cache import AnalysisCache
from repro.flowsens.ownership import (
    PARAM_BORROWS,
    PARAM_ESCAPES,
    PARAM_FREES,
    OwnershipSummary,
    escaping_summary,
    infer_function_ownership,
    join_summaries,
)
from repro.whole.engine import affected_units, tu_dependence_graph
from repro.whole.linker import link_units
from repro.whole.ownership import infer_ownership_summaries, ownership_for_linked
from repro.whole.summary import ownership_cache_key

PROTOS = (
    "void *malloc(unsigned long size);\n"
    "void free(void *ptr);\n"
    "unsigned long strlen(const char *s);\n"
)


def fdef(source, name, filename="t.c"):
    unit = parse_c(PROTOS + source, filename)
    for item in unit.items:
        if getattr(item, "name", None) == name and getattr(item, "body", None) is not None:
            return item
    raise AssertionError(f"no function {name!r}")


def verdicts(source, name, **kwargs):
    summary = infer_function_ownership(fdef(source, name), **kwargs)
    assert summary is not None
    return summary


def whole_env(sources):
    units = [parse_c(PROTOS + text, fname) for fname, text in sorted(sources.items())]
    linked = link_units(units)
    return infer_ownership_summaries(linked.program)


# -- per-function verdicts -------------------------------------------------


def test_free_on_every_path_is_frees():
    s = verdicts("void rel(char *p) { free(p); }", "rel")
    assert s.params == (PARAM_FREES,)
    assert not s.returns_owned


def test_read_only_use_is_borrows():
    s = verdicts(
        "unsigned long peek(const char *p) { return strlen(p); }", "peek"
    )
    assert s.params == (PARAM_BORROWS,)


def test_conditional_free_is_escapes():
    s = verdicts(
        "int getchar(void);\n"
        "void maybe(char *p) { if (getchar() < 0) free(p); }",
        "maybe",
    )
    assert s.params == (PARAM_ESCAPES,)


def test_global_stash_is_escapes():
    s = verdicts("char *g_keep;\nvoid stash(char *p) { g_keep = p; }", "stash")
    assert s.params == (PARAM_ESCAPES,)


def test_returning_param_is_escapes():
    s = verdicts("char *ident(char *p) { return p; }", "ident")
    assert s.params == (PARAM_ESCAPES,)


def test_scalar_params_are_borrows():
    s = verdicts("int add(int a, int b) { return a + b; }", "add")
    assert s.params == (PARAM_BORROWS, PARAM_BORROWS)


def test_returns_owned_allocation():
    s = verdicts(
        "char *mk(unsigned long n) {\n"
        "    char *p = malloc(n);\n"
        "    if (!p)\n"
        "        return 0;\n"
        "    return p;\n"
        "}\n",
        "mk",
    )
    assert s.returns_owned
    assert s.returns_kind == "heap"


def test_returning_borrowed_pointer_is_not_owned():
    s = verdicts("char *same(char *p) { return p; }", "same")
    assert not s.returns_owned


# -- the verdict lattice ---------------------------------------------------


def _summary(params, returns_owned=False, kind="heap"):
    return OwnershipSummary(
        name="f",
        params=tuple(params),
        returns_owned=returns_owned,
        returns_kind=kind if returns_owned else "",
    )


def test_join_is_idempotent():
    a = _summary([PARAM_FREES], returns_owned=True)
    assert join_summaries(a, a) == a


def test_join_of_unequal_verdicts_is_escapes():
    a = _summary([PARAM_FREES])
    b = _summary([PARAM_BORROWS])
    assert join_summaries(a, b).params == (PARAM_ESCAPES,)


def test_join_drops_disagreeing_returns_owned():
    a = _summary([PARAM_BORROWS], returns_owned=True)
    b = _summary([PARAM_BORROWS], returns_owned=False)
    assert not join_summaries(a, b).returns_owned


def test_escaping_summary_is_top():
    f = fdef("void two(char *a, int b) { free(a); }", "two")
    top = escaping_summary(f)
    assert top.params == (PARAM_ESCAPES, PARAM_ESCAPES)
    inferred = infer_function_ownership(f)
    assert join_summaries(inferred, top).params == top.params


# -- bottom-up composition -------------------------------------------------


def test_helper_chain_composes():
    env = whole_env(
        {
            "a.c": "void rel(char *p) { free(p); }\n",
            "b.c": "void rel(char *p);\nvoid chain(char *p) { rel(p); }\n",
        }
    )
    assert env["rel"].params == (PARAM_FREES,)
    assert env["chain"].params == (PARAM_FREES,)


def test_unknown_callee_keeps_escape():
    env = whole_env(
        {"a.c": "void mystery(char *p);\nvoid fwd(char *p) { mystery(p); }\n"}
    )
    assert env["fwd"].params == (PARAM_ESCAPES,)


def test_function_pointer_call_keeps_escape():
    env = whole_env(
        {
            "a.c": "void rel(char *p) { free(p); }\n"
            "void dispatch(char *p) {\n"
            "    void (*f)(char *) = rel;\n"
            "    f(p);\n"
            "}\n"
        }
    )
    assert env["rel"].params == (PARAM_FREES,)
    assert env["dispatch"].params == (PARAM_ESCAPES,)


def test_direct_recursion_terminates_conservatively():
    env = whole_env(
        {
            "a.c": "int getchar(void);\n"
            "void drain(char *p) {\n"
            "    if (getchar() < 0) {\n"
            "        free(p);\n"
            "        return;\n"
            "    }\n"
            "    drain(p);\n"
            "}\n"
        }
    )
    # Any sound verdict is acceptable; the point is termination plus a
    # self-consistent result that is at least as high as the truth.
    assert env["drain"].params[0] in (PARAM_FREES, PARAM_ESCAPES)


def test_mutual_recursion_terminates_conservatively():
    env = whole_env(
        {
            "a.c": "void pong(char *p);\n"
            "int getchar(void);\n"
            "void ping(char *p) {\n"
            "    if (getchar() < 0)\n"
            "        free(p);\n"
            "    else\n"
            "        pong(p);\n"
            "}\n",
            "b.c": "void ping(char *p);\n"
            "void pong(char *p) { ping(p); }\n",
        }
    )
    assert env["ping"].params[0] in (PARAM_FREES, PARAM_ESCAPES)
    assert env["pong"].params[0] in (PARAM_FREES, PARAM_ESCAPES)


def test_recursive_owned_return_is_summarised():
    env = whole_env(
        {
            "a.c": "int getchar(void);\n"
            "char *grow(unsigned long n) {\n"
            "    char *p = malloc(n);\n"
            "    if (p)\n"
            "        return p;\n"
            "    if (getchar() < 0)\n"
            "        return 0;\n"
            "    return grow(n);\n"
            "}\n"
        }
    )
    assert "grow" in env  # terminated with some self-consistent answer


# -- the per-unit cache tier ----------------------------------------------


def _link(sources):
    units = [parse_c(text, fname) for fname, text in sorted(sources.items())]
    return link_units(units, sources=dict(sources))


XTU_SOURCES = {
    "a.c": PROTOS + "char *mk(unsigned long n) {\n"
    "    char *p = malloc(n);\n"
    "    if (!p)\n"
    "        return 0;\n"
    "    return p;\n"
    "}\n",
    "b.c": PROTOS + "char *mk(unsigned long n);\n"
    "void rel(char *p) { free(p); }\n",
    "c.c": PROTOS + "char *mk(unsigned long n);\n"
    "void rel(char *p);\n"
    "unsigned long go(void) {\n"
    "    char *p = mk(8);\n"
    "    if (!p)\n"
    "        return 0;\n"
    "    rel(p);\n"
    "    return 1;\n"
    "}\n",
}


def test_warm_load_equals_cold_inference(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    linked = _link(XTU_SOURCES)
    cold = ownership_for_linked(linked, cache=cache)
    warm = ownership_for_linked(_link(XTU_SOURCES), cache=cache)
    assert warm == cold
    assert cold["mk"].returns_owned
    assert cold["rel"].params == (PARAM_FREES,)


def test_cache_is_consulted_on_warm_load(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    ownership_for_linked(_link(XTU_SOURCES), cache=cache)
    before = cache.stats.hits
    ownership_for_linked(_link(XTU_SOURCES), cache=cache)
    assert cache.stats.hits > before


def test_edit_invalidates_exactly_the_dependency_closure(tmp_path):
    """Pin the ``affected_units`` invariant: a unit's ownership cache
    key moves under an edit iff the unit is in the dependency closure
    of the edited unit."""
    cache = AnalysisCache(tmp_path / "cache")
    linked = _link(XTU_SOURCES)
    keys = {
        unit: ownership_cache_key(cache, skey)
        for unit, skey in _source_keys(linked).items()
    }

    edited = dict(XTU_SOURCES)
    edited["b.c"] = edited["b.c"].replace(
        "void rel(char *p) { free(p); }",
        "void rel(char *p) { if (p) free(p); }",
    )
    relinked = _link(edited)
    new_keys = {
        unit: ownership_cache_key(cache, skey)
        for unit, skey in _source_keys(relinked).items()
    }

    tu_graph = tu_dependence_graph(relinked)
    closure = set(affected_units(tu_graph, {"b.c"}))
    assert "c.c" in closure  # c calls into b
    for unit in XTU_SOURCES:
        if unit in closure:
            assert new_keys[unit] != keys[unit], unit
        else:
            assert new_keys[unit] == keys[unit], unit


def _source_keys(linked):
    from repro.whole.callgraph import WholeProgramCallGraph
    from repro.whole.engine import _tu_graph
    from repro.whole.summary import (
        dependency_closure,
        shared_layout_digest,
        summary_source_key,
    )

    cg = WholeProgramCallGraph.build(linked.program)
    tu_graph = _tu_graph(linked, cg.function_graph())
    layout = shared_layout_digest(linked.program)
    return {
        unit: summary_source_key(
            (unit,),
            dependency_closure((unit,), tu_graph),
            linked.sources,
            layout,
            0,
        )
        for unit in linked.unit_names
    }


def test_stale_summary_is_not_served_after_edit(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    ownership_for_linked(_link(XTU_SOURCES), cache=cache)

    edited = dict(XTU_SOURCES)
    edited["b.c"] = XTU_SOURCES["b.c"].replace(
        "void rel(char *p) { free(p); }",
        "char *g_keep;\nvoid rel(char *p) { g_keep = p; }",
    )
    env = ownership_for_linked(_link(edited), cache=cache)
    assert env["rel"].params == (PARAM_ESCAPES,)
