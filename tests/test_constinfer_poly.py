"""Behavioural tests for the polymorphic const-inference engine
(Section 4.3): per-SCC generalisation, instantiation at call sites, and
the mono-vs-poly gap the paper measures."""

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from repro.qual.solver import Classification


def both(source):
    program = Program.from_source(source)
    return run_mono(program), run_poly(program)


def verdicts(run):
    return {
        f"{p.function}/{p.where}@{p.depth}": v
        for p, v in run.classified_positions()
    }


ID_MIXED_USE = """
int *id(int *x) { return x; }
void writer_use(void) { int a; *id(&a) = 1; }
int reader_use(void) { int b; return *id(&b); }
"""


class TestPolyGap:
    def test_id_poisoned_monomorphically(self):
        mono, _poly = both(ID_MIXED_USE)
        v = verdicts(mono)
        assert v["id/param 0 (x)@1"] is Classification.MUST_NOT
        assert v["id/return@1"] is Classification.MUST_NOT

    def test_id_recovered_polymorphically(self):
        _mono, poly = both(ID_MIXED_USE)
        v = verdicts(poly)
        assert v["id/param 0 (x)@1"] is Classification.EITHER
        assert v["id/return@1"] is Classification.EITHER

    def test_counts_poly_geq_mono(self):
        mono, poly = both(ID_MIXED_USE)
        assert poly.inferred_const_count() >= mono.inferred_const_count()
        assert poly.inferred_const_count() - mono.inferred_const_count() == 2

    def test_total_positions_agree(self):
        mono, poly = both(ID_MIXED_USE)
        assert mono.total_positions() == poly.total_positions()

    def test_selector_three_position_gap(self):
        source = """
        int *sel(int *a, int *b, int w) { if (w) return a; return b; }
        void put(void) { int x, y; *sel(&x, &y, 1) = 7; }
        int get(void) { int u, v; return *sel(&u, &v, 0); }
        """
        mono, poly = both(source)
        assert poly.inferred_const_count() - mono.inferred_const_count() == 3

    def test_declared_consts_identical_both_modes(self):
        source = """
        int rd(const char *s) { return *s; }
        int use(void) { char b[2]; b[0] = 0; return rd(b); }
        """
        mono, poly = both(source)
        assert mono.declared_count() == poly.declared_count() == 1


class TestSchemes:
    def test_schemes_created_for_defined_functions(self):
        program = Program.from_source(ID_MIXED_USE)
        poly = run_poly(program)
        assert "id" in poly.inference.schemes
        assert poly.inference.schemes["id"].quantified

    def test_writer_constraint_carried_into_instantiations(self):
        # f writes through its parameter: EVERY caller's argument must be
        # non-const, even under polymorphism (the constraint is carried
        # and re-emitted per instantiation).
        source = """
        void wr(int *p) { *p = 1; }
        void relay(int *q) { wr(q); }
        """
        _mono, poly = both(source)
        v = verdicts(poly)
        assert v["wr/param 0 (p)@1"] is Classification.MUST_NOT
        assert v["relay/param 0 (q)@1"] is Classification.MUST_NOT

    def test_mutually_recursive_scc_shares_monomorphically(self):
        # Within an SCC, uses are monomorphic: a write in one member
        # poisons the chain threaded through both.
        source = """
        void pong(int *p, int n);
        void ping(int *p, int n) { if (n) pong(p, n - 1); }
        void pong(int *p, int n) { *p = n; ping(p, n - 1); }
        """
        _mono, poly = both(source)
        v = verdicts(poly)
        assert v["ping/param 0 (p)@1"] is Classification.MUST_NOT
        assert v["pong/param 0 (p)@1"] is Classification.MUST_NOT

    def test_globals_stay_monomorphic(self):
        # A function returning a pointer to a global: the global's cell
        # is shared, but the *scheme* may still generalise the return
        # var; the global itself is pinned by the write.
        source = """
        int slot;
        int *get(void) { return &slot; }
        void set(void) { *get() = 3; }
        int read_it(void) { return *get(); }
        """
        mono, poly = both(source)
        mv, pv = verdicts(mono), verdicts(poly)
        assert mv["get/return@1"] is Classification.MUST_NOT
        assert pv["get/return@1"] is Classification.EITHER

    def test_library_bounds_shared_across_instantiations(self):
        # library conservatism survives polymorphism: lib is monomorphic
        source = """
        extern void lib_touch(int *p);
        void wrap(int *q) { lib_touch(q); }
        void wrap2(int *r) { lib_touch(r); }
        """
        _mono, poly = both(source)
        v = verdicts(poly)
        assert v["wrap/param 0 (q)@1"] is Classification.MUST_NOT
        assert v["wrap2/param 0 (r)@1"] is Classification.MUST_NOT


class TestTraversalOrder:
    def test_callee_generalised_before_caller(self):
        # caller appears before callee in the source; reverse topological
        # traversal still generalises the callee first, so the caller
        # instantiates a scheme rather than sharing variables.
        source = """
        void use_both(void) { int a; int b; *pick(&a) = 1; pick(&b); }
        int *pick(int *x) { return x; }
        int peek(void) { int c; return *pick(&c); }
        """
        _mono, poly = both(source)
        v = verdicts(poly)
        assert v["pick/param 0 (x)@1"] is Classification.EITHER

    def test_chain_of_sccs(self):
        source = """
        int leaf(int *p) { return *p; }
        int mid(int *p) { return leaf(p); }
        int top(int *p) { return mid(p); }
        void dirty(void) { int z; *alias(&z) = 1; }
        int *alias(int *w) { return w; }
        """
        mono, poly = both(source)
        assert poly.inferred_const_count() >= mono.inferred_const_count()
        v = verdicts(poly)
        for name, param in [("leaf", "p"), ("mid", "p"), ("top", "p")]:
            assert v[f"{name}/param 0 ({param})@1"] is Classification.EITHER


class TestTimingsRecorded:
    def test_elapsed_positive(self):
        mono, poly = both(ID_MIXED_USE)
        assert mono.elapsed_seconds > 0
        assert poly.elapsed_seconds > 0

    def test_modes_labelled(self):
        mono, poly = both(ID_MIXED_USE)
        assert mono.mode == "mono" and poly.mode == "poly"
