"""The cross-TU ownership corpus and its oracles: every planted
cross-unit bug in examples/resource_bugs_xtu is found *only* under
``--whole-program``, each finding's flow path names both units, the
clean transfer stays silent, the checked-in baseline holds, CLI and
daemon render byte-identical output, and the seeded generator's
``resource-whole`` oracle passes."""

import json
from pathlib import Path

import pytest

from repro.checker.checks import ALL_CHECKS, FLOW_PACK_CHECKS
from repro.checker.render import render_report
from repro.checker.runner import analyze
from repro.testkit.cgen import generate_resource_xtu_program
from repro.testkit.oracles import check_resource_xtu

REPO = Path(__file__).resolve().parent.parent
CORPUS = REPO / "examples" / "resource_bugs_xtu"
REALWORLD = REPO / "examples" / "realworld"

ALL_NAMES = tuple(c.name for c in ALL_CHECKS)
PACK_NAMES = {c.name for c in FLOW_PACK_CHECKS}


@pytest.fixture(scope="module")
def corpus_report():
    return analyze([CORPUS], checks=ALL_NAMES, whole_program=True)


def pack_findings(report):
    return [d for d in report.diagnostics if d.check in PACK_NAMES]


class TestPlantedCorpus:
    def test_both_planted_bugs_are_found(self, corpus_report):
        by_file = {}
        for d in pack_findings(corpus_report):
            by_file.setdefault(Path(d.span.file).name, set()).add(d.check)
        assert by_file == {
            "leak.c": {"resource-leak"},
            "double_free.c": {"double-free"},
        }

    def test_leak_flow_path_names_both_units(self, corpus_report):
        (leak,) = [
            d for d in pack_findings(corpus_report) if d.check == "resource-leak"
        ]
        files = {Path(s.span.file).name for s in leak.flow}
        files.add(Path(leak.span.file).name)
        assert {"alloc.c", "leak.c"} <= files
        assert any("make_buffer" in s.note for s in leak.flow)

    def test_double_free_flow_path_names_both_units(self, corpus_report):
        (dbl,) = [
            d for d in pack_findings(corpus_report) if d.check == "double-free"
        ]
        files = {Path(s.span.file).name for s in dbl.flow}
        files.add(Path(dbl.span.file).name)
        assert {"free_helper.c", "double_free.c"} <= files
        assert any("give_back" in s.note for s in dbl.flow)

    def test_clean_transfer_stays_silent(self, corpus_report):
        files = {Path(d.span.file).name for d in pack_findings(corpus_report)}
        assert "transfer.c" not in files

    def test_per_file_mode_reports_nothing(self):
        # Without summaries every helper call is an unknown callee and
        # the Havoc firewall swallows the obligations.
        report = analyze([CORPUS], checks=ALL_NAMES, whole_program=False)
        assert pack_findings(report) == []

    def test_corpus_matches_checked_in_baseline(self, monkeypatch):
        from repro.checker.diagnostics import Baseline

        monkeypatch.chdir(REPO)
        report = analyze(
            ["examples/resource_bugs_xtu"], checks=ALL_NAMES, whole_program=True
        )
        baseline = Baseline.load(CORPUS / "qlint-baseline.json")
        current = {d.fingerprint for d in report.diagnostics}
        assert current == set(baseline.fingerprints)


class TestRealWorldFixture:
    def test_realworld_has_zero_pack_findings_under_summaries(self):
        report = analyze(
            [REALWORLD],
            checks=ALL_NAMES,
            whole_program=True,
            best_effort=True,
            include_paths=(str(REALWORLD / "include"),),
        )
        assert pack_findings(report) == []


class TestByteStability:
    def test_cold_and_warm_sarif_are_identical(self, tmp_path):
        cache = tmp_path / "cache"
        cold = analyze(
            [CORPUS], checks=ALL_NAMES, whole_program=True, cache_dir=cache
        )
        warm = analyze(
            [CORPUS], checks=ALL_NAMES, whole_program=True, cache_dir=cache
        )
        assert warm.cache_hits >= 1
        assert render_report(cold, format="sarif") == render_report(
            warm, format="sarif"
        )

    def test_jobs_one_and_many_sarif_are_identical(self):
        narrow = analyze([CORPUS], checks=ALL_NAMES, whole_program=True, jobs=1)
        wide = analyze([CORPUS], checks=ALL_NAMES, whole_program=True, jobs=2)
        assert render_report(narrow, format="sarif") == render_report(
            wide, format="sarif"
        )

    def test_cli_and_daemon_reports_are_byte_identical(self, tmp_path):
        from repro.serve import Session

        report = analyze([CORPUS], checks=ALL_NAMES, whole_program=True)
        cli_rendered = render_report(report, format="json")
        session = Session(checks=ALL_NAMES, cache_dir=str(tmp_path / "cache"))
        try:
            out = session.analyze(
                {
                    "paths": [str(CORPUS)],
                    "whole_program": True,
                    "format": "json",
                }
            )
        finally:
            session.close()
        assert out["report"] == cli_rendered

    def test_cli_and_daemon_whole_suggest_are_byte_identical(self, tmp_path, capsys):
        from repro.checker.cli import suggest_main
        from repro.serve import Session

        code = suggest_main(["--whole-program", "--format", "json", str(CORPUS)])
        cli_rendered = capsys.readouterr().out
        assert code == 0
        session = Session(cache_dir=str(tmp_path / "cache"))
        try:
            out = session.suggest(
                {
                    "paths": [str(CORPUS)],
                    "whole_program": True,
                    "format": "json",
                }
            )
        finally:
            session.close()
        assert out["report"] == cli_rendered
        assert out["errors"] == {}


class TestSeededGeneratorOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_oracle_passes(self, seed):
        assert check_resource_xtu(seed) == []

    def test_generator_is_deterministic(self):
        a = generate_resource_xtu_program(11)
        b = generate_resource_xtu_program(11)
        assert a == b

    def test_repartition_preserves_functions(self):
        base = generate_resource_xtu_program(11)
        moved = base.repartitioned(99)
        assert base.expected == moved.expected
        concat = "".join(base.units[n] for n in sorted(base.units))
        moved_concat = "".join(moved.units[n] for n in sorted(moved.units))
        # Same function bodies, dealt differently.
        assert sorted(concat.splitlines()) == sorted(moved_concat.splitlines())
        assert base.units != moved.units

    def test_rename_salt_changes_text_not_structure(self):
        base = generate_resource_xtu_program(11)
        renamed = generate_resource_xtu_program(11, rename_salt=2)
        assert base.units != renamed.units
        assert base.expected == renamed.expected
