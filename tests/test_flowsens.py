"""Tests for the flow-sensitive qualifier prototype (Section 6).

The headline behaviours: strong updates forget old qualifiers; weak
flows keep them; conditional refinement makes the lclint null-check
pattern typecheck flow-sensitively — none of which the base
(flow-insensitive) framework can express, which
``test_contrast_with_flow_insensitive`` demonstrates directly.
"""

import pytest

from repro.flowsens import (
    AnnotStmt,
    Assign,
    AssertStmt,
    FlowError,
    Havoc,
    If,
    Join,
    Literal,
    Refine,
    VarRef,
    While,
    analyze_flow,
    block,
)
from repro.qual.qualifiers import nonnull_lattice, taint_lattice


@pytest.fixture
def taint():
    return taint_lattice()


@pytest.fixture
def nn():
    return nonnull_lattice()


def lit(lattice, *names):
    return Literal(lattice.element(*names))


class TestStrongVsWeakUpdates:
    def test_strong_update_forgets(self, taint):
        program = block(
            Assign("x", lit(taint, "tainted")),
            Assign("x", lit(taint)),  # strong update: clean again
            AssertStmt("x", taint.element(), label="sink"),
        )
        result = analyze_flow(program, taint)
        assert result.ok

    def test_flow_insensitive_would_reject(self, taint):
        # the same value-history expressed as one location in the base
        # framework: a single qualifier must cover both writes.
        from repro.lam.check import is_well_typed
        from repro.lam.infer import plain_language
        from repro.lam.parser import parse

        source = """
        let x = ref ({tainted} 1) in
        let u = (x := 0) in
        (!x)|{}
        ni ni
        """
        assert not is_well_typed(parse(source), plain_language(taint))

    def test_weak_flow_keeps_qualifier(self, taint):
        program = block(
            Assign("x", lit(taint, "tainted")),
            Assign("y", lit(taint)),  # unrelated statement: weak for x
            AssertStmt("x", taint.element(), label="sink"),
        )
        result = analyze_flow(program, taint)
        assert not result.ok
        assert result.failures[0].variable == "x"

    def test_copy_propagates(self, taint):
        program = block(
            Assign("x", lit(taint, "tainted")),
            Assign("y", VarRef("x")),
            AssertStmt("y", taint.element(), label="sink"),
        )
        assert not analyze_flow(program, taint).ok

    def test_join_taints(self, taint):
        program = block(
            Assign("a", lit(taint, "tainted")),
            Assign("b", lit(taint)),
            Assign("c", Join(VarRef("a"), VarRef("b"))),
            AssertStmt("c", taint.element(), label="sink"),
        )
        result = analyze_flow(program, taint)
        assert not result.ok
        assert result.final_value("c").has("tainted")


class TestAnnotations:
    def test_annot_raises_and_checks(self, taint):
        program = block(
            Assign("x", lit(taint)),
            AnnotStmt("x", taint.element("tainted")),
        )
        result = analyze_flow(program, taint)
        assert result.ok
        assert result.final_value("x").has("tainted")

    def test_annot_downward_fails(self, taint):
        program = block(
            Assign("x", lit(taint, "tainted")),
            AnnotStmt("x", taint.element(), label="cannot-lower"),
        )
        result = analyze_flow(program, taint)
        assert not result.ok
        assert result.failures[0].kind == "annot"


class TestBranchesAndLoops:
    def test_if_merge_joins(self, taint):
        program = block(
            Assign("flag", lit(taint)),
            Assign("x", lit(taint)),
            If(
                "flag",
                then=(Assign("x", lit(taint, "tainted")),),
                else_=(),
            ),
            AssertStmt("x", taint.element(), label="after-if"),
        )
        result = analyze_flow(program, taint)
        assert not result.ok  # one branch taints x

    def test_if_both_branches_clean(self, taint):
        program = block(
            Assign("flag", lit(taint)),
            Assign("x", lit(taint, "tainted")),
            If(
                "flag",
                then=(Assign("x", lit(taint)),),
                else_=(Assign("x", lit(taint)),),
            ),
            AssertStmt("x", taint.element(), label="after-if"),
        )
        assert analyze_flow(program, taint).ok

    def test_loop_fixpoint(self, taint):
        # x becomes tainted on some iteration: after the loop it may be.
        program = block(
            Assign("n", lit(taint)),
            Assign("x", lit(taint)),
            While(
                "n",
                body=(Assign("x", Join(VarRef("x"), lit(taint, "tainted"))),),
            ),
            AssertStmt("x", taint.element(), label="after-loop"),
        )
        result = analyze_flow(program, taint)
        assert not result.ok

    def test_loop_strong_update_each_iteration(self, taint):
        # x is cleaned at the top of every iteration before use.
        program = block(
            Assign("n", lit(taint)),
            Assign("x", lit(taint)),
            While(
                "n",
                body=(
                    Assign("x", lit(taint, "tainted")),
                    Assign("x", lit(taint)),
                ),
            ),
            AssertStmt("x", taint.element(), label="after-loop"),
        )
        assert analyze_flow(program, taint).ok


class TestRefinement:
    """The lclint pattern: a null test enables the dereference."""

    def test_refined_branch_passes(self, nn):
        maybe_null = nn.element()  # nonnull absent: may be null
        program = block(
            Assign("p", Literal(maybe_null)),
            Refine(
                "p",
                "nonnull",
                body=(
                    AssertStmt(
                        "p", nn.assertion_bound("nonnull"), label="deref"
                    ),
                ),
            ),
        )
        assert analyze_flow(program, nn).ok

    def test_unrefined_deref_fails(self, nn):
        program = block(
            Assign("p", Literal(nn.element())),
            AssertStmt("p", nn.assertion_bound("nonnull"), label="deref"),
        )
        result = analyze_flow(program, nn)
        assert not result.ok
        assert result.failures[0].label == "deref"

    def test_refinement_does_not_leak_past_merge(self, nn):
        program = block(
            Assign("p", Literal(nn.element())),
            Refine("p", "nonnull", body=()),
            # after the merge p may again be null (the not-taken path)
            AssertStmt("p", nn.assertion_bound("nonnull"), label="after"),
        )
        result = analyze_flow(program, nn)
        assert not result.ok

    def test_contrast_with_flow_insensitive(self, nn):
        # the base framework cannot express the refined deref at all:
        from repro.apps.nonnull import check_source

        assert not check_source(
            "let p = {} ref 5 in if 1 then !p else 0 fi ni"
        ).safe
        # ...while the flow-sensitive prototype accepts the same shape
        # (test then dereference), which is exactly the Section 6 gap.
        program = block(
            Assign("p", Literal(nn.element())),
            Refine(
                "p",
                "nonnull",
                body=(
                    AssertStmt("p", nn.assertion_bound("nonnull"), label="ok"),
                ),
            ),
        )
        assert analyze_flow(program, nn).ok


class TestErrorsAndPlumbing:
    def test_undefined_variable_use(self, taint):
        with pytest.raises(FlowError):
            analyze_flow(block(Assign("x", VarRef("ghost"))), taint)

    def test_undefined_assert(self, taint):
        with pytest.raises(FlowError):
            analyze_flow(block(AssertStmt("ghost", taint.element())), taint)

    def test_initial_environment(self, taint):
        program = block(AssertStmt("input", taint.element(), label="sink"))
        result = analyze_flow(
            program, taint, initial={"input": taint.element("tainted")}
        )
        assert not result.ok

    def test_havoc_is_unconstrained(self, taint):
        program = block(
            Havoc("x"),
            AssertStmt("x", taint.element(), label="sink"),
        )
        # least solution of an unconstrained input is bottom: the linter
        # does not flag it (nothing tainted demonstrably flows).
        assert analyze_flow(program, taint).ok

    def test_final_value_unknown_var(self, taint):
        result = analyze_flow(block(Assign("x", lit(taint))), taint)
        with pytest.raises(FlowError):
            result.final_value("y")

    def test_wrong_lattice_literal(self, nn, taint):
        program = block(Assign("x", lit(taint, "tainted")))
        with pytest.raises(FlowError):
            analyze_flow(program, nn)

    def test_failure_str(self, taint):
        program = block(
            Assign("x", lit(taint, "tainted")),
            AssertStmt("x", taint.element(), label="sink-7"),
        )
        result = analyze_flow(program, taint)
        assert "sink-7" in str(result.failures[0])
