"""Tests for polymorphic-recursive const inference (Section 4.3: the
FDG-free alternative to let-style polymorphism)."""

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly, run_polyrec
from repro.qual.solver import Classification


def verdicts(run):
    return {p.describe(): v for p, v in run.classified_positions()}


MIXED = """
int *id(int *x) { return x; }
void put(void) { int a; *id(&a) = 1; }
int get(void) { int b; return *id(&b); }
"""


class TestAgreementWithLetPoly:
    def test_counts_match_on_mixed_use(self):
        program = Program.from_source(MIXED)
        poly = run_poly(program)
        polyrec = run_polyrec(program)
        assert polyrec.inferred_const_count() == poly.inferred_const_count()
        assert verdicts(polyrec) == verdicts(poly)

    def test_counts_match_on_benchmark(self):
        from repro.benchsuite import PAPER_BENCHMARKS, load_program

        program, _c, _l = load_program(PAPER_BENCHMARKS[0])
        poly = run_poly(program)
        polyrec = run_polyrec(program)
        assert verdicts(polyrec) == verdicts(poly)

    def test_beats_mono(self):
        program = Program.from_source(MIXED)
        assert (
            run_polyrec(program).inferred_const_count()
            > run_mono(program).inferred_const_count()
        )


class TestRecursion:
    def test_self_recursive_reader(self):
        source = """
        int walk(int *p, int n) { if (n) { return walk(p, n - 1); } return *p; }
        """
        run = run_polyrec(Program.from_source(source))
        v = verdicts(run)
        assert v["walk: param 0 (p) depth 1"] is Classification.EITHER

    def test_self_recursive_writer(self):
        source = """
        void zap(int *p, int n) { if (n) { *p = n; zap(p, n - 1); } }
        """
        run = run_polyrec(Program.from_source(source))
        v = verdicts(run)
        assert v["zap: param 0 (p) depth 1"] is Classification.MUST_NOT

    def test_mutual_recursion_without_fdg(self):
        # polyrec never builds the FDG; mutual recursion converges by
        # fixpoint iteration instead.
        source = """
        int pong(int *q, int n);
        int ping(int *q, int n) { if (n) return pong(q, n - 1); return *q; }
        int pong(int *q, int n) { return ping(q, n); }
        """
        run = run_polyrec(Program.from_source(source))
        v = verdicts(run)
        assert v["ping: param 0 (q) depth 1"] is Classification.EITHER
        assert v["pong: param 0 (q) depth 1"] is Classification.EITHER

    def test_mutual_recursion_with_write(self):
        source = """
        void b(int *q, int n);
        void a(int *q, int n) { if (n) b(q, n - 1); }
        void b(int *q, int n) { *q = n; a(q, n); }
        """
        run = run_polyrec(Program.from_source(source))
        v = verdicts(run)
        assert v["a: param 0 (q) depth 1"] is Classification.MUST_NOT
        assert v["b: param 0 (q) depth 1"] is Classification.MUST_NOT


class TestFixpointMachinery:
    def test_converges_within_cap(self):
        # a chain of functions needs several rounds for summaries to
        # stabilise without dependency ordering.
        source = """
        int l0(int *p) { return *p; }
        int l1(int *p) { return l0(p); }
        int l2(int *p) { return l1(p); }
        int l3(int *p) { return l2(p); }
        void sink(void) { int x; *grab(&x) = 1; }
        int *grab(int *y) { return y; }
        """
        program = Program.from_source(source)
        run = run_polyrec(program)
        v = verdicts(run)
        for name in ("l0", "l1", "l2", "l3"):
            assert v[f"{name}: param 0 (p) depth 1"] is Classification.EITHER
        assert v["grab: param 0 (y) depth 1"] is Classification.EITHER

    def test_iteration_cap_respected(self):
        program = Program.from_source(MIXED)
        run = run_polyrec(program, max_iterations=1)
        # one round = monomorphic assumptions everywhere: still sound,
        # counts sit between mono and poly.
        mono = run_mono(program)
        poly = run_poly(program)
        assert (
            mono.inferred_const_count()
            <= run.inferred_const_count()
            <= poly.inferred_const_count()
        )

    def test_mode_label_and_timing(self):
        run = run_polyrec(Program.from_source(MIXED))
        assert run.mode == "polyrec"
        assert run.elapsed_seconds > 0

    def test_globals_and_fields_survive_iterations(self):
        source = """
        struct st { int *slot; };
        int table;
        void put(struct st *s, int *p) { s->slot = p; }
        void zap(struct st *t) { *(t->slot) = 2; }
        int *get(void) { return &table; }
        void wr(void) { *get() = 1; }
        """
        run = run_polyrec(Program.from_source(source))
        v = verdicts(run)
        # field sharing must hold across fixpoint rounds:
        assert v["put: param 1 (p) depth 1"] is Classification.MUST_NOT
        # and the global-getter gap still resolves polymorphically:
        assert v["get: return depth 1"] is Classification.EITHER
