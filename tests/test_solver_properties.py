"""Property-based tests for the atomic solver: against random constraint
systems over small lattices, the solver's verdict and extreme solutions
are checked against brute-force enumeration of all assignments."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qual.constraints import QualConstraint
from repro.qual.lattice import QualifierLattice, negative, positive
from repro.qual.qtypes import QualVar
from repro.qual.solver import UnsatisfiableError, check_ground, solve

_LATTICES = [
    QualifierLattice([positive("const")]),
    QualifierLattice([negative("nonzero")]),
    QualifierLattice([positive("const"), negative("nonzero")]),
]

_VARS = [QualVar(f"v{i}", 10_000_000 + i) for i in range(4)]


@st.composite
def constraint_systems(draw):
    lattice = draw(st.sampled_from(_LATTICES))
    elements = list(lattice.elements())
    n = draw(st.integers(min_value=0, max_value=6))
    constraints = []
    for _ in range(n):
        side = draw(st.integers(min_value=0, max_value=2))
        if side == 0:  # var <= var
            lhs = draw(st.sampled_from(_VARS))
            rhs = draw(st.sampled_from(_VARS))
        elif side == 1:  # const <= var
            lhs = draw(st.sampled_from(elements))
            rhs = draw(st.sampled_from(_VARS))
        else:  # var <= const
            lhs = draw(st.sampled_from(_VARS))
            rhs = draw(st.sampled_from(elements))
        constraints.append(QualConstraint(lhs, rhs))
    return lattice, constraints


def brute_force_solutions(lattice, constraints):
    """All total assignments over _VARS satisfying the constraints."""
    elements = list(lattice.elements())
    out = []
    for values in itertools.product(elements, repeat=len(_VARS)):
        assignment = dict(zip(_VARS, values))
        if check_ground(constraints, lattice, assignment) is None:
            out.append(assignment)
    return out


@given(constraint_systems())
@settings(max_examples=150, deadline=None)
def test_solver_verdict_matches_brute_force(data):
    lattice, constraints = data
    solutions = brute_force_solutions(lattice, constraints)
    try:
        solve(constraints, lattice, extra_vars=_VARS)
        solver_satisfiable = True
    except UnsatisfiableError:
        solver_satisfiable = False
    assert solver_satisfiable == bool(solutions)


@given(constraint_systems())
@settings(max_examples=150, deadline=None)
def test_extremes_satisfy_and_bound_all_solutions(data):
    lattice, constraints = data
    solutions = brute_force_solutions(lattice, constraints)
    if not solutions:
        return
    sol = solve(constraints, lattice, extra_vars=_VARS)

    least = {v: sol.least_of(v) for v in _VARS}
    greatest = {v: sol.greatest_of(v) for v in _VARS}
    assert check_ground(constraints, lattice, least) is None
    assert check_ground(constraints, lattice, greatest) is None

    # The least solution is pointwise below every solution; the greatest
    # pointwise above.
    for assignment in solutions:
        for v in _VARS:
            assert lattice.leq(least[v], assignment[v])
            assert lattice.leq(assignment[v], greatest[v])


@given(constraint_systems())
@settings(max_examples=100, deadline=None)
def test_classification_agrees_with_solution_set(data):
    """MUST/MUST_NOT/EITHER per Section 4.4, validated semantically:
    a position MUST carry q iff every solution carries it, MUST_NOT iff
    none does, EITHER otherwise."""
    from repro.qual.solver import Classification

    lattice, constraints = data
    solutions = brute_force_solutions(lattice, constraints)
    if not solutions:
        return
    sol = solve(constraints, lattice, extra_vars=_VARS)
    for v in _VARS:
        for q in lattice.qualifiers:
            has = [assignment[v].has(q.name) for assignment in solutions]
            verdict = sol.classify(v, q.name)
            if all(has):
                assert verdict in (Classification.MUST, Classification.EITHER)
                # MUST is claimed only when truly forced:
                if verdict is Classification.MUST:
                    assert all(has)
            if not any(has):
                assert verdict in (Classification.MUST_NOT, Classification.EITHER)
            if any(has) and not all(has):
                assert verdict is Classification.EITHER
