"""Behavioural tests for C const inference (Section 4): classification of
interesting positions under the monomorphic engine, and the Section 4.2
special cases (structs, typedefs, casts, libraries, varargs)."""

import pytest

from repro.cfront.sema import Program
from repro.constinfer.engine import ConstInferenceError, run_mono, run_poly
from repro.qual.solver import Classification


def classify(source, mode="mono"):
    """Map 'function/where' -> Classification for a program."""
    program = Program.from_source(source)
    run = run_mono(program) if mode == "mono" else run_poly(program)
    out = {}
    for position, verdict in run.classified_positions():
        out[f"{position.function}/{position.where}@{position.depth}"] = verdict
    return run, out


class TestBasicClassification:
    def test_read_only_param_may_be_const(self):
        _, c = classify("int peek(int *p) { return *p; }")
        assert c["peek/param 0 (p)@1"] is Classification.EITHER

    def test_written_param_must_not_be_const(self):
        _, c = classify("void poke(int *p) { *p = 1; }")
        assert c["poke/param 0 (p)@1"] is Classification.MUST_NOT

    def test_declared_const_is_must(self):
        _, c = classify("int peek(const int *p) { return *p; }")
        assert c["peek/param 0 (p)@1"] is Classification.MUST

    def test_index_write(self):
        _, c = classify("void fill(int *p) { p[3] = 1; }")
        assert c["fill/param 0 (p)@1"] is Classification.MUST_NOT

    def test_increment_write(self):
        _, c = classify("void bump(int *p) { (*p)++; }")
        assert c["bump/param 0 (p)@1"] is Classification.MUST_NOT

    def test_compound_assignment_write(self):
        _, c = classify("void add(int *p, int d) { *p += d; }")
        assert c["add/param 0 (p)@1"] is Classification.MUST_NOT

    def test_pointer_increment_is_not_a_write_through(self):
        # s++ changes the (by-value) parameter, not the pointed-to cell.
        _, c = classify("int len(char *s) { int n = 0; while (*s) { s++; n++; } return n; }")
        assert c["len/param 0 (s)@1"] is Classification.EITHER

    def test_scalar_params_not_counted(self):
        run, c = classify("int add(int a, int b) { return a + b; }")
        assert run.total_positions() == 0

    def test_return_pointer_position_counted(self):
        run, c = classify("int *f(int *x) { return x; }")
        assert "f/return@1" in c
        assert run.total_positions() == 2

    def test_double_pointer_two_positions(self):
        run, c = classify("int probe(int **pp) { return **pp; }")
        assert "probe/param 0 (pp)@1" in c
        assert "probe/param 0 (pp)@2" in c


class TestFlowPropagation:
    def test_write_via_callee_propagates_to_caller_param(self):
        _, c = classify(
            """
            void inner(int *q) { *q = 1; }
            void outer(int *p) { inner(p); }
            """
        )
        assert c["outer/param 0 (p)@1"] is Classification.MUST_NOT

    def test_read_only_chain_stays_constable(self):
        _, c = classify(
            """
            int inner(int *q) { return *q; }
            int outer(int *p) { return inner(p); }
            """
        )
        assert c["outer/param 0 (p)@1"] is Classification.EITHER
        assert c["inner/param 0 (q)@1"] is Classification.EITHER

    def test_declared_const_does_not_force_caller(self):
        # passing a writable buffer to a const param is fine (top-level
        # promotion): the caller's own positions stay unconstrained.
        _, c = classify(
            """
            int reader(const int *p) { return *p; }
            int relay(int *q) { return reader(q); }
            """
        )
        assert c["relay/param 0 (q)@1"] is Classification.EITHER

    def test_write_through_returned_pointer(self):
        _, c = classify(
            """
            int *id(int *x) { return x; }
            void user(void) { int v; *id(&v) = 3; }
            """
        )
        assert c["id/return@1"] is Classification.MUST_NOT
        assert c["id/param 0 (x)@1"] is Classification.MUST_NOT

    def test_address_of_shares_cell(self):
        _, c = classify(
            """
            void writer(int *p) { *p = 1; }
            int probe(int *q) { writer(q); return *q; }
            """
        )
        assert c["probe/param 0 (q)@1"] is Classification.MUST_NOT

    def test_conditional_merges_aliases(self):
        _, c = classify(
            """
            void pick(int *a, int *b, int w) {
                int *r;
                r = w ? a : b;
                *r = 9;
            }
            """
        )
        assert c["pick/param 0 (a)@1"] is Classification.MUST_NOT
        assert c["pick/param 1 (b)@1"] is Classification.MUST_NOT

    def test_assignment_to_const_declared_param_is_error(self):
        with pytest.raises(ConstInferenceError):
            run_mono(Program.from_source("void bad(const int *p) { *p = 1; }"))


class TestStructs:
    def test_shared_field_links_different_instances(self):
        # Section 4.2: fields share one annotation per struct definition,
        # so a pointer stored into the field by one function is equated
        # with the field contents every other function sees: the write in
        # `zap` (through its own struct) pins `put`'s stored pointer.
        _, c = classify(
            """
            struct st { int *slot; };
            void put(struct st *s, int *p) { s->slot = p; }
            void zap(struct st *t) { *(t->slot) = 2; }
            """
        )
        assert c["put/param 1 (p)@1"] is Classification.MUST_NOT

    def test_returning_shared_field_stays_promotable(self):
        # A const VIEW of a cell written through another alias is still
        # legal C (top-level promotion), so expose's return may be const
        # even though `writer` writes the pointee.
        _, c = classify(
            """
            struct st { int *slot; };
            void writer(struct st *s) { *(s->slot) = 1; }
            int *expose(struct st *u) { return u->slot; }
            """
        )
        assert c["expose/return@1"] is Classification.EITHER

    def test_struct_assignment_requires_nonconst_target(self):
        _, c = classify(
            """
            struct st { int x; };
            void copy(struct st *dst, struct st *src) { *dst = *src; }
            """
        )
        assert c["copy/param 0 (dst)@1"] is Classification.MUST_NOT
        assert c["copy/param 1 (src)@1"] is Classification.EITHER

    def test_dot_and_arrow_agree(self):
        _, c = classify(
            """
            struct p { int v; };
            void set1(struct p *s) { s->v = 1; }
            """
        )
        # writing a scalar field does not pin the struct pointer itself
        # (the field cell, not the struct cell, is written)... but the
        # field cell is shared and not an interesting position.
        assert c["set1/param 0 (s)@1"] is Classification.EITHER


class TestTypedefs:
    def test_typedef_instances_independent(self):
        # Section 4.2: typedefs are macro-expanded; c and d share nothing.
        _, c = classify(
            """
            typedef int *ip;
            void wr(ip c) { *c = 1; }
            int rd(ip d) { return *d; }
            """
        )
        assert c["wr/param 0 (c)@1"] is Classification.MUST_NOT
        assert c["rd/param 0 (d)@1"] is Classification.EITHER

    def test_typedef_const_carries(self):
        _, c = classify(
            """
            typedef const int ci;
            int rd(ci *p) { return *p; }
            """
        )
        assert c["rd/param 0 (p)@1"] is Classification.MUST


class TestCasts:
    def test_explicit_cast_severs_association(self):
        # the strchr pattern: const param, cast return stays free
        _, c = classify(
            """
            char *find(const char *s) { return (char *)s; }
            """
        )
        assert c["find/param 0 (s)@1"] is Classification.MUST
        assert c["find/return@1"] is Classification.EITHER

    def test_write_through_cast_result_does_not_reach_source(self):
        _, c = classify(
            """
            void sneak(const char *s) { *(char *)s = 'x'; }
            """
        )
        # the write lands on the severed cast cell; s keeps its const.
        assert c["sneak/param 0 (s)@1"] is Classification.MUST

    def test_cast_type_consts_still_apply(self):
        run, _ = classify("void f(void) { int x; x = *(const int *)0; }")
        assert run is not None  # no crash; constraints satisfiable


class TestLibrariesAndVarargs:
    def test_library_param_pinned_nonconst(self):
        _, c = classify(
            """
            extern void lib_fill(int *dst);
            void wrap(int *out) { lib_fill(out); }
            """
        )
        assert c["wrap/param 0 (out)@1"] is Classification.MUST_NOT

    def test_library_const_param_not_pinned(self):
        _, c = classify(
            """
            extern int lib_len(const char *s);
            int wrap(char *s) { return lib_len(s); }
            """
        )
        assert c["wrap/param 0 (s)@1"] is Classification.EITHER

    def test_unknown_function_conservative(self):
        _, c = classify(
            "void wrap(int *out) { totally_unknown(out); }"
        )
        assert c["wrap/param 0 (out)@1"] is Classification.MUST_NOT

    def test_extra_arguments_ignored(self):
        run, c = classify(
            """
            int one(int *p) { return *p; }
            int call(void) { int v; return one(&v, 1, 2, 3); }
            """
        )
        assert c["one/param 0 (p)@1"] is Classification.EITHER

    def test_varargs_extra_args_ignored(self):
        _, c = classify(
            """
            int logmsg(const char *fmt, ...) { return *fmt; }
            int use(void) { int x; return logmsg("hi", &x, x); }
            """
        )
        assert c["logmsg/param 0 (fmt)@1"] is Classification.MUST


class TestGlobals:
    def test_global_written_by_pointer(self):
        _, c = classify(
            """
            int counter;
            int *get(void) { return &counter; }
            void set(void) { *get() = 1; }
            """
        )
        assert c["get/return@1"] is Classification.MUST_NOT

    def test_global_initializer_analyzed(self):
        run, c = classify(
            """
            int make(int *p) { return *p; }
            int seed;
            int start = 0;
            """
        )
        assert run.total_positions() == 1

    def test_string_literal_contents_free(self):
        _, c = classify(
            """
            int use(char *s) { return *s; }
            int go(void) { return use("hi"); }
            """
        )
        # passing a literal must not pin use's parameter either way
        assert c["use/param 0 (s)@1"] is Classification.EITHER


class TestCounts:
    def test_count_arithmetic(self):
        run, _ = classify(
            """
            int a(const int *p) { return *p; }      /* declared */
            int b(int *p) { return *p; }            /* either */
            void c(int *p) { *p = 1; }              /* must not */
            """
        )
        assert run.total_positions() == 3
        assert run.declared_count() == 1
        assert run.inferred_const_count() == 2  # declared + either
        assert run.must_not_count() == 1
        assert run.either_count() == 1
