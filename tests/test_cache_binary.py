"""The v2 binary cache encoding: cold runs store flat-array (QCE2)
entries, warm runs mmap them zero-copy and serve the recorded solution,
v1 pickle entries written by older code still load, and corrupt binary
entries of every flavour are misses — never exceptions."""

import pickle
import struct

import pytest

import repro.constinfer.cache as cache_mod
from repro.constinfer.cache import (
    ENTRY_MAGIC,
    ENTRY_VERSION,
    _ENTRY_HEADER,
    AnalysisCache,
    CacheStats,
)


SOURCE = """
int reader(const int *p) { return p[0]; }
void writer(int *q) { q[0] = 1; }
int use(void) {
    int buf[1];
    writer(buf);
    return reader(buf);
}
"""


@pytest.fixture
def cache(tmp_path):
    return AnalysisCache(tmp_path / "cache")


def constraint_entry(cache, mode="mono"):
    key = cache.key("constraints", source=SOURCE, lattice=None, mode=mode, options={})
    return cache._path(key)


def classifications(run):
    return sorted((p.function, p.where, run.classify(p).name) for p in run.positions)


def fingerprint(run):
    return sorted(
        (p.function, p.where, str(run.solution.least_of(p.var)))
        for p in run.positions
    )


class TestBinaryFormat:
    def test_cold_run_stores_qce2_entry(self, cache):
        cache.cached_run(SOURCE, "t.c", "mono")
        blob = constraint_entry(cache).read_bytes()
        magic, version, _, flat_len, meta_len = _ENTRY_HEADER.unpack_from(blob, 0)
        assert magic == ENTRY_MAGIC
        assert version == ENTRY_VERSION
        assert _ENTRY_HEADER.size + flat_len + meta_len == len(blob)

    def test_warm_run_is_a_binary_hit(self, cache):
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        assert cache.stats.binary_hits == 0
        warm = cache.cached_run(SOURCE, "t.c", "mono")
        assert warm.timings and warm.timings.from_cache
        assert cache.stats.binary_hits == 1
        assert classifications(warm) == classifications(cold)
        assert fingerprint(warm) == fingerprint(cold)
        assert warm.constraint_count == cold.constraint_count

    def test_warm_run_serves_stored_solution_without_resolving(self, cache, monkeypatch):
        """The recorded fixpoints are served directly; a warm start must
        not re-run the solver at all."""
        cold = cache.cached_run(SOURCE, "t.c", "mono")

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm start re-solved the system")

        monkeypatch.setattr(cache_mod.flatcore.FlatSystem, "solve", explode)
        warm = cache.cached_run(SOURCE, "t.c", "mono")
        assert warm.timings and warm.timings.from_cache
        assert fingerprint(warm) == fingerprint(cold)

    def test_poly_mode_also_binary(self, cache):
        cache.cached_run(SOURCE, "t.c", "poly")
        assert constraint_entry(cache, "poly").read_bytes()[:4] == ENTRY_MAGIC
        warm = cache.cached_run(SOURCE, "t.c", "poly")
        assert warm.timings and warm.timings.from_cache
        assert cache.stats.binary_hits == 1

    def test_stats_summary_reports_binary_hits(self, cache):
        cache.cached_run(SOURCE, "t.c", "mono")
        cache.cached_run(SOURCE, "t.c", "mono")
        assert "1 binary mmap hit(s)" in cache.stats.summary()

    def test_stats_merge_carries_binary_hits(self):
        a = CacheStats(hits=2, misses=1, stores=1, binary_hits=2)
        b = CacheStats(hits=1, binary_hits=1)
        a.merge(b)
        assert a.hits == 3
        assert a.binary_hits == 3


class TestPickleFallback:
    def test_v1_pickle_entry_still_loads(self, cache, monkeypatch):
        """Entries written before the binary format (a plain pickle of
        ``(constraints, positions)``) are re-solved and served."""
        monkeypatch.setattr(cache_mod, "_encode_entry", lambda *a: None)
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        assert constraint_entry(cache).read_bytes()[:4] != ENTRY_MAGIC
        monkeypatch.undo()

        warm = cache.cached_run(SOURCE, "t.c", "mono")
        assert warm.timings and warm.timings.from_cache
        assert cache.stats.binary_hits == 0  # served via the pickle path
        assert classifications(warm) == classifications(cold)
        assert fingerprint(warm) == fingerprint(cold)

    def test_mixed_stores_coexist(self, cache, monkeypatch):
        """A store holding v1 entries for some keys and v2 for others
        serves both, each through its own decoder."""
        monkeypatch.setattr(cache_mod, "_encode_entry", lambda *a: None)
        cache.cached_run(SOURCE, "t.c", "mono")
        monkeypatch.undo()
        cache.cached_run(SOURCE, "t.c", "poly")
        assert constraint_entry(cache, "mono").read_bytes()[:4] != ENTRY_MAGIC
        assert constraint_entry(cache, "poly").read_bytes()[:4] == ENTRY_MAGIC

        warm_mono = cache.cached_run(SOURCE, "t.c", "mono")
        warm_poly = cache.cached_run(SOURCE, "t.c", "poly")
        assert warm_mono.timings and warm_mono.timings.from_cache
        assert warm_poly.timings and warm_poly.timings.from_cache
        assert cache.stats.binary_hits == 1

    def test_oversized_lattice_falls_back_to_pickle(self, cache):
        """_encode_entry declines lattices whose masks exceed the flat
        core's 62-bit budget; cached_run then writes a v1 pickle."""
        from repro.qual.lattice import QualifierLattice, positive

        wide = QualifierLattice(positive(f"q{i}") for i in range(70))
        blob = cache_mod._encode_entry([], [], wide)
        assert blob is None


class TestCorruptBinaryEntries:
    def warm_after(self, cache, mutate):
        cold = cache.cached_run(SOURCE, "t.c", "mono")
        path = constraint_entry(cache)
        mutate(path)
        before = cache.stats.misses
        rerun = cache.cached_run(SOURCE, "t.c", "mono")
        assert cache.stats.misses > before
        assert classifications(rerun) == classifications(cold)
        assert not (rerun.timings and rerun.timings.from_cache)
        # The recompute rewrote a healthy entry; the next run hits again.
        warm = cache.cached_run(SOURCE, "t.c", "mono")
        assert warm.timings and warm.timings.from_cache

    def test_truncated_header_is_a_miss(self, cache):
        self.warm_after(cache, lambda p: p.write_bytes(p.read_bytes()[:10]))

    def test_truncated_flat_section_is_a_miss(self, cache):
        self.warm_after(
            cache, lambda p: p.write_bytes(p.read_bytes()[: _ENTRY_HEADER.size + 40])
        )

    def test_truncated_tail_pickle_is_a_miss(self, cache):
        self.warm_after(cache, lambda p: p.write_bytes(p.read_bytes()[:-5]))

    def test_magic_with_garbage_body_is_a_miss(self, cache):
        self.warm_after(
            cache, lambda p: p.write_bytes(ENTRY_MAGIC + b"\xff" * 64)
        )

    def test_unsupported_version_is_a_miss(self, cache):
        def bump_version(path):
            blob = bytearray(path.read_bytes())
            struct.pack_into("<H", blob, 4, 999)
            path.write_bytes(bytes(blob))

        self.warm_after(cache, bump_version)

    def test_section_lengths_overrunning_file_are_a_miss(self, cache):
        def inflate(path):
            blob = bytearray(path.read_bytes())
            struct.pack_into("<Q", blob, 8, 2**40)
            path.write_bytes(bytes(blob))

        self.warm_after(cache, inflate)

    def test_corrupt_position_rows_are_a_miss(self, cache):
        """A valid flat section with garbage position rows must not be
        half-served."""

        def garble_rows(path):
            blob = path.read_bytes()
            _, _, _, flat_len, _ = _ENTRY_HEADER.unpack_from(blob, 0)
            keep = _ENTRY_HEADER.size + flat_len
            rows = pickle.dumps("not a list of rows")
            header = _ENTRY_HEADER.pack(
                ENTRY_MAGIC, ENTRY_VERSION, 0, flat_len, len(rows)
            )
            path.write_bytes(header + blob[_ENTRY_HEADER.size : keep] + rows)

        self.warm_after(cache, garble_rows)

    def test_empty_file_is_a_miss(self, cache):
        self.warm_after(cache, lambda p: p.write_bytes(b""))
