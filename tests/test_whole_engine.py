"""Tests for whole-program polymorphic inference: determinism at any
job count and cold/warm cache mix, per-TU summary caching with
dependency-closure invalidation, cross-TU schemes, and the
concatenation-equivalence property (linking a.c + b.c must classify
exactly like analysing their textual concatenation, modulo static
renaming)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constinfer.cache import AnalysisCache
from repro.constinfer.engine import run_poly
from repro.whole import link_sources, run_whole_poly
from repro.whole.engine import WHOLE_UID_BASE

FOUR_TUS = {
    "util.c": (
        "extern char *getenv(const char *name);\n"
        "char *read_env(const char *k) { return getenv(k); }\n"
        "static int twice(int x) { return x + x; }\n"
        "int scale(int x) { return twice(x); }\n"
    ),
    "ops.c": (
        "int add(int a, int b) { return a + b; }\n"
        "int sub(int a, int b) { return a - b; }\n"
    ),
    "table.c": (
        "extern int add(int a, int b);\n"
        "extern int sub(int a, int b);\n"
        "int (*ops[2])(int, int);\n"
        "void setup(void) { ops[0] = add; ops[1] = sub; }\n"
        "int apply(int i, int a, int b) { return ops[i](a, b); }\n"
    ),
    "main.c": (
        "extern char *read_env(const char *k);\n"
        "extern int apply(int i, int a, int b);\n"
        "extern int scale(int x);\n"
        "int main(void) { read_env(\"X\"); return apply(0, scale(1), 2); }\n"
    ),
}


def run_fingerprint(result):
    """Everything observable about a run, as one comparable value."""
    run = result.run
    sol = run.solution
    return (
        tuple(str(c) for c in run.inference.constraints),
        tuple(sorted(((v.uid, v.name), str(q)) for v, q in sol.least.items())),
        tuple(sorted(((v.uid, v.name), str(q)) for v, q in sol.greatest.items())),
        tuple(
            (name, str(run.inference.schemes[name]))
            for name in sorted(run.inference.schemes)
        ),
        tuple(
            (p.function, p.where, p.depth, p.declared, run.classify(p).name)
            for p in run.positions
        ),
    )


def classification_multiset(run):
    return sorted(
        (p.function, p.where, p.depth, p.declared, run.classify(p).name)
        for p in run.positions
    )


def test_jobs_do_not_change_output():
    baseline = run_fingerprint(run_whole_poly(link_sources(FOUR_TUS), jobs=1))
    for jobs in (2, 4):
        assert run_fingerprint(run_whole_poly(link_sources(FOUR_TUS), jobs=jobs)) == baseline


def test_repeat_runs_are_identical():
    a = run_fingerprint(run_whole_poly(link_sources(FOUR_TUS)))
    b = run_fingerprint(run_whole_poly(link_sources(FOUR_TUS)))
    assert a == b


def test_all_uids_live_in_the_whole_band_space():
    result = run_whole_poly(link_sources(FOUR_TUS))
    for constraint in result.run.inference.constraints:
        for side in (constraint.lhs, constraint.rhs):
            uid = getattr(side, "uid", None)
            if uid is not None:
                assert uid >= WHOLE_UID_BASE


def test_cold_warm_and_partial_cache_identical(tmp_path):
    cache = AnalysisCache(tmp_path)
    cold = run_whole_poly(link_sources(FOUR_TUS), cache=cache)
    assert cold.summary_hits == 0
    assert cold.summary_misses == 4

    warm = run_whole_poly(link_sources(FOUR_TUS), cache=cache, jobs=4)
    assert warm.summary_hits == 4
    assert warm.summary_misses == 0
    assert warm.run.timings.from_cache

    no_cache = run_whole_poly(link_sources(FOUR_TUS))
    assert run_fingerprint(cold) == run_fingerprint(warm) == run_fingerprint(no_cache)


def test_editing_a_leaf_reanalyses_only_dependents(tmp_path):
    cache = AnalysisCache(tmp_path)
    run_whole_poly(link_sources(FOUR_TUS), cache=cache)

    # main.c depends on everything; editing it re-analyses only main.c
    edited = dict(FOUR_TUS)
    edited["main.c"] = edited["main.c"].replace("scale(1)", "scale(2)")
    result = run_whole_poly(link_sources(edited), cache=cache)
    assert result.summary_misses == 1
    assert result.summary_hits == 3

    # ops.c is a root: editing it re-analyses ops.c and its dependents
    # (table.c via the pointer table, main.c via apply) but not util.c
    edited2 = dict(FOUR_TUS)
    edited2["ops.c"] = edited2["ops.c"].replace("a + b", "b + a")
    result2 = run_whole_poly(link_sources(edited2), cache=cache)
    assert result2.summary_misses == 3
    assert result2.summary_hits == 1


def test_adding_a_global_invalidates_every_summary(tmp_path):
    cache = AnalysisCache(tmp_path)
    run_whole_poly(link_sources(FOUR_TUS), cache=cache)
    edited = dict(FOUR_TUS)
    edited["ops.c"] += "int extra_global;\n"
    # the shared uid layout shifted: nothing may be served warm
    result = run_whole_poly(link_sources(edited), cache=cache)
    assert result.summary_hits == 0


def test_cross_tu_mutual_recursion_forms_one_group():
    sources = {
        "even.c": (
            "extern int is_odd(int n);\n"
            "int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }\n"
        ),
        "odd.c": (
            "extern int is_even(int n);\n"
            "int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }\n"
        ),
    }
    result = run_whole_poly(link_sources(sources))
    assert result.schedule == [("even.c", "odd.c")]
    assert result.run.solution is not None


def test_schemes_are_polymorphic_across_tus():
    sources = {
        "id.c": "char *identity(char *p) { return p; }\n",
        "use.c": (
            "extern char *identity(char *p);\n"
            "extern char *getenv(const char *name);\n"
            "char *reuse(char *clean) {\n"
            "    char *dirty = identity(getenv(\"X\"));\n"
            "    return identity(clean);\n"
            "}\n"
        ),
    }
    result = run_whole_poly(link_sources(sources))
    scheme = result.run.inference.schemes["identity"]
    assert scheme.quantified  # generalised, not monomorphic


def test_whole_matches_concatenation_fixed_pair():
    a = (
        "extern char *getenv(const char *name);\n"
        "char *source(void) { return getenv(\"V\"); }\n"
    )
    b = (
        "extern char *source(void);\n"
        "char *relay(void) { return source(); }\n"
    )
    whole = run_whole_poly(link_sources({"a.c": a, "b.c": b})).run
    concat = run_poly(__import__("repro.cfront.sema", fromlist=["Program"]).Program.from_source(a + b))
    assert classification_multiset(whole) == classification_multiset(concat)


# -- the concatenation-equivalence property (satellite) -----------------

_SNIPPETS_A = [
    "int give(void) { return 42; }\n",
    "char *pass_through(char *p) { return p; }\n",
    "int twice_up(int x) { return x + x; }\n",
    "extern char *getenv(const char *name);\nchar *fetch(void) { return getenv(\"K\"); }\n",
    "int shared_value;\nint read_shared(void) { return shared_value; }\n",
]

_SNIPPETS_B = [
    "extern int give(void);\nint taken(void) { return give(); }\n",
    "extern char *pass_through(char *p);\nchar *loop_it(char *q) { return pass_through(pass_through(q)); }\n",
    "extern int twice_up(int x);\nint four_x(int x) { return twice_up(twice_up(x)); }\n",
    "extern char *fetch(void);\nchar *hand_off(void) { return fetch(); }\n",
    "extern int shared_value;\nint bump_shared(void) { shared_value = shared_value + 1; return shared_value; }\n",
    "int lonely(int z) { return z; }\n",
]


@settings(max_examples=25, deadline=None)
@given(
    a_parts=st.lists(st.sampled_from(_SNIPPETS_A), min_size=1, max_size=3, unique=True),
    b_parts=st.lists(st.sampled_from(_SNIPPETS_B), min_size=1, max_size=3, unique=True),
)
def test_whole_program_equals_textual_concatenation(a_parts, b_parts):
    """Linking {a.c, b.c} (no statics involved) must classify every
    interesting position exactly as analysing one concatenated unit:
    the linker model adds no spurious merging and loses no flows."""
    from repro.cfront.sema import Program

    a_text = "".join(a_parts)
    b_text = "".join(b_parts)
    whole = run_whole_poly(link_sources({"a.c": a_text, "b.c": b_text})).run
    concat = run_poly(Program.from_source(a_text + b_text, filename="concat.c"))
    assert classification_multiset(whole) == classification_multiset(concat)


def test_whole_matches_concatenation_with_static_renaming():
    """With same-named statics in both units, whole-program equals the
    concatenation in which the statics are *manually* alpha-renamed —
    the 'modulo static renaming' clause."""
    from repro.cfront.sema import Program

    a = "static int mark;\nint get_a(void) { return mark; }\n"
    b = "static int mark;\nint get_b(void) { mark = 2; return mark; }\n"
    whole = run_whole_poly(link_sources({"a.c": a, "b.c": b})).run
    renamed = a.replace("mark", "mark_one") + b.replace("mark", "mark_two")
    concat = run_poly(Program.from_source(renamed))
    assert classification_multiset(whole) == classification_multiset(concat)


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        run_whole_poly(link_sources({"a.c": "int f(void) { return 1; }\n"}), jobs=0)
