"""Tests for the linker model: C linkage rules, static renaming with
block scoping, extern/tentative merging, and conflict diagnostics."""

import pytest

from repro.cfront.cparser import parse_c
from repro.whole.linker import (
    STATIC_SEPARATOR,
    link_paths,
    link_sources,
    link_units,
)


def test_extern_declaration_merges_with_defining_tu():
    linked = link_sources(
        {
            "a.c": "int width(void) { return 3; }\n",
            "b.c": "extern int width(void);\nint twice(void) { return width() + width(); }\n",
        }
    )
    assert linked.diagnostics == []
    sym = linked.symbols["width"]
    assert sym.linkage == "external"
    assert sym.defining_unit == "a.c"
    assert set(sym.declaring_units) == {"a.c", "b.c"}
    # one program-level function, homed in a.c
    assert linked.tu_of_function["width"] == "a.c"
    assert linked.tu_of_function["twice"] == "b.c"


def test_static_symbols_stay_tu_private():
    linked = link_sources(
        {
            "a.c": "static int counter;\nint bump_a(void) { counter = counter + 1; return counter; }\n",
            "b.c": "static int counter;\nint bump_b(void) { counter = counter + 2; return counter; }\n",
        }
    )
    assert linked.diagnostics == []
    internal = {s.name for s in linked.internal_symbols()}
    assert internal == {"counter@a", "counter@b"}
    # the merged program holds two distinct globals, not one
    assert "counter@a" in linked.program.globals
    assert "counter@b" in linked.program.globals
    assert "counter" not in linked.program.globals


def test_static_functions_renamed_and_references_rewritten():
    linked = link_sources(
        {
            "a.c": "static int helper(int x) { return x; }\nint call_a(void) { return helper(1); }\n",
            "b.c": "static int helper(int y) { return y + 1; }\nint call_b(void) { return helper(2); }\n",
        }
    )
    assert f"helper{STATIC_SEPARATOR}a" in linked.program.functions
    assert f"helper{STATIC_SEPARATOR}b" in linked.program.functions
    # each caller references its own unit's helper
    from repro.cfront.sema import occurring_names

    assert f"helper{STATIC_SEPARATOR}a" in occurring_names(
        linked.program.functions["call_a"]
    )
    assert f"helper{STATIC_SEPARATOR}b" in occurring_names(
        linked.program.functions["call_b"]
    )


def test_local_declaration_shadows_static_rename():
    # the local `counter` must NOT be rewritten to counter@a
    linked = link_sources(
        {
            "a.c": (
                "static int counter;\n"
                "int shadowed(void) {\n"
                "    int counter = 7;\n"
                "    return counter;\n"
                "}\n"
                "int unshadowed(void) { return counter; }\n"
            ),
        }
    )
    from repro.cfront.sema import occurring_names

    shadowed = occurring_names(linked.program.functions["shadowed"])
    assert "counter@a" not in shadowed
    unshadowed = occurring_names(linked.program.functions["unshadowed"])
    assert "counter@a" in unshadowed


def test_parameter_shadows_static_rename():
    linked = link_sources(
        {
            "a.c": (
                "static int depth;\n"
                "int use_param(int depth) { return depth + 1; }\n"
            ),
        }
    )
    from repro.cfront.sema import occurring_names

    assert "depth@a" not in occurring_names(linked.program.functions["use_param"])


def test_conflicting_types_across_units_diagnosed():
    linked = link_sources(
        {
            "a.c": "int size(void) { return 1; }\n",
            "b.c": "extern char *size(void);\nchar *grab(void) { return size(); }\n",
        }
    )
    kinds = [d.kind for d in linked.diagnostics]
    assert "conflicting-types" in kinds
    diag = next(d for d in linked.diagnostics if d.kind == "conflicting-types")
    assert diag.symbol == "size"
    assert diag.file == "b.c"


def test_conflicting_qualified_types_diagnosed():
    # const lives in the type terms, so dropping it across TUs is a
    # conflicting-types finding
    linked = link_sources(
        {
            "a.c": "extern const char *label;\n",
            "b.c": "char *label;\n",
        }
    )
    assert any(d.kind == "conflicting-types" for d in linked.diagnostics)


def test_multiple_definition_diagnosed():
    linked = link_sources(
        {
            "a.c": "int origin(void) { return 1; }\n",
            "b.c": "int origin(void) { return 2; }\n",
        }
    )
    dups = [d for d in linked.diagnostics if d.kind == "multiple-definition"]
    assert len(dups) == 1
    assert dups[0].symbol == "origin"
    assert dups[0].file == "b.c"
    assert "a.c" in dups[0].message


def test_array_sizes_do_not_conflict():
    linked = link_sources(
        {
            "a.c": "int table[10];\n",
            "b.c": "extern int table[];\nint first(void) { return table[0]; }\n",
        }
    )
    assert linked.diagnostics == []


def test_parameter_names_do_not_conflict():
    linked = link_sources(
        {
            "a.c": "int mix(int left, int right) { return left + right; }\n",
            "b.c": "extern int mix(int a, int b);\nint go(void) { return mix(1, 2); }\n",
        }
    )
    assert linked.diagnostics == []


def test_tentative_definition_is_not_a_duplicate():
    linked = link_sources(
        {
            "a.c": "int shared;\n",
            "b.c": "int shared;\nint read_it(void) { return shared; }\n",
        }
    )
    assert not any(d.kind == "multiple-definition" for d in linked.diagnostics)


def test_duplicate_filename_stems_get_distinct_labels():
    linked = link_sources(
        {
            "x/util.c": "static int mark;\nint from_x(void) { return mark; }\n",
            "y/util.c": "static int mark;\nint from_y(void) { return mark; }\n",
        }
    )
    internal = sorted(s.name for s in linked.internal_symbols())
    assert internal == ["mark@util", "mark@util~2"]


def test_link_units_accepts_parsed_units():
    units = [
        parse_c("int one(void) { return 1; }\n", "one.c"),
        parse_c("extern int one(void);\nint two(void) { return one() + 1; }\n", "two.c"),
    ]
    linked = link_units(units)
    assert linked.exported_functions() == ["one", "two"]


def test_link_paths_discovers_and_sorts(tmp_path):
    (tmp_path / "b.c").write_text("extern int f(void);\nint g(void) { return f(); }\n")
    (tmp_path / "a.c").write_text("int f(void) { return 1; }\n")
    linked = link_paths([tmp_path])
    assert [n.endswith("a.c") for n in linked.unit_names] == [True, False]
    assert linked.diagnostics == []


def test_static_rename_cannot_collide_with_source_names():
    # `@` is not a C identifier character
    assert STATIC_SEPARATOR not in "abcdefghijklmnopqrstuvwxyz0123456789_"
    linked = link_sources(
        {"a.c": "static int v;\nint r(void) { return v; }\n"}
    )
    assert all(
        STATIC_SEPARATOR not in name or name.endswith("@a")
        for name in linked.program.globals
    )
