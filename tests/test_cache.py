"""The content-addressed analysis cache: warm runs reproduce cold
classifications exactly, keys separate every input that matters, and
corrupt entries degrade to misses."""

import pickle

import pytest

from repro.benchsuite.suite import benchmark_rows, generate_source, scaling_spec, scaling_specs
from repro.cfront.sema import Program
from repro.constinfer.cache import AnalysisCache, CacheStats, code_fingerprint, lattice_key
from repro.qual.qualifiers import const_lattice

SOURCE = """
int *shared;
int deref(int *p) { return *p; }
const char *greet(const char *name) { return name; }
int use(int *q) { shared = q; return deref(q); }
"""


@pytest.fixture
def cache(tmp_path):
    return AnalysisCache(tmp_path / "cache")


def classifications(run):
    return sorted(
        (p.function, p.where, p.depth, c.name) for p, c in run.classified_positions()
    )


class TestRawStore:
    def test_get_miss_then_put_then_hit(self, cache):
        key = cache.key("program", source="x")
        assert cache.get(key) is None
        cache.put(key, {"v": 1})
        assert cache.get(key) == {"v": 1}
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (1, 1, 1)

    def test_corrupt_entry_is_a_miss(self, cache):
        key = cache.key("program", source="y")
        cache.put(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_truncated_entry_is_a_miss(self, cache):
        key = cache.key("program", source="z")
        cache.put(key, list(range(100)))
        blob = cache._path(key).read_bytes()
        cache._path(key).write_bytes(blob[: len(blob) // 2])
        assert cache.get(key) is None


class TestKeys:
    def test_same_inputs_same_key(self, cache):
        a = cache.key("constraints", source=SOURCE, mode="mono")
        b = cache.key("constraints", source=SOURCE, mode="mono")
        assert a == b

    def test_key_separates_source(self, cache):
        assert cache.key("program", source="a") != cache.key("program", source="b")

    def test_key_separates_mode(self, cache):
        mono = cache.key("constraints", source=SOURCE, mode="mono")
        poly = cache.key("constraints", source=SOURCE, mode="poly")
        assert mono != poly

    def test_key_separates_kind(self, cache):
        assert cache.key("program", source=SOURCE) != cache.key(
            "constraints", source=SOURCE
        )

    def test_key_separates_options(self, cache):
        plain = cache.key("constraints", source=SOURCE, mode="mono")
        ablated = cache.key(
            "constraints", source=SOURCE, mode="mono",
            options={"share_struct_fields": False},
        )
        assert plain != ablated

    def test_key_separates_lattice(self, cache):
        default = cache.key("constraints", source=SOURCE, mode="mono")
        explicit = cache.key(
            "constraints", source=SOURCE, mode="mono", lattice=const_lattice()
        )
        assert default != explicit

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_lattice_key_canonical(self):
        assert lattice_key(None) == "default"
        assert lattice_key(const_lattice()) == lattice_key(const_lattice())


class TestCachedProgram:
    def test_cold_then_warm(self, cache):
        cold, _, from_cache_cold = cache.cached_program(SOURCE, "t")
        assert not from_cache_cold
        warm, _, from_cache_warm = cache.cached_program(SOURCE, "t")
        assert from_cache_warm
        assert sorted(warm.functions) == sorted(cold.functions)


class TestCachedRun:
    @pytest.mark.parametrize("mode", ["mono", "poly", "polyrec"])
    def test_warm_matches_cold(self, cache, mode):
        cold = cache.cached_run(SOURCE, "t", mode)
        warm = cache.cached_run(SOURCE, "t", mode)
        assert not cold.timings.from_cache
        assert warm.timings.from_cache
        assert classifications(cold) == classifications(warm)
        assert cold.constraint_count == warm.constraint_count

    def test_warm_skips_parse_and_congen(self, cache):
        cache.cached_run(SOURCE, "t", "mono")
        warm = cache.cached_run(SOURCE, "t", "mono")
        assert warm.timings.parse_seconds == 0.0
        assert warm.timings.generalize_seconds == 0.0

    def test_poly_jobs_share_entries(self, cache):
        cold = cache.cached_run(SOURCE, "t", "poly", jobs=2)
        warm = cache.cached_run(SOURCE, "t", "poly", jobs=4)
        assert warm.timings.from_cache
        assert classifications(cold) == classifications(warm)

    def test_explicit_lattice_roundtrips(self, cache):
        lattice = const_lattice()
        cold = cache.cached_run(SOURCE, "t", "mono", lattice=lattice)
        warm = cache.cached_run(SOURCE, "t", "mono", lattice=lattice)
        assert warm.timings.from_cache
        assert classifications(cold) == classifications(warm)

    def test_corrupt_constraint_blob_recomputes(self, cache):
        cold = cache.cached_run(SOURCE, "t", "mono")
        key = cache.key("constraints", source=SOURCE, mode="mono")
        cache._path(key).write_bytes(pickle.dumps("wrong shape"))
        recomputed = cache.cached_run(SOURCE, "t", "mono")
        assert not recomputed.timings.from_cache
        assert classifications(cold) == classifications(recomputed)


class TestSuiteIntegration:
    def test_benchmark_counts_identical_cold_and_warm(self, tmp_path):
        spec = scaling_spec(1)
        stats = CacheStats()
        cold = benchmark_rows((spec,), cache_dir=str(tmp_path), cache_stats=stats)
        warm = benchmark_rows((spec,), cache_dir=str(tmp_path), cache_stats=stats)
        key = lambda r: (r.name, r.declared, r.mono, r.poly, r.total_possible)
        assert key(cold[0]) == key(warm[0])
        assert warm[0].mono_timings.from_cache
        assert warm[0].poly_timings.from_cache
        assert stats.hits > 0

    def test_process_pool_workers_share_cache(self, tmp_path):
        specs = scaling_specs((1, 2))
        stats = CacheStats()
        benchmark_rows(specs, jobs=2, cache_dir=str(tmp_path), cache_stats=stats)
        warm_stats = CacheStats()
        rows = benchmark_rows(specs, jobs=2, cache_dir=str(tmp_path), cache_stats=warm_stats)
        assert warm_stats.misses == 0
        assert warm_stats.hits == 2 * len(specs)
        assert all(r.mono_timings.from_cache and r.poly_timings.from_cache for r in rows)

    def test_stage_timings_rendered(self, tmp_path):
        from repro.constinfer.results import format_stage_timings

        rows = benchmark_rows((scaling_spec(1),), cache_dir=str(tmp_path))
        rows = benchmark_rows((scaling_spec(1),), cache_dir=str(tmp_path))
        report = format_stage_timings(rows)
        assert "cached" in report
        assert "Congen(ms)" in report
