"""Unit tests for the Figure 5 small-step operational semantics."""

import pytest

from repro.lam.ast import (
    Annot,
    IntLit,
    Loc,
    UnitLit,
    qual_literal,
)
from repro.lam.eval import (
    AnnotationFailure,
    AssertionFailure,
    Evaluator,
    OutOfFuel,
    Store,
    StuckError,
)
from repro.lam.parser import parse
from repro.qual.qualifiers import const_nonzero_lattice


@pytest.fixture
def ev():
    return Evaluator(const_nonzero_lattice())


def run_value(ev, source):
    value, store = ev.run(parse(source))
    return value, store


class TestValues:
    def test_literal_canonicalises_to_bottom(self, ev):
        value, _ = run_value(ev, "42")
        assert isinstance(value, Annot)
        assert value.expr == IntLit(42)
        assert value.qual.resolve(ev.lattice) == ev.lattice.bottom

    def test_annotated_value_is_final(self, ev):
        value, _ = run_value(ev, "{const} 42")
        assert value.qual.names == frozenset({"const"})

    def test_unit(self, ev):
        value, _ = run_value(ev, "()")
        assert isinstance(value.expr, UnitLit)


class TestBetaAndControl:
    def test_application(self, ev):
        assert ev.run_to_int(parse("(fn x. x) 7")) == 7

    def test_argument_annotation_preserved(self, ev):
        value, _ = run_value(ev, "(fn x. x) ({const} 3)")
        assert value.qual.names == frozenset({"const"})

    def test_if_nonzero_takes_then(self, ev):
        assert ev.run_to_int(parse("if 2 then 10 else 20 fi")) == 10

    def test_if_zero_takes_else(self, ev):
        assert ev.run_to_int(parse("if 0 then 10 else 20 fi")) == 20

    def test_let_substitutes_value(self, ev):
        assert ev.run_to_int(parse("let x = 5 in x ni")) == 5

    def test_nested_lambdas(self, ev):
        assert ev.run_to_int(parse("((fn x. fn y. x) 1) 2")) == 1

    def test_capture_avoidance(self, ev):
        # (fn x. fn y. x) y  must not capture the free-ish y
        source = "let y = 9 in ((fn x. fn y. x) y) 5 ni"
        assert ev.run_to_int(parse(source)) == 9


class TestStore:
    def test_ref_allocates(self, ev):
        value, store = run_value(ev, "ref 1")
        assert isinstance(value.expr, Loc)
        assert len(store) == 1

    def test_deref_reads(self, ev):
        assert ev.run_to_int(parse("!(ref 8)")) == 8

    def test_assign_updates(self, ev):
        source = "let r = ref 1 in let u = (r := 42) in !r ni ni"
        assert ev.run_to_int(parse(source)) == 42

    def test_assign_returns_unit(self, ev):
        value, _ = run_value(ev, "let r = ref 1 in (r := 2) ni")
        assert isinstance(value.expr, UnitLit)

    def test_aliasing(self, ev):
        source = """
        let x = ref 1 in
        let y = x in
        let u = (y := 5) in
        !x
        ni ni ni
        """
        assert ev.run_to_int(parse(source)) == 5

    def test_two_refs_distinct(self, ev):
        source = """
        let a = ref 1 in
        let b = ref 2 in
        let u = (a := 10) in
        !b
        ni ni ni
        """
        assert ev.run_to_int(parse(source)) == 2

    def test_stored_values_keep_annotations(self, ev):
        source = "!(ref ({nonzero} 3))"
        value, _ = run_value(ev, source)
        assert value.qual.names == frozenset({"nonzero"})


class TestAnnotationsAndAssertions:
    def test_annotation_raises_level(self, ev):
        value, _ = run_value(ev, "{const} ({nonzero} 1)")
        # nonzero <= {const,nonzero}? annotation replaces with the outer
        # level, checking the inner one is below it.
        assert value.qual.names == frozenset({"const"})

    def test_annotation_failure_when_not_below(self, ev):
        # inner {} (nonzero removed) is NOT below outer {nonzero}
        with pytest.raises(AnnotationFailure):
            ev.run(parse("{nonzero} ({} 1)"))

    def test_assertion_passes(self, ev):
        assert ev.run_to_int(parse("({nonzero} 1)|{nonzero}")) == 1

    def test_assertion_failure(self, ev):
        with pytest.raises(AssertionFailure):
            ev.run(parse("({} 1)|{nonzero}"))

    def test_assertion_keeps_value_annotation(self, ev):
        value, _ = run_value(ev, "({nonzero} 1)|{const nonzero}")
        assert value.qual.names == frozenset({"nonzero"})


class TestStuckStates:
    def test_free_variable_stuck(self, ev):
        with pytest.raises(StuckError):
            ev.run(parse("x"))

    def test_apply_non_function_stuck(self, ev):
        with pytest.raises(StuckError):
            ev.run(parse("1 2"))

    def test_if_non_int_stuck(self, ev):
        with pytest.raises(StuckError):
            ev.run(parse("if (fn x. x) then 1 else 2 fi"))

    def test_deref_non_location_stuck(self, ev):
        with pytest.raises(StuckError):
            ev.run(parse("!1"))

    def test_assign_non_location_stuck(self, ev):
        with pytest.raises(StuckError):
            ev.run(parse("1 := 2"))


class TestDivergenceAndTrace:
    def test_omega_runs_out_of_fuel(self, ev):
        omega = "(fn x. x x) (fn x. x x)"
        with pytest.raises(OutOfFuel):
            ev.run(parse(omega), fuel=500)

    def test_trace_yields_configurations(self, ev):
        steps = list(ev.trace(parse("(fn x. x) 1")))
        assert len(steps) >= 3  # canon fn, canon 1, beta, final
        final_expr, _ = steps[-1]
        assert isinstance(final_expr, Annot)

    def test_trace_shares_store(self, ev):
        store = Store()
        steps = list(ev.trace(parse("ref 1"), store))
        assert len(store) == 1
        assert steps


class TestStoreClass:
    def test_alloc_read_write(self):
        s = Store()
        a = s.alloc(IntLit(1))
        assert s.read(a) == IntLit(1)
        s.write(a, IntLit(2))
        assert s.read(a) == IntLit(2)

    def test_write_unknown_address(self):
        with pytest.raises(KeyError):
            Store().write(0, IntLit(1))

    def test_contains(self):
        s = Store()
        a = s.alloc(IntLit(1))
        assert a in s and (a + 1) not in s

    def test_addresses_fresh(self):
        s = Store()
        assert s.alloc(IntLit(1)) != s.alloc(IntLit(2))


class TestRunToInt:
    def test_rejects_non_int(self, ev):
        with pytest.raises(StuckError):
            ev.run_to_int(parse("()"))
