"""Unit tests for result counting and Table/Figure rendering."""

import pytest

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from repro.constinfer.results import (
    BenchmarkRow,
    analyze_program,
    format_figure6,
    format_table1,
    format_table2,
    make_row,
    summarize_shape_claims,
)


def sample_row(**overrides):
    defaults = dict(
        name="bench",
        lines=1000,
        description="test benchmark",
        compile_seconds=1.0,
        mono_seconds=2.0,
        poly_seconds=5.0,
        declared=50,
        mono=67,
        poly=72,
        total_possible=95,
    )
    defaults.update(overrides)
    return BenchmarkRow(**defaults)


class TestRowArithmetic:
    def test_figure6_quantities(self):
        row = sample_row()
        assert row.mono_extra == 17
        assert row.poly_extra == 5
        assert row.other == 23

    def test_percentages_sum_to_100(self):
        row = sample_row()
        assert sum(row.percentages().values()) == pytest.approx(100.0)

    def test_percentages_values(self):
        pct = sample_row().percentages()
        assert pct["declared"] == pytest.approx(100 * 50 / 95)
        assert pct["poly"] == pytest.approx(100 * 5 / 95)

    def test_ratios(self):
        row = sample_row()
        assert row.poly_over_mono_ratio == pytest.approx(72 / 67)
        assert row.poly_time_factor == pytest.approx(2.5)

    def test_zero_guards(self):
        row = sample_row(declared=0, mono=0, poly=0, total_possible=0, mono_seconds=0.0)
        assert row.percentages()["declared"] == 0.0
        assert row.poly_time_factor == float("inf")


class TestMakeRow:
    def test_from_engine_runs(self):
        source = """
        int a(const int *p) { return *p; }
        int b(int *p) { return *p; }
        void c(int *p) { *p = 1; }
        """
        program = Program.from_source(source)
        mono, poly = run_mono(program), run_poly(program)
        row = make_row("t", 10, "d", 0.1, mono, poly)
        assert (row.declared, row.mono, row.poly, row.total_possible) == (1, 2, 2, 3)

    def test_disagreeing_runs_rejected(self):
        p1 = Program.from_source("int a(int *p) { return *p; }")
        p2 = Program.from_source("int a(int *p, int *q) { return *p + *q; }")
        with pytest.raises(ValueError):
            make_row("t", 1, "d", 0.0, run_mono(p1), run_poly(p2))

    def test_analyze_program_convenience(self):
        program = Program.from_source("int f(int *p) { return *p; }")
        row = analyze_program(program, name="x", description="y")
        assert row.name == "x" and row.total_possible == 1


class TestRendering:
    def test_table1(self):
        text = format_table1([sample_row()])
        assert "bench" in text and "1000" in text and "test benchmark" in text

    def test_table2_columns(self):
        text = format_table2([sample_row()])
        assert "Declared" in text and "Total" in text
        assert " 50 " in text and " 95" in text

    def test_figure6_bar_width(self):
        text = format_figure6([sample_row()], width=40)
        bar_line = [l for l in text.split("\n") if l.startswith("bench")][0]
        bar = bar_line.split("|")[1]
        assert len(bar) == 40
        assert bar.count("D") == round(40 * 50 / 95)

    def test_figure6_legend(self):
        text = format_figure6([sample_row()])
        assert "D=declared" in text


class TestShapeClaims:
    def test_all_claims_on_good_rows(self):
        rows = [sample_row(), sample_row(name="b2", declared=10, mono=30, poly=33)]
        claims = summarize_shape_claims(rows)
        assert claims["all_mono_geq_declared"]
        assert claims["all_poly_geq_mono"]
        assert claims["poly_gain_percent_min"] <= claims["poly_gain_percent_max"]

    def test_gain_percent_math(self):
        claims = summarize_shape_claims([sample_row()])
        assert claims["poly_gain_percent_max"] == pytest.approx(100 * 5 / 67)

    def test_requires_rows(self):
        with pytest.raises(AssertionError):
            summarize_shape_claims([])
