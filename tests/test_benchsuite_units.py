"""Per-unit regression tests for the benchmark generator: each unit
template must produce exactly the classification it is documented to
produce, independent of the mix composer."""

import pytest

from repro.benchsuite.generator import BenchmarkGenerator, PositionMix
from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono, run_poly
from repro.qual.solver import Classification


def analyze_unit(build, seed=5):
    generator = BenchmarkGenerator("unit", seed)
    build(generator)
    source = generator.em.render("/* unit test */")
    program = Program.from_source(source)
    return run_mono(program), run_poly(program)


class TestAUnits:
    def test_declared_reader(self):
        mono, poly = analyze_unit(lambda g: g.unit_declared_reader())
        assert mono.total_positions() == 1
        assert mono.declared_count() == 1
        assert mono.inferred_const_count() == 1
        assert poly.inferred_const_count() == 1

    def test_declared_struct_reader(self):
        mono, poly = analyze_unit(lambda g: g.unit_declared_struct_reader())
        assert (mono.declared_count(), mono.total_positions()) == (1, 1)
        assert mono.inferred_const_count() == poly.inferred_const_count() == 1


class TestBUnits:
    def test_plain_reader(self):
        mono, poly = analyze_unit(lambda g: g.unit_plain_reader())
        assert mono.total_positions() == 1
        assert mono.declared_count() == 0
        assert mono.inferred_const_count() == 1  # EITHER counts
        assert poly.inferred_const_count() == 1

    @pytest.mark.parametrize("depth", [2, 3])
    def test_pipeline(self, depth):
        mono, poly = analyze_unit(lambda g: g.unit_pipeline(depth))
        assert mono.total_positions() == depth
        assert mono.inferred_const_count() == depth
        assert poly.inferred_const_count() == depth

    def test_strchr_like(self):
        mono, poly = analyze_unit(lambda g: g.unit_strchr_like())
        assert mono.total_positions() == 2
        assert mono.declared_count() == 1
        assert mono.inferred_const_count() == 2
        assert poly.inferred_const_count() == 2


class TestCUnits:
    def test_selector_gap_is_three(self):
        mono, poly = analyze_unit(lambda g: g.unit_selector())
        assert mono.total_positions() == 3
        assert mono.inferred_const_count() == 0
        assert poly.inferred_const_count() == 3

    def test_forwarder_gap_is_two(self):
        mono, poly = analyze_unit(lambda g: g.unit_forwarder())
        assert mono.total_positions() == 2
        assert mono.inferred_const_count() == 0
        assert poly.inferred_const_count() == 2

    def test_global_getter_gap_is_one(self):
        mono, poly = analyze_unit(lambda g: g.unit_global_getter())
        assert mono.total_positions() == 1
        assert mono.inferred_const_count() == 0
        assert poly.inferred_const_count() == 1


class TestDUnits:
    def test_writer(self):
        mono, poly = analyze_unit(lambda g: g.unit_writer())
        assert mono.total_positions() == 1
        assert mono.inferred_const_count() == 0
        assert poly.inferred_const_count() == 0

    def test_library_wrapper(self):
        mono, poly = analyze_unit(lambda g: g.unit_library_wrapper())
        assert mono.total_positions() == 1
        assert mono.inferred_const_count() == 0
        assert poly.inferred_const_count() == 0


class TestFillerAndDrivers:
    def test_filler_has_no_positions(self):
        def build(g):
            for _ in range(5):
                g.unit_filler()

        mono, _poly = analyze_unit(build)
        assert mono.total_positions() == 0

    def test_driver_does_not_change_classification(self):
        def build(g):
            g.unit_plain_reader()
            g.unit_writer()
            g.unit_driver(list(g._reader_names))

        mono, poly = analyze_unit(build)
        assert mono.total_positions() == 2
        assert mono.inferred_const_count() == 1
        assert poly.inferred_const_count() == 1

    def test_units_compose_additively(self):
        def build(g):
            g.unit_declared_reader()
            g.unit_plain_reader()
            g.unit_selector()
            g.unit_writer()
            g.unit_library_wrapper()

        mono, poly = analyze_unit(build)
        # 1a + 1b + 3c + 2d
        assert mono.total_positions() == 7
        assert mono.declared_count() == 1
        assert mono.inferred_const_count() == 2
        assert poly.inferred_const_count() == 5


class TestSeedsStable:
    @pytest.mark.parametrize("seed", [1, 2, 3, 17])
    def test_selector_gap_stable_across_seeds(self, seed):
        mono, poly = analyze_unit(lambda g: g.unit_selector(), seed=seed)
        assert poly.inferred_const_count() - mono.inferred_const_count() == 3
