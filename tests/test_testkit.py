"""The testkit's own tests: generator guarantees, oracle agreement on
the shipped engines, and the mutation smoke test — a deliberately broken
solver must be caught by the differential matrix and delta-debugged to a
tiny reproducer (the end-to-end proof that the harness can actually
catch and shrink an engine bug)."""

import subprocess
import sys

import pytest

from repro.lam.infer import QualTypeError, infer
from repro.lam.parser import parse
from repro.qual.lattice import LatticeElement
from repro.qual.solver import solve
from repro.testkit import (
    Disagreement,
    EngineConfig,
    FuzzSession,
    check_c_corpus,
    check_lambda,
    reduce_c_corpus,
    reduce_lambda,
)
from repro.testkit.cgen import generate_c_corpus
from repro.testkit.cli import build_parser, parse_budget, parse_engines
from repro.testkit.lamgen import generate_lambda
from repro.testkit.oracles import ALL_ORACLES
from repro.testkit.reduce import (
    emit_lambda_regression,
    failure_predicate,
    size_of,
)
from repro.testkit.transforms import insert_dead_lets, rename_vars


class TestLambdaGenerator:
    def test_deterministic_in_seed(self):
        assert str(generate_lambda(7).expr) == str(generate_lambda(7).expr)
        assert str(generate_lambda(7).expr) != str(generate_lambda(8).expr)

    def test_well_typed_by_construction(self):
        for seed in range(50):
            generated = generate_lambda(seed)
            infer(generated.expr, generated.language)  # must not raise

    def test_programs_roundtrip_through_parser(self):
        for seed in range(20):
            generated = generate_lambda(seed)
            assert str(parse(generated.source())) == generated.source()

    def test_strip_fallback_is_rare(self):
        stripped = sum(generate_lambda(s).stripped for s in range(100))
        assert stripped < 15


class TestCCorpusGenerator:
    def test_deterministic_in_seed(self):
        assert generate_c_corpus(3).sources() == generate_c_corpus(3).sources()

    def test_units_are_parseable(self):
        from repro.cfront.sema import Program

        corpus = generate_c_corpus(5)
        for name, text in corpus.sources().items():
            Program.from_source(text, name)

    def test_repartition_keeps_modules(self):
        corpus = generate_c_corpus(5)
        moved = corpus.repartitioned(999)
        assert [m.name for m in moved.modules] == [m.name for m in corpus.modules]
        assert all(a < moved.n_units for a in moved.assignment)


class TestTransforms:
    def test_rename_is_deterministic_and_capture_free(self):
        expr = next(
            e
            for e in (generate_lambda(s).expr for s in range(30))
            if "fn " in str(e) or "let " in str(e)  # has binders to rename
        )
        once, twice = rename_vars(expr, salt=1), rename_vars(expr, salt=1)
        assert str(once) == str(twice)
        assert str(once) != str(expr)

    def test_dead_lets_grow_the_program(self):
        expr = generate_lambda(11).expr
        grown = insert_dead_lets(expr, seed=3)
        assert size_of(grown) >= size_of(expr)


class TestOracleMatrix:
    def test_lambda_sweep_is_clean(self):
        for seed in range(25):
            generated = generate_lambda(seed)
            assert check_lambda(generated.expr, generated.language) == []

    def test_c_sweep_is_clean(self):
        for seed in range(3):
            assert check_c_corpus(generate_c_corpus(seed)) == []

    def test_oracle_filter_restricts_families(self):
        generated = generate_lambda(0)
        config = EngineConfig(oracles=frozenset({"solver"}))
        assert config.enabled("solver")
        assert not config.enabled("jobs")
        assert check_lambda(generated.expr, generated.language, config) == []


def buggy_solve(constraints, lattice, extra_vars=()):
    """The seeded mutant: silently drops every constraint whose constant
    lower bound mentions ``const`` — annotated values stop propagating."""
    kept = [
        c
        for c in constraints
        if not (isinstance(c.lhs, LatticeElement) and "const" in c.lhs.present)
    ]
    return solve(kept, lattice, extra_vars=extra_vars)


class TestMutationSmokeTest:
    """Acceptance: an injected solver bug is caught by the matrix and
    reduced to a reproducer of at most 10 AST nodes."""

    def find_catch(self, config):
        for seed in range(100):
            generated = generate_lambda(seed)
            found = check_lambda(generated.expr, generated.language, config)
            if found:
                return generated, found
        pytest.fail("mutant solver survived 100 generated programs")

    def test_bug_is_caught_and_reduced_small(self):
        config = EngineConfig(solve_fn=buggy_solve, oracles=frozenset({"solver"}))
        generated, found = self.find_catch(config)
        assert all(d.oracle == "solver" for d in found)

        predicate = failure_predicate(generated.language, {"solver"}, config)
        reduced = reduce_lambda(generated.expr, predicate)
        assert size_of(reduced) <= 10
        assert predicate(reduced)
        # the reproducer survives a print/parse round trip
        assert predicate(parse(str(reduced)))

    def test_emitted_regression_test_is_executable(self, tmp_path):
        config = EngineConfig(solve_fn=buggy_solve, oracles=frozenset({"solver"}))
        generated, found = self.find_catch(config)
        predicate = failure_predicate(generated.language, {"solver"}, config)
        reduced = reduce_lambda(generated.expr, predicate)

        text = emit_lambda_regression(reduced, found, generated.seed)
        namespace = {}
        exec(compile(text, "test_repro.py", "exec"), namespace)
        # Against the honest engines the reduced program is clean, so
        # the emitted test passes — it guards against regression.
        namespace["test_reduced_reproducer"]()

    def test_honest_engines_never_trigger_the_predicate(self):
        generated = generate_lambda(0)
        predicate = failure_predicate(generated.language, {"solver"})
        with pytest.raises(ValueError):
            reduce_lambda(generated.expr, predicate)


class TestFuzzSession:
    def test_clean_session_report(self):
        report = FuzzSession(seed=1, budget_seconds=30.0, max_programs=12).run()
        assert report.programs == 12
        assert report.lambda_programs + report.c_corpora == 12
        assert report.c_corpora >= 1
        assert report.ok
        assert "all oracles agree" in report.summary()

    def test_buggy_session_writes_artifacts(self, tmp_path):
        config = EngineConfig(solve_fn=buggy_solve, oracles=frozenset({"solver"}))
        report = FuzzSession(
            seed=0,
            budget_seconds=60.0,
            max_programs=12,
            config=config,
            out_dir=tmp_path,
        ).run()
        assert not report.ok
        assert report.failures
        for failure in report.failures:
            assert failure.artifact is not None
            assert "def test_reduced_reproducer" in open(failure.artifact).read()
        assert "FAILURE" in report.summary()
        assert '"failures"' in report.to_json()


class TestCli:
    def test_budget_units(self):
        assert parse_budget("90") == 90.0
        assert parse_budget("90s") == 90.0
        assert parse_budget("5m") == 300.0
        assert parse_budget("1h") == 3600.0

    def test_engines_validation(self):
        assert parse_engines("solver,jobs") == frozenset({"solver", "jobs"})
        with pytest.raises(Exception):
            parse_engines("solver,warp-drive")

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seed == 0 and args.budget == 60.0 and args.engines is None

    def test_module_entry_point(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.testkit",
                "fuzz",
                "--seed",
                "1",
                "--programs",
                "6",
                "--budget",
                "60s",
                "--quiet",
                "--json",
                str(tmp_path / "report.json"),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "all oracles agree" in result.stdout
        assert (tmp_path / "report.json").exists()


class TestReducerProperties:
    def test_reduction_is_monotone(self):
        config = EngineConfig(solve_fn=buggy_solve, oracles=frozenset({"solver"}))
        for seed in range(40):
            generated = generate_lambda(seed)
            if not check_lambda(generated.expr, generated.language, config):
                continue
            predicate = failure_predicate(generated.language, {"solver"}, config)
            reduced = reduce_lambda(generated.expr, predicate)
            assert size_of(reduced) <= size_of(generated.expr)
            break
        else:
            pytest.fail("no catch to reduce")

    def test_c_reducer_requires_failing_input(self):
        corpus = generate_c_corpus(0)
        with pytest.raises(ValueError):
            reduce_c_corpus(corpus, lambda _: False)
