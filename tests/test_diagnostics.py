"""Tests for unsatisfiability diagnostics: the solver's blame paths and
their surfacing through the lambda and C pipelines."""

import pytest

from repro.cfront.sema import Program
from repro.constinfer.engine import ConstInferenceError, run_mono
from repro.lam.infer import QualTypeError, const_language, infer
from repro.lam.parser import parse
from repro.qual.constraints import Origin, QualConstraint
from repro.qual.qtypes import fresh_qual_var
from repro.qual.qualifiers import const_lattice
from repro.qual.solver import UnsatisfiableError, solve


class TestBlamePaths:
    def test_direct_conflict_path(self):
        lat = const_lattice()
        k = fresh_qual_var()
        lower = QualConstraint(lat.atom("const"), k, Origin("declared const", line=3))
        upper = QualConstraint(k, lat.negate("const"), Origin("assignment", line=9))
        with pytest.raises(UnsatisfiableError) as err:
            solve([lower, upper], lat)
        path = err.value.path
        assert lower in path and upper in path

    def test_chain_path_in_order(self):
        lat = const_lattice()
        ks = [fresh_qual_var() for _ in range(4)]
        constraints = [
            QualConstraint(lat.atom("const"), ks[0], Origin("source", line=1)),
            QualConstraint(ks[0], ks[1], Origin("flow a", line=2)),
            QualConstraint(ks[1], ks[2], Origin("flow b", line=3)),
            QualConstraint(ks[2], ks[3], Origin("flow c", line=4)),
            QualConstraint(ks[3], lat.negate("const"), Origin("sink", line=5)),
        ]
        with pytest.raises(UnsatisfiableError) as err:
            solve(constraints, lat)
        reasons = [c.origin.reason for c in err.value.path]
        assert reasons[0] == "source"
        assert reasons[-1] == "sink"
        # the flow steps appear between source and sink
        assert set(reasons[1:-1]) <= {"flow a", "flow b", "flow c"}
        assert len(reasons) >= 3

    def test_explain_text(self):
        lat = const_lattice()
        k = fresh_qual_var()
        with pytest.raises(UnsatisfiableError) as err:
            solve(
                [
                    QualConstraint(lat.atom("const"), k, Origin("here", line=1)),
                    QualConstraint(k, lat.negate("const"), Origin("there", line=2)),
                ],
                lat,
            )
        text = err.value.explain()
        assert "conflict" in text
        assert "here" in text and "there" in text

    def test_ground_conflict_single_step(self):
        lat = const_lattice()
        with pytest.raises(UnsatisfiableError) as err:
            solve([QualConstraint(lat.top, lat.bottom, Origin("ground"))], lat)
        assert len(err.value.path) == 1

    def test_path_through_both_directions(self):
        # upper bound reached through a downstream chain
        lat = const_lattice()
        a, b = fresh_qual_var(), fresh_qual_var()
        constraints = [
            QualConstraint(lat.atom("const"), a, Origin("decl")),
            QualConstraint(a, b, Origin("call")),
            QualConstraint(b, lat.negate("const"), Origin("write")),
        ]
        with pytest.raises(UnsatisfiableError) as err:
            solve(constraints, lat)
        reasons = {c.origin.reason for c in err.value.path}
        assert {"decl", "write"} <= reasons


class TestPipelinesSurfaceLocations:
    def test_lambda_error_carries_line(self):
        source = "let r = {const} ref 1 in\nr := 2\nni"
        with pytest.raises(QualTypeError) as err:
            infer(parse(source), const_language())
        message = str(err.value)
        assert "const" in message
        assert "line" in message or ":" in message

    def test_c_error_names_the_assignment(self):
        source = "void bad(const int *p) {\n    *p = 1;\n}\n"
        with pytest.raises(ConstInferenceError) as err:
            run_mono(Program.from_source(source))
        message = str(err.value)
        assert "const" in message
        assert "2" in message  # the write's line number

    def test_c_error_flows_across_functions(self):
        source = (
            "void sink(int *q) { *q = 1; }\n"
            "void entry(const int *p) { sink((int *)0 ? (int *)0 : 0); sink2(p); }\n"
            "void sink2(const int *r) { }\n"
        )
        # this one is fine: no conflict
        run_mono(Program.from_source(source))

    def test_cross_function_conflict_reported(self):
        source = (
            "void writer(int *q) { *q = 1; }\n"
            "void entry(const int *p) { writer(p); }\n"
        )
        # passing const into a writer: correct C rejects this, so do we.
        with pytest.raises(ConstInferenceError) as err:
            run_mono(Program.from_source(source))
        assert "const" in str(err.value)
