"""End-to-end best-effort ingestion over an error-seeded corpus.

The PR's acceptance bar, as a test: a generated many-TU corpus with a
fifth of its units corrupted must flow through the per-file *and* the
whole-program pipeline — cold cache and warm cache — with zero uncaught
exceptions, analysing at least 90% of the functions that live in valid
regions, while strict mode on a clean corpus stays byte-identical to
the pre-ingestion behaviour."""

import json

import pytest

from repro.checker.render import render_report
from repro.checker.runner import analyze
from repro.testkit.cgen import corrupt, generate_c_corpus

#: (clean sources, seeded sources, number of corrupted units)
CORRUPT_EVERY = 5  # 20%


def build_corpus(tmp_path, n_corpora=12, corrupt_every=CORRUPT_EVERY):
    """Write a multi-corpus tree of ``.c`` files, corrupting every
    ``corrupt_every``-th unit.  Returns (root, total units, corrupted)."""
    total = 0
    corrupted = 0
    for seed in range(n_corpora):
        corpus = generate_c_corpus(seed, n_units=3, n_families=3)
        subdir = tmp_path / f"corpus{seed}"
        subdir.mkdir()
        for name, text in sorted(corpus.sources().items()):
            if total % corrupt_every == corrupt_every - 1:
                text = corrupt(text, seed=total, n_errors=1 + total % 3)
                corrupted += 1
            (subdir / name).write_text(text)
            total += 1
    return tmp_path, total, corrupted


@pytest.fixture(scope="module")
def corpus_tree(tmp_path_factory):
    return build_corpus(tmp_path_factory.mktemp("ingest"))


def _function_total(report):
    return sum(report.functions.values())


def test_per_file_best_effort_cold_and_warm(corpus_tree, tmp_path):
    root, total, corrupted = corpus_tree
    cache_dir = tmp_path / "cache"
    cold = analyze(
        [str(root)], best_effort=True, cache_dir=str(cache_dir), jobs=2
    )
    # Every unit got a status; no unit errored out of the pipeline.
    assert len(cold.files) == total
    assert cold.errors == {}
    assert set(cold.unit_status) == set(cold.files)
    assert all(s in ("ok", "partial", "skipped") for s in cold.unit_status.values())
    # The corruption actually bit: some units are degraded...
    degraded = [f for f, s in cold.unit_status.items() if s != "ok"]
    assert degraded
    assert len(degraded) <= corrupted
    # ...yet ≥90% of all functions were still analysed (clean units are
    # 80% of the corpus; recovery keeps most of the corrupted ones too).
    clean = analyze([str(root)], best_effort=True)  # statuses double-checked
    assert clean.unit_status == cold.unit_status
    ok_functions = _function_total(cold)
    strict_total = _strict_function_count(root)
    assert ok_functions >= 0.9 * strict_total, (ok_functions, strict_total)

    warm = analyze(
        [str(root)], best_effort=True, cache_dir=str(cache_dir), jobs=2
    )
    assert warm.cache_hits == total  # every unit served from cache
    assert warm.unit_status == cold.unit_status
    assert warm.functions == cold.functions
    assert [d.to_dict() for d in warm.diagnostics] == [
        d.to_dict() for d in cold.diagnostics
    ]


def _strict_function_count(root):
    """Upper bound on analysable functions: definitions in the original
    (pre-corruption) text, counted via resilient parse of each file as
    written — corrupted files count what survives, which is what the
    ratio should be measured against the clean total.  To keep the
    oracle simple we count function definitions in the *clean* builds
    of the same seeds."""
    from repro.cfront.cast import FuncDef
    from repro.cfront.cparser import parse_c

    total = 0
    for seed in range(12):
        corpus = generate_c_corpus(seed, n_units=3, n_families=3)
        for name, text in sorted(corpus.sources().items()):
            unit = parse_c(text, name)
            total += sum(1 for item in unit.items if isinstance(item, FuncDef))
    return total


def test_whole_program_best_effort_cold_and_warm(corpus_tree, tmp_path):
    root, total, _corrupted = corpus_tree
    cache_dir = tmp_path / "cache-whole"
    cold = analyze(
        [str(root)],
        whole_program=True,
        best_effort=True,
        cache_dir=str(cache_dir),
        jobs=2,
    )
    assert len(cold.files) == total
    assert set(cold.unit_status) == set(cold.files)
    # Broken units are linked around, not fatal.
    assert any(s != "ok" for s in cold.unit_status.values())
    assert any(s == "ok" for s in cold.unit_status.values())
    assert _function_total(cold) > 0

    warm = analyze(
        [str(root)],
        whole_program=True,
        best_effort=True,
        cache_dir=str(cache_dir),
        jobs=2,
    )
    assert warm.cache_hits > 0
    assert warm.unit_status == cold.unit_status
    assert [d.to_dict() for d in warm.diagnostics] == [
        d.to_dict() for d in cold.diagnostics
    ]


def test_parse_findings_render_alongside_qualifier_findings(corpus_tree):
    root, _total, _corrupted = corpus_tree
    report = analyze([str(root)], best_effort=True)
    checks = {d.check for d in report.diagnostics}
    assert "parse-error" in checks  # front-end findings present...
    assert checks - {"parse-error", "preprocessor"}  # ...and qualifier ones

    human = render_report(report, format="human")
    assert "[parse-error]" in human

    payload = json.loads(render_report(report, format="json"))
    assert "units" in payload
    assert all(s in ("partial", "skipped") for s in payload["units"].values())

    sarif = json.loads(render_report(report, format="sarif"))
    run = sarif["runs"][0]
    assert "qlint/unitStatus" in run["properties"]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "parse-error" in rules


def test_sarif_stable_across_runs(corpus_tree):
    root, _total, _corrupted = corpus_tree
    first = render_report(analyze([str(root)], best_effort=True), format="sarif")
    second = render_report(analyze([str(root)], best_effort=True), format="sarif")
    assert first == second


# -- strict mode is untouched ----------------------------------------------


def test_strict_output_byte_identical_on_clean_corpus(tmp_path):
    corpus = generate_c_corpus(99, n_units=3, n_families=3)
    for name, text in corpus.sources().items():
        (tmp_path / name).write_text(text)

    strict = analyze([str(tmp_path)])
    best = analyze([str(tmp_path)], best_effort=True)

    # Same findings, and the render carries no best-effort additions.
    assert [d.to_dict() for d in strict.diagnostics] == [
        d.to_dict() for d in best.diagnostics
    ]
    for fmt in ("human", "json", "sarif"):
        assert render_report(strict, format=fmt) == render_report(best, format=fmt)
    assert strict.unit_status == {}
    assert all(s == "ok" for s in best.unit_status.values())
    assert strict.summary() == best.summary()


def test_strict_mode_still_reports_errors_not_diagnostics(tmp_path):
    (tmp_path / "bad.c").write_text("int broken(;\n")
    report = analyze([str(tmp_path)])
    assert list(report.errors) == [str(tmp_path / "bad.c")]
    assert report.unit_status == {}  # strict runs carry no statuses


def test_best_effort_and_strict_cache_entries_do_not_collide(tmp_path):
    (tmp_path / "a.c").write_text("int f(const int *p) { return p[0]; }\n")
    cache_dir = tmp_path / "cache"
    strict_cold = analyze([str(tmp_path)], cache_dir=str(cache_dir))
    best_cold = analyze([str(tmp_path)], best_effort=True, cache_dir=str(cache_dir))
    assert best_cold.cache_hits == 0  # different key: no cross-mode hit
    strict_warm = analyze([str(tmp_path)], cache_dir=str(cache_dir))
    best_warm = analyze([str(tmp_path)], best_effort=True, cache_dir=str(cache_dir))
    assert strict_warm.cache_hits == 1
    assert best_warm.cache_hits == 1
    assert [d.to_dict() for d in strict_warm.diagnostics] == [
        d.to_dict() for d in strict_cold.diagnostics
    ]
    assert best_warm.unit_status == best_cold.unit_status
