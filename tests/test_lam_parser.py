"""Unit tests for the example language's lexer and parser (Figure 1 plus
the Section 2.2 annotation/assertion forms and Section 2.4 references)."""

import pytest

from repro.lam.ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    If,
    IntLit,
    Lam,
    Let,
    Ref,
    UnitLit,
    Var,
)
from repro.lam.lexer import LexError, TokenKind, tokenize
from repro.lam.parser import ParseError, parse


class TestLexer:
    def test_keywords_vs_idents(self):
        toks = tokenize("fn foo ref refx")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [
            (TokenKind.KEYWORD, "fn"),
            (TokenKind.IDENT, "foo"),
            (TokenKind.KEYWORD, "ref"),
            (TokenKind.IDENT, "refx"),
        ]

    def test_assign_vs_colon(self):
        toks = tokenize("x := 1")
        assert toks[1].kind is TokenKind.ASSIGN

    def test_negative_numbers(self):
        toks = tokenize("-42")
        assert toks[0].kind is TokenKind.INT and toks[0].text == "-42"

    def test_comments_skipped(self):
        toks = tokenize("1 # comment\n2")
        values = [t.text for t in toks if t.kind is TokenKind.INT]
        assert values == ["1", "2"]

    def test_spans_track_lines(self):
        toks = tokenize("1\n  2")
        assert toks[0].span.line == 1
        assert toks[1].span.line == 2 and toks[1].span.column == 3

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("1 $ 2")

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF


class TestParserBasics:
    def test_int(self):
        assert parse("42") == IntLit(42)

    def test_var(self):
        assert parse("x") == Var("x")

    def test_unit(self):
        assert parse("()") == UnitLit()

    def test_lambda(self):
        e = parse("fn x. x")
        assert e == Lam("x", Var("x"))

    def test_application_left_assoc(self):
        e = parse("f a b")
        assert e == App(App(Var("f"), Var("a")), Var("b"))

    def test_if(self):
        e = parse("if 1 then 2 else 3 fi")
        assert e == If(IntLit(1), IntLit(2), IntLit(3))

    def test_let(self):
        e = parse("let x = 1 in x ni")
        assert e == Let("x", IntLit(1), Var("x"))

    def test_parens(self):
        assert parse("(fn x. x) 1") == App(Lam("x", Var("x")), IntLit(1))


class TestRefs:
    def test_ref(self):
        assert parse("ref 1") == Ref(IntLit(1))

    def test_deref(self):
        assert parse("!x") == Deref(Var("x"))

    def test_nested_deref(self):
        assert parse("!!x") == Deref(Deref(Var("x")))

    def test_assign_right_assoc(self):
        e = parse("x := y := 1")
        assert e == Assign(Var("x"), Assign(Var("y"), IntLit(1)))

    def test_ref_of_deref(self):
        assert parse("ref !x") == Ref(Deref(Var("x")))


class TestQualifierSyntax:
    def test_annotation(self):
        e = parse("{const} 1")
        assert isinstance(e, Annot)
        assert e.qual.names == frozenset({"const"})
        assert e.expr == IntLit(1)

    def test_multi_name_annotation(self):
        e = parse("{const nonzero} 1")
        assert e.qual.names == frozenset({"const", "nonzero"})

    def test_empty_annotation(self):
        e = parse("{} 1")
        assert e.qual.names == frozenset()

    def test_assertion(self):
        e = parse("x|{nonzero}")
        assert isinstance(e, Assert)
        assert e.qual.names == frozenset({"nonzero"})

    def test_assertion_binds_tight(self):
        e = parse("f x|{const}")
        assert isinstance(e, App)
        assert isinstance(e.arg, Assert)

    def test_annotation_over_ref(self):
        e = parse("{const} ref 1")
        assert isinstance(e, Annot) and isinstance(e.expr, Ref)

    def test_chained_assertions(self):
        e = parse("x|{const}|{nonzero}")
        assert isinstance(e, Assert) and isinstance(e.expr, Assert)

    def test_assign_through_annotation_precedence(self):
        e = parse("x := {const} 1")
        assert isinstance(e, Assign) and isinstance(e.value, Annot)


class TestPaperExamples:
    def test_section24_counterexample_parses(self):
        source = """
        let x = ref ({nonzero} 37) in
        let y = x in
        let u = (y := 0) in
        (!x)|{nonzero}
        ni ni ni
        """
        e = parse(source)
        assert isinstance(e, Let)

    def test_polymorphic_id_parses(self):
        source = """
        let id = fn x. x in
        let y = id (ref 1) in
        let z = id ({const} ref 1) in
        42 ni ni ni
        """
        e = parse(source)
        assert isinstance(e, Let) and e.name == "id"


class TestErrors:
    def test_missing_ni(self):
        with pytest.raises(ParseError):
            parse("let x = 1 in x")

    def test_missing_fi(self):
        with pytest.raises(ParseError):
            parse("if 1 then 2 else 3")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("1 ni")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse("{const 1")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_error_mentions_location(self):
        with pytest.raises(ParseError) as err:
            parse("let x = in x ni")
        assert "1:" in str(err.value)


class TestRoundTrip:
    """str() of an AST re-parses to the same AST (modulo spans)."""

    PROGRAMS = [
        "fn x. x",
        "let x = ref 1 in (x := 2) ni",
        "if x then (f y) else (!r) fi",
        "{const} ref ({nonzero} 37)",
        "(x|{const})",
        "let f = fn x. fn y. x in f 1 2 ni",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_roundtrip(self, source):
        first = parse(source)
        second = parse(str(first))
        assert first == second
