"""Tests for the multi-level trust chain encoding ([O/P97] extension)."""

import pytest

from repro.apps.trust import TrustLevels, trust_language
from repro.lam.ast import QualLiteral
from repro.lam.check import is_well_typed
from repro.lam.infer import infer
from repro.lam.parser import parse


class TestEncoding:
    def test_level_constants_form_a_chain(self):
        levels = TrustLevels(4)
        chain = levels.all_levels()
        for lower, higher in zip(chain, chain[1:]):
            assert levels.lattice.leq(lower, higher)
            assert not levels.lattice.leq(higher, lower)

    def test_level_roundtrip(self):
        levels = TrustLevels(5)
        for i in range(5):
            assert levels.level_of(levels.level(i)) == i

    def test_chain_invariant_detects_gaps(self):
        levels = TrustLevels(4)
        broken = levels.lattice.element("atleast_3")  # skips 1 and 2
        assert not levels.is_chain_element(broken)
        with pytest.raises(ValueError):
            levels.level_of(broken)

    def test_join_is_max(self):
        levels = TrustLevels(4)
        for a in range(4):
            for b in range(4):
                assert levels.join_is_max(a, b)

    def test_meet_is_min(self):
        levels = TrustLevels(4)
        for a in range(4):
            for b in range(4):
                met = levels.lattice.meet(levels.level(a), levels.level(b))
                assert levels.level_of(met) == min(a, b)

    def test_bounds(self):
        with pytest.raises(ValueError):
            TrustLevels(1)
        levels = TrustLevels(3)
        with pytest.raises(ValueError):
            levels.level(3)

    def test_two_levels_is_plain_taint(self):
        levels = TrustLevels(2)
        assert len(levels.lattice) == 1
        assert levels.level(0) == levels.lattice.bottom
        assert levels.level(1) == levels.lattice.top


class TestLanguageIntegration:
    def _annot(self, levels, index):
        return "{" + " ".join(sorted(levels.level(index).present)) + "}"

    def test_low_flows_to_high_sink(self):
        levels = TrustLevels(3)
        lang = trust_language(levels)
        src = f"let x = {self._annot(levels, 1)} 5 in (x)|{self._annot(levels, 2)} ni"
        assert is_well_typed(parse(src), lang)

    def test_high_rejected_at_low_sink(self):
        levels = TrustLevels(3)
        lang = trust_language(levels)
        src = f"let x = {self._annot(levels, 2)} 5 in (x)|{self._annot(levels, 1)} ni"
        assert not is_well_typed(parse(src), lang)

    def test_merge_takes_max_level(self):
        levels = TrustLevels(4)
        lang = trust_language(levels)
        src = (
            f"if 1 then {self._annot(levels, 1)} 5 "
            f"else {self._annot(levels, 3)} 6 fi"
        )
        result = infer(parse(src), lang)
        assert levels.level_of(result.top_qual()) == 3

    def test_inference_stays_on_chain(self):
        # joins of chain elements are chain elements: the least solution
        # of any program over level constants satisfies the invariant.
        levels = TrustLevels(4)
        lang = trust_language(levels)
        src = (
            f"let a = {self._annot(levels, 2)} 1 in "
            f"let b = {self._annot(levels, 1)} 2 in "
            f"if a then a else b fi ni ni"
        )
        result = infer(parse(src), lang)
        assert levels.is_chain_element(result.top_qual())
