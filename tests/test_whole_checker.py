"""Tests for qlint's whole-program mode: cross-TU violations invisible
per file, multi-file flow paths, link diagnostics, whole-result
caching, job-count/byte determinism, and the multi_tu example corpus."""

import json
from pathlib import Path

from repro.checker import (
    Baseline,
    check_paths,
    check_whole_program,
    render_sarif,
)
from repro.checker.cli import main as checker_main
from repro.checker.engine import check_linked_program
from repro.whole import link_sources

CORPUS = Path(__file__).resolve().parent.parent / "examples" / "multi_tu"

PRODUCER = (
    "char *getenv(const char *name);\n"
    "char *fetch_name(void) { return getenv(\"NAME\"); }\n"
)
CONSUMER = (
    "int printf(const char *fmt, ...);\n"
    "extern char *fetch_name(void);\n"
    "void show(void) { printf(fetch_name()); }\n"
)


def write_pair(tmp_path):
    (tmp_path / "producer.c").write_text(PRODUCER)
    (tmp_path / "consumer.c").write_text(CONSUMER)
    return tmp_path


def test_cross_tu_taint_found_only_by_whole_program(tmp_path):
    write_pair(tmp_path)
    per_file = check_paths([tmp_path])
    assert [d.check for d in per_file.active] == []

    whole = check_whole_program([tmp_path])
    assert [d.check for d in whole.active] == ["tainted-format"]


def test_flow_path_spans_multiple_files(tmp_path):
    write_pair(tmp_path)
    whole = check_whole_program([tmp_path])
    (diag,) = whole.active
    files = {step.span.file for step in diag.flow if step.span.is_valid}
    assert any(f.endswith("producer.c") for f in files)
    assert any(f.endswith("consumer.c") for f in files)
    # the path starts at the source in the producer and ends at the
    # sink in the consumer
    assert diag.flow[0].span.file.endswith("producer.c")
    assert diag.flow[-1].span.file.endswith("consumer.c")


def test_link_diagnostics_become_link_findings():
    linked = link_sources(
        {
            "a.c": "int thing(void) { return 1; }\n",
            "b.c": "extern char *thing(void);\nchar *get(void) { return thing(); }\n",
        }
    )
    diagnostics = check_linked_program(linked)
    link_findings = [d for d in diagnostics if d.check.startswith("link-")]
    assert len(link_findings) == 1
    assert link_findings[0].check == "link-conflicting-types"
    assert link_findings[0].severity == "error"
    assert link_findings[0].span.file == "b.c"


def test_whole_report_cold_then_warm_identical(tmp_path):
    corpus = tmp_path / "src"
    corpus.mkdir()
    write_pair(corpus)
    cache = tmp_path / "cache"

    cold = check_whole_program([corpus], cache_dir=cache)
    assert (cold.cache_hits, cold.cache_misses) == (0, 1)
    warm = check_whole_program([corpus], cache_dir=cache)
    assert (warm.cache_hits, warm.cache_misses) == (1, 0)
    assert [d.to_dict() for d in cold.diagnostics] == [
        d.to_dict() for d in warm.diagnostics
    ]


def test_whole_jobs_do_not_change_diagnostics(tmp_path):
    write_pair(tmp_path)
    serial = check_whole_program([tmp_path], jobs=1)
    parallel = check_whole_program([tmp_path], jobs=4)
    assert [d.to_dict() for d in serial.diagnostics] == [
        d.to_dict() for d in parallel.diagnostics
    ]


def test_whole_baseline_roundtrip(tmp_path):
    write_pair(tmp_path)
    report = check_whole_program([tmp_path])
    baseline = Baseline.from_diagnostics(report.diagnostics)
    again = check_whole_program([tmp_path], baseline=baseline)
    assert again.new_findings == []
    assert again.lost_fingerprints == set()


def test_parse_error_is_linked_around(tmp_path):
    write_pair(tmp_path)
    (tmp_path / "broken.c").write_text("int (((\n")
    report = check_whole_program([tmp_path])
    assert any(p.endswith("broken.c") for p in report.errors)
    # the other two units still link and the cross-TU bug is still found
    assert [d.check for d in report.active] == ["tainted-format"]


def test_multi_tu_corpus_expected_findings():
    report = check_whole_program([CORPUS])
    by_check = sorted((d.check, Path(d.span.file).name) for d in report.active)
    assert by_check == [
        ("casts-away-const", "main.c"),
        ("tainted-format", "handlers.c"),
        ("tainted-format", "report.c"),
    ]
    # both taint findings trace back to input.c
    for diag in report.active:
        if diag.check == "tainted-format":
            assert any(
                step.span.file.endswith("input.c") for step in diag.flow
            ), diag.message


def test_multi_tu_corpus_matches_baseline(monkeypatch):
    # fingerprints hash the file path, and the checked-in baseline was
    # written with paths relative to the repo root
    monkeypatch.chdir(CORPUS.parent.parent)
    baseline = Baseline.load(CORPUS / "qlint-baseline.json")
    report = check_whole_program([Path("examples/multi_tu")], baseline=baseline)
    assert report.new_findings == []
    assert report.lost_fingerprints == set()


def test_multi_tu_sarif_is_valid_and_repo_relative(tmp_path):
    report = check_whole_program([CORPUS])
    rendered = render_sarif(
        report.diagnostics, src_root=str(CORPUS.parent.parent)
    )
    log = json.loads(rendered)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["originalUriBaseIds"]["SRCROOT"]["uri"].startswith("file://")
    for result in run["results"]:
        for location in result.get("locations", []):
            artifact = location["physicalLocation"]["artifactLocation"]
            assert not artifact["uri"].startswith("/")
            assert artifact["uriBaseId"] == "SRCROOT"
        for flow in result.get("codeFlows", []):
            for thread in flow["threadFlows"]:
                for step in thread["locations"]:
                    artifact = step["location"]["physicalLocation"][
                        "artifactLocation"
                    ]
                    assert not artifact["uri"].startswith("/")


def test_cli_whole_program_flag(tmp_path, capsys):
    write_pair(tmp_path)
    code = checker_main(["--whole-program", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 1
    assert "tainted-format" in captured.out
    assert "producer.c" in captured.out  # the flow crosses into the producer


def test_cli_whole_program_sarif_src_root(tmp_path, capsys):
    write_pair(tmp_path)
    code = checker_main(
        [
            "--whole-program",
            str(tmp_path),
            "--format",
            "sarif",
            "--src-root",
            str(tmp_path),
        ]
    )
    assert code == 1
    log = json.loads(capsys.readouterr().out)
    uris = [
        r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for r in log["runs"][0]["results"]
    ]
    assert uris == ["consumer.c"]
