"""Cross-module integration tests: full pipelines from source text to
results, mirroring how the paper's systems compose."""

import pytest

from repro.cfront.sema import Program
from repro.constinfer.annotate import annotate_source
from repro.constinfer.engine import run_mono, run_poly
from repro.constinfer.results import analyze_program, summarize_shape_claims
from repro.lam.check import check_source
from repro.lam.eval import AssertionFailure, Evaluator
from repro.lam.infer import QualTypeError, QualifiedLanguage, const_language, infer
from repro.lam.parser import parse
from repro.qual.qualifiers import make_lattice


class TestLambdaPipeline:
    """parse -> standard typing -> qualifier inference -> evaluation."""

    def test_well_typed_program_full_pipeline(self):
        source = """
        let make = fn n. ref n in
        let cell = make 10 in
        let view = cell|{const} in
        let w = (cell := 42) in
        !view
        ni ni ni ni
        """
        lang = const_language()
        result = check_source(source, lang, polymorphic=True)
        assert result.least_qtype() is not None
        value = Evaluator(lang.lattice).run_to_int(parse(source))
        assert value == 42

    def test_static_rejection_matches_dynamic_failure(self):
        # a program whose assertion must fail is rejected statically; run
        # under the unsound rule's acceptance it fails dynamically.
        lattice = make_lattice("const", "nonzero")
        lang = QualifiedLanguage(lattice, assign_restrictions=("const",))
        source = """
        let x = ref ({nonzero} 37) in
        let u = ((fn y. y := ({} 0)) x) in
        (!x)|{nonzero}
        ni ni
        """
        expr = parse(source)
        with pytest.raises(QualTypeError):
            infer(expr, lang)
        infer(expr, lang, ref_rule="unsound")  # accepted unsoundly...
        with pytest.raises(AssertionFailure):
            Evaluator(lattice).run(expr)  # ...and caught at run time


class TestConstPipeline:
    """C text -> parse -> sema -> both engines -> counts -> annotation."""

    MODULE = """
    struct buf { char *data; int len; };
    extern int sys_read(int fd, char *out, int n);

    int buf_len(const struct buf *b) { return b->len; }
    char buf_at(struct buf *b, int i) { return b->data[i]; }
    void buf_fill(struct buf *b, int fd) { sys_read(fd, b->data, b->len); }
    char *buf_find(struct buf *b, int c) {
        int i;
        for (i = 0; i < b->len; i++) {
            if (b->data[i] == c) return b->data + i;
        }
        return (char *)0;
    }
    """

    def test_full_analysis(self):
        program = Program.from_source(self.MODULE)
        mono = run_mono(program)
        poly = run_poly(program)
        assert mono.total_positions() == poly.total_positions() > 0
        assert poly.inferred_const_count() >= mono.inferred_const_count()

    def test_row_and_claims(self):
        program = Program.from_source(self.MODULE)
        row = analyze_program(program, name="bufmod")
        claims = summarize_shape_claims([row])
        assert claims["all_mono_geq_declared"]
        assert claims["all_poly_geq_mono"]

    def test_annotation_round_trip(self):
        program = Program.from_source(self.MODULE)
        run = run_poly(program)
        rewritten = annotate_source(self.MODULE, run)
        # the rewritten module reanalyses cleanly with >= declared consts
        new_program = Program.from_source(rewritten)
        new_run = run_mono(new_program)
        assert new_run.declared_count() >= run.declared_count()

    def test_shared_field_data_pinned_by_library(self):
        # buf_fill hands b->data to sys_read (library, non-const param):
        # the shared field forces every function's view of data cells...
        program = Program.from_source(self.MODULE)
        run = run_mono(program)
        from repro.qual.solver import Classification

        by_key = {
            f"{p.function}/{p.where}@{p.depth}": v
            for p, v in run.classified_positions()
        }
        # ...but the struct pointers themselves stay const-able where
        # only reads happen:
        assert by_key["buf_len/param 0 (b)@1"] is Classification.MUST


class TestMultiFileProgram:
    def test_cross_file_flow(self):
        program = Program.from_sources(
            {
                "util.c": "void zero(int *p) { *p = 0; }",
                "main.c": """
                    extern void zero(int *p);
                    void init(int *block) { zero(block); }
                """,
            }
        )
        run = run_mono(program)
        from repro.qual.solver import Classification

        verdicts = {p.function: v for p, v in run.classified_positions()}
        # zero is DEFINED in util.c, so init's param is pinned by the
        # actual write, not by library conservatism.
        assert verdicts["init"] is Classification.MUST_NOT

    def test_duplicate_function_renaming_keeps_both(self):
        program = Program.from_sources(
            {
                "a.c": "int probe(int *p) { return *p; }",
                "b.c": "int probe(int *p) { *p = 1; return 0; }",
            }
        )
        run = run_mono(program)
        assert run.total_positions() == 2


class TestFrameworkReuseAcrossQualifiers:
    """The same solver/types back every instance — spot-check that the
    lattices compose in one multi-qualifier analysis."""

    def test_const_and_nonzero_together(self):
        lattice = make_lattice("const", "nonzero")
        lang = QualifiedLanguage(lattice, assign_restrictions=("const",))
        source = """
        let r = ref ({nonzero} 5) in
        (!r)|{const nonzero}
        ni
        """
        result = infer(parse(source), lang)
        assert result.top_qual().has("nonzero")

    def test_three_qualifier_lattice(self):
        lattice = make_lattice("const", "dynamic", "nonzero")
        lang = QualifiedLanguage(lattice, assign_restrictions=("const",))
        source = "let x = {dynamic nonzero} 1 in (x)|{const dynamic nonzero} ni"
        result = infer(parse(source), lang)
        assert result.top_qual().has("dynamic")
