"""Unit tests for the C parser: declarators, typedefs, structs,
statements, and the expression grammar."""

import pytest

from repro.cfront.cast import (
    Assignment,
    Binary,
    Call,
    Cast,
    Conditional,
    FuncDecl,
    FuncDef,
    Ident,
    Index,
    IntConst,
    Member,
    StructDef,
    TypedefDecl,
    Unary,
    VarDecl,
)
from repro.cfront.cparser import CParseError, parse_c
from repro.cfront.ctypes import (
    CArray,
    CBase,
    CFunc,
    CPointer,
    CStruct,
    format_ctype,
)


def only(unit, kind):
    out = [i for i in unit.items if isinstance(i, kind)]
    assert len(out) == 1
    return out[0]


class TestDeclarations:
    def test_simple_int(self):
        decl = only(parse_c("int x;"), VarDecl)
        assert decl.name == "x" and decl.type == CBase("int")

    def test_const_int(self):
        decl = only(parse_c("const int x;"), VarDecl)
        assert "const" in decl.type.quals

    def test_multi_declarator(self):
        unit = parse_c("int a, *b, c[4];")
        names = {d.name: d.type for d in unit.items}
        assert names["a"] == CBase("int")
        assert isinstance(names["b"], CPointer)
        assert isinstance(names["c"], CArray) and names["c"].size == 4

    def test_pointer_to_const(self):
        decl = only(parse_c("const char *s;"), VarDecl)
        assert isinstance(decl.type, CPointer)
        assert "const" in decl.type.target.quals

    def test_const_pointer(self):
        decl = only(parse_c("char * const p;"), VarDecl)
        assert "const" in decl.type.quals
        assert "const" not in decl.type.target.quals

    def test_double_pointer(self):
        decl = only(parse_c("int **pp;"), VarDecl)
        assert isinstance(decl.type, CPointer)
        assert isinstance(decl.type.target, CPointer)

    def test_storage_classes(self):
        decl = only(parse_c("static int x;"), VarDecl)
        assert decl.storage == "static"
        decl = only(parse_c("extern int y;"), VarDecl)
        assert decl.storage == "extern"

    def test_initializer(self):
        decl = only(parse_c("int x = 42;"), VarDecl)
        assert decl.init == IntConst(42)

    def test_multiword_kinds(self):
        assert only(parse_c("unsigned long x;"), VarDecl).type == CBase("long")
        assert only(parse_c("long long y;"), VarDecl).type == CBase("long long")
        assert only(parse_c("unsigned z;"), VarDecl).type == CBase("int")


class TestFunctionDeclarators:
    def test_prototype(self):
        decl = only(parse_c("int f(int a, char *b);"), FuncDecl)
        assert decl.name == "f"
        assert [p.name for p in decl.params] == ["a", "b"]

    def test_definition(self):
        fdef = only(parse_c("int f(int a) { return a; }"), FuncDef)
        assert fdef.name == "f" and len(fdef.body.body) == 1

    def test_void_params(self):
        decl = only(parse_c("int f(void);"), FuncDecl)
        assert decl.params == ()

    def test_varargs(self):
        decl = only(parse_c("int printf(const char *fmt, ...);"), FuncDecl)
        assert decl.varargs

    def test_pointer_return(self):
        fdef = only(parse_c("int *f(int *x) { return x; }"), FuncDef)
        assert isinstance(fdef.ret, CPointer)

    def test_function_pointer_param(self):
        decl = only(parse_c("void apply(void (*cb)(int));"), FuncDecl)
        param = decl.params[0].type
        assert isinstance(param, CPointer)
        assert isinstance(param.target, CFunc)

    def test_function_pointer_variable(self):
        decl = only(parse_c("int (*handler)(int, int);"), VarDecl)
        assert isinstance(decl.type, CPointer)
        assert isinstance(decl.type.target, CFunc)
        assert len(decl.type.target.params) == 2

    def test_array_param_decays(self):
        decl = only(parse_c("int sum(int a[], int n);"), FuncDecl)
        assert isinstance(decl.params[0].type, CPointer)

    def test_format_roundtrip_style(self):
        decl = only(parse_c("const char *s;"), VarDecl)
        assert format_ctype(decl.type) == "const char *"


class TestTypedefs:
    def test_typedef_recorded(self):
        unit = parse_c("typedef int myint; myint x;")
        td = only(unit, TypedefDecl)
        assert td.name == "myint"
        decl = only(unit, VarDecl)
        assert decl.type == CBase("int")

    def test_typedef_pointer(self):
        unit = parse_c("typedef int *ip; ip p;")
        decl = only(unit, VarDecl)
        assert isinstance(decl.type, CPointer)

    def test_paper_ci_typedef(self):
        # typedef const int ci; ci *x => pointer to const int
        unit = parse_c("typedef const int ci; ci *x;")
        decl = only(unit, VarDecl)
        assert isinstance(decl.type, CPointer)
        assert "const" in decl.type.target.quals

    def test_typedef_of_struct(self):
        unit = parse_c("typedef struct p { int x; } pt; pt v;")
        decl = only(unit, VarDecl)
        assert isinstance(decl.type, CStruct) and decl.type.tag == "p"


class TestStructsAndEnums:
    def test_struct_definition(self):
        sd = only(parse_c("struct st { int x; char *name; };"), StructDef)
        assert sd.tag == "st"
        assert [f.name for f in sd.fields] == ["x", "name"]

    def test_struct_multi_field_declarator(self):
        sd = only(parse_c("struct p { int x, y; };"), StructDef)
        assert [f.name for f in sd.fields] == ["x", "y"]

    def test_anonymous_struct_gets_tag(self):
        unit = parse_c("struct { int a; } v;")
        sd = only(unit, StructDef)
        assert sd.tag.startswith("__struct")

    def test_union(self):
        sd = only(parse_c("union u { int i; char c; };"), StructDef)
        assert sd.is_union

    def test_self_referential_struct(self):
        sd = only(parse_c("struct node { struct node *next; int v; };"), StructDef)
        next_type = sd.fields[0].type
        assert isinstance(next_type, CPointer)
        assert next_type.target.tag == "node"

    def test_enum(self):
        from repro.cfront.cast import EnumDef

        unit = parse_c("enum color { RED, GREEN = 5, BLUE };")
        ed = only(unit, EnumDef)
        assert [name for name, _ in ed.enumerators] == ["RED", "GREEN", "BLUE"]

    def test_bitfields_parsed_and_ignored(self):
        sd = only(parse_c("struct flags { int a : 1; int b : 2; };"), StructDef)
        assert len(sd.fields) == 2


class TestStatements:
    def _body(self, code):
        fdef = only(parse_c(f"void f(void) {{ {code} }}"), FuncDef)
        return fdef.body.body

    def test_if_else(self):
        from repro.cfront.cast import IfStmt

        (stmt,) = self._body("if (1) { } else { }")
        assert isinstance(stmt, IfStmt) and stmt.other is not None

    def test_while(self):
        from repro.cfront.cast import WhileStmt

        (stmt,) = self._body("while (x) x--;")
        assert isinstance(stmt, WhileStmt)

    def test_do_while(self):
        from repro.cfront.cast import DoWhileStmt

        (stmt,) = self._body("do x++; while (x < 3);")
        assert isinstance(stmt, DoWhileStmt)

    def test_for_with_declaration(self):
        from repro.cfront.cast import DeclStmt, ForStmt

        (stmt,) = self._body("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt, ForStmt)
        assert isinstance(stmt.init, DeclStmt)

    def test_for_empty_clauses(self):
        from repro.cfront.cast import ForStmt

        (stmt,) = self._body("for (;;) break;")
        assert isinstance(stmt, ForStmt)
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch_case_default(self):
        from repro.cfront.cast import CaseStmt, SwitchStmt

        (stmt,) = self._body("switch (x) { case 1: break; default: break; }")
        assert isinstance(stmt, SwitchStmt)

    def test_goto_and_label(self):
        from repro.cfront.cast import GotoStmt, LabeledStmt

        stmts = self._body("goto end; end: ;")
        assert isinstance(stmts[0], GotoStmt)
        assert isinstance(stmts[1], LabeledStmt)

    def test_local_declarations(self):
        from repro.cfront.cast import DeclStmt

        stmts = self._body("int a = 1; const char *s; a++;")
        assert isinstance(stmts[0], DeclStmt)
        assert isinstance(stmts[1], DeclStmt)


class TestExpressions:
    def _expr(self, code):
        fdef = only(parse_c(f"void f(void) {{ x = {code}; }}"), FuncDef)
        stmt = fdef.body.body[0]
        return stmt.expr.value  # type: ignore[attr-defined]

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"

    def test_precedence_shift_vs_relational(self):
        e = self._expr("1 << 2 < 3")
        assert e.op == "<"

    def test_logical_lowest(self):
        e = self._expr("a == b && c | d")
        assert e.op == "&&"

    def test_conditional(self):
        e = self._expr("a ? b : c ? d : e")
        assert isinstance(e, Conditional)
        assert isinstance(e.other, Conditional)  # right associative

    def test_unary_chain(self):
        e = self._expr("*&p")
        assert isinstance(e, Unary) and e.op == "*"
        assert isinstance(e.operand, Unary) and e.operand.op == "&"

    def test_postfix_chain(self):
        e = self._expr("a.b->c[1]")
        assert isinstance(e, Index)
        assert isinstance(e.base, Member) and e.base.arrow

    def test_call_with_args(self):
        e = self._expr("f(1, g(2), h)")
        assert isinstance(e, Call) and len(e.args) == 3

    def test_cast(self):
        e = self._expr("(char *)s")
        assert isinstance(e, Cast)
        assert isinstance(e.target_type, CPointer)

    def test_cast_vs_parenthesised_expr(self):
        e = self._expr("(s)")
        assert isinstance(e, Ident)

    def test_cast_of_typedef_name(self):
        unit = parse_c("typedef int myint; void f(void) { x = (myint)y; }")
        fdef = [i for i in unit.items if isinstance(i, FuncDef)][0]
        e = fdef.body.body[0].expr.value
        assert isinstance(e, Cast)

    def test_sizeof_type_and_expr(self):
        from repro.cfront.cast import SizeofType

        assert isinstance(self._expr("sizeof(int)"), SizeofType)
        e = self._expr("sizeof x")
        assert isinstance(e, Unary) and e.op == "sizeof"

    def test_assignment_right_assoc(self):
        fdef = only(parse_c("void f(void) { a = b = 1; }"), FuncDef)
        e = fdef.body.body[0].expr
        assert isinstance(e, Assignment)
        assert isinstance(e.value, Assignment)

    def test_compound_assignment(self):
        fdef = only(parse_c("void f(void) { a += 2; }"), FuncDef)
        assert fdef.body.body[0].expr.op == "+="

    def test_string_concatenation(self):
        from repro.cfront.cast import StringConst

        e = self._expr('"ab" "cd"')
        assert e == StringConst("abcd")

    def test_comma_expression(self):
        from repro.cfront.cast import Comma

        fdef = only(parse_c("void f(void) { a = 1, b = 2; }"), FuncDef)
        assert isinstance(fdef.body.body[0].expr, Comma)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(CParseError):
            parse_c("int x")

    def test_bad_declarator(self):
        with pytest.raises(CParseError):
            parse_c("int ;x")

    def test_unclosed_brace(self):
        with pytest.raises(CParseError):
            parse_c("void f(void) { if (1) {")

    def test_error_mentions_position(self):
        with pytest.raises(CParseError) as err:
            parse_c("int x = ;")
        assert "1:" in str(err.value)
