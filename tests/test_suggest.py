"""Tests for annotation-suggestion mode (qlint suggest): ranking,
confidence heuristics, rendering, the CLI subcommand, and the daemon
handler's byte-identity with the one-shot path."""

import json

import pytest

from repro.checker.cli import main as cli_main
from repro.checker.suggest import (
    confidence,
    render_suggestions_human,
    render_suggestions_json,
    suggest_paths,
    suggest_source,
)

SOURCE = """\
char *getenv(const char *name);
void *malloc(unsigned long size);
void free(void *ptr);
int getchar(void);
int snoop(const char *s, int c);

int probe(void) {
    char *env = getenv("HOME");
    char *buf = malloc(16);
    int c = getchar();
    int out = snoop(env, c);
    free(buf);
    return out;
}

char *name_from_env(void) {
    return getenv("USER");
}
"""


def by_name(suggestions):
    out = {}
    for s in suggestions:
        out.setdefault(s.name, []).append(s)
    return out


class TestRanking:
    def test_known_qualifiers_rank_in_top_3(self):
        groups = by_name(suggest_source(SOURCE, "t.c"))
        assert "tainted" in [s.qualifier for s in groups["env"]][:3]
        assert "alloc" in [s.qualifier for s in groups["buf"]][:3]
        assert "dynamic" in [s.qualifier for s in groups["c"]][:3]
        ret = [s for s in groups["name_from_env"] if s.kind == "return"]
        assert "tainted" in [s.qualifier for s in ret][:3]

    def test_features_populate(self):
        groups = by_name(suggest_source(SOURCE, "t.c"))
        s = groups["env"][0]
        assert s.path_length >= 1 and s.fan_in >= 1 and s.casts >= 0
        assert 0 < s.confidence <= 1

    def test_top_limits_per_declaration(self):
        for s_list in by_name(suggest_source(SOURCE, "t.c", top=1)).values():
            # at most one suggestion per (file, line, col, name) group
            assert len(s_list) <= 1

    def test_unparseable_source_suggests_nothing(self):
        assert suggest_source("int broken(", "t.c") == []

    def test_output_is_deterministic(self):
        a = suggest_source(SOURCE, "t.c")
        b = suggest_source(SOURCE, "t.c")
        assert a == b


class TestConfidence:
    def test_direct_single_writer_is_certain(self):
        assert confidence(1, 1, 0) == 1.0

    def test_monotone_decreasing_in_every_feature(self):
        base = confidence(1, 1, 0)
        assert confidence(4, 1, 0) < base
        assert confidence(1, 4, 0) < base
        assert confidence(1, 1, 3) < base

    def test_cast_discount_saturates(self):
        assert confidence(1, 1, 5) == confidence(1, 1, 50)

    def test_stays_in_unit_interval(self):
        for path in (1, 10, 100):
            for fan in (1, 10, 100):
                for casts in (0, 5, 50):
                    assert 0 < confidence(path, fan, casts) <= 1


class TestRendering:
    def test_empty_human(self):
        assert render_suggestions_human([]) == "no suggestions\n"

    def test_human_mentions_every_group(self):
        suggestions = suggest_source(SOURCE, "t.c")
        text = render_suggestions_human(suggestions)
        for name in ("env", "buf", "'c'"):
            assert name in text
        assert text.rstrip().endswith("suggestion(s)")

    def test_json_is_stable_and_versioned(self):
        suggestions = suggest_source(SOURCE, "t.c")
        a = render_suggestions_json(suggestions)
        b = render_suggestions_json(suggestions)
        assert a == b
        payload = json.loads(a)
        assert payload["version"] == 1
        assert len(payload["suggestions"]) == len(suggestions)
        for entry in payload["suggestions"]:
            assert set(entry) == {
                "file", "line", "col", "function", "name", "kind",
                "qualifier", "confidence", "features",
            }


class TestPaths:
    def test_missing_file_lands_in_errors(self, tmp_path):
        good = tmp_path / "good.c"
        good.write_text(SOURCE)
        suggestions, errors = suggest_paths(
            [str(good), str(tmp_path / "missing.c")]
        )
        assert suggestions
        assert len(errors) == 1


class TestCli:
    def test_suggest_subcommand_human(self, tmp_path, capsys):
        path = tmp_path / "t.c"
        path.write_text(SOURCE)
        assert cli_main(["suggest", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tainted" in out and "alloc" in out and "dynamic" in out

    def test_suggest_subcommand_json_output_file(self, tmp_path):
        path = tmp_path / "t.c"
        path.write_text(SOURCE)
        dest = tmp_path / "out.json"
        assert cli_main(
            ["suggest", str(path), "--format", "json", "-o", str(dest)]
        ) == 0
        payload = json.loads(dest.read_text())
        assert payload["version"] == 1 and payload["suggestions"]

    def test_missing_path_exits_nonzero(self, tmp_path, capsys):
        missing = tmp_path / "nope.c"
        assert cli_main(["suggest", str(missing)]) == 1
        assert "error" in capsys.readouterr().err


class TestDaemonParity:
    def test_daemon_report_matches_cli_renderers(self, tmp_path):
        from repro.serve.server import Server
        from repro.serve.session import Session

        path = tmp_path / "t.c"
        path.write_text(SOURCE)
        session = Session()
        try:
            server = Server(session)
            for fmt, renderer in (
                ("human", render_suggestions_human),
                ("json", render_suggestions_json),
            ):
                line = json.dumps(
                    {
                        "jsonrpc": "2.0",
                        "id": 1,
                        "method": "suggest",
                        "params": {"paths": [str(path)], "format": fmt},
                    }
                )
                response = json.loads(server.handle_line(line))
                suggestions, errors = suggest_paths([str(path)])
                assert errors == {}
                assert response["result"]["report"] == renderer(suggestions)
                assert response["result"]["exit_code"] == 0
        finally:
            session.close()

    def test_daemon_overlay_wins_over_disk(self, tmp_path):
        from repro.serve.server import Server
        from repro.serve.session import Session

        path = tmp_path / "t.c"
        path.write_text(SOURCE)
        session = Session()
        try:
            server = Server(session)
            # overlay an empty unit: suggestions must vanish
            server.handle_line(
                json.dumps(
                    {
                        "jsonrpc": "2.0",
                        "id": 1,
                        "method": "didChange",
                        "params": {"file": str(path), "text": "int x;\n"},
                    }
                )
            )
            response = json.loads(
                server.handle_line(
                    json.dumps(
                        {
                            "jsonrpc": "2.0",
                            "id": 2,
                            "method": "suggest",
                            "params": {"paths": [str(path)]},
                        }
                    )
                )
            )
            assert response["result"]["report"] == "no suggestions\n"
        finally:
            session.close()

    def test_daemon_validates_params(self):
        from repro.serve.server import Server
        from repro.serve.session import Session

        session = Session()
        try:
            server = Server(session)
            response = json.loads(
                server.handle_line(
                    json.dumps(
                        {
                            "jsonrpc": "2.0",
                            "id": 1,
                            "method": "suggest",
                            "params": {"paths": []},
                        }
                    )
                )
            )
            assert "error" in response
        finally:
            session.close()
