"""Tests for Figure 4b derivation reconstruction and verification."""

import pytest

from repro.lam.derivation import Derivation, DerivationError, derive, verify
from repro.lam.infer import QualifiedLanguage, const_language
from repro.lam.parser import parse
from repro.qual.qualifiers import const_nonzero_lattice, make_lattice


@pytest.fixture
def lang():
    return const_language()


@pytest.fixture
def cn_lang():
    return QualifiedLanguage(
        const_nonzero_lattice(), assign_restrictions=("const",)
    )


class TestConstruction:
    def test_literal(self, lang):
        d = derive(parse("42"), lang)
        assert d.rule == "Int"
        assert "int" in d.judgment()

    def test_application_has_sub_node_when_needed(self, lang):
        d = derive(parse("(fn x. x|{const}) ({const} 1)"), lang)
        rules = [n.rule for n in d.nodes()]
        assert rules[0] == "App"
        assert "Lam" in rules and "Annot" in rules

    def test_if_subsumption(self, lang):
        d = derive(parse("if 1 then {const} 2 else 3 fi"), lang)
        rules = [n.rule for n in d.nodes()]
        assert "Sub" in rules  # the plain branch is promoted to const

    def test_assign_rule_named(self, lang):
        d = derive(parse("let r = ref 1 in (r := 2) ni"), lang)
        rules = [n.rule for n in d.nodes()]
        assert "Assign'" in rules
        assert "Ref" in rules and "Deref" not in rules

    def test_let_vs_letv(self, lang):
        mono = derive(parse("let f = fn x. x in f 1 ni"), lang)
        assert any(n.rule == "Let" for n in mono.nodes())
        poly = derive(parse("let f = fn x. x in f 1 ni"), lang, polymorphic=True)
        assert any(n.rule == "Letv" for n in poly.nodes())

    def test_deref(self, lang):
        d = derive(parse("!(ref 1)"), lang)
        assert d.rule == "Deref"

    def test_render_is_indented_tree(self, lang):
        d = derive(parse("(fn x. x) 1"), lang)
        text = str(d)
        lines = text.split("\n")
        assert lines[0].startswith("(App)")
        assert any(line.startswith("  (") for line in lines)

    def test_side_conditions_recorded(self, lang):
        d = derive(parse("(42)|{const}"), lang)
        assert d.rule == "Assert"
        assert "Q <=" in d.side_condition


class TestVerification:
    PROGRAMS = [
        "42",
        "(fn x. x) 7",
        "let r = ref 1 in (r := 2) ni",
        "if 1 then {const} 2 else 3 fi",
        "let x = ref ({nonzero} 37) in (!x)|{nonzero} ni",
        "let id = fn x. x in id (ref 1) ni",
        "(fn x. x|{const}) ({const} 1)",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_reconstructed_derivations_verify(self, source, cn_lang):
        d = derive(parse(source), cn_lang)
        verify(d, cn_lang.lattice)  # must not raise

    def test_tampered_sub_rejected(self, cn_lang):
        d = derive(parse("if 1 then {const} 2 else 3 fi"), cn_lang)
        # find the Sub node and flip it to an invalid demotion
        sub = next(n for n in d.nodes() if n.rule == "Sub")
        tampered = Derivation("Sub", sub.expr, sub.premises[0].qtype, [sub])
        # demoting const -> plain is not a valid subsumption
        bad = Derivation(
            "Sub",
            sub.expr,
            sub.premises[0].qtype,
            [Derivation("Int", sub.expr, sub.qtype)],
        )
        with pytest.raises(DerivationError):
            verify(bad, cn_lang.lattice)
        del tampered

    def test_tampered_assertion_rejected(self, cn_lang):
        # derive `({} 1)|{}`: the inner value definitely lacks nonzero.
        d = derive(parse("({} 1)|{}"), cn_lang)
        inner = d.premises[0]
        # tamper the bound into one demanding nonzero present: the
        # checker must notice the inner qualifier cannot satisfy it.
        from repro.lam.ast import Assert, qual_literal

        fake_expr = Assert(inner.expr, qual_literal("const", "nonzero"))
        bad = Derivation("Assert", fake_expr, d.qtype, [inner])
        with pytest.raises(DerivationError):
            verify(bad, cn_lang.lattice)

    def test_polymorphic_derivations_verify(self, lang):
        source = """
        let id = fn x. x in
        let y = id (ref 1) in
        let z = id ({const} ref 1) in
        !z ni ni ni
        """
        d = derive(parse(source), lang, polymorphic=True)
        verify(d, lang.lattice)
        assert any(n.rule == "Letv" for n in d.nodes())


class TestPaperExamples:
    def test_section41_example(self):
        """The paper's x := !y derivation (Section 4.1) in lambda form."""
        from repro.qual.qtypes import q_int, q_ref

        lang = const_language()
        lattice = lang.lattice
        env = {
            "x": q_ref(lattice.bottom, q_int(lattice.bottom)),
            "y": q_ref(lattice.top, q_int(lattice.bottom)),  # const ref
        }
        d = derive(parse("x := !y"), lang, env=env)
        verify(d, lattice)
        assert d.rule == "Assign'"
        # y's constness does not infect x: the derivation exists.
        rules = [n.rule for n in d.nodes()]
        assert "Deref" in rules
