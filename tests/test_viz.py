"""Tests for constraint-graph DOT rendering and neighbourhoods."""

import pytest

from repro.cfront.sema import Program
from repro.constinfer.engine import run_mono
from repro.qual.constraints import Origin, QualConstraint
from repro.qual.qtypes import fresh_qual_var
from repro.qual.qualifiers import const_lattice
from repro.qual.solver import solve
from repro.qual.viz import neighborhood, position_dot, to_dot


class TestToDot:
    def test_basic_structure(self):
        lat = const_lattice()
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        constraints = [
            QualConstraint(lat.atom("const"), k1, Origin("decl")),
            QualConstraint(k1, k2, Origin("flow")),
        ]
        dot = to_dot(constraints)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert k1.name in dot and k2.name in dot
        assert "decl" in dot and "flow" in dot
        assert "lightgrey" in dot  # the constant box

    def test_solution_bounds_annotated(self):
        lat = const_lattice()
        k = fresh_qual_var()
        constraints = [QualConstraint(lat.atom("const"), k, Origin("x"))]
        solution = solve(constraints, lat)
        dot = to_dot(constraints, solution)
        assert "[const..const]" in dot

    def test_constants_shared(self):
        lat = const_lattice()
        k1, k2 = fresh_qual_var(), fresh_qual_var()
        constraints = [
            QualConstraint(lat.atom("const"), k1, Origin("a")),
            QualConstraint(lat.atom("const"), k2, Origin("b")),
        ]
        dot = to_dot(constraints)
        # one constant node feeding two variables
        assert dot.count("fillcolor=lightgrey") == 1

    def test_escaping(self):
        lat = const_lattice()
        k = fresh_qual_var()
        dot = to_dot([QualConstraint(k, lat.top, Origin('say "hi"'))])
        assert '\\"hi\\"' in dot


class TestNeighborhood:
    def test_limits_distance(self):
        ks = [fresh_qual_var() for _ in range(6)]
        chain = [
            QualConstraint(ks[i], ks[i + 1], Origin(f"e{i}"))
            for i in range(5)
        ]
        near = neighborhood(chain, ks[0], distance=2)
        reasons = {c.origin.reason for c in near}
        assert "e0" in reasons and "e1" in reasons
        assert "e4" not in reasons

    def test_undirected(self):
        ks = [fresh_qual_var() for _ in range(3)]
        constraints = [
            QualConstraint(ks[1], ks[0], Origin("in")),
            QualConstraint(ks[1], ks[2], Origin("out")),
        ]
        near = neighborhood(constraints, ks[0], distance=2)
        assert len(near) == 2


class TestPositionDot:
    def test_renders_position_context(self):
        program = Program.from_source(
            """
            int *id(int *x) { return x; }
            void put(void) { int a; *id(&a) = 1; }
            """
        )
        run = run_mono(program)
        dot = position_dot(run, "id: return depth 1")
        assert "digraph" in dot
        assert "assignment target" in dot

    def test_unknown_position(self):
        program = Program.from_source("int f(int *p) { return *p; }")
        run = run_mono(program)
        with pytest.raises(KeyError):
            position_dot(run, "g: param 9 depth 1")
