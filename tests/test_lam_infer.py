"""Unit tests for qualified type inference on the example language:
the Figure 4b rules, the Section 2.4 const/ref rules, annotations and
assertions, Observation 1, and Section 3.2 polymorphism."""

import pytest

from repro.lam.ast import Let, walk
from repro.lam.check import (
    is_well_typed,
    observation1_backward,
    observation1_forward,
    typecheck,
)
from repro.lam.infer import (
    QualTypeError,
    QualifiedLanguage,
    const_language,
    infer,
    nonzero_literal_rule,
    plain_language,
)
from repro.lam.parser import parse
from repro.qual.qtypes import REF, q_int, q_ref, quals_of, strip
from repro.qual.qualifiers import (
    const_lattice,
    const_nonzero_lattice,
    make_lattice,
)


@pytest.fixture
def const_lang():
    return const_language()


@pytest.fixture
def cn_lang():
    return QualifiedLanguage(
        const_nonzero_lattice(),
        assign_restrictions=("const",),
        literal_rule=nonzero_literal_rule,
    )


class TestBasicRules:
    def test_int_literal_bottom(self, const_lang):
        t = typecheck(parse("42"), const_lang)
        assert t.qual == const_lang.lattice.bottom

    def test_annotation_raises_qualifier(self, const_lang):
        t = typecheck(parse("{const} 42"), const_lang)
        assert t.qual.has("const")

    def test_assertion_passes_when_below(self, const_lang):
        assert is_well_typed(parse("(42)|{const}"), const_lang)

    def test_assertion_type_unchanged(self, const_lang):
        t = typecheck(parse("({const} 42)|{const}"), const_lang)
        assert t.qual.has("const")

    def test_annotation_over_annotation_fails_downward(self, const_lang):
        # {.} ({const} 42): inner const exceeds the outer bottom annotation.
        assert not is_well_typed(parse("{} ({const} 42)"), const_lang)

    def test_application_subsumption(self, const_lang):
        # passing a const-qualified value where plain is expected is fine
        # only top-down: f : const int -> int accepts plain int.
        env = {
            "f": q_ref(
                const_lang.lattice.bottom, q_int(const_lang.lattice.bottom)
            )
        }
        del env  # illustration; actual test below through lambdas
        source = "(fn x. x|{const}) ({const} 1)"
        assert is_well_typed(parse(source), const_lang)

    def test_if_joins_branches(self, const_lang):
        t = typecheck(parse("if 1 then {const} 2 else 3 fi"), const_lang)
        # least solution of the join covers both branches
        assert t.qual.has("const")

    def test_unknown_qualifier_name_rejected(self, const_lang):
        with pytest.raises(QualTypeError):
            typecheck(parse("{bogus} 1"), const_lang)

    def test_standard_type_error_wrapped(self, const_lang):
        with pytest.raises(QualTypeError):
            typecheck(parse("1 2"), const_lang)

    def test_unbound_variable(self, const_lang):
        with pytest.raises(QualTypeError):
            typecheck(parse("y"), const_lang)


class TestConstRules:
    def test_assign_through_plain_ref(self, const_lang):
        assert is_well_typed(parse("let r = ref 1 in (r := 2) ni"), const_lang)

    def test_assign_through_const_ref_rejected(self, const_lang):
        assert not is_well_typed(
            parse("let r = {const} ref 1 in (r := 2) ni"), const_lang
        )

    def test_const_ref_can_be_read(self, const_lang):
        assert is_well_typed(parse("let r = {const} ref 1 in !r ni"), const_lang)

    def test_promotion_to_const_ok(self, const_lang):
        # a plain ref may be passed where a const ref is expected
        source = "let f = fn r. !(r|{const}) in let x = ref 1 in f x ni ni"
        assert is_well_typed(parse(source), const_lang)

    def test_write_then_const_use_ok(self, const_lang):
        # writes before the const view don't conflict: the variable's own
        # qualifier stays non-const, the function's view is promoted.
        source = """
        let r = ref 1 in
        let u = (r := 2) in
        !(r|{const})
        ni ni
        """
        # r's qualifier must be both <= not-const (write) and <= const
        # (assertion): with a single const qualifier the assertion bound
        # {const} admits everything, so this typechecks.
        assert is_well_typed(parse(source), const_lang)


class TestSubRefSoundness:
    """The Section 2.4 counterexample and the (Unsound) rule ablation."""

    COUNTEREXAMPLE = """
    let x = ref ({nonzero} 37) in
    let y = x in
    let u = (y := 0) in
    (!x)|{nonzero}
    ni ni ni
    """

    FLOW_VARIANT = """
    let x = ref ({nonzero} 37) in
    let u = ((fn y. y := ({} 0)) x) in
    (!x)|{nonzero}
    ni ni
    """

    def test_counterexample_rejected(self, cn_lang):
        assert not is_well_typed(parse(self.COUNTEREXAMPLE), cn_lang)

    def test_flow_variant_rejected_by_sound_rule(self, cn_lang):
        assert not is_well_typed(parse(self.FLOW_VARIANT), cn_lang)

    def test_flow_variant_accepted_by_unsound_rule(self, cn_lang):
        # the covariant-ref rule the paper rejects admits the program
        infer(parse(self.FLOW_VARIANT), cn_lang, ref_rule="unsound")

    def test_without_write_both_rules_accept(self, cn_lang):
        source = """
        let x = ref ({nonzero} 37) in
        (!x)|{nonzero}
        ni
        """
        assert is_well_typed(parse(source), cn_lang)
        infer(parse(source), cn_lang, ref_rule="unsound")

    def test_bad_ref_rule_name(self, cn_lang):
        with pytest.raises(ValueError):
            infer(parse("1"), cn_lang, ref_rule="fast")


class TestObservation1:
    PROGRAMS = [
        "42",
        "fn x. x",
        "(fn x. x) 1",
        "let r = ref 1 in !r ni",
        "if 1 then 2 else 3 fi",
        "let f = fn x. fn y. x in f 1 2 ni",
        "let r = ref 1 in let u = (r := 2) in !r ni ni",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_forward(self, source, const_lang):
        """standard-typable => bottom embedding qualified-typable with the
        same underlying structure."""
        expr = parse(source)
        std, qualified = observation1_forward(expr, const_lang)
        assert strip(qualified) == std

    @pytest.mark.parametrize(
        "source",
        [
            "{const} 42",
            "let r = {const} ref 1 in !r ni",
            "(42)|{const}",
        ],
    )
    def test_backward(self, source, const_lang):
        """qualified-typable => strip standard-typable at the strip type."""
        qualified, std = observation1_backward(parse(source), const_lang)
        assert strip(qualified) == std


class TestPolymorphism:
    ID_PROGRAM = """
    let id = fn x. x in
    let y = id (ref 1) in
    let z = id ({const} ref 1) in
    !z
    ni ni ni
    """

    def test_id_polymorphic_scheme_inferred(self, const_lang):
        result = infer(parse(self.ID_PROGRAM), const_lang, polymorphic=True)
        assert len(result.let_schemes) >= 1
        scheme = next(iter(result.let_schemes.values()))
        assert scheme.quantified  # id really generalises

    def test_id_usable_at_both_qualifiers(self, const_lang):
        assert is_well_typed(parse(self.ID_PROGRAM), const_lang, polymorphic=True)

    def test_monomorphic_id_merges_contexts(self, const_lang):
        # Monomorphically, z's const leaks into y's type: writing through
        # y after passing a const ref through the shared id fails...
        source = """
        let id = fn x. x in
        let y = id (ref 1) in
        let z = id ({const} ref 1) in
        (y := 2)
        ni ni ni
        """
        assert not is_well_typed(parse(source), const_lang, polymorphic=False)
        # ...while polymorphic inference keeps the uses independent.
        assert is_well_typed(parse(source), const_lang, polymorphic=True)

    def test_value_restriction(self, const_lang):
        # a ref is not a value: no generalisation happens for it
        source = "let r = ref 1 in r ni"
        result = infer(parse(source), const_lang, polymorphic=True)
        assert not result.let_schemes

    def test_annotated_lambda_generalises(self, const_lang):
        source = "let f = {const} (fn x. x) in f 1 ni"
        result = infer(parse(source), const_lang, polymorphic=True)
        assert len(result.let_schemes) == 1

    def test_env_variables_not_generalised(self, const_lang):
        # a lambda capturing an outer ref keeps the ref's qualifier shared
        source = """
        let r = ref 1 in
        let reader = fn u. !r in
        let w = (r := 2) in
        reader ()
        ni ni ni
        """
        assert is_well_typed(parse(source), const_lang, polymorphic=True)


class TestInferenceResult:
    def test_node_qtypes_cover_program(self, const_lang):
        expr = parse("let r = ref 1 in !r ni")
        result = infer(expr, const_lang)
        for node in walk(expr):
            assert id(node) in result.node_qtypes

    def test_least_and_greatest_qtype(self, const_lang):
        expr = parse("ref 1")
        result = infer(expr, const_lang)
        least = result.least_qtype()
        greatest = result.greatest_qtype()
        assert least.constructor is REF
        assert not least.qual.has("const")
        assert greatest.qual.has("const")

    def test_top_qual(self, const_lang):
        result = infer(parse("{const} 1"), const_lang)
        assert result.top_qual().has("const")

    def test_plain_language_no_extra_rules(self):
        lang = plain_language(const_lattice())
        # without (Assign'), writing through a const ref is permitted
        assert is_well_typed(
            parse("let r = {const} ref 1 in (r := 2) ni"), lang
        )

    def test_const_language_requires_const(self):
        with pytest.raises(ValueError):
            const_language(make_lattice("nonzero"))
