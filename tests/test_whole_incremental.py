"""The incremental re-link API in :mod:`repro.whole`: TU dependence
graphs, per-unit closure digests, and ``affected_units`` — the
invalidation primitives the resident daemon keys on.

The load-bearing property, checked directly: after an edit, the set of
units whose closure digest moved equals ``affected_units`` of the edit —
so serving every other unit's summary warm is sound."""

from repro.whole import (
    affected_units,
    closure_digests,
    dependency_closure,
    link_sources,
    tu_dependence_graph,
    unit_closure_digest,
)

# A three-unit chain: top.c calls mid.c's helper, which calls leaf.c's.
LEAF = (
    "char *getenv(const char *name);\n"
    'char *leaf_get(void) { return getenv("X"); }\n'
)
MID = (
    "extern char *leaf_get(void);\n"
    "char *mid_get(void) { return leaf_get(); }\n"
)
TOP = (
    "int printf(const char *fmt, ...);\n"
    "extern char *mid_get(void);\n"
    "void top(void) { printf(mid_get()); }\n"
)


def chain_sources():
    return {"leaf.c": LEAF, "mid.c": MID, "top.c": TOP}


def linked_chain(sources=None):
    return link_sources(sources or chain_sources())


def test_tu_dependence_graph_shape():
    graph = tu_dependence_graph(linked_chain())
    assert graph.vertices == ["leaf.c", "mid.c", "top.c"]  # sorted list
    assert graph.edges["top.c"] == {"mid.c"}
    assert graph.edges["mid.c"] == {"leaf.c"}
    assert graph.edges["leaf.c"] == set()


def test_dependency_closure_is_downward():
    graph = tu_dependence_graph(linked_chain())
    assert dependency_closure(("top.c",), graph) == ("leaf.c", "mid.c", "top.c")
    assert dependency_closure(("mid.c",), graph) == ("leaf.c", "mid.c")
    assert dependency_closure(("leaf.c",), graph) == ("leaf.c",)


def test_affected_units_is_upward():
    graph = tu_dependence_graph(linked_chain())
    assert affected_units(graph, {"leaf.c"}) == ("leaf.c", "mid.c", "top.c")
    assert affected_units(graph, {"mid.c"}) == ("mid.c", "top.c")
    assert affected_units(graph, {"top.c"}) == ("top.c",)
    assert affected_units(graph, {"not-linked.c"}) == ()


def test_closure_digests_cover_every_unit():
    linked = linked_chain()
    digests = closure_digests(linked)
    assert set(digests) == {"leaf.c", "mid.c", "top.c"}
    assert len(set(digests.values())) == 3  # distinct closures, distinct digests


def test_body_edit_moves_exactly_the_affected_digests():
    before = closure_digests(linked_chain())

    # Edit mid.c's function *body* (no signature/global changes).
    edited = chain_sources()
    edited["mid.c"] = (
        "extern char *leaf_get(void);\n"
        "char *mid_get(void) { char *tmp = leaf_get(); return tmp; }\n"
    )
    linked = linked_chain(edited)
    after = closure_digests(linked)

    moved = {unit for unit in before if before[unit] != after[unit]}
    graph = tu_dependence_graph(linked)
    assert moved == set(affected_units(graph, {"mid.c"}))
    assert moved == {"mid.c", "top.c"}
    assert before["leaf.c"] == after["leaf.c"]  # leaf summary stays warm


def test_leaf_edit_moves_every_digest():
    before = closure_digests(linked_chain())
    edited = chain_sources()
    edited["leaf.c"] = LEAF + "\n"
    after = closure_digests(linked_chain(edited))
    assert all(before[unit] != after[unit] for unit in before)


def test_layout_change_moves_all_digests():
    """Adding a global shifts the shared uid layer, so every unit's
    digest must move — even units textually untouched."""
    before = closure_digests(linked_chain())
    edited = chain_sources()
    edited["top.c"] = "int new_global;\n" + TOP
    after = closure_digests(linked_chain(edited))
    assert all(before[unit] != after[unit] for unit in before)


def test_unit_closure_digest_is_deterministic():
    linked = linked_chain()
    graph = tu_dependence_graph(linked)
    from repro.whole import shared_layout_digest

    layout = shared_layout_digest(linked.program)
    one = unit_closure_digest("mid.c", graph, linked.sources, layout)
    two = unit_closure_digest("mid.c", graph, linked.sources, layout)
    assert one == two
    assert one != unit_closure_digest("leaf.c", graph, linked.sources, layout)


def test_digest_depends_on_layout_component():
    linked = linked_chain()
    graph = tu_dependence_graph(linked)
    assert unit_closure_digest(
        "leaf.c", graph, linked.sources, "layout-a"
    ) != unit_closure_digest("leaf.c", graph, linked.sources, "layout-b")


def test_independent_units_do_not_invalidate_each_other():
    sources = {
        "a.c": "int a(void) { return 1; }\n",
        "b.c": "int b(void) { return 2; }\n",
    }
    graph = tu_dependence_graph(link_sources(sources))
    assert affected_units(graph, {"a.c"}) == ("a.c",)
    before = closure_digests(link_sources(sources))
    sources["a.c"] = "int a(void) { return 3; }\n"
    after = closure_digests(link_sources(sources))
    assert before["b.c"] == after["b.c"]
    assert before["a.c"] != after["a.c"]
