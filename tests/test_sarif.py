"""SARIF 2.1.0 conformance tests for the qlint renderer.

The full OASIS schema is several thousand lines and the test
environment has no network access, so ``SARIF_SUBSET_SCHEMA`` embeds
the slice of the 2.1.0 schema that qlint output exercises — versions,
runs, tool/driver/rules, results with locations, codeFlows, and
suppressions — with ``additionalProperties`` left open exactly as the
real schema leaves it.  Structural assertions below cover the parts a
schema cannot (cross-references like ruleIndex, fingerprint values).
"""

import json

import pytest

from repro.checker import assign_fingerprints, check_source, render_sarif
from repro.checker.render import QLINT_VERSION

jsonschema = pytest.importorskip("jsonschema")

# Subset of
# https://json.schemastore.org/sarif-2.1.0.json
# restricted to the object shapes qlint emits.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {"type": "string"}
                                                    },
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {"$ref": "#/$defs/result"},
                    },
                },
            },
        },
    },
    "$defs": {
        "message": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        },
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "type": "object",
                    "properties": {
                        "artifactLocation": {
                            "type": "object",
                            "properties": {"uri": {"type": "string"}},
                        },
                        "region": {
                            "type": "object",
                            "properties": {
                                "startLine": {"type": "integer", "minimum": 1},
                                "startColumn": {"type": "integer", "minimum": 1},
                            },
                        },
                    },
                }
            },
        },
        "threadFlowLocation": {
            "type": "object",
            "properties": {
                "location": {
                    "allOf": [
                        {"$ref": "#/$defs/location"},
                        {
                            "type": "object",
                            "properties": {
                                "message": {"$ref": "#/$defs/message"}
                            },
                        },
                    ]
                }
            },
        },
        "result": {
            "type": "object",
            "required": ["ruleId", "message"],
            "properties": {
                "ruleId": {"type": "string"},
                "ruleIndex": {"type": "integer", "minimum": 0},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/$defs/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/$defs/location"},
                },
                "partialFingerprints": {
                    "type": "object",
                    "additionalProperties": {"type": "string"},
                },
                "codeFlows": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["threadFlows"],
                        "properties": {
                            "threadFlows": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["locations"],
                                    "properties": {
                                        "locations": {
                                            "type": "array",
                                            "items": {
                                                "$ref": "#/$defs/threadFlowLocation"
                                            },
                                        }
                                    },
                                },
                            }
                        },
                    },
                },
                "suppressions": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["kind"],
                        "properties": {
                            "kind": {"enum": ["inSource", "external"]}
                        },
                    },
                },
            },
        },
    },
}

SOURCE = """\
char *getenv(const char *n);
int printf(const char *f, ...);
void *malloc(unsigned long n);
int main(void) {
    char *name = getenv("USER");
    printf(name);
    int *slot = malloc(8);
    /* qlint: allow(nonnull-deref) */
    *slot = 1;
    return 0;
}
"""


def sarif_log():
    from repro.checker import apply_suppressions

    diags = check_source(SOURCE, filename="demo.c")
    diags = assign_fingerprints(diags, {"demo.c": SOURCE})
    diags = apply_suppressions(diags, {"demo.c": SOURCE})
    return json.loads(render_sarif(diags))


def test_output_validates_against_schema():
    jsonschema.validate(sarif_log(), SARIF_SUBSET_SCHEMA)


def test_empty_run_validates():
    jsonschema.validate(json.loads(render_sarif([])), SARIF_SUBSET_SCHEMA)


def test_rule_indices_point_at_matching_rules():
    log = sarif_log()
    run = log["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert run["tool"]["driver"]["name"] == "qlint"
    assert run["tool"]["driver"]["version"] == QLINT_VERSION
    assert run["results"]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_taint_result_carries_code_flow_and_fingerprint():
    run = sarif_log()["runs"][0]
    [taint] = [r for r in run["results"] if r["ruleId"] == "tainted-format"]
    assert taint["level"] == "error"
    assert taint["partialFingerprints"]["qlint/v1"]
    steps = taint["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(steps) >= 2
    first = steps[0]["location"]
    assert first["message"]["text"] == "tainted source getenv"
    assert first["physicalLocation"]["artifactLocation"]["uri"] == "demo.c"


def test_suppressed_result_marked_in_source():
    run = sarif_log()["runs"][0]
    [deref] = [r for r in run["results"] if r["ruleId"] == "nonnull-deref"]
    assert deref["suppressions"] == [{"kind": "inSource"}]
    [taint] = [r for r in run["results"] if r["ruleId"] == "tainted-format"]
    assert "suppressions" not in taint


def test_src_root_relativizes_artifact_uris(tmp_path):
    src = tmp_path / "proj" / "demo.c"
    src.parent.mkdir()
    src.write_text(SOURCE)
    diags = assign_fingerprints(
        check_source(src.read_text(), filename=str(src)),
        {str(src): src.read_text()},
    )
    log = json.loads(render_sarif(diags, src_root=str(tmp_path / "proj")))
    jsonschema.validate(log, SARIF_SUBSET_SCHEMA)
    (run,) = log["runs"]
    root_uri = run["originalUriBaseIds"]["SRCROOT"]["uri"]
    assert root_uri.startswith("file://") and root_uri.endswith("/")
    for result in run["results"]:
        artifact = result["locations"][0]["physicalLocation"]["artifactLocation"]
        assert artifact["uri"] == "demo.c"
        assert artifact["uriBaseId"] == "SRCROOT"


def test_files_outside_src_root_stay_absolute(tmp_path):
    src = tmp_path / "elsewhere" / "demo.c"
    src.parent.mkdir()
    src.write_text(SOURCE)
    diags = assign_fingerprints(
        check_source(src.read_text(), filename=str(src)),
        {str(src): src.read_text()},
    )
    log = json.loads(render_sarif(diags, src_root=str(tmp_path / "proj")))
    (run,) = log["runs"]
    for result in run["results"]:
        artifact = result["locations"][0]["physicalLocation"]["artifactLocation"]
        assert artifact["uri"] == str(src)
        assert "uriBaseId" not in artifact


def test_no_src_root_keeps_legacy_uris():
    log = sarif_log()
    (run,) = log["runs"]
    assert "originalUriBaseIds" not in run
    for result in run["results"]:
        artifact = result["locations"][0]["physicalLocation"]["artifactLocation"]
        assert artifact["uri"] == "demo.c"
        assert "uriBaseId" not in artifact
