"""Tests for the C -> flowsens lowering layer (repro.flowsens.lower):
pointer events, alloc-site recording, control-flow translation, and the
havoc story for everything the small language cannot express."""

import pytest

from repro.cfront.sema import Program
from repro.flowsens.language import (
    Assign,
    CopyPtr,
    ExitPoint,
    FlowStmt,
    FreeCell,
    Havoc,
    If,
    NewCell,
    UseCell,
    While,
)
from repro.flowsens.lower import DEFAULT_POLICY, LowerPolicy, lower_function
from repro.qual.qualifiers import resource_lattice

PROTOS = """
void *malloc(unsigned long size);
void free(void *ptr);
unsigned long strlen(const char *s);
int getchar(void);
int mystery(char *s);
"""


@pytest.fixture
def lattice():
    return resource_lattice()


def lowered(source, name, lattice):
    program = Program.from_source(PROTOS + source, filename="t.c")
    return lower_function(program.functions[name], lattice)


def flatten(stmts):
    for s in stmts:
        yield s
        if isinstance(s, If):
            yield from flatten(s.then)
            yield from flatten(s.else_)
        elif isinstance(s, While):
            yield from flatten(s.body)


def of_type(fn, kind):
    return [s for s in flatten(fn.body) if isinstance(s, kind)]


class TestPointerEvents:
    def test_malloc_becomes_newcell_with_alloc_site(self, lattice):
        fn = lowered(
            "void f(void) { char *p = malloc(8); free(p); }", "f", lattice
        )
        sites = [
            s for s in of_type(fn, NewCell) if s.target == "p"
        ]
        assert sites
        recorded = [fn.alloc_sites[s.site] for s in sites if s.site in fn.alloc_sites]
        assert recorded and recorded[0].callee == "malloc"
        assert recorded[0].kind == "heap"
        assert "p" in fn.pointer_vars

    def test_free_becomes_freecell(self, lattice):
        fn = lowered(
            "void f(void) { char *p = malloc(8); free(p); }", "f", lattice
        )
        assert [s.pointer for s in of_type(fn, FreeCell)] == ["p"]

    def test_borrower_call_becomes_usecell(self, lattice):
        fn = lowered(
            "unsigned long f(void) { char *p = malloc(8);\n"
            "unsigned long n = strlen(p); free(p); return n; }",
            "f",
            lattice,
        )
        assert any(s.pointer == "p" for s in of_type(fn, UseCell))

    def test_unknown_callee_escapes_pointer(self, lattice):
        # mystery() may stash or release p: the lowering must both use
        # the cell (a freed pointer reaching it is a UAF) and havoc the
        # variable (ownership may have transferred).
        fn = lowered(
            "void f(void) { char *p = malloc(8); mystery(p); }", "f", lattice
        )
        assert any(s.pointer == "p" for s in of_type(fn, UseCell))
        assert any(s.target == "p" for s in of_type(fn, Havoc))

    def test_pointer_copy_becomes_copyptr(self, lattice):
        fn = lowered(
            "void f(void) { char *p = malloc(8); char *q = p; free(q); }",
            "f",
            lattice,
        )
        assert any(
            s.target == "q" and s.source == "p" for s in of_type(fn, CopyPtr)
        )


class TestControlFlow:
    def test_if_else_lowers_to_if(self, lattice):
        fn = lowered(
            "int f(int x) { if (x) { return 1; } else { return 2; } }",
            "f",
            lattice,
        )
        assert of_type(fn, If)

    def test_early_return_folds_continuation(self, lattice):
        # `if (!p) return -1;` must split the path: the fall-through
        # continuation lowers inside the non-terminating branch, so the
        # free() is only seen where p is non-null.
        fn = lowered(
            "int f(void) { char *p = malloc(8);\n"
            "if (!p) return -1;\n"
            "free(p); return 0; }",
            "f",
            lattice,
        )
        ifs = of_type(fn, If)
        assert ifs
        folded = ifs[0]
        # one arm exits, the other carries the rest (with the free)
        arms = [folded.then, folded.else_]
        exits = [any(isinstance(s, ExitPoint) for s in flatten(a)) for a in arms]
        frees = [any(isinstance(s, FreeCell) for s in flatten(a)) for a in arms]
        assert exits != frees  # the free lives on the non-exit arm only

    def test_while_lowers_to_while(self, lattice):
        fn = lowered(
            "void f(void) { int n = getchar(); while (n) { n = getchar(); } }",
            "f",
            lattice,
        )
        assert of_type(fn, While)

    def test_every_function_reaches_an_exit(self, lattice):
        fn = lowered("void f(void) { int x = 0; }", "f", lattice)
        assert of_type(fn, ExitPoint)


class TestDegradation:
    def test_goto_marks_unstructured(self, lattice):
        fn = lowered(
            "void f(void) { char *p = malloc(8); goto out;\nout: free(p); }",
            "f",
            lattice,
        )
        assert fn.unstructured
        assert any("goto" in note for note in fn.notes)

    def test_structured_function_is_not_marked(self, lattice):
        fn = lowered(
            "void f(void) { char *p = malloc(8); free(p); }", "f", lattice
        )
        assert not fn.unstructured

    def test_spans_are_stamped(self, lattice):
        fn = lowered(
            "void f(void) { char *p = malloc(8); free(p); }", "f", lattice
        )
        free = of_type(fn, FreeCell)[0]
        assert free.file == "t.c" and free.line > 0

    def test_temps_cannot_collide_with_c_identifiers(self, lattice):
        fn = lowered(
            "int f(int x) { if (x) { return 1; } return 0; }",
            "f",
            lattice,
        )
        temps = [
            s.target
            for s in flatten(fn.body)
            if isinstance(s, Assign) and s.target.startswith("%")
        ]
        assert temps  # condition temps use %, illegal in C identifiers

    def test_scalar_param_is_havocked(self, lattice):
        fn = lowered("int f(int x) { return x; }", "f", lattice)
        assert any(s.target == "x" for s in of_type(fn, Havoc))

    def test_policy_is_extensible(self, lattice):
        # a custom allocator/releaser pair behaves like malloc/free
        policy = LowerPolicy(
            allocators={**DEFAULT_POLICY.allocators, "acquire": "custom"},
            releasers={**DEFAULT_POLICY.releasers, "release": 0},
        )
        program = Program.from_source(
            "char *acquire(void);\nvoid release(char *p);\n"
            "void f(void) { char *p = acquire(); release(p); }",
            filename="t.c",
        )
        fn = lower_function(program.functions["f"], lattice, policy)
        assert fn.alloc_sites
        assert any(isinstance(s, FreeCell) for s in flatten(fn.body))
