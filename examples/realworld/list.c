/* list.c - singly linked string list. */

#include "list.h"
#include "strbuf.h"

static char *copy_text(const char *text)
{
    size_t n;
    char *out;

    n = strlen(text);
    out = (char *)malloc(n + 1);
    if (!out) {
        return (char *)0;
    }
    memcpy(out, text, n + 1);
    return out;
}

void list_init(struct string_list *lst)
{
    lst->head = (struct list_item *)0;
    lst->tail = (struct list_item *)0;
    lst->count = 0;
}

void list_clear(struct string_list *lst)
{
    struct list_item *item;

    item = lst->head;
    while (item) {
        struct list_item *next;

        next = item->next;
        free(item->text);
        free(item);
        item = next;
    }
    list_init(lst);
}

int list_push(struct string_list *lst, const char *text)
{
    struct list_item *item;

    item = (struct list_item *)malloc(sizeof(struct list_item));
    if (!item) {
        return -1;
    }
    item->text = copy_text(text);
    if (!item->text) {
        free(item);
        return -1;
    }
    item->next = (struct list_item *)0;
    if (lst->tail) {
        lst->tail->next = item;
    } else {
        lst->head = item;
    }
    lst->tail = item;
    lst->count = lst->count + 1;
    return 0;
}

const char *list_at(const struct string_list *lst, size_t index)
{
    const struct list_item *item;

    if (index >= lst->count) {
        return (const char *)0;
    }
    item = lst->head;
    while (index > 0) {
        item = item->next;
        index = index - 1;
    }
    return item->text;
}

int list_contains(const struct string_list *lst, const char *needle)
{
    const struct list_item *item;

    for (item = lst->head; item; item = item->next) {
        if (strcmp(item->text, needle) == 0) {
            return 1;
        }
    }
    return 0;
}

size_t list_count(const struct string_list *lst)
{
    return lst->count;
}

void list_reverse(struct string_list *lst)
{
    struct list_item *prev;
    struct list_item *item;

    prev = (struct list_item *)0;
    item = lst->head;
    lst->tail = lst->head;
    while (item) {
        struct list_item *next;

        next = item->next;
        item->next = prev;
        prev = item;
        item = next;
    }
    lst->head = prev;
}
