/* strbuf.h - growable string buffer, in the style of classic C utility
 * libraries.  Hand-written fixture for the resilient-ingestion CI job:
 * real-world shape (guards, nested includes, macros, typedefs), sized so
 * the best-effort pipeline has something representative to chew on. */

#ifndef STRBUF_H
#define STRBUF_H

#include "types.h"

#define STRBUF_INIT_CAP 16
#define STRBUF_GROWTH 2

struct strbuf {
    char *buf;
    size_t len;
    size_t cap;
};

typedef struct strbuf strbuf;

void strbuf_init(strbuf *sb);
void strbuf_release(strbuf *sb);
int strbuf_grow(strbuf *sb, size_t extra);
int strbuf_addch(strbuf *sb, int ch);
int strbuf_addstr(strbuf *sb, const char *s);
int strbuf_setlen(strbuf *sb, size_t len);
const char *strbuf_cstr(const strbuf *sb);
size_t strbuf_avail(const strbuf *sb);
int strbuf_cmp(const strbuf *a, const strbuf *b);
void strbuf_swap(strbuf *a, strbuf *b);
int strbuf_rtrim(strbuf *sb);

#endif /* STRBUF_H */
