/* list.h - singly linked string list over strbuf-owned text. */

#ifndef LIST_H
#define LIST_H

#include "types.h"

struct list_item {
    char *text;
    struct list_item *next;
};

struct string_list {
    struct list_item *head;
    struct list_item *tail;
    size_t count;
};

void list_init(struct string_list *lst);
void list_clear(struct string_list *lst);
int list_push(struct string_list *lst, const char *text);
const char *list_at(const struct string_list *lst, size_t index);
int list_contains(const struct string_list *lst, const char *needle);
size_t list_count(const struct string_list *lst);
void list_reverse(struct string_list *lst);

#endif /* LIST_H */
