/* types.h - shared typedefs and the tiny slice of libc the fixture
 * leans on, declared rather than included so the corpus is closed. */

#ifndef TYPES_H
#define TYPES_H

typedef unsigned long size_t;

void *malloc(size_t n);
void *realloc(void *p, size_t n);
void free(void *p);
void *memcpy(void *dst, const void *src, size_t n);
void *memset(void *p, int c, size_t n);
size_t strlen(const char *s);
int strcmp(const char *a, const char *b);
char *strchr(const char *s, int c);
int printf(const char *fmt, ...);

#endif /* TYPES_H */
