/* strbuf.c - growable string buffer implementation. */

#include "strbuf.h"

static char strbuf_slop[1];

void strbuf_init(strbuf *sb)
{
    sb->buf = strbuf_slop;
    sb->len = 0;
    sb->cap = 0;
}

void strbuf_release(strbuf *sb)
{
    if (sb->cap) {
        free(sb->buf);
    }
    strbuf_init(sb);
}

int strbuf_grow(strbuf *sb, size_t extra)
{
    size_t want;
    size_t cap;
    char *fresh;

    want = sb->len + extra + 1;
    if (want <= sb->cap) {
        return 0;
    }
    cap = sb->cap ? sb->cap : STRBUF_INIT_CAP;
    while (cap < want) {
        cap = cap * STRBUF_GROWTH;
    }
    if (sb->cap) {
        fresh = (char *)realloc(sb->buf, cap);
    } else {
        fresh = (char *)malloc(cap);
        if (fresh && sb->len) {
            memcpy(fresh, sb->buf, sb->len);
        }
    }
    if (!fresh) {
        return -1;
    }
    sb->buf = fresh;
    sb->cap = cap;
    return 0;
}

int strbuf_addch(strbuf *sb, int ch)
{
    if (strbuf_grow(sb, 1)) {
        return -1;
    }
    sb->buf[sb->len] = (char)ch;
    sb->len = sb->len + 1;
    sb->buf[sb->len] = 0;
    return 0;
}

int strbuf_addstr(strbuf *sb, const char *s)
{
    size_t n;

    n = strlen(s);
    if (strbuf_grow(sb, n)) {
        return -1;
    }
    memcpy(sb->buf + sb->len, s, n);
    sb->len = sb->len + n;
    sb->buf[sb->len] = 0;
    return 0;
}

int strbuf_setlen(strbuf *sb, size_t len)
{
    if (len > sb->len && strbuf_grow(sb, len - sb->len)) {
        return -1;
    }
    sb->len = len;
    if (sb->cap) {
        sb->buf[len] = 0;
    }
    return 0;
}

const char *strbuf_cstr(const strbuf *sb)
{
    return sb->buf;
}

size_t strbuf_avail(const strbuf *sb)
{
    if (!sb->cap) {
        return 0;
    }
    return sb->cap - sb->len - 1;
}

int strbuf_cmp(const strbuf *a, const strbuf *b)
{
    size_t i;
    size_t n;

    n = a->len < b->len ? a->len : b->len;
    for (i = 0; i < n; i = i + 1) {
        if (a->buf[i] != b->buf[i]) {
            return a->buf[i] < b->buf[i] ? -1 : 1;
        }
    }
    if (a->len == b->len) {
        return 0;
    }
    return a->len < b->len ? -1 : 1;
}

void strbuf_swap(strbuf *a, strbuf *b)
{
    strbuf tmp;

    tmp = *a;
    *a = *b;
    *b = tmp;
}

int strbuf_rtrim(strbuf *sb)
{
    int trimmed;

    trimmed = 0;
    while (sb->len > 0) {
        int ch;

        ch = sb->buf[sb->len - 1];
        if (ch != ' ' && ch != '\t' && ch != '\n') {
            break;
        }
        sb->len = sb->len - 1;
        trimmed = trimmed + 1;
    }
    if (sb->cap) {
        sb->buf[sb->len] = 0;
    }
    return trimmed;
}
