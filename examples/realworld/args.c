/* args.c - option parsing over the list/strbuf helpers.  The tail of
 * this file deliberately steps outside the analysed C subset (K&R-style
 * definition, bitfield struct) so the best-effort CI job exercises real
 * recovery, not just clean parses. */

#include "list.h"
#include "strbuf.h"

#define OPT_VERBOSE 1
#define OPT_QUIET 2

struct options {
    int flags;
    const char *output;
    struct string_list inputs;
};

void options_init(struct options *opts)
{
    opts->flags = 0;
    opts->output = (const char *)0;
    list_init(&opts->inputs);
}

static int is_flag(const char *arg, const char *name)
{
    if (arg[0] != '-') {
        return 0;
    }
    return strcmp(arg + 1, name) == 0;
}

static const char *flag_value(const char *arg)
{
    const char *eq;

    eq = strchr(arg, '=');
    if (!eq) {
        return (const char *)0;
    }
    return eq + 1;
}

int options_parse(struct options *opts, int argc, const char **argv)
{
    int i;

    for (i = 1; i < argc; i = i + 1) {
        const char *arg;

        arg = argv[i];
        if (is_flag(arg, "v")) {
            opts->flags = opts->flags | OPT_VERBOSE;
        } else if (is_flag(arg, "q")) {
            opts->flags = opts->flags | OPT_QUIET;
        } else if (arg[0] == '-' && arg[1] == 'o') {
            const char *value;

            value = flag_value(arg);
            if (!value) {
                return -1;
            }
            opts->output = value;
        } else {
            if (list_push(&opts->inputs, arg)) {
                return -1;
            }
        }
    }
    return 0;
}

int options_describe(const struct options *opts, strbuf *out)
{
    size_t i;
    size_t n;

    if ((opts->flags & OPT_VERBOSE) && strbuf_addstr(out, "verbose ")) {
        return -1;
    }
    if (opts->output) {
        if (strbuf_addstr(out, "output=")) {
            return -1;
        }
        if (strbuf_addstr(out, opts->output)) {
            return -1;
        }
        if (strbuf_addch(out, ' ')) {
            return -1;
        }
    }
    n = list_count(&opts->inputs);
    for (i = 0; i < n; i = i + 1) {
        if (strbuf_addstr(out, list_at(&opts->inputs, i))) {
            return -1;
        }
        if (strbuf_addch(out, ' ')) {
            return -1;
        }
    }
    return strbuf_rtrim(out) >= 0 ? 0 : -1;
}

/* -- beyond the subset: the rest of this file needs recovery ---------- */

struct packed_flags {
    unsigned int verbose : 1;
    unsigned int quiet : 1;
};

int legacy_sum(a, b)
    int a;
    int b;
{
    return a + b;
}

int options_tail_marker(void)
{
    return 42;
}
