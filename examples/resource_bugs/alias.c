/* Seeded bug: freeing through an alias, then through the original.
 * The copy makes p and q must-aliases, so the strong update at
 * free(q) marks both and the second free is a double-free. */
void *malloc(unsigned long size);
void free(void *ptr);

void alias_release(void) {
    char *p = malloc(16);
    char *q = p;
    free(q);
    free(p); /* BUG: p aliases q, which was already freed */
}
