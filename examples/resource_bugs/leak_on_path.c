/* Seeded bug: the early-return error path exits with the allocation
 * still held.  qlint must report resource-leak on that return with an
 * allocation -> exit flow path; the normal path frees and is clean.
 * (The bail-out tests getchar, not a call that takes the pointer —
 * passing the pointer to an unknown callee would count as a possible
 * ownership hand-off and deliberately suppress the leak.) */
void *malloc(unsigned long size);
void free(void *ptr);
int getchar(void);

int run(void) {
    char *text = malloc(128);
    if (!text)
        return -1;
    if (getchar() < 0)
        return -2; /* BUG: text leaks on this exit path */
    free(text);
    return 0;
}
