/* Seeded bug: the error path frees the buffer, then the shared
 * cleanup frees it again.  qlint --checks ...,double-free must report
 * double-free at the second free with a malloc -> free -> free flow
 * path. */
void *malloc(unsigned long size);
void free(void *ptr);
int fill(void *buf);

int load(void) {
    char *buf = malloc(64);
    if (!buf)
        return -1;
    if (fill(buf) < 0) {
        free(buf);
    }
    free(buf); /* BUG: buf may already have been freed */
    return 0;
}
