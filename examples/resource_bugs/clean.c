/* No planted bugs: allocation is released on every path, ownership
 * hand-off through a return is not a leak, and a borrowing use before
 * the free is fine.  qlint's linearity pack must report nothing. */
void *malloc(unsigned long size);
void free(void *ptr);
unsigned long strlen(const char *s);
int fill(void *buf);

int balanced(void) {
    char *buf = malloc(64);
    if (!buf)
        return -1;
    if (fill(buf) < 0) {
        free(buf);
        return -2;
    }
    unsigned long n = strlen(buf);
    free(buf);
    return (int)n;
}

char *handoff(void) {
    char *out = malloc(8);
    if (!out)
        return 0;
    return out; /* ownership transfers to the caller: not a leak */
}
