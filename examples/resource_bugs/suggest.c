/* Annotation-suggestion oracle: each declaration below has one
 * known-correct qualifier that `qlint suggest` must rank in its top 3.
 *
 *   env  -> tainted  (getenv return)
 *   buf  -> alloc    (owned allocation, released before exit)
 *   c    -> dynamic  (getchar return)
 *   name_from_env return -> tainted (returns environment data)
 */
char *getenv(const char *name);
void *malloc(unsigned long size);
void free(void *ptr);
int getchar(void);
int snoop(const char *s, int c);

int probe(void) {
    char *env = getenv("HOME");
    char *buf = malloc(16);
    int c = getchar();
    int out = snoop(env, c);
    free(buf);
    return out;
}

char *name_from_env(void) {
    return getenv("USER");
}
