/* Seeded bug: the buffer is released and then handed to a borrowing
 * callee.  qlint must report use-after-free at the strlen call with a
 * free -> use flow path. */
void *malloc(unsigned long size);
void free(void *ptr);
unsigned long strlen(const char *s);

unsigned long last_length(void) {
    char *name = malloc(32);
    if (!name)
        return 0;
    free(name);
    return strlen(name); /* BUG: name was freed above */
}
