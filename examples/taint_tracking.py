#!/usr/bin/env python3
"""Taint tracking: secure information flow as a qualifier (Section 5's
[VS97] instance), reported through the qlint checker API.

Scenario: a request handler reads untrusted input ({tainted} sources),
computes with it, and must never let it reach the query sink, which
asserts untaintedness with ``e|{}``.  A sanitizer is modelled as a
trusted function whose declared type launders the qualifier — exactly
how a real qualifier system encodes "reviewed and escaped here".

Insecure programs produce the same :class:`repro.checker.Diagnostic`
objects — with a step-by-step qualifier-flow trace — that the batch
``python -m repro.checker`` tool emits over C code, rendered by the
same renderer.

Run: python examples/taint_tracking.py
"""

from repro.checker import check_lambda_source, render_human
from repro.lam.infer import infer
from repro.lam.parser import parse
from repro.qual.qtypes import q_fun, q_int
from repro.qual.qualifiers import taint_lattice


def trusted_env():
    """sanitize : tainted int -> untainted int (trusted declaration)."""
    lattice = taint_lattice()
    return {
        "sanitize": q_fun(
            lattice.bottom,
            q_int(lattice.top),  # accepts even tainted data
            q_int(lattice.bottom),  # result is clean by fiat
        )
    }


CASES = {
    "direct leak (rejected)": """
        let user_input = {tainted} 7 in
        (user_input)|{}
        ni
    """,
    "leak through a computation (rejected)": """
        let user_input = {tainted} 7 in
        let doubled = if user_input then user_input else 0 fi in
        (doubled)|{}
        ni ni
    """,
    "leak through a ref cell (rejected)": """
        let user_input = {tainted} 7 in
        let cell = ref 0 in
        let store = (cell := user_input) in
        (!cell)|{}
        ni ni ni
    """,
    "sanitized before the sink (accepted)": """
        let user_input = {tainted} 7 in
        (sanitize user_input)|{}
        ni
    """,
    "clean data straight through (accepted)": """
        let config = 42 in
        (config)|{}
        ni
    """,
}


def main() -> None:
    env = trusted_env()
    print("taint policy: sources marked {tainted}; sinks assert e|{}")
    print()
    for label, source in CASES.items():
        diagnostics = check_lambda_source(source, filename="<case>", env=env)
        verdict = "SECURE" if not diagnostics else "INSECURE"
        print(f"{label:<45} -> {verdict}")
        for diag in diagnostics:
            print(f"    [{diag.check}] {diag.message[:80]}")
            for index, step in enumerate(diag.flow, start=1):
                print(f"      {index}. {step.note} (line {step.span.line})")
    print()

    # The full checker report for one insecure case, via the shared
    # renderer (the same one `python -m repro.checker` uses for C code).
    diagnostics = check_lambda_source(
        CASES["leak through a ref cell (rejected)"], filename="<ref-cell>", env=env
    )
    print("checker-rendered report for the ref-cell leak:")
    print(render_human(diagnostics))

    # The same policy, checked at a finer grain: which nodes are tainted?
    source = """
        let user_input = {tainted} 7 in
        let clean = sanitize user_input in
        let both = if 1 then clean else user_input fi in
        both
        ni ni ni
    """
    from repro.apps.taint import taint_language

    expr = parse(source)
    assert not check_lambda_source(source, env=env)
    result = infer(expr, taint_language(), env=env)
    top = result.top_qual()
    print("merging clean and tainted data taints the merge:")
    print(f"  program result qualifier (least solution): {top}")
    print(f"  tainted? {top.has('tainted')}")


if __name__ == "__main__":
    main()
