/* Clean ownership transfer: allocate in one unit, release through the
 * helper in another.  The summaries prove the hand-off balances —
 * make_buffer's "returns owned" obligation is discharged by
 * give_back's "frees arg 0" — so qlint --whole-program reports
 * nothing here. */
char *make_buffer(unsigned long n);
void give_back(char *p);
unsigned long observe(const char *p);

unsigned long hand_off(void) {
    char *b = make_buffer(64);
    if (!b)
        return 0;
    unsigned long n = observe(b);
    give_back(b);
    return n;
}
