/* Release side of the cross-TU corpus.  give_back frees its argument
 * on every path ("frees arg 0" summary); observe only reads it
 * ("borrows").  The summaries let callers in other units model these
 * calls precisely instead of havocking every pointer argument. */
void free(void *ptr);
unsigned long strlen(const char *s);

void give_back(char *p) {
    free(p);
}

unsigned long observe(const char *p) {
    return strlen(p);
}
