/* Allocation side of the cross-TU corpus: make_buffer returns an
 * owned pointer (every return is NULL or a fresh malloc), so the
 * whole-program ownership summary is "returns owned".  Callers in the
 * other units inherit the obligation to release it. */
void *malloc(unsigned long size);

char *make_buffer(unsigned long n) {
    char *p = malloc(n);
    if (!p)
        return 0;
    return p;
}
