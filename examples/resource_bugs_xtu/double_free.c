/* Planted cross-TU double-free: give_back (free_helper.c) frees its
 * argument on every path, so the explicit free after the call releases
 * the same allocation twice.  qlint --whole-program must report
 * double-free with a flow path through give_back's unit. */
void free(void *ptr);
char *make_buffer(unsigned long n);
void give_back(char *p);

void drop_twice(void) {
    char *b = make_buffer(16);
    if (!b)
        return;
    give_back(b);
    free(b); /* BUG: give_back already freed b */
}
