/* Planted cross-TU leak: the allocation happens in alloc.c
 * (make_buffer returns owned) and is lost here — observe only borrows,
 * nothing frees, and the function exits still holding the buffer.
 * qlint --whole-program must report resource-leak with a flow path
 * that names both units. */
unsigned long observe(const char *p);
char *make_buffer(unsigned long n);

unsigned long lose_buffer(void) {
    char *b = make_buffer(32);
    if (!b)
        return 0;
    return observe(b); /* BUG: b still owned at exit — leaked */
}
