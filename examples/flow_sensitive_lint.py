#!/usr/bin/env python3
"""Flow-sensitive qualifier linting — the paper's Section 6 proposal,
reported through the qlint diagnostic model.

The base framework gives each location ONE qualified type, so lclint's
"annotations on a given location may vary at each program point" is out
of reach.  This example runs the prototype the paper sketches (distinct
type per point, subtyping constraints except across strong updates) on
two classic linting scenarios:

1. taint hygiene: a buffer reused for both untrusted input and clean
   data, where flow-insensitivity would reject the program outright;
2. null-checking: dereference allowed only under a null test — with the
   refinement expiring at the merge, exactly as lclint requires.

Check failures are converted into :class:`repro.checker.Diagnostic`
objects and rendered by the same renderer the batch checker uses, so
flow-sensitive findings and whole-program findings share one report
format.

Run: python examples/flow_sensitive_lint.py
"""

from repro.checker import Diagnostic, FlowStep, Span, render_human
from repro.flowsens import (
    AnnotStmt,
    Assign,
    AssertStmt,
    Havoc,
    Join,
    Literal,
    Refine,
    VarRef,
    While,
    analyze_flow,
    block,
)
from repro.qual.qualifiers import nonnull_lattice, taint_lattice


def flow_diagnostics(result, file="<flow>"):
    """Adapt a :class:`repro.flowsens.FlowResult`'s check failures into
    qlint diagnostics (one per failed check point)."""
    out = []
    for failure in result.failures:
        out.append(
            Diagnostic(
                check=f"flow-{failure.kind}",
                qualifier=str(failure.required),
                severity="error",
                message=str(failure),
                span=Span(file, 0, 0),
                flow=(
                    FlowStep(
                        note=f"{failure.variable} is {failure.actual} "
                        f"at [{failure.label}], required {failure.required}"
                    ),
                ),
            )
        )
    return out


def report(result, file):
    diagnostics = flow_diagnostics(result, file)
    print(render_human(diagnostics).rstrip())
    return diagnostics


def taint_scenario() -> None:
    print("=" * 66)
    print("1. reused buffer: tainted at some points, clean at others")
    print("=" * 66)
    taint = taint_lattice()

    def lit(*names):
        return Literal(taint.element(*names))

    program = block(
        # read untrusted input into buf
        Assign("buf", lit("tainted"), label="read network"),
        # process it into a separate tainted log record: fine, the log
        # sink accepts anything
        Assign("log", VarRef("buf"), label="copy to log"),
        # now REUSE buf for configuration data (strong update)
        Assign("buf", lit(), label="load config"),
        # the query sink takes buf: safe, because the tainted value was
        # overwritten — a flow-INsensitive system cannot see this
        AssertStmt("buf", taint.element(), label="query sink"),
        # but sending the log record to the query sink would be flagged
        AssertStmt("log", taint.element(), label="query sink (log)"),
    )
    result = analyze_flow(program, taint)
    print(f"buf at query sink: {result.final_value('buf')} (clean)")
    print(f"log at query sink: {result.final_value('log')}")
    diagnostics = report(result, "<reused-buffer>")
    assert len(diagnostics) == 1


def nullness_scenario() -> None:
    print()
    print("=" * 66)
    print("2. lclint-style null checking with conditional refinement")
    print("=" * 66)
    nn = nonnull_lattice()
    deref_ok = nn.assertion_bound("nonnull")

    program = block(
        # lookup() may return null: nonnull absent
        Assign("p", Literal(nn.element()), label="p = lookup(...)"),
        # if (p != NULL) { use *p }   -- refinement makes the deref safe
        Refine(
            "p",
            "nonnull",
            body=(AssertStmt("p", deref_ok, label="*p inside the test"),),
        ),
        # ...but after the merge p may be null again
        AssertStmt("p", deref_ok, label="*p after the test"),
    )
    result = analyze_flow(program, nn)
    print("checks:")
    for kind, label, variable, _q in result.check_points:
        failed = any(f.label == label for f in result.failures)
        print(f"  {'REJECT' if failed else 'ok    '}  {label}")
    diagnostics = report(result, "<null-check>")
    assert len(diagnostics) == 1
    print()
    print("the flow-INsensitive instance rejects even the guarded deref:")
    from repro.apps.nonnull import check_source

    report_nn = check_source("let p = {} ref 5 in if 1 then !p else 0 fi ni")
    print(f"  base framework safe? {report_nn.safe} (Section 6's motivating gap)")


def loop_scenario() -> None:
    print()
    print("=" * 66)
    print("3. loops: qualifiers reach a fixpoint over the back edge")
    print("=" * 66)
    taint = taint_lattice()

    def lit(*names):
        return Literal(taint.element(*names))

    program = block(
        Assign("n", lit()),
        Assign("acc", lit(), label="acc starts clean"),
        While(
            "n",
            body=(
                Havoc("chunk"),
                Assign("acc", Join(VarRef("acc"), VarRef("chunk"))),
                AnnotStmt("chunk", taint.element("tainted"), label="mark input"),
                Assign("acc", Join(VarRef("acc"), VarRef("chunk"))),
            ),
        ),
        AssertStmt("acc", taint.element(), label="post-loop sink"),
    )
    result = analyze_flow(program, taint)
    print(f"acc after the loop: {result.final_value('acc')}")
    report(result, "<loop>")
    assert not result.ok  # tainted chunks accumulate across iterations


if __name__ == "__main__":
    taint_scenario()
    nullness_scenario()
    loop_scenario()
    print()
    print("done.")
