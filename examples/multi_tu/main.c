/* The driver: wires the handler table and exercises every layer.
 * Also plants one syntactic casts-away-const bug so the corpus covers
 * a non-flow check in whole-program mode. */
unsigned long strlen(const char *s);
extern void print_banner(void);
extern int quiet_handler(char *arg);
extern int shell_handler(char *arg);

static const char motd[] = "message of the day";

int (*handler)(char *arg);

static int run_handler(char *arg) {
    return handler(arg);
}

unsigned long scribble(void) {
    char *p = (char *)motd;  /* BUG: casts away const */
    p[0] = 'M';
    return strlen(motd);
}

int main(void) {
    print_banner();
    handler = quiet_handler;
    handler = shell_handler;
    return run_handler("now");
}
