/* The reporting layer: calls into input.c through extern declarations
 * and prints what it gets.  BUG: read_user_name() returns tainted
 * environment data, and it reaches printf's format-string argument —
 * a cross-TU tainted-format violation whose flow path spans input.c
 * and report.c. */
int printf(const char *fmt, ...);
extern char *read_user_name(void);

/* TU-private `cached`, distinct from input.c's static of the same name. */
static char *cached;

static char *remembered_name(void) {
    if (!cached) {
        cached = read_user_name();
    }
    return cached;
}

void print_banner(void) {
    char *name = remembered_name();
    printf(name);  /* BUG: tainted format string from another TU */
}
