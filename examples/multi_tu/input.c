/* The input layer: everything this unit exports carries environment
 * data.  The taint is introduced HERE, but the sinks live in other
 * translation units — per-file analysis sees nothing wrong with either
 * side.  Whole-program linking must connect them. */
char *getenv(const char *name);

/* TU-private scratch: a second `cached` also exists in report.c; the
 * linker keeps them separate (internal linkage). */
static char *cached;

char *read_user_name(void) {
    if (!cached) {
        cached = getenv("USER");
    }
    return cached;
}

char *read_locale(void) {
    return getenv("LANG");
}
