/* The dispatch layer: handlers are called only through a function
 * pointer stored by main.c, so the cross-TU call graph must resolve
 * the indirect call (address-taken + type-compatible) to schedule
 * these functions.  BUG: shell_handler sends a tainted locale string
 * to system() — reachable only through the pointer table. */
int system(const char *command);
extern char *read_locale(void);

int quiet_handler(char *arg) {
    return 0;
}

int shell_handler(char *arg) {
    char *locale = read_locale();
    return system(locale);  /* BUG: tainted shell command from input.c */
}
