/* Seeded bug: socket data reaches system().  qlint must report
 * tainted-format on the system sink with a recv -> system path. */
int recv(int fd, char *buf, unsigned long len, int flags);
int system(const char *command);
int strcat_into(char *dst, const char *src);

void run_remote_command(int sock) {
    char command[128];
    recv(sock, command, 127, 0);
    system(command);  /* BUG: remote shell injection */
}
