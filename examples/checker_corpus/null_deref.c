/* Seeded bug: a malloc result is dereferenced with no null check.
 * qlint must report nonnull-deref at the store through the pointer. */
void *malloc(unsigned long size);
void free(void *p);

int *make_counter(void) {
    int *counter = malloc(sizeof(int));
    *counter = 0;  /* BUG: malloc may have returned NULL */
    return counter;
}
