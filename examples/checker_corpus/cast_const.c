/* Seeded bug: a cast drops const from the referenced type (the paper's
 * Table 2 casts-away-const bucket).  qlint must report casts-away-const
 * at the cast expression. */
unsigned long strlen(const char *s);

static const char banner[] = "do not write here";

unsigned long shout(const char *message) {
    char *scratch = (char *)message;  /* BUG: casts away const */
    scratch[0] = 'X';
    return strlen(message);
}

unsigned long widened(char *buffer) {
    const char *view = (const char *)buffer;  /* adds const: fine */
    return strlen(view);
}
