/* A unit with no planted bugs: qlint must report nothing here. */
int printf(const char *fmt, ...);
unsigned long strlen(const char *s);

static int add(int a, int b) { return a + b; }

int main(void) {
    int total = add(40, 2);
    printf("%d %lu\n", total, strlen("constant"));
    return 0;
}
