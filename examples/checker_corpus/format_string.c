/* Seeded bug: environment data reaches a printf format string.
 * qlint must report tainted-format with a getenv -> printf flow path. */
char *getenv(const char *name);
int printf(const char *fmt, ...);
int snprintf(char *buf, unsigned long n, const char *fmt, ...);

static char *pick_greeting(char *preferred, char *fallback) {
    return preferred ? preferred : fallback;
}

void greet(void) {
    char *user_greeting = getenv("GREETING");
    char *greeting = pick_greeting(user_greeting, "hello");
    printf(greeting);  /* BUG: attacker-controlled format string */
}

void greet_safely(void) {
    char *user_greeting = getenv("GREETING");
    printf("%s\n", user_greeting);  /* constant format: fine */
}
