/* Seeded bug: a run-time (dynamic) value reaches a position the
 * specializer needs static ([DRT96]).  qlint must report binding-time
 * on the alloca sink with a rand -> alloca flow path. */
int rand(void);
void *alloca(int size);

void build_scratch_buffer(void) {
    int request = rand();
    int padded = request + 16;
    alloca(padded);  /* BUG: dynamic allocation size */
}
