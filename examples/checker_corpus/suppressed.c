/* Demonstrates in-source suppression: the same planted nonnull bug as
 * null_deref.c, silenced by a qlint allow comment.  The batch run must
 * mark this finding suppressed (it stays out of the baseline). */
void *malloc(unsigned long size);

int *make_counter_reviewed(void) {
    int *counter = malloc(sizeof(int));
    /* qlint: allow(nonnull-deref) -- reviewed: allocator aborts on OOM */
    *counter = 0;
    return counter;
}
