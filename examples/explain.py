#!/usr/bin/env python3
"""Tooling showcase: derivations, blame paths, and scheme presentation.

Three things a user of a qualifier system needs beyond a yes/no answer:

1. **evidence** — a Figure 4b derivation tree showing *why* a program
   typechecks, with explicit (Sub) steps and side conditions, verifiable
   independently of the solver;
2. **blame** — when inference fails, the path of constraints from the
   qualifier's source to the conflicting sink (not just "unsatisfiable");
3. **readable polymorphic types** — the paper's future-work section
   calls simplifying constrained types "an open research problem"; the
   exact core (cycle collapse, interior elimination, transitive
   reduction) is implemented in ``minimize_scheme``.

Run: python examples/explain.py
"""

from repro.cfront.sema import Program
from repro.constinfer.engine import ConstInferenceError, run_mono
from repro.lam.derivation import derive, verify
from repro.lam.infer import QualTypeError, const_language, infer
from repro.lam.parser import parse
from repro.qual.poly import minimize_scheme


def show_derivation() -> None:
    print("=" * 66)
    print("1. a verifiable derivation (Figure 4b)")
    print("=" * 66)
    lang = const_language()
    source = """
    let r = ref 10 in
    let view = r|{const} in
    let w = (r := 42) in
    !view
    ni ni ni
    """
    tree = derive(parse(source), lang)
    verify(tree, lang.lattice)  # independent certificate check
    print(tree)
    print()
    print("verified: every (Sub) edge and side condition re-checked")


def show_blame() -> None:
    print()
    print("=" * 66)
    print("2. blame paths for qualifier conflicts")
    print("=" * 66)
    lang = const_language()
    bad = """
    let r = {const} ref 1 in
    let alias = r in
    alias := 2
    ni ni
    """
    try:
        infer(parse(bad), lang)
    except QualTypeError as exc:
        cause = exc.__cause__
        print("lambda program rejected:")
        if hasattr(cause, "explain"):
            print(cause.explain())  # type: ignore[union-attr]
    print()

    c_bad = (
        "void zero(int *out) { *out = 0; }\n"
        "void start(const int *config) { zero(config); }\n"
    )
    try:
        run_mono(Program.from_source(c_bad, "conflict.c"))
    except ConstInferenceError as exc:
        cause = exc.__cause__
        print("C program rejected (const passed to a writer):")
        if hasattr(cause, "explain"):
            print(cause.explain())  # type: ignore[union-attr]


def show_schemes() -> None:
    print()
    print("=" * 66)
    print("3. polymorphic schemes, raw vs. presented")
    print("=" * 66)
    lang = const_language()
    source = """
    let pick = fn a. fn b. fn w. if w then a else b fi in
    pick (ref 1)
    ni
    """
    result = infer(parse(source), lang, polymorphic=True)
    for scheme in result.let_schemes.values():
        print("raw inferred scheme:")
        print(f"  {scheme}")
        small = minimize_scheme(scheme, lang.lattice)
        print("presented after minimisation:")
        print(f"  {small}")
        print(
            f"  ({len(scheme.quantified)} vars / {len(scheme.constraints)} "
            f"constraints  ->  {len(small.quantified)} vars / "
            f"{len(small.constraints)} constraints)"
        )


if __name__ == "__main__":
    show_derivation()
    show_blame()
    show_schemes()
    print()
    print("done.")
