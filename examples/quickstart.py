#!/usr/bin/env python3
"""Quickstart: a tour of the type-qualifier framework.

Covers, in order:
1. building qualifier lattices (Definitions 1-2, Figure 2),
2. qualified types and the strip/spread translations (Sections 2.1, 3.1),
3. qualified type inference on the paper's lambda language, including the
   const rules of Section 2.4,
4. qualifier polymorphism fixing the paper's id1/id2 problem (Section 3.2),
5. const inference over actual C source (Section 4).

Run: python examples/quickstart.py
"""

from repro.qual import (
    QualConstraint,
    QualifierLattice,
    fresh_qual_var,
    paper_figure2_lattice,
    solve,
    spread,
    std_fun,
    std_ref,
    strip,
    STD_INT,
)
from repro.lam import check_source, parse, Evaluator
from repro.lam.infer import const_language, infer
from repro.cfront.sema import Program
from repro.constinfer import format_report, run_mono, run_poly


def section(title: str) -> None:
    print()
    print("=" * 68)
    print(title)
    print("=" * 68)


def demo_lattices() -> None:
    section("1. Qualifier lattices (Figure 2)")
    lattice = paper_figure2_lattice()
    print(f"lattice: {lattice}")
    print(f"bottom:  {lattice.bottom}")
    print(f"top:     {lattice.top}")
    print()
    print(lattice.render_hasse())
    print()
    const = lattice.atom("const")
    print(f"const atom {const}  <=  top? {lattice.leq(const, lattice.top)}")
    print(f"negate(const) = {lattice.negate('const')} (max element lacking const)")


def demo_qualified_types() -> None:
    section("2. Qualified types, strip, and spread")
    std = std_fun(std_ref(STD_INT), STD_INT)
    print(f"standard type: {std}")
    qualified = spread(std)
    print(f"spread (fresh qualifier vars on every level): {qualified}")
    print(f"strip back: {strip(qualified)}")

    lattice = paper_figure2_lattice()
    k1, k2 = fresh_qual_var(), fresh_qual_var()
    constraints = [
        QualConstraint(lattice.atom("const"), k1),  # const <= k1
        QualConstraint(k1, k2),  # k1 <= k2
    ]
    solution = solve(constraints, lattice)
    print(f"solving const <= k1 <= k2:")
    print(f"  least(k2) = {solution.least_of(k2)}")
    print(f"  classify k2 wrt const: {solution.classify(k2, 'const').value}")


def demo_lambda_inference() -> None:
    section("3. Qualified inference on the example language (const rules)")
    language = const_language()

    ok = "let r = ref 10 in let u = (r := 32) in !r ni ni"
    result = check_source(ok, language)
    print(f"program: {ok}")
    print(f"  type: {result.least_qtype()}  (writable ref, fine)")

    bad = "let r = {const} ref 10 in r := 32 ni"
    print(f"program: {bad}")
    try:
        check_source(bad, language)
        print("  unexpectedly accepted!")
    except Exception as exc:
        print(f"  rejected: {str(exc)[:70]}...")

    value = Evaluator(language.lattice).run_to_int(parse(ok))
    print(f"evaluating the good program (Figure 5 semantics): {value}")


def demo_polymorphism() -> None:
    section("4. Qualifier polymorphism (the id1/id2 problem)")
    source = """
    let id = fn x. x in
    let y = id (ref 1) in
    let z = id ({const} ref 1) in
    42
    ni ni ni
    """
    result = check_source(source, const_language(), polymorphic=True)
    print("let id = fn x. x used at both ref(int) and const ref(int):")
    for scheme in result.let_schemes.values():
        print(f"  inferred scheme: {scheme}")
    print("  one polymorphic id replaces C's id1/id2 pair.")


def demo_const_inference() -> None:
    section("5. Const inference for C (Section 4)")
    c_source = r"""
    int length(const char *s) { int n = 0; while (*s) { s++; n++; } return n; }
    void zero(int *p, int n) { int i; for (i = 0; i < n; i++) p[i] = 0; }
    int peek(int *a) { return a[0]; }
    int *self(int *x) { return x; }
    void driver(void) {
        int buf[8];
        int *q;
        zero(buf, 8);
        q = self(buf);
        *q = 1;
    }
    """
    program = Program.from_source(c_source)
    mono = run_mono(program)
    poly = run_poly(program)
    print(format_report(mono))
    print()
    print(
        f"mono finds {mono.inferred_const_count()} const-able positions; "
        f"poly finds {poly.inferred_const_count()} "
        f"(self's param/return recover under polymorphism)."
    )


if __name__ == "__main__":
    demo_lattices()
    demo_qualified_types()
    demo_lambda_inference()
    demo_polymorphism()
    demo_const_inference()
    print()
    print("done.")
