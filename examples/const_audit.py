#!/usr/bin/env python3
"""Const audit: the workflow the paper's Section 4 system enables.

A maintainer has a C module with a few consts already written.  The
inference (a) verifies the declared consts, (b) finds every additional
position that may be const, (c) shows where polymorphism recovers
positions C's monomorphic type system loses, and (d) rewrites the source
with the new consts inserted.

Run: python examples/const_audit.py
"""

from repro.cfront.sema import Program
from repro.constinfer import (
    annotate_source,
    format_report,
    run_mono,
    run_poly,
    suggestions,
)

MODULE = r"""
/* string-table module: some consts present, many missing */

struct entry { char *key; int value; };

static int table_count = 0;
static struct entry table[64];

/* already properly const */
int str_len(const char *s) {
    int n = 0;
    while (*s) { s++; n++; }
    return n;
}

/* could be const: only reads through both pointers */
int str_eq(char *a, char *b) {
    while (*a && *b) {
        if (*a != *b) return 0;
        a++; b++;
    }
    return *a == *b;
}

/* genuinely needs a writable target */
void str_copy(char *dst, const char *src) {
    while (*src) { *dst = *src; dst++; src++; }
    *dst = 0;
}

/* the strchr pattern: const in, cast out */
char *str_find(const char *s, int c) {
    while (*s) {
        if (*s == c) return (char *)s;
        s++;
    }
    return (char *)0;
}

/* used with both const-ish and written results: mono loses it,
   poly keeps it */
int *cell_of(int *base, int idx) {
    return base + idx;
}

void bump(void) {
    int counters[4];
    int *c;
    counters[0] = 0;
    c = cell_of(counters, 0);
    *c = *c + 1;
}

int read_only_probe(void) {
    int counters[4];
    counters[0] = 7;
    return *cell_of(counters, 0);
}

int lookup(char *key) {
    int i;
    for (i = 0; i < table_count; i = i + 1) {
        if (str_eq(table[i].key, key)) {
            return table[i].value;
        }
    }
    return -1;
}
"""


def main() -> None:
    program = Program.from_source(MODULE, "strtable.c")
    mono = run_mono(program)
    poly = run_poly(program)

    print("MONOMORPHIC AUDIT")
    print(format_report(mono))
    print()
    print("POLYMORPHIC AUDIT")
    print(format_report(poly))
    print()

    print(
        f"declared: {mono.declared_count()}  "
        f"mono const-able: {mono.inferred_const_count()}  "
        f"poly const-able: {poly.inferred_const_count()}  "
        f"total positions: {mono.total_positions()}"
    )
    print()

    print("suggested additions (polymorphic analysis):")
    for s in suggestions(poly):
        print(f"  - {s}")
    print()

    print("REWRITTEN SOURCE (depth-1 parameter consts inserted):")
    print("-" * 68)
    rewritten = annotate_source(MODULE, poly)
    for original, updated in zip(MODULE.split("\n"), rewritten.split("\n")):
        marker = " // <-- const added" if original != updated else ""
        if marker:
            print(f"{updated}{marker}")
    print("-" * 68)
    print("(unchanged lines elided)")


if __name__ == "__main__":
    main()
