#!/usr/bin/env python3
"""Titanium local pointers: qualifier-driven cost optimisation
(Section 5's [YSP+98] instance).

In the Titanium SPMD language, dereferencing a possibly-remote pointer
costs a network round trip; a pointer proven local is a plain load.  The
local qualifier lets the compiler remove the run-time dispatch.  This
example runs local-pointer inference over a small "stencil" program and
reports how much of the access cost the qualifier analysis eliminates.

Run: python examples/titanium_local.py
"""

from repro.apps.localptr import analyze_locality
from repro.lam.parser import parse


def main() -> None:
    # All cells allocated locally except the neighbour's halo cell,
    # which arrives from the network ({} removes the local qualifier).
    source = """
    let own_a = ref 1 in
    let own_b = ref 2 in
    let own_c = ref 3 in
    let halo = {} ref 0 in
    let step = fn unused.
        let a = !own_a in
        let b = !own_b in
        let c = !own_c in
        let h = !halo in
        (own_a := (if a then b else h fi))
        ni ni ni ni in
    step 0
    ni ni ni ni ni
    """
    expr = parse(source)
    costs = analyze_locality(expr, remote_factor=100)

    print("dereference cost after local-pointer inference:")
    for node, cost in costs.dereference_costs(expr):
        kind = "local load " if cost == 1 else "REMOTE get "
        print(f"  {kind} cost={cost:>3}  {node}")
    print()
    print(f"total cost:     {costs.total_cost(expr)}")
    print(f"local fraction: {costs.local_fraction(expr):.0%}")
    print()

    # Without the qualifier every access must be treated as possibly
    # remote: the run-time-test world Titanium's annotation removes.
    naive = sum(100 for _ in costs.dereference_costs(expr))
    print(f"without the qualifier (all accesses dispatched): {naive}")
    print(
        f"speedup from inference: "
        f"{naive / costs.total_cost(expr):.1f}x on this access mix"
    )


if __name__ == "__main__":
    main()
