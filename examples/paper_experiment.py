#!/usr/bin/env python3
"""Rerun the paper's whole evaluation (Section 4.4): Tables 1 and 2 and
Figure 6, over the synthetic benchmark suite.

Prints the regenerated tables next to the paper's published numbers so
the reproduction can be eyeballed.  The count columns match exactly by
construction (the generator realises the paper's position mix); the
timing columns are our Python implementation on modern hardware, checked
only for the paper's *shape* claims (roughly linear scaling; polymorphic
inference within ~3x of monomorphic).

Run: python examples/paper_experiment.py          # full suite (~1 min)
     python examples/paper_experiment.py --quick  # first two benchmarks
"""

import sys

from repro.benchsuite import PAPER_BENCHMARKS, PAPER_TIMINGS, run_benchmark
from repro.constinfer.results import (
    format_figure6,
    format_table1,
    format_table2,
    summarize_shape_claims,
)


def main() -> None:
    specs = PAPER_BENCHMARKS[:2] if "--quick" in sys.argv else PAPER_BENCHMARKS
    rows = []
    for spec in specs:
        print(f"running {spec.name}...", flush=True)
        rows.append(run_benchmark(spec))
    print()

    print("TABLE 1 (regenerated)")
    print(format_table1(rows))
    print()

    print("TABLE 2 (regenerated; times are ours)")
    print(format_table2(rows))
    print()
    print("TABLE 2 (paper, for comparison)")
    print(f"{'Name':<15} {'Compile(s)':>10} {'Mono(s)':>8} {'Poly(s)':>8} "
          f"{'Declared':>9} {'Mono':>6} {'Poly':>6} {'Total':>7}")
    for spec in specs:
        compile_s, mono_s, poly_s = PAPER_TIMINGS[spec.name]
        print(
            f"{spec.name:<15} {compile_s:>10.2f} {mono_s:>8.2f} {poly_s:>8.2f} "
            f"{spec.declared:>9} {spec.mono:>6} {spec.poly:>6} {spec.total:>7}"
        )
    print()

    print(format_figure6(rows))
    print()

    claims = summarize_shape_claims(rows)
    print("shape claims (Section 4.4):")
    print(f"  every benchmark: Mono >= Declared   {claims['all_mono_geq_declared']}")
    print(f"  every benchmark: Poly >= Mono       {claims['all_poly_geq_mono']}")
    print(
        f"  polymorphism gain over mono:        "
        f"{claims['poly_gain_percent_min']:.1f}%..."
        f"{claims['poly_gain_percent_max']:.1f}%  (paper: 5-16%)"
    )
    print(
        f"  max poly/mono time factor:          "
        f"{claims['max_poly_time_factor']:.2f}x  (paper: at most ~3x)"
    )


if __name__ == "__main__":
    main()
