#!/usr/bin/env python3
"""Multi-level trust: qualifier chains beyond two levels ([O/P97]).

The paper's related-work section notes that Orbaek and Palsberg's
two-level trust analysis generalises to multiple levels — "similar to
our idea of a lattice of type qualifiers".  This example encodes a
four-level clearance chain

    public < internal < confidential < secret

as three chained positive qualifiers, then checks a small policy: data
may flow *up* the chain freely, sinks cap the level they accept, and
merging data takes the maximum clearance.

Run: python examples/multi_level_trust.py
"""

from repro.apps.trust import TrustLevels, trust_language
from repro.lam.check import is_well_typed
from repro.lam.infer import infer
from repro.lam.parser import parse

LEVEL_NAMES = ["public", "internal", "confidential", "secret"]


def annot(levels: TrustLevels, index: int) -> str:
    return "{" + " ".join(sorted(levels.level(index).present)) + "}"


def main() -> None:
    levels = TrustLevels(4)
    lang = trust_language(levels)

    print("clearance chain:", " < ".join(LEVEL_NAMES))
    print("lattice:", levels.lattice)
    print()

    # Flows up the chain are fine; flows down are rejected.
    print(f"{'source':<14} {'sink caps at':<16} verdict")
    for source_level in range(4):
        for sink_level in (1, 3):
            program = (
                f"let doc = {annot(levels, source_level)} 7 in "
                f"(doc)|{annot(levels, sink_level)} ni"
            )
            ok = is_well_typed(parse(program), lang)
            print(
                f"{LEVEL_NAMES[source_level]:<14} "
                f"{LEVEL_NAMES[sink_level]:<16} "
                f"{'accepted' if ok else 'REJECTED'}"
            )
    print()

    # Merging takes the max level.
    merged = (
        f"if 1 then {annot(levels, 1)} 10 else {annot(levels, 2)} 20 fi"
    )
    result = infer(parse(merged), lang)
    merged_level = levels.level_of(result.top_qual())
    print(
        f"merging internal and confidential data yields: "
        f"{LEVEL_NAMES[merged_level]}"
    )
    assert merged_level == 2

    # Inference keeps every result on the chain (no nonsense elements).
    assert levels.is_chain_element(result.top_qual())
    print("inferred qualifier respects the chain invariant: True")

    # A declassification function, modelled like the taint sanitizer:
    # trusted to lower secret to public.
    from repro.qual.qtypes import q_fun, q_int

    env = {
        "declassify": q_fun(
            levels.lattice.bottom,
            q_int(levels.level(3)),  # accepts anything up to secret
            q_int(levels.level(0)),  # result is public by fiat
        )
    }
    program = (
        f"let top_secret = {annot(levels, 3)} 99 in "
        f"(declassify top_secret)|{annot(levels, 0)} ni"
    )
    ok = is_well_typed(parse(program), lang, env=env)
    print(f"declassify(secret) accepted at a public sink: {ok}")
    assert ok


if __name__ == "__main__":
    main()
