#!/usr/bin/env python3
"""Binding-time analysis: the partial-evaluation qualifier instance
(Sections 1-2, [Hen91]/[DHM95]).

A specialiser wants to know which parts of a program depend only on
compile-time-known ("static") data and which need the run-time input
("dynamic").  The qualifier framework does the whole job: mark the
run-time input {dynamic}, infer, and read binding times off the least
solution.  The well-formedness rule "nothing dynamic inside a static
value" comes along for free.

Run: python examples/binding_time.py
"""

from repro.apps.bta import analyze_binding_times, binding_time_language
from repro.lam.ast import IntLit, Let, walk
from repro.lam.infer import QualTypeError, infer
from repro.lam.parser import parse


def main() -> None:
    # An "interpreter" with a static table and a dynamic query: the
    # table lookups stay static, everything touched by the query is
    # dynamic.  (The language has no arithmetic, so the computation is
    # expressed with conditionals and refs.)
    source = """
    let query = {dynamic} 3 in
    let table_a = 10 in
    let table_b = 20 in
    let pick = fn q. if q then table_a else table_b fi in
    let static_part = if 1 then table_a else table_b fi in
    let dynamic_part = pick query in
    dynamic_part
    ni ni ni ni ni ni
    """
    expr = parse(source)
    result = analyze_binding_times(expr)

    print("binding times of let-bound expressions:")
    for node in walk(expr):
        if isinstance(node, Let):
            time = "dynamic" if result.is_dynamic(node.bound) else "static"
            print(f"  {node.name:<14} {time}")

    print()
    frac = result.static_fraction()
    print(f"{frac:.0%} of expression nodes are static (specialisable).")
    print()

    # The flagship well-formedness condition: a static value may not
    # contain anything dynamic, so asserting a function static while its
    # body captures dynamic data is rejected.
    print("well-formedness: 'nothing dynamic inside a static value'")
    bad = """
    let input = {dynamic} 1 in
    let f = fn x. if input then x else 0 fi in
    (f)|{}
    ni ni
    """
    try:
        infer(parse(bad), binding_time_language())
        print("  unexpectedly accepted!")
    except QualTypeError as exc:
        print(f"  asserting the closure static is rejected:")
        print(f"    {str(exc)[:84]}")


if __name__ == "__main__":
    main()
