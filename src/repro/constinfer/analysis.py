"""Constraint generation for C const inference (paper Sections 4.1–4.2).

Every C variable denotes an updateable cell; the ``l`` translation
(:func:`repro.cfront.ctypes.lvalue_qtype`) gives each declaration a
qualified ref type with a fresh qualifier variable per level.  This
module walks function bodies generating atomic constraints over those
variables:

* a source-level ``const`` at some level becomes a *lower bound*
  (``const <= kappa``);
* an assignment, ``++``/``--``, or compound assignment through a cell
  emits the (Assign') *upper bound* ``kappa <= not-const`` on that cell's
  ref qualifier;
* value flow (initialisation, assignment, argument passing, return)
  emits ``Q_src <= Q_dst`` at the top level and *equates* the qualifiers
  of pointed-to cells — the (SubRef) invariance that keeps aliases
  consistent;
* struct fields share one cell type per struct *definition* (Section 4.2),
  so ``a.x`` and ``b.x`` agree on everything except the outermost
  qualifier of ``a`` and ``b`` themselves;
* typedefs were macro-expanded by the parser, so typedef'd declarations
  share nothing;
* explicit casts sever the association between operand and result; the
  cast type's own ``const``s still apply;
* calls to *undefined* (library) functions pin every non-``const``
  pointer-level parameter to non-const — "lack of const does mean
  can't-be-const" for libraries;
* varargs and surplus call arguments are ignored, as the paper does.

The builder is shared by the monomorphic and polymorphic engines; the
only difference is how function signatures are looked up (shared
variables vs. scheme instantiation) and when generalisation happens —
see :mod:`repro.constinfer.engine`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from ..cfront.cast import (
    Assignment,
    Binary,
    Call,
    CaseStmt,
    Cast,
    CExpr,
    CharConst,
    Comma,
    Compound,
    Conditional,
    CStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    ExprStmt,
    FloatConst,
    ForStmt,
    FuncDecl,
    FuncDef,
    Ident,
    IfStmt,
    Index,
    InitList,
    IntConst,
    LabeledStmt,
    Member,
    ParamDecl,
    ReturnStmt,
    SizeofType,
    StringConst,
    SwitchStmt,
    Unary,
    VarDecl,
    WhileStmt,
    BreakStmt,
    ContinueStmt,
    GotoStmt,
)
from ..cfront.ctypes import (
    CBase,
    CPointer,
    CType,
    TranslatedType,
    lvalue_qtype,
)
from ..cfront.sema import Program
from ..qual.constraints import Origin, QualConstraint
from ..qual.lattice import LatticeElement, QualifierLattice
from ..qual.poly import QualScheme
from ..qual.qtypes import (
    QCon,
    QType,
    Qual,
    QualVar,
    REF,
    fresh_qual_var,
    use_uid_band,
)
from ..qual.qualifiers import const_lattice


@dataclass(frozen=True)
class ConstPosition:
    """One 'interesting' const position (Section 4.4): a pointer-level
    qualifier on a defined function's parameter or result."""

    function: str
    where: str  # e.g. "param 0 (s)" or "return"
    depth: int  # pointer depth: 1 = the directly pointed-to cell
    var: QualVar
    declared: bool
    line: int = 0

    def describe(self) -> str:
        marker = " [declared const]" if self.declared else ""
        return f"{self.function}: {self.where} depth {self.depth}{marker}"


@dataclass
class FunctionSig:
    """Qualified signature of one function.

    ``params`` holds the l-value (cell) type of each parameter;
    ``ret_cell`` a pseudo-cell whose contents type is the return r-value.
    ``fun_qtype`` packages the r-value view (``cfunN`` shape) used when
    the function's name occurs as a value.
    """

    name: str
    params: list[TranslatedType]
    ret_cell: TranslatedType
    fun_qtype: QType
    varargs: bool
    defined: bool

    @property
    def param_rvalues(self) -> list[QType]:
        return [p.rvalue for p in self.params]

    @property
    def ret_rvalue(self) -> QType:
        return self.ret_cell.rvalue


def _is_fun_shape(t: QType) -> bool:
    con = t.constructor
    return con is not None and con.name.startswith("cfun")


class ConstInference:
    """Shared constraint-generation state for one whole-program run."""

    def __init__(
        self,
        program: Program,
        lattice: QualifierLattice | None = None,
        conservative_libraries: bool = True,
        share_struct_fields: bool = True,
    ):
        """``conservative_libraries`` and ``share_struct_fields`` default
        to the paper's rules (Section 4.2); turning either off selects the
        corresponding ablation: optimistic library parameters, or fresh
        field qualifiers per access (which over-counts const positions by
        ignoring aliasing through shared declarations)."""
        self.program = program
        self.lattice = lattice if lattice is not None else const_lattice()
        self.conservative_libraries = conservative_libraries
        self.share_struct_fields = share_struct_fields
        if "const" not in self.lattice:
            raise ValueError("const inference requires a lattice containing 'const'")
        self.constraints: list[QualConstraint] = []
        self.field_cells: dict[tuple[str, str], TranslatedType] = {}
        self.global_cells: dict[str, TranslatedType] = {}
        self.signatures: dict[str, FunctionSig] = {}
        self.schemes: dict[str, QualScheme] = {}
        self.positions: list[ConstPosition] = []
        self.not_const: LatticeElement = self.lattice.negate("const")
        self.const_low: LatticeElement = self.lattice.atom("const")
        from ..cfront.ctypes import base_con

        self._scalar_shape = QCon(base_con("int"))
        self._origin_cache: dict[tuple[str, int, int, str], Origin] = {}
        # File of the declaration being analysed; origins emitted while a
        # function body (or global initializer) is processed carry it, so
        # every constraint gets a full file:line:col provenance span.
        self._current_file: str = ""
        # Guards lazy creation of *shared* cells (globals, struct fields)
        # when function bodies are analysed by concurrent wavefront
        # workers; uncontended in the serial engines.  When the wavefront
        # engine reserves a low uid band for such stragglers it lands in
        # _shared_band, keeping their uids below every SCC boundary.
        self._shared_lock = threading.Lock()
        self._shared_band = None

    # ------------------------------------------------------------------
    # Pickling (locks don't pickle; views are never pickled)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_shared_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shared_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Worker-local views (parallel wavefront scheduling)
    # ------------------------------------------------------------------
    def local_view(self) -> "ConstInference":
        """A shallow view for one wavefront worker.

        The view shares every piece of whole-program state — program,
        lattice, shared cells, signatures, schemes, the lock — but
        buffers ``constraints`` and ``positions`` locally, so concurrent
        workers never interleave their output.  The coordinator merges
        the buffers back in deterministic component order via
        :meth:`absorb`.
        """
        view = object.__new__(ConstInference)
        view.__dict__.update(self.__dict__)
        view.constraints = []
        view.positions = []
        view._origin_cache = {}
        return view

    def absorb(self, view: "ConstInference") -> None:
        """Append a worker view's buffered constraints and positions."""
        self.constraints.extend(view.constraints)
        self.positions.extend(view.positions)

    # ------------------------------------------------------------------
    # Constraint plumbing
    # ------------------------------------------------------------------
    def emit(self, lhs: Qual, rhs: Qual, origin: Origin) -> None:
        self.constraints.append(QualConstraint(lhs, rhs, origin))

    def origin(
        self, reason: str, line: int = 0, col: int = 0, file: str | None = None
    ) -> Origin:
        # Origins repeat heavily (one per constraint, few distinct
        # reason/span pairs per statement); interning them keeps emit()
        # allocation-light on the hot path.
        resolved_file = self._current_file if file is None else file
        key = (reason, line, col, resolved_file)
        cached = self._origin_cache.get(key)
        if cached is None:
            cached = self._origin_cache[key] = Origin(
                reason,
                filename=resolved_file or None,
                line=line or None,
                column=col or None,
            )
        return cached

    def flow(self, src: QType, dst: QType, origin: Origin) -> None:
        """Value flow ``src <= dst``: top-level subtyping, (SubRef)
        equality below pointers, contravariant function parameters."""
        self.emit(src.qual, dst.qual, origin)
        if src.constructor is REF and dst.constructor is REF:
            self.equate(src.args[0], dst.args[0], origin)
        elif (
            _is_fun_shape(src)
            and _is_fun_shape(dst)
            and src.constructor == dst.constructor
        ):
            *src_params, src_ret = src.args
            *dst_params, dst_ret = dst.args
            for source_param, dest_param in zip(src_params, dst_params):
                self.flow(dest_param, source_param, origin)
            self.flow(src_ret, dst_ret, origin)
        # Mismatched shapes (null-pointer constants, int/pointer mixing
        # through implicit conversion) keep only the top-level constraint:
        # "for implicit casts we retain as much information as possible".

    def equate(self, a: QType, b: QType, origin: Origin) -> None:
        """Structural qualifier equality (both directions, all levels)."""
        self.emit(a.qual, b.qual, origin)
        self.emit(b.qual, a.qual, origin)
        if a.constructor is not None and a.constructor == b.constructor:
            for left, right in zip(a.args, b.args):
                self.equate(left, right, origin)

    def fresh_scalar(self) -> QType:
        return QType(fresh_qual_var(), self._scalar_shape)

    def scalar_result(self, operands: tuple[QType, ...], e: CExpr) -> QType:
        """Hook: the scalar result of an operator over ``operands``.

        Const inference discards operand qualifiers (constness lives on
        cells, not computed values), so the base returns an unconstrained
        scalar.  The qlint checker overrides this to flow each operand's
        top-level qualifier into the result, so value qualifiers such as
        ``tainted`` and ``dynamic`` survive arithmetic."""
        return self.fresh_scalar()

    def fresh_cell(self) -> QType:
        """An unconstrained cell for untypable l-values (casts, unknown
        fields): everything about it stays unconstrained."""
        return QType(fresh_qual_var(), QCon(REF, (self.fresh_scalar(),)))

    # ------------------------------------------------------------------
    # Declarations and shared cells
    # ------------------------------------------------------------------
    def cell_for_type(
        self, ct: CType, line: int = 0, col: int = 0, file: str | None = None
    ) -> TranslatedType:
        """Translate a declaration's C type, emitting the declared-const
        lower bounds."""
        translated = lvalue_qtype(ct)
        origin = self.origin("declared const", line, col, file)
        for level in translated.levels:
            if level.declared_const:
                self.emit(self.const_low, level.var, origin)
        return translated

    def global_cell(self, name: str) -> Optional[TranslatedType]:
        cell = self.global_cells.get(name)
        if cell is not None:
            return cell
        decl = self.program.globals.get(name)
        if decl is None:
            return None
        # Shared cells created lazily from a wavefront worker escape the
        # worker's uid band (they are monomorphic whole-program state,
        # not SCC-local variables) and are created exactly once.
        with self._shared_lock:
            cell = self.global_cells.get(name)
            if cell is None:
                with use_uid_band(self._shared_band):
                    cell = self.cell_for_type(
                        decl.type, decl.line, decl.col, decl.file
                    )
                self.global_cells[name] = cell
        return cell

    def field_cell(self, tag: str, field_name: str) -> TranslatedType:
        key = (tag, field_name)
        if self.share_struct_fields:
            cell = self.field_cells.get(key)
            if cell is not None:
                return cell
        struct = self.program.structs.get(tag)
        ctype: CType = CBase("int")
        line = col = 0
        file = ""
        if struct is not None:
            for f in struct.fields:
                if f.name == field_name:
                    ctype = f.type
                    line, col, file = f.line, f.col, f.file
                    break
        if not self.share_struct_fields:
            # Ablation: a fresh cell per access, nothing shared.
            cell = self.cell_for_type(ctype, line, col, file)
            self.field_cells[key] = cell
            return cell
        with self._shared_lock:
            cell = self.field_cells.get(key)
            if cell is None:
                with use_uid_band(self._shared_band):
                    cell = self.cell_for_type(ctype, line, col, file)
                self.field_cells[key] = cell
        return cell

    # ------------------------------------------------------------------
    # Function signatures
    # ------------------------------------------------------------------
    def make_signature(
        self,
        name: str,
        ret: CType,
        params: tuple[ParamDecl, ...],
        varargs: bool,
        defined: bool,
        line: int,
        col: int = 0,
        file: str = "",
    ) -> FunctionSig:
        from ..cfront.ctypes import fun_con

        param_cells = [
            self.cell_for_type(
                p.type, p.line or line, p.col or col, p.file or file
            )
            for p in params
        ]
        ret_cell = self.cell_for_type(ret, line, col, file)
        shape_args = tuple(c.rvalue for c in param_cells) + (ret_cell.rvalue,)
        fun_qtype = QType(fresh_qual_var(), QCon(fun_con(len(param_cells)), shape_args))
        sig = FunctionSig(name, param_cells, ret_cell, fun_qtype, varargs, defined)
        self.signatures[name] = sig

        if defined:
            for index, (decl, cell) in enumerate(zip(params, param_cells)):
                label = f"param {index} ({decl.name})" if decl.name else f"param {index}"
                for level in cell.levels:
                    if level.depth >= 1:
                        self.positions.append(
                            ConstPosition(
                                name, label, level.depth, level.var,
                                level.declared_const, decl.line or line,
                            )
                        )
            for level in ret_cell.levels:
                if level.depth >= 1:
                    self.positions.append(
                        ConstPosition(
                            name, "return", level.depth, level.var,
                            level.declared_const, line,
                        )
                    )
        else:
            self.apply_library_bounds(sig, line, col, file)
        return sig

    def apply_library_bounds(
        self, sig: FunctionSig, line: int, col: int = 0, file: str = ""
    ) -> None:
        """Section 4.2's conservative treatment of undefined functions:
        any pointer-level parameter position not declared const is pinned
        non-const (the library might write through it)."""
        if not self.conservative_libraries:
            return
        origin = self.origin(f"library function {sig.name}", line, col, file)
        for cell in sig.params:
            for level in cell.levels:
                if level.depth >= 1 and not level.declared_const:
                    self.emit(level.var, self.not_const, origin)

    def signature_for(self, fdef: FuncDef) -> FunctionSig:
        sig = self.signatures.get(fdef.name)
        if sig is None:
            sig = self.make_signature(
                fdef.name,
                fdef.ret,
                fdef.params,
                fdef.varargs,
                True,
                fdef.line,
                fdef.col,
                fdef.file,
            )
        return sig

    def prototype_signature(self, decl: FuncDecl) -> FunctionSig:
        sig = self.signatures.get(decl.name)
        if sig is None:
            sig = self.make_signature(
                decl.name,
                decl.ret,
                decl.params,
                decl.varargs,
                False,
                decl.line,
                decl.col,
                decl.file,
            )
        return sig

    def function_value(self, name: str, line: int) -> Optional[QType]:
        """The qualified r-value when a function's name occurs in an
        expression: a scheme instantiation if the function was already
        generalised (Var'), otherwise the shared monomorphic signature."""
        scheme = self.schemes.get(name)
        if scheme is not None:
            body, carried = scheme.instantiate()
            self.constraints.extend(carried)
            return body
        sig = self.signatures.get(name)
        if sig is not None:
            return sig.fun_qtype
        fdef = self.program.functions.get(name)
        if fdef is not None:
            # A defined function referenced before its signature exists
            # (possible only outside the FDG traversal order, e.g. from a
            # global initializer); create the real signature, never a
            # conservative library one.
            return self.signature_for(fdef).fun_qtype
        proto = self.program.prototypes.get(name)
        if proto is not None:
            return self.prototype_signature(proto).fun_qtype
        return None

    # ------------------------------------------------------------------
    # Expression analysis
    # ------------------------------------------------------------------
    def lvalue(self, e: CExpr, scope: dict[str, TranslatedType]) -> QType:
        """Qualified cell (REF-shaped) of an l-value expression."""
        match e:
            case Ident(name=n):
                if n in scope:
                    return scope[n].qtype
                cell = self.global_cell(n)
                if cell is not None:
                    return cell.qtype
                return self.fresh_cell()
            case Unary(op="*", operand=inner, postfix=False):
                rv = self.rvalue(inner, scope)
                if rv.constructor is REF:
                    self.note_deref(rv, e)
                    return rv
                return self.fresh_cell()
            case Index(base=b, index=i):
                rv = self.rvalue(b, scope)
                self.rvalue(i, scope)
                if rv.constructor is REF:
                    self.note_deref(rv, e)
                    return rv
                return self.fresh_cell()
            case Member(base=b, field_name=f, arrow=arrow):
                tag = self._member_tag(b, arrow, scope)
                if tag is None:
                    return self.fresh_cell()
                return self.field_cell(tag, f).qtype
            case Cast(operand=inner, target_type=t):
                self.rvalue(inner, scope)
                cell = self.cell_for_type(CPointer(t), e.line, e.col)
                # Cell of the cast result: sever the association.
                return cell.rvalue if cell.rvalue.constructor is REF else self.fresh_cell()
            case Comma(left=left, right=right):
                self.rvalue(left, scope)
                return self.lvalue(right, scope)
            case Conditional():
                rv = self.rvalue(e, scope)
                return rv if rv.constructor is REF else self.fresh_cell()
            case _:
                # Not an l-value form; evaluate for effects, fresh cell.
                self.rvalue(e, scope)
                return self.fresh_cell()

    def _member_tag(
        self, base: CExpr, arrow: bool, scope: dict[str, TranslatedType]
    ) -> Optional[str]:
        """Struct tag of a member access's base, read off the qualified
        shape (struct r-values are ``struct <tag>`` nullary shapes)."""
        if arrow:
            rv = self.rvalue(base, scope)
            if rv.constructor is REF:
                self.note_deref(rv, base)
                rv = rv.args[0]
        else:
            cell = self.lvalue(base, scope)
            rv = cell.args[0] if cell.constructor is REF else cell
        con = rv.constructor
        if con is not None and (
            con.name.startswith("struct ") or con.name.startswith("union ")
        ):
            return con.name.split(" ", 1)[1]
        return None

    def note_deref(self, value: QType, e: CExpr) -> None:
        """Hook: a REF-shaped value is being dereferenced at ``e``.

        The base analysis does nothing; the qlint checker overrides this
        to record deref sites for the nonnull-deref check."""

    def write_through(self, cell: QType, e: CExpr, reason: str) -> None:
        """(Assign'): the cell written through must not be const."""
        self.emit(cell.qual, self.not_const, self.origin(reason, e.line, e.col))

    def rvalue(self, e: CExpr, scope: dict[str, TranslatedType]) -> QType:
        match e:
            case IntConst() | FloatConst() | CharConst() | SizeofType():
                return self.fresh_scalar()

            case StringConst():
                # Pointer to char cells whose constness stays free: ANSI
                # leaves writes to string literals undefined, and pinning
                # them const would reject common (if dubious) C.
                cell = self.cell_for_type(CPointer(CBase("char")), e.line, e.col)
                return cell.rvalue

            case Ident(name=n):
                if n in scope:
                    return scope[n].qtype.args[0]
                cell = self.global_cell(n)
                if cell is not None:
                    return cell.qtype.args[0]
                fn = self.function_value(n, e.line)
                if fn is not None:
                    return fn
                if n in self.program.enum_constants:
                    return self.fresh_scalar()
                return self.fresh_scalar()

            case Unary(op="&", operand=inner):
                # The address of a cell *is* the cell's ref type: writes
                # through the pointer see the same qualifier.
                return self.lvalue(inner, scope)

            case Unary(op="*", operand=_):
                cell = self.lvalue(e, scope)
                return cell.args[0] if cell.constructor is REF else self.fresh_scalar()

            case Unary(op="++" | "--", operand=inner):
                cell = self.lvalue(inner, scope)
                if cell.constructor is REF:
                    self.write_through(cell, e, f"{e.op} writes its operand")
                    return cell.args[0]
                return self.fresh_scalar()

            case Unary(operand=inner):  # - + ~ ! sizeof-expr
                operand = self.rvalue(inner, scope)
                return self.scalar_result((operand,), e)

            case Binary(op=op, left=left, right=right):
                lv = self.rvalue(left, scope)
                rv = self.rvalue(right, scope)
                if op in ("+", "-"):
                    left_ptr = lv.constructor is REF
                    right_ptr = rv.constructor is REF
                    if left_ptr and not right_ptr:
                        return lv
                    if right_ptr and not left_ptr:
                        return rv
                return self.scalar_result((lv, rv), e)

            case Assignment(op=op, target=target, value=value):
                cell = self.lvalue(target, scope)
                rv = self.rvalue(value, scope)
                if cell.constructor is REF:
                    self.write_through(cell, e, "assignment target")
                    if op == "=":
                        self.flow(rv, cell.args[0], self.origin("assignment", e.line, e.col))
                    return cell.args[0]
                return self.fresh_scalar()

            case Conditional(cond=c, then=t, other=o):
                self.rvalue(c, scope)
                a = self.rvalue(t, scope)
                b = self.rvalue(o, scope)
                if a.constructor is REF and b.constructor is REF:
                    # Both arms may be the result: alias both ways.
                    self.flow(b, a, self.origin("conditional merge", e.line, e.col))
                    return a
                if a.constructor is REF:
                    return a
                if b.constructor is REF:
                    return b
                return self.scalar_result((a, b), e)

            case Call(func=f, args=args):
                return self._call(f, args, scope, e.line, e.col)

            case Member() | Index():
                cell = self.lvalue(e, scope)
                return cell.args[0] if cell.constructor is REF else self.fresh_scalar()

            case Cast(target_type=t, operand=inner):
                self.rvalue(inner, scope)
                # "For explicit casts we choose to lose any association
                # between the value being cast and the resulting type."
                return self.cell_for_type(t, e.line, e.col).rvalue

            case Comma(left=left, right=right):
                self.rvalue(left, scope)
                return self.rvalue(right, scope)

            case InitList(items=items):
                for item in items:
                    self.rvalue(item, scope)
                return self.fresh_scalar()

            case _:  # pragma: no cover - exhaustive over AST
                return self.fresh_scalar()

    def _call(
        self,
        func: CExpr,
        args: tuple[CExpr, ...],
        scope: dict[str, TranslatedType],
        line: int,
        col: int = 0,
    ) -> QType:
        callee: Optional[QType] = None
        unknown_name: Optional[str] = None
        if isinstance(func, Ident) and func.name not in scope and func.name not in self.program.globals:
            callee = self.function_value(func.name, line)
            if callee is None:
                unknown_name = func.name
        else:
            callee = self.rvalue(func, scope)

        arg_types = [self.rvalue(a, scope) for a in args]

        if callee is not None:
            # Calling through a function pointer: unwrap cells.
            while callee.constructor is REF:
                callee = callee.args[0]
            if _is_fun_shape(callee):
                *param_types, ret_type = callee.args
                for arg_type, param_type in zip(arg_types, param_types):
                    # Surplus arguments (varargs or miscalls) are ignored.
                    self.flow(arg_type, param_type, self.origin("call argument", line, col))
                return ret_type

        # Unknown callee (implicitly declared function): maximally
        # conservative — every pointer level of every argument may be
        # written through by the callee.
        origin = self.origin(
            f"call to unknown function {unknown_name or '<expr>'}", line, col
        )
        for arg_type in arg_types:
            self._pin_pointer_levels(arg_type, origin)
        return self.fresh_scalar()

    def _pin_pointer_levels(self, value: QType, origin: Origin) -> None:
        """Pin every reachable cell qualifier of a pointer value non-const."""
        stack = [value]
        while stack:
            current = stack.pop()
            if current.constructor is REF:
                self.emit(current.qual, self.not_const, origin)
                stack.extend(current.args)

    # ------------------------------------------------------------------
    # Statement analysis
    # ------------------------------------------------------------------
    def analyze_function(self, fdef: FuncDef) -> None:
        self._current_file = fdef.file
        sig = self.signature_for(fdef)
        scope: dict[str, TranslatedType] = {}
        for decl, cell in zip(fdef.params, sig.params):
            if decl.name:
                scope[decl.name] = cell
        self._stmt(fdef.body, scope, sig)

    def analyze_global_initializers(self) -> None:
        """Analysed after the FDG traversal, per Section 4.3."""
        for name, decl in self.program.globals.items():
            if decl.init is None:
                continue
            self._current_file = decl.file
            cell = self.global_cell(name)
            assert cell is not None
            if isinstance(decl.init, InitList):
                for item in decl.init.items:
                    self.rvalue(item, {})
                continue
            rv = self.rvalue(decl.init, {})
            self.flow(
                rv, cell.qtype.args[0], self.origin(f"initializer of {name}", decl.line, decl.col, decl.file)
            )

    def _stmt(self, s: CStmt, scope: dict[str, TranslatedType], sig: FunctionSig) -> None:
        match s:
            case Compound(body=body):
                inner = dict(scope)
                for child in body:
                    self._stmt(child, inner, sig)
            case DeclStmt(decls=decls):
                for decl in decls:
                    cell = self.cell_for_type(
                        decl.type, decl.line, decl.col, decl.file
                    )
                    scope[decl.name] = cell
                    if decl.init is None:
                        continue
                    if isinstance(decl.init, InitList):
                        for item in decl.init.items:
                            self.rvalue(item, scope)
                        continue
                    rv = self.rvalue(decl.init, scope)
                    self.flow(
                        rv,
                        cell.qtype.args[0],
                        self.origin(f"initializer of {decl.name}", decl.line, decl.col, decl.file),
                    )
            case ExprStmt(expr=e):
                self.rvalue(e, scope)
            case IfStmt(cond=c, then=t, other=o):
                self.rvalue(c, scope)
                self._stmt(t, dict(scope), sig)
                if o is not None:
                    self._stmt(o, dict(scope), sig)
            case WhileStmt(cond=c, body=b):
                self.rvalue(c, scope)
                self._stmt(b, dict(scope), sig)
            case DoWhileStmt(body=b, cond=c):
                self._stmt(b, dict(scope), sig)
                self.rvalue(c, scope)
            case ForStmt(init=init, cond=cond, step=step, body=b):
                inner = dict(scope)
                if isinstance(init, DeclStmt):
                    self._stmt(init, inner, sig)
                elif init is not None:
                    self.rvalue(init, inner)
                if cond is not None:
                    self.rvalue(cond, inner)
                if step is not None:
                    self.rvalue(step, inner)
                self._stmt(b, inner, sig)
            case ReturnStmt(value=v):
                if v is not None:
                    rv = self.rvalue(v, scope)
                    self.flow(rv, sig.ret_rvalue, self.origin("return value", s.line, s.col))
            case SwitchStmt(value=v, body=b):
                self.rvalue(v, scope)
                self._stmt(b, dict(scope), sig)
            case CaseStmt(value=v, stmt=inner_stmt):
                if v is not None:
                    self.rvalue(v, scope)
                self._stmt(inner_stmt, scope, sig)
            case LabeledStmt(stmt=inner_stmt):
                self._stmt(inner_stmt, scope, sig)
            case EmptyStmt() | BreakStmt() | ContinueStmt() | GotoStmt():
                return
            case _:  # pragma: no cover - exhaustive over AST
                return
