"""Result counting and report formatting for the Section 4.4 experiment.

For each benchmark the paper reports (Table 2): compile time, monomorphic
and polymorphic inference times, the number of declared interesting
consts, the counts inferred by each analysis (positions that must or may
be const — the paper's categories (1) + (3)), and the total number of
syntactically possible const positions.  Figure 6 presents the same data
as stacked percentages of the total:

    Declared | Mono-extra | Poly-extra | Other

This module computes one :class:`BenchmarkRow` per program from the two
engine runs and renders Table 1, Table 2, and a textual Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront.sema import Program
from ..qual.solver import SolverStats
from .engine import InferenceRun, StageTimings, run_mono, run_poly


@dataclass(frozen=True)
class BenchmarkRow:
    """One row of Table 2 (plus the Table 1 metadata)."""

    name: str
    lines: int
    description: str
    compile_seconds: float
    mono_seconds: float
    poly_seconds: float
    declared: int
    mono: int
    poly: int
    total_possible: int
    #: Pipeline shape of each engine's final solve (None for rows built
    #: before the condensation solver, e.g. hand-written fixtures).
    mono_stats: SolverStats | None = None
    poly_stats: SolverStats | None = None
    #: Per-stage wall-clock breakdown (parse/congen/solve/generalize) of
    #: each engine run; ``from_cache`` marks warm cache loads.
    mono_timings: StageTimings | None = None
    poly_timings: StageTimings | None = None

    # -- Figure 6 quantities -------------------------------------------
    @property
    def mono_extra(self) -> int:
        """Consts the monomorphic analysis finds beyond the declared ones."""
        return max(0, self.mono - self.declared)

    @property
    def poly_extra(self) -> int:
        """Consts polymorphic inference finds beyond monomorphic."""
        return max(0, self.poly - self.mono)

    @property
    def other(self) -> int:
        """Positions neither analysis can make const."""
        return max(0, self.total_possible - self.poly)

    def percentages(self) -> dict[str, float]:
        """The Figure 6 stacked percentages (sum to 100)."""
        total = max(1, self.total_possible)
        return {
            "declared": 100.0 * self.declared / total,
            "mono": 100.0 * self.mono_extra / total,
            "poly": 100.0 * self.poly_extra / total,
            "other": 100.0 * self.other / total,
        }

    @property
    def poly_over_mono_ratio(self) -> float:
        """How many more consts polymorphism finds, as a ratio."""
        return self.poly / self.mono if self.mono else float("inf")

    @property
    def poly_time_factor(self) -> float:
        """Poly time over mono time; the paper observes at most ~3x."""
        return (
            self.poly_seconds / self.mono_seconds
            if self.mono_seconds > 0
            else float("inf")
        )


def analyze_program(
    program: Program,
    name: str = "program",
    lines: int | None = None,
    description: str = "",
    compile_seconds: float = 0.0,
) -> BenchmarkRow:
    """Run both engines over a program and assemble its Table 2 row."""
    mono = run_mono(program)
    poly = run_poly(program)
    return make_row(
        name,
        lines if lines is not None else program.total_lines(),
        description,
        compile_seconds,
        mono,
        poly,
    )


def make_row(
    name: str,
    lines: int,
    description: str,
    compile_seconds: float,
    mono: InferenceRun,
    poly: InferenceRun,
) -> BenchmarkRow:
    if mono.total_positions() != poly.total_positions():
        raise ValueError(
            "mono and poly runs disagree on the number of interesting "
            f"positions: {mono.total_positions()} vs {poly.total_positions()}"
        )
    return BenchmarkRow(
        name=name,
        lines=lines,
        description=description,
        compile_seconds=compile_seconds,
        mono_seconds=mono.elapsed_seconds,
        poly_seconds=poly.elapsed_seconds,
        declared=mono.declared_count(),
        mono=mono.inferred_const_count(),
        poly=poly.inferred_const_count(),
        total_possible=mono.total_positions(),
        mono_stats=mono.solution.stats,
        poly_stats=poly.solution.stats,
        mono_timings=mono.timings,
        poly_timings=poly.timings,
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def format_table1(rows: list[BenchmarkRow]) -> str:
    """Table 1: benchmark names, line counts, descriptions."""
    out = ["Name            Lines   Description"]
    for row in rows:
        out.append(f"{row.name:<15} {row.lines:>6}  {row.description}")
    return "\n".join(out)


def format_table2(rows: list[BenchmarkRow]) -> str:
    """Table 2: times and const counts, one line per benchmark."""
    header = (
        f"{'Name':<15} {'Compile(s)':>10} {'Mono(s)':>8} {'Poly(s)':>8} "
        f"{'Declared':>9} {'Mono':>6} {'Poly':>6} {'Total':>7}"
    )
    out = [header]
    for row in rows:
        out.append(
            f"{row.name:<15} {row.compile_seconds:>10.2f} {row.mono_seconds:>8.2f} "
            f"{row.poly_seconds:>8.2f} {row.declared:>9} {row.mono:>6} "
            f"{row.poly:>6} {row.total_possible:>7}"
        )
    return "\n".join(out)


def format_figure6(rows: list[BenchmarkRow], width: int = 50) -> str:
    """Figure 6 as horizontal stacked text bars.

    Legend: ``D`` declared, ``M`` extra consts from monomorphic inference,
    ``P`` extra consts from polymorphic inference, ``.`` other.
    """
    out = [
        "Figure 6: inferred consts as % of total possible",
        f"legend: D=declared  M=mono-extra  P=poly-extra  .=other  "
        f"(bar width = {width} chars = 100%)",
        "",
    ]
    for row in rows:
        pct = row.percentages()
        d = round(width * pct["declared"] / 100)
        m = round(width * pct["mono"] / 100)
        p = round(width * pct["poly"] / 100)
        rest = max(0, width - d - m - p)
        bar = "D" * d + "M" * m + "P" * p + "." * rest
        out.append(
            f"{row.name:<15} |{bar}| "
            f"D={pct['declared']:5.1f}% M={pct['mono']:5.1f}% "
            f"P={pct['poly']:5.1f}% other={pct['other']:5.1f}%"
        )
    return "\n".join(out)


def format_solver_stats(rows: list[BenchmarkRow]) -> str:
    """Per-benchmark solver pipeline shape (variables, SCC condensation,
    edge dedup, propagation steps) for the monomorphic solve — the
    engineering counterpart of Table 2's timing columns."""
    header = (
        f"{'Name':<15} {'Vars':>6} {'Cons':>6} {'SCCs':>6} "
        f"{'Cycles':>7} {'Edges':>11} {'Steps':>6}"
    )
    out = [header]
    for row in rows:
        stats = row.mono_stats
        if stats is None:
            out.append(f"{row.name:<15} (no solver stats recorded)")
            continue
        out.append(
            f"{row.name:<15} {stats.variables:>6} {stats.constraints:>6} "
            f"{stats.sccs:>6} {stats.collapsed_sccs:>7} "
            f"{f'{stats.edges_before}->{stats.edges_after}':>11} "
            f"{stats.propagation_steps:>6}"
        )
    return "\n".join(out)


def format_stage_timings(rows: list[BenchmarkRow]) -> str:
    """Per-benchmark stage breakdown of both engine runs, in
    milliseconds — parse, constraint generation, solve, and (poly only)
    generalisation.  Cache-warm rows, which skipped parse and congen,
    are flagged ``cached``; their congen column is the time spent
    loading the pickled constraint system."""
    header = (
        f"{'Name':<15} {'Engine':>6} {'Parse(ms)':>10} {'Congen(ms)':>11} "
        f"{'Solve(ms)':>10} {'Gen(ms)':>9}  Source"
    )
    out = [header]
    for row in rows:
        for engine, timings in (("mono", row.mono_timings), ("poly", row.poly_timings)):
            if timings is None:
                out.append(f"{row.name:<15} {engine:>6} (no stage timings recorded)")
                continue
            source = "cached" if timings.from_cache else "fresh"
            out.append(
                f"{row.name:<15} {engine:>6} {timings.parse_seconds * 1000:>10.1f} "
                f"{timings.congen_seconds * 1000:>11.1f} "
                f"{timings.solve_seconds * 1000:>10.1f} "
                f"{timings.generalize_seconds * 1000:>9.1f}  {source}"
            )
    return "\n".join(out)


def format_whole_report(result) -> str:
    """Report for one whole-program run
    (:class:`repro.whole.engine.WholeProgramRun`): link summary, call
    graph shape, the TU-group schedule, cache behaviour, and the const
    classification of the merged program."""
    linked = result.linked
    run = result.run
    stats = result.callgraph.stats()

    internal = linked.internal_symbols()
    out = [
        f"linked {len(linked.unit_names)} unit(s): {', '.join(linked.unit_names)}",
        f"  symbols: {len(linked.symbols)} "
        f"({len(internal)} internal, "
        f"{len(linked.symbols) - len(internal)} external)",
    ]
    for diag in linked.diagnostics:
        where = f"{diag.file}:{diag.line}" if diag.file else "<link>"
        out.append(f"  link error: {where}: {diag.message}")
    out.append(
        "call graph: "
        f"{stats['functions']} function(s), "
        f"{stats['occurrence_edges']} occurrence edge(s), "
        f"{stats['indirect_sites']} indirect site(s) resolving to "
        f"{stats['indirect_edges']} edge(s) "
        f"({stats['address_taken']} address-taken)"
    )
    out.append(
        "schedule: "
        + " | ".join("+".join(group) for group in result.schedule)
    )
    out.append(
        f"summaries: {result.summary_hits} cached, "
        f"{result.summary_misses} analysed"
    )
    timings = run.timings
    if timings is not None:
        out.append(
            f"timing: congen {timings.congen_seconds * 1000:.1f} ms, "
            f"generalize {timings.generalize_seconds * 1000:.1f} ms, "
            f"solve {timings.solve_seconds * 1000:.1f} ms"
        )
    out.append(
        f"consts: {run.declared_count()} declared, "
        f"{run.inferred_const_count()} inferred, "
        f"{run.total_positions()} possible "
        f"({run.constraint_count} constraint(s))"
    )
    return "\n".join(out)


def summarize_shape_claims(rows: list[BenchmarkRow]) -> dict[str, object]:
    """The qualitative claims of Section 4.4, evaluated over a row set.

    * every benchmark infers at least as many consts as declared;
    * polymorphic inference never finds fewer than monomorphic;
    * the paper reports polymorphism buys roughly 5–16% more consts.
    """
    assert rows, "no benchmark rows"
    poly_gains = [
        100.0 * (r.poly - r.mono) / r.mono for r in rows if r.mono > 0
    ]
    return {
        "all_mono_geq_declared": all(r.mono >= r.declared for r in rows),
        "all_poly_geq_mono": all(r.poly >= r.mono for r in rows),
        "poly_gain_percent_min": min(poly_gains) if poly_gains else 0.0,
        "poly_gain_percent_max": max(poly_gains) if poly_gains else 0.0,
        "max_poly_time_factor": max(r.poly_time_factor for r in rows),
    }
