"""Content-addressed on-disk cache for the analysis pipeline.

The expensive stages of an inference run are parsing and constraint
generation; solving is comparatively cheap (see EXPERIMENTS.md's stage
breakdown).  Both stages are pure functions of (source text, qualifier
lattice, engine mode, inference options, analysis code), so their
outputs can be memoised on disk and shared across processes: a warm
rerun of the benchmark suite loads the generated constraint system and
goes straight to the solver.

Keys are SHA-256 digests over every input that can change the output:

* the *kind* of entry (``"program"`` or ``"constraints"``),
* a fingerprint of the analysis source code itself (the cfront,
  constinfer, and qual packages), so editing the analyser invalidates
  every entry rather than serving stale results,
* the benchmark's full source text (content-addressed — renaming or
  regenerating an identical file still hits),
* the qualifier lattice (canonical sorted-qualifier repr),
* the engine mode and the sorted inference options.

``jobs`` is deliberately *not* part of the key: the wavefront scheduler
is bit-deterministic across job counts, so serial and parallel runs
share entries.

Entries are pickle blobs written atomically (tmp file + ``os.replace``)
so concurrent writers — the process-pool suite runner — can race
harmlessly: last writer wins with an identical value.  Unreadable or
corrupt entries are treated as misses and rewritten.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..cfront.sema import Program
from ..qual.lattice import QualifierLattice
from .engine import (
    InferenceRun,
    StageTimings,
    run_mono,
    run_poly,
    run_polyrec,
    _solve,
)

#: Bump to invalidate every existing cache entry regardless of code
#: fingerprint (e.g. when the entry *format* changes shape).
CACHE_FORMAT_VERSION = 1

#: The packages whose source code determines cached output (the checker
#: stores finished diagnostics, so its code is part of the key too).
_FINGERPRINTED_PACKAGES = ("cfront", "checker", "constinfer", "qual", "whole")

_code_fingerprint_memo: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over the analyser's own source files.

    Any edit to the front end, the constraint generator, or the
    qualifier machinery changes the digest and so invalidates every
    cache entry — the cache can never serve results computed by old
    code.  Memoised per process (the source tree does not change under
    a running analysis).
    """
    global _code_fingerprint_memo
    if _code_fingerprint_memo is not None:
        return _code_fingerprint_memo
    digest = hashlib.sha256()
    digest.update(f"format:{CACHE_FORMAT_VERSION}".encode())
    root = Path(__file__).resolve().parent.parent
    for package in _FINGERPRINTED_PACKAGES:
        for path in sorted((root / package).glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    _code_fingerprint_memo = digest.hexdigest()
    return _code_fingerprint_memo


def lattice_key(lattice: QualifierLattice | None) -> str:
    """Canonical description of a lattice: its sorted qualifiers, or
    ``"default"`` for the engines' built-in const lattice."""
    if lattice is None:
        return "default"
    return repr(lattice.qualifiers)


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle (one process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores

    def summary(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} store(s)"


@dataclass
class AnalysisCache:
    """A content-addressed pickle store rooted at ``root``.

    The handle is cheap and picklable (it carries only the root path and
    its own counters), so process-pool workers can each hold one over
    the same directory.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    # -- keys ----------------------------------------------------------
    def key(
        self,
        kind: str,
        *,
        source: str,
        lattice: QualifierLattice | None = None,
        mode: str = "",
        options: dict | None = None,
    ) -> str:
        parts = [
            f"kind:{kind}",
            f"code:{code_fingerprint()}",
            f"lattice:{lattice_key(lattice)}",
            f"mode:{mode}",
            f"options:{sorted((options or {}).items())!r}",
            "source:",
            source,
        ]
        return hashlib.sha256("\x00".join(parts).encode()).hexdigest()

    # -- raw entry access ----------------------------------------------
    def _path(self, key: str) -> Path:
        # Two-level fanout keeps directory listings sane at scale.
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> object | None:
        """The stored value, or ``None`` on miss.  A corrupt or
        unreadable entry counts as a miss."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
            value = pickle.loads(blob)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        """Atomically store ``value``; concurrent writers race safely."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- pipeline-level helpers ----------------------------------------
    def cached_program(self, source: str, name: str) -> tuple[Program, float, bool]:
        """Parse ``source`` through the cache.

        Returns ``(program, parse_seconds, from_cache)``;
        ``parse_seconds`` is the wall time actually spent this call
        (loading a pickle on a hit, full lex/parse/sema on a miss).
        """
        key = self.key("program", source=source)
        start = time.perf_counter()
        cached = self.get(key)
        if isinstance(cached, Program):
            return cached, time.perf_counter() - start, True
        program = Program.from_source(source, name)
        self.put(key, program)
        return program, time.perf_counter() - start, False

    def cached_run(
        self,
        source: str,
        name: str,
        mode: str,
        lattice: QualifierLattice | None = None,
        jobs: int | None = None,
        **inference_options,
    ) -> InferenceRun:
        """Run one engine over ``source`` through the cache.

        Cold path: parse (itself cached), run the engine, then store the
        generated constraint system — ``(constraints, positions)``
        pickled as one blob so shared :class:`~repro.qual.qtypes.QualVar`
        objects keep their identity through pickle memoisation.

        Warm path: load the blob and go straight to the solver; parse
        and constraint generation are skipped entirely and the run's
        :class:`~repro.constinfer.engine.StageTimings` is flagged
        ``from_cache``.  The solver's least/greatest fixpoints are
        unique, so warm classifications are bit-identical to cold ones.
        """
        key = self.key(
            "constraints",
            source=source,
            lattice=lattice,
            mode=mode,
            options=inference_options,
        )
        start = time.perf_counter()
        cached = self.get(key)
        if isinstance(cached, tuple) and len(cached) == 2:
            constraints, positions = cached
            loaded = time.perf_counter()
            solution = _solve_cached(constraints, positions, lattice)
            end = time.perf_counter()
            timings = StageTimings(
                congen_seconds=loaded - start,
                solve_seconds=end - loaded,
                from_cache=True,
            )
            return InferenceRun(
                mode, solution, positions, len(constraints), end - start, None, timings
            )

        program, parse_seconds, _ = self.cached_program(source, name)
        engine = {"mono": run_mono, "poly": run_poly, "polyrec": run_polyrec}[mode]
        if mode == "poly":
            run = engine(program, lattice, jobs=jobs, **inference_options)
        else:
            run = engine(program, lattice, **inference_options)
        self.put(key, (run.inference.constraints, run.inference.positions))
        timings = StageTimings(
            parse_seconds=parse_seconds,
            congen_seconds=run.timings.congen_seconds if run.timings else 0.0,
            solve_seconds=run.timings.solve_seconds if run.timings else 0.0,
            generalize_seconds=run.timings.generalize_seconds if run.timings else 0.0,
        )
        return InferenceRun(
            run.mode,
            run.solution,
            run.positions,
            run.constraint_count,
            run.elapsed_seconds,
            run.inference,
            timings,
        )


def _solve_cached(constraints, positions, lattice: QualifierLattice | None):
    """Solve a cache-loaded constraint system.

    The pickled constraints carry their own (re-interned) lattice
    elements, so the solve needs no live :class:`ConstInference`; the
    lattice is recovered from the constraints themselves when the caller
    passed ``None``.
    """
    from ..qual.qualifiers import const_lattice
    from ..qual.solver import UnsatisfiableError, solve
    from .engine import _wrap_unsat

    lat = lattice
    if lat is None:
        for c in constraints:
            for side in (c.lhs, c.rhs):
                owner = getattr(side, "lattice", None)
                if owner is not None:
                    lat = owner
                    break
            if lat is not None:
                break
        if lat is None:
            lat = const_lattice()
    try:
        return solve(constraints, lat, extra_vars=[p.var for p in positions])
    except UnsatisfiableError as exc:
        raise _wrap_unsat(exc) from exc
