"""Content-addressed on-disk cache for the analysis pipeline.

The expensive stages of an inference run are parsing and constraint
generation; solving is comparatively cheap (see EXPERIMENTS.md's stage
breakdown).  Both stages are pure functions of (source text, qualifier
lattice, engine mode, inference options, analysis code), so their
outputs can be memoised on disk and shared across processes: a warm
rerun of the benchmark suite loads the generated constraint system and
goes straight to the solver.

Keys are SHA-256 digests over every input that can change the output:

* the *kind* of entry (``"program"`` or ``"constraints"``),
* a fingerprint of the analysis source code itself (the cfront,
  constinfer, and qual packages), so editing the analyser invalidates
  every entry rather than serving stale results,
* the benchmark's full source text (content-addressed — renaming or
  regenerating an identical file still hits),
* the qualifier lattice (canonical sorted-qualifier repr),
* the engine mode and the sorted inference options.

``jobs`` is deliberately *not* part of the key: the wavefront scheduler
is bit-deterministic across job counts, so serial and parallel runs
share entries.

Entries are written atomically (tmp file + ``os.replace``) so
concurrent writers — the process-pool suite runner — can race
harmlessly: last writer wins with an identical value.  Unreadable or
corrupt entries are treated as misses and rewritten.

Two entry encodings coexist under the same keyspace, dispatched by the
leading magic bytes at load time:

* **v2 binary** (``b"QCE2"``) — the preferred encoding for constraint
  entries: a small header, the flat-array constraint system of
  :mod:`repro.qual.flatcore` (CSR edges, bitmask bounds, name blob,
  and the solved fixpoints) as raw little-endian buffers, then a pickle
  of primitive per-position rows.  Warm starts ``mmap`` the file and
  wrap the buffers zero-copy; no ``QualVar``/``QualConstraint`` object
  graph is ever rebuilt — variables are rehydrated lazily, only for
  the positions diagnostics touch, and the recorded solution (the
  system's *unique* extreme fixpoints) is served without re-solving.
* **v1 pickle** — everything else (parsed programs, systems the flat
  core cannot hold, entries written by older code): a pickle blob of
  ``(constraints, positions)`` re-solved on load.  Still fully
  supported as the fallback read path.

A truncated or corrupt binary entry (bad magic, short buffer,
``struct.error``) is a miss exactly like a corrupt pickle — never an
exception out of the cache layer.

Every handle also fronts the directory with a small bounded LRU of
decoded entries (:class:`_MemoryTier`), so a long-lived process — the
``repro.serve`` daemon, or a warm benchmark loop — answers repeated
lookups of the same key without touching disk at all.  Memory hits are
counted separately (``CacheStats.memory_hits``); the tier is dropped on
pickling, so process-pool workers start cold and share nothing but the
directory.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pickle
import struct
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..cfront.sema import Program
from ..qual import flatcore
from ..qual.lattice import QualifierLattice
from ..qual.solver import UnsatisfiableError
from .analysis import ConstPosition
from .engine import (
    InferenceRun,
    StageTimings,
    _wrap_unsat,
    run_mono,
    run_poly,
    run_polyrec,
    _solve,
)

#: Bump to invalidate every existing cache entry regardless of code
#: fingerprint (e.g. when the entry *format* changes shape).
CACHE_FORMAT_VERSION = 2

#: Leading magic of a v2 binary constraint entry; anything else is
#: dispatched to the v1 pickle reader.
ENTRY_MAGIC = b"QCE2"
ENTRY_VERSION = 1

#: v2 entry header: magic, version, reserved, flat section length,
#: position-row pickle length.  24 bytes, so the flat section that
#: follows stays 8-aligned for zero-copy int64 views.
_ENTRY_HEADER = struct.Struct("<4sHHQQ")

#: The packages whose source code determines cached output (the checker
#: stores finished diagnostics, so its code is part of the key too;
#: flowsens feeds the resource-pack diagnostics and ownership
#: summaries, so it must invalidate them as well).
_FINGERPRINTED_PACKAGES = (
    "cfront",
    "checker",
    "constinfer",
    "flowsens",
    "qual",
    "whole",
)

_code_fingerprint_memo: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over the analyser's own source files.

    Any edit to the front end, the constraint generator, or the
    qualifier machinery changes the digest and so invalidates every
    cache entry — the cache can never serve results computed by old
    code.  Memoised per process (the source tree does not change under
    a running analysis).
    """
    global _code_fingerprint_memo
    if _code_fingerprint_memo is not None:
        return _code_fingerprint_memo
    digest = hashlib.sha256()
    digest.update(f"format:{CACHE_FORMAT_VERSION}".encode())
    root = Path(__file__).resolve().parent.parent
    for package in _FINGERPRINTED_PACKAGES:
        for path in sorted((root / package).glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    _code_fingerprint_memo = digest.hexdigest()
    return _code_fingerprint_memo


def lattice_key(lattice: QualifierLattice | None) -> str:
    """Canonical description of a lattice: its sorted qualifiers, or
    ``"default"`` for the engines' built-in const lattice."""
    if lattice is None:
        return "default"
    return repr(lattice.qualifiers)


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle (one process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Subset of ``hits`` served zero-copy from a v2 binary entry
    #: (mmap + flat buffers, no unpickled object graph).
    binary_hits: int = 0
    #: Subset of ``hits`` answered by the in-memory LRU tier without
    #: touching disk at all.
    memory_hits: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.binary_hits += other.binary_hits
        self.memory_hits += other.memory_hits

    def summary(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s), {self.binary_hits} binary mmap hit(s), "
            f"{self.memory_hits} memory hit(s)"
        )


class _MemoryTier:
    """A bounded LRU of decoded cache entries.

    Keys are ``(accessor, key)`` pairs — the same content-addressed key
    is cached separately per access shape (``"obj"`` for unpickled
    values, ``"bytes"`` for raw blobs, ``"entry"`` for decoded
    constraint payloads) because the decoded forms differ.  Values are
    whatever the accessor produced; content-addressing makes them
    immutable-by-convention, so sharing one object across lookups is
    safe the same way sharing the on-disk entry is.
    """

    __slots__ = ("maxsize", "_entries")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple[str, str], object]" = OrderedDict()

    def get(self, accessor: str, key: str):
        """The cached value (LRU-refreshed), or the ``_MISS`` sentinel."""
        if self.maxsize <= 0:
            return _MISS
        value = self._entries.get((accessor, key), _MISS)
        if value is not _MISS:
            self._entries.move_to_end((accessor, key))
        return value

    def put(self, accessor: str, key: str, value: object) -> None:
        if self.maxsize <= 0:
            return
        entries = self._entries
        entries[(accessor, key)] = value
        entries.move_to_end((accessor, key))
        while len(entries) > self.maxsize:
            entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


#: Sentinel distinguishing "not in the memory tier" from a cached None.
_MISS = object()

#: Default bound of the per-handle memory tier.  Small enough that even
#: pathological values (whole parsed programs) stay modest; a resident
#: daemon raises it per session.
DEFAULT_MEMORY_ENTRIES = 256


@dataclass
class AnalysisCache:
    """A content-addressed pickle store rooted at ``root``.

    The handle is cheap and picklable (it carries only the root path and
    its own counters; the in-memory LRU tier is dropped on pickling), so
    process-pool workers can each hold one over the same directory.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __init__(
        self, root: str | os.PathLike, memory_entries: int = DEFAULT_MEMORY_ENTRIES
    ) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        self.memory = _MemoryTier(memory_entries)

    def __getstate__(self) -> dict:
        return {"root": self.root, "memory_entries": self.memory.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.root = state["root"]
        self.stats = CacheStats()
        self.memory = _MemoryTier(state.get("memory_entries", DEFAULT_MEMORY_ENTRIES))

    # -- keys ----------------------------------------------------------
    def key(
        self,
        kind: str,
        *,
        source: str,
        lattice: QualifierLattice | None = None,
        mode: str = "",
        options: dict | None = None,
    ) -> str:
        parts = [
            f"kind:{kind}",
            f"code:{code_fingerprint()}",
            f"lattice:{lattice_key(lattice)}",
            f"mode:{mode}",
            f"options:{sorted((options or {}).items())!r}",
            "source:",
            source,
        ]
        return hashlib.sha256("\x00".join(parts).encode()).hexdigest()

    # -- raw entry access ----------------------------------------------
    def _path(self, key: str) -> Path:
        # Two-level fanout keeps directory listings sane at scale.
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> object | None:
        """The stored value, or ``None`` on miss.  A corrupt or
        unreadable entry counts as a miss; a repeat lookup is answered
        from the in-memory tier without touching disk."""
        cached = self.memory.get("obj", key)
        if cached is not _MISS:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return cached
        path = self._path(key)
        try:
            blob = path.read_bytes()
            value = pickle.loads(blob)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.memory.put("obj", key, value)
        return value

    def get_bytes(self, key: str) -> bytes | None:
        """The raw entry blob (any encoding), or ``None`` on miss.
        Memory-tier-backed like :meth:`get`."""
        cached = self.memory.get("bytes", key)
        if cached is not _MISS:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return cached  # type: ignore[return-value]
        try:
            blob = self._path(key).read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.memory.put("bytes", key, blob)
        return blob

    def _write_atomic(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def put(self, key: str, value: object) -> None:
        """Atomically store ``value``; concurrent writers race safely.

        The memory tier is read-through only — it is populated by a
        successful *disk* read, never by a write — so the on-disk entry
        stays the source of truth and a corrupt entry is always a miss.
        """
        self._write_atomic(key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def put_bytes(self, key: str, blob: bytes) -> None:
        """Atomically store an already-encoded binary entry."""
        self._write_atomic(key, blob)

    def _load_constraints(self, key: str):
        """Load a constraints entry in whichever encoding it was written.

        Returns ``("flat", (FlatSystem, positions))`` for a v2 binary
        entry (buffers wrapped zero-copy over an ``mmap`` of the file),
        ``("pickle", (constraints, positions))`` for a v1 pickle entry,
        or ``None`` on miss.  Corrupt entries of either encoding —
        truncated headers, short buffers, ``struct.error``, garbage
        pickles — are misses, never exceptions.  A repeat lookup is
        answered from the in-memory tier (the decoded payload, mapping
        and all, stays resident) without re-opening the file.
        """
        cached = self.memory.get("entry", key)
        if cached is not _MISS:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return cached
        path = self._path(key)
        try:
            handle = open(path, "rb")
        except OSError:
            self.stats.misses += 1
            return None
        with handle:
            try:
                head = handle.read(len(ENTRY_MAGIC))
            except OSError:
                self.stats.misses += 1
                return None
            if head == ENTRY_MAGIC:
                try:
                    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except (OSError, ValueError):
                    self.stats.misses += 1
                    return None
                try:
                    entry = _decode_entry(mapped)
                except (
                    ValueError,
                    struct.error,
                    IndexError,
                    KeyError,
                    OverflowError,
                    UnicodeDecodeError,
                    pickle.UnpicklingError,
                    EOFError,
                    AttributeError,
                ):
                    # Not closed explicitly: the raised exception's
                    # frames may still hold views over the mapping
                    # (closing would raise BufferError); GC reclaims it.
                    self.stats.misses += 1
                    return None
                self.stats.hits += 1
                self.stats.binary_hits += 1
                self.memory.put("entry", key, ("flat", entry))
                return ("flat", entry)
            try:
                handle.seek(0)
                blob = handle.read()
            except OSError:
                self.stats.misses += 1
                return None
        try:
            value = pickle.loads(blob)
        except (
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ValueError,
            IndexError,
            struct.error,
        ):
            self.stats.misses += 1
            return None
        if isinstance(value, tuple) and len(value) == 2:
            self.stats.hits += 1
            self.memory.put("entry", key, ("pickle", value))
            return ("pickle", value)
        # Well-formed pickle of the wrong shape (written by another tool
        # against the same key): recompute rather than serve it.
        self.stats.misses += 1
        return None

    # -- pipeline-level helpers ----------------------------------------
    def cached_program(self, source: str, name: str) -> tuple[Program, float, bool]:
        """Parse ``source`` through the cache.

        Returns ``(program, parse_seconds, from_cache)``;
        ``parse_seconds`` is the wall time actually spent this call
        (loading a pickle on a hit, full lex/parse/sema on a miss).
        """
        key = self.key("program", source=source)
        start = time.perf_counter()
        cached = self.get(key)
        if isinstance(cached, Program):
            return cached, time.perf_counter() - start, True
        program = Program.from_source(source, name)
        self.put(key, program)
        return program, time.perf_counter() - start, False

    def cached_run(
        self,
        source: str,
        name: str,
        mode: str,
        lattice: QualifierLattice | None = None,
        jobs: int | None = None,
        **inference_options,
    ) -> InferenceRun:
        """Run one engine over ``source`` through the cache.

        Cold path: parse (itself cached), run the engine, then store the
        generated constraint system — preferably as a v2 binary entry
        (the flat-array system of :mod:`repro.qual.flatcore` with its
        solved fixpoints), falling back to the v1
        ``(constraints, positions)`` pickle for systems the flat core
        cannot encode.

        Warm path: a v2 entry is ``mmap``-ed and its buffers wrapped
        zero-copy — the recorded solution is served directly (the
        fixpoints are unique, so it is bit-identical to a fresh solve)
        and ``QualVar`` objects are rebuilt lazily, only for the
        classified positions; a v1 entry is unpickled and re-solved.
        Either way parse and constraint generation are skipped entirely
        and the run's :class:`~repro.constinfer.engine.StageTimings` is
        flagged ``from_cache``.
        """
        key = self.key(
            "constraints",
            source=source,
            lattice=lattice,
            mode=mode,
            options=inference_options,
        )
        start = time.perf_counter()
        cached = self._load_constraints(key)
        if cached is not None:
            encoding, payload = cached
            if encoding == "flat":
                system, positions = payload
                loaded = time.perf_counter()
                try:
                    solution = system.stored_solution() or system.solve()
                except UnsatisfiableError as exc:
                    raise _wrap_unsat(exc) from exc
                constraint_count = system.counts[0]
            else:
                constraints, positions = payload
                loaded = time.perf_counter()
                solution = _solve_cached(constraints, positions, lattice)
                constraint_count = len(constraints)
            end = time.perf_counter()
            timings = StageTimings(
                congen_seconds=loaded - start,
                solve_seconds=end - loaded,
                from_cache=True,
            )
            return InferenceRun(
                mode, solution, positions, constraint_count, end - start, None, timings
            )

        program, parse_seconds, _ = self.cached_program(source, name)
        engine = {"mono": run_mono, "poly": run_poly, "polyrec": run_polyrec}[mode]
        if mode == "poly":
            run = engine(program, lattice, jobs=jobs, **inference_options)
        else:
            run = engine(program, lattice, **inference_options)
        blob = _encode_entry(
            run.inference.constraints, run.inference.positions, lattice
        )
        if blob is not None:
            self.put_bytes(key, blob)
        else:
            self.put(key, (run.inference.constraints, run.inference.positions))
        timings = StageTimings(
            parse_seconds=parse_seconds,
            congen_seconds=run.timings.congen_seconds if run.timings else 0.0,
            solve_seconds=run.timings.solve_seconds if run.timings else 0.0,
            generalize_seconds=run.timings.generalize_seconds if run.timings else 0.0,
        )
        return InferenceRun(
            run.mode,
            run.solution,
            run.positions,
            run.constraint_count,
            run.elapsed_seconds,
            run.inference,
            timings,
        )


def _recover_lattice(constraints, lattice: QualifierLattice | None):
    """The lattice a cached system solves over: the caller's, the one the
    constraints' own elements carry, or the engines' default."""
    from ..qual.qualifiers import const_lattice

    if lattice is not None:
        return lattice
    for c in constraints:
        for side in (c.lhs, c.rhs):
            owner = getattr(side, "lattice", None)
            if owner is not None:
                return owner
    return const_lattice()


def _encode_entry(constraints, positions, lattice: QualifierLattice | None):
    """Encode a constraint system as a v2 binary entry, or ``None`` when
    the flat core cannot hold it (oversized lattice masks, or a system
    that fails to solve — satisfiable runs are the only ones that reach
    the cache, but the encoder stays defensive).

    The flat section records the *solved* system, so a warm start pays
    neither unpickling nor solving; the tail is a pickle of primitive
    per-position rows referencing variables by dense index.
    """
    lat = _recover_lattice(constraints, lattice)
    if not flatcore.fits_flat(lat):
        return None
    from ..qual.solver import IndexedSystem

    system = IndexedSystem(lat)
    system.add_many(constraints)
    for p in positions:
        system.add_var(p.var)
    if system._ground_conflict is not None:
        return None
    flat = flatcore.FlatSystem.from_indexed(system)
    try:
        flat.attach_solution()
    except UnsatisfiableError:
        return None
    index = system._var_index
    rows = [
        (p.function, p.where, p.depth, index[p.var], p.declared, p.line)
        for p in positions
    ]
    flat_blob = flat.to_bytes()
    meta_blob = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
    header = _ENTRY_HEADER.pack(
        ENTRY_MAGIC, ENTRY_VERSION, 0, len(flat_blob), len(meta_blob)
    )
    return b"".join((header, flat_blob, meta_blob))


def _decode_entry(buf):
    """Decode a v2 binary entry zero-copy (the returned
    :class:`~repro.qual.flatcore.FlatSystem` keeps the mapping alive).

    Raises ``ValueError``/``struct.error`` on any malformation; the
    cache layer treats those as a miss.
    """
    view = memoryview(buf)
    magic, version, _reserved, flat_len, meta_len = _ENTRY_HEADER.unpack_from(view, 0)
    if magic != ENTRY_MAGIC:
        raise ValueError(f"bad entry magic: {magic!r}")
    if version != ENTRY_VERSION:
        raise ValueError(f"unsupported entry version: {version}")
    offset = _ENTRY_HEADER.size
    if offset + flat_len + meta_len > len(view):
        raise ValueError("entry sections overrun file")
    system = flatcore.FlatSystem.from_buffer(view[offset : offset + flat_len])
    rows = pickle.loads(view[offset + flat_len : offset + flat_len + meta_len])
    if not isinstance(rows, list):
        raise ValueError("position rows are not a list")
    positions = [
        ConstPosition(function, where, depth, system.var(var_index), declared, line)
        for function, where, depth, var_index, declared, line in rows
    ]
    return system, positions


def _solve_cached(constraints, positions, lattice: QualifierLattice | None):
    """Solve a cache-loaded constraint system.

    The pickled constraints carry their own (re-interned) lattice
    elements, so the solve needs no live :class:`ConstInference`; the
    lattice is recovered from the constraints themselves when the caller
    passed ``None``.
    """
    from ..qual.solver import solve

    lat = _recover_lattice(constraints, lattice)
    try:
        return solve(constraints, lat, extra_vars=[p.var for p in positions])
    except UnsatisfiableError as exc:
        raise _wrap_unsat(exc) from exc
