"""Function dependence graph (paper Section 4.3, Definition 4).

The FDG has one vertex per defined function and an edge ``f -> g`` iff
``f``'s body contains an occurrence of the name ``g``.  Its strongly
connected components are the sets of mutually recursive functions; the
polymorphic inference analyses SCCs in reverse topological order
(callees first) and generalises after each SCC, mimicking nested
``let``-blocks.

SCCs are computed with an iterative Tarjan's algorithm (no recursion
limit issues on large benchmarks); the returned component order is
already a reverse topological order of the condensation — Tarjan emits a
component only after all components it reaches — which is exactly the
traversal order Section 4.3 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfront.sema import Program, occurring_names


@dataclass
class FunctionDependenceGraph:
    """Vertices are defined function names; ``edges[f]`` holds the defined
    functions whose names occur in ``f``'s body."""

    vertices: list[str] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, program: Program) -> "FunctionDependenceGraph":
        defined = program.defined_function_names()
        graph = cls()
        graph.vertices = sorted(defined)
        for name in graph.vertices:
            mentions = occurring_names(program.functions[name])
            graph.edges[name] = mentions & defined
        return graph

    @classmethod
    def from_edges(
        cls, vertices: set[str], edges: dict[str, set[str]]
    ) -> "FunctionDependenceGraph":
        """An FDG over an explicit vertex/edge set (e.g. the cross-TU
        call graph with function-pointer resolution edges added)."""
        graph = cls()
        graph.vertices = sorted(vertices)
        for name in graph.vertices:
            graph.edges[name] = {g for g in edges.get(name, ()) if g in vertices}
        return graph

    def restricted(self, names: set[str]) -> "FunctionDependenceGraph":
        """The induced subgraph over ``names`` — used to schedule one
        TU-group's functions with edges to other groups dropped (their
        schemes are already installed by the time the group runs)."""
        graph = FunctionDependenceGraph()
        graph.vertices = [v for v in self.vertices if v in names]
        for name in graph.vertices:
            graph.edges[name] = self.edges.get(name, set()) & names
        return graph

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order of
        the condensation (every component's callees appear earlier)."""
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0

        for root in self.vertices:
            if root in index_of:
                continue
            # Iterative Tarjan: work items are (node, iterator position).
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index_of[node] = counter
                    lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                successors = sorted(self.edges.get(node, ()))
                recurse = False
                for position in range(child_index, len(successors)):
                    succ = successors[position]
                    if succ not in index_of:
                        work.append((node, position + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def wavefronts(self) -> list[list[list[str]]]:
        """SCCs grouped by condensation depth, shallowest level first.

        Level ``d`` holds the components whose longest callee chain has
        length ``d``: level 0 is the leaves (no calls to other defined
        functions), and every dependence edge crosses from a higher
        level to a strictly lower one.  Components within one level are
        therefore mutually independent — the polymorphic engine may
        analyse them in any order, or concurrently, without changing the
        result.  Concatenating the levels yields a valid callees-first
        traversal, so ``[c for level in g.wavefronts() for c in level]``
        covers exactly the components of :meth:`sccs`.

        Within a level, components are sorted by member names so the
        schedule (and any band-based variable numbering derived from it)
        is deterministic.
        """
        components = self.sccs()
        component_of: dict[str, int] = {}
        for index, component in enumerate(components):
            for name in component:
                component_of[name] = index
        # sccs() is reverse-topological (callees first), so every
        # successor component's depth is final by the time we need it.
        depth = [0] * len(components)
        for index, component in enumerate(components):
            best = 0
            for name in component:
                for succ in self.edges.get(name, ()):
                    target = component_of[succ]
                    if target != index and depth[target] + 1 > best:
                        best = depth[target] + 1
            depth[index] = best
        levels: dict[int, list[list[str]]] = {}
        for index, component in enumerate(components):
            levels.setdefault(depth[index], []).append(component)
        return [sorted(levels[d]) for d in sorted(levels)]

    def is_recursive(self, component: list[str]) -> bool:
        """Whether an SCC contains recursion (size > 1 or a self-loop)."""
        if len(component) > 1:
            return True
        name = component[0]
        return name in self.edges.get(name, ())
