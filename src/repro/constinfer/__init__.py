"""Const inference for C (paper Section 4).

* :mod:`repro.constinfer.analysis` — constraint generation over C ASTs:
  the ``l`` translation applied to declarations, (Assign') write
  restrictions, struct-field sharing, cast severing, library
  conservatism.
* :mod:`repro.constinfer.fdg` — the function dependence graph and its
  SCC decomposition (Definition 4).
* :mod:`repro.constinfer.engine` — the monomorphic and polymorphic
  engines and the three-way must / must-not / either classification.
* :mod:`repro.constinfer.results` — Table 1 / Table 2 / Figure 6 counts
  and rendering.
* :mod:`repro.constinfer.annotate` — writing inferred consts back into
  the program text.
* :mod:`repro.constinfer.cli` — the ``quals-const`` driver.
"""

from .analysis import ConstInference, ConstPosition, FunctionSig
from .annotate import Suggestion, annotate_source, format_report, suggestions
from .engine import (
    ConstInferenceError,
    InferenceRun,
    run_mono,
    run_poly,
    run_polyrec,
)
from .fdg import FunctionDependenceGraph
from .stats import ConstraintStats, collect_stats, format_stats_table
from .results import (
    BenchmarkRow,
    analyze_program,
    format_figure6,
    format_table1,
    format_table2,
    make_row,
    summarize_shape_claims,
)

__all__ = [name for name in dir() if not name.startswith("_")]
