"""Monomorphic and polymorphic const-inference engines (Section 4.3–4.4).

Both engines share :class:`~repro.constinfer.analysis.ConstInference` for
constraint generation and differ only in how function signatures are
shared:

* **monomorphic** — every call site constrains the one shared signature,
  exactly C's type system;
* **polymorphic** — the function dependence graph's strongly connected
  components are traversed callees-first; each SCC is analysed
  monomorphically, then every member's signature is generalised over the
  qualifier variables created while analysing the SCC (Letv), so later
  call sites instantiate fresh copies (Var').  Global variable
  initialisers are analysed after the traversal, as the paper specifies.

The result carries the solved constraint system plus the classification
of every interesting const position, ready for the Section 4.4 counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cfront.sema import Program
from ..qual.lattice import QualifierLattice
from ..qual.poly import generalize
from ..qual.qtypes import QualVar, qual_vars
from ..qual.solver import (
    Classification,
    IndexedSystem,
    Solution,
    UnsatisfiableError,
    solve,
)
from .analysis import ConstInference, ConstPosition
from .fdg import FunctionDependenceGraph


class ConstInferenceError(Exception):
    """The program's const constraints are unsatisfiable — a write through
    a cell that must be const.  Correct C programs never trigger this."""


@dataclass
class InferenceRun:
    """Outcome of one engine run over a whole program."""

    mode: str  # "mono" or "poly"
    solution: Solution
    positions: list[ConstPosition]
    constraint_count: int
    elapsed_seconds: float
    inference: ConstInference | None = field(repr=False, default=None)

    def classify(self, position: ConstPosition) -> Classification:
        return self.solution.classify(position.var, "const")

    def classified_positions(
        self,
    ) -> list[tuple[ConstPosition, Classification]]:
        return [(p, self.classify(p)) for p in self.positions]

    # -- the Section 4.4 counts ----------------------------------------
    def declared_count(self) -> int:
        return sum(1 for p in self.positions if p.declared)

    def inferred_const_count(self) -> int:
        """Positions that must or may be const — the paper's (1) + (3),
        i.e. the Mono/Poly columns of Table 2."""
        return sum(
            1
            for p in self.positions
            if self.classify(p) is not Classification.MUST_NOT
        )

    def must_not_count(self) -> int:
        return sum(
            1 for p in self.positions if self.classify(p) is Classification.MUST_NOT
        )

    def either_count(self) -> int:
        return sum(
            1 for p in self.positions if self.classify(p) is Classification.EITHER
        )

    def total_positions(self) -> int:
        return len(self.positions)


def run_mono(
    program: Program,
    lattice: QualifierLattice | None = None,
    **inference_options,
) -> InferenceRun:
    """Monomorphic const inference over a whole program.

    ``inference_options`` are forwarded to
    :class:`~repro.constinfer.analysis.ConstInference` (the Section 4.2
    ablation switches).
    """
    start = time.perf_counter()
    inference = ConstInference(program, lattice, **inference_options)
    _create_shared_cells(inference)

    # Signatures first (shared by every call site), prototypes included.
    for fdef in program.functions.values():
        inference.signature_for(fdef)

    for fdef in program.functions.values():
        inference.analyze_function(fdef)
    inference.analyze_global_initializers()

    solution = _solve(inference)
    elapsed = time.perf_counter() - start
    return InferenceRun(
        "mono", solution, inference.positions, len(inference.constraints), elapsed, inference
    )


def run_poly(
    program: Program,
    lattice: QualifierLattice | None = None,
    **inference_options,
) -> InferenceRun:
    """Polymorphic const inference: per-SCC generalisation (Section 4.3).

    ``inference_options`` are forwarded to
    :class:`~repro.constinfer.analysis.ConstInference`.
    """
    start = time.perf_counter()
    inference = ConstInference(program, lattice, **inference_options)
    _create_shared_cells(inference)

    graph = FunctionDependenceGraph.build(program)
    for component in graph.sccs():
        # Variables created from here on are local to this SCC and are
        # candidates for quantification; anything older is "free in the
        # environment" (globals, struct fields, library signatures,
        # previously generalised functions).  Shared cells were all
        # pre-created above, so nothing monomorphic is captured.
        boundary = _uid_boundary()
        mark = len(inference.constraints)
        for name in component:
            inference.signature_for(program.functions[name])
        for name in component:
            inference.analyze_function(program.functions[name])
        local = inference.constraints[mark:]
        for name in component:
            sig = inference.signatures[name]
            body = sig.fun_qtype
            involved = qual_vars(body)
            for c in local:
                for q in (c.lhs, c.rhs):
                    if isinstance(q, QualVar):
                        involved.add(q)
            env_vars = {v for v in involved if v.uid < boundary}
            inference.schemes[name] = generalize(
                body, local, env_vars, lattice=inference.lattice, compress=True
            )

    inference.analyze_global_initializers()

    solution = _solve(inference)
    elapsed = time.perf_counter() - start
    return InferenceRun(
        "poly", solution, inference.positions, len(inference.constraints), elapsed, inference
    )


def run_polyrec(
    program: Program,
    lattice: QualifierLattice | None = None,
    max_iterations: int = 8,
    **inference_options,
) -> InferenceRun:
    """Polymorphic-*recursive* const inference (Section 4.3's preferred
    design: "we would prefer to use polymorphic recursion rather than
    let-style polymorphism to avoid working with the FDG").

    No function dependence graph is computed.  Instead, every call —
    including recursive and mutually recursive ones — instantiates the
    callee's scheme from the *previous* fixpoint iteration (initially
    the fully unconstrained scheme), and iteration repeats until every
    function's signature summary (the least/greatest solution of each
    signature qualifier position) stabilises.  Because the qualifier
    lattice is finite and qualifiers do not change the type structure,
    this is decidable and converges quickly, exactly as the paper
    observes; ``max_iterations`` is a safety cap.

    Shared monomorphic state (globals, struct fields, library
    signatures) is created once and survives all iterations; per-
    function state is rolled back between rounds.
    """
    start = time.perf_counter()
    inference = ConstInference(program, lattice, **inference_options)
    _create_shared_cells(inference)
    boundary = _uid_boundary()
    base_constraints = len(inference.constraints)
    library_sigs = dict(inference.signatures)

    # The shared monomorphic prefix (globals, struct fields, library
    # signatures) is identical in every fixpoint round: categorise and
    # dedupe it into an indexed system once, then fork a cheap copy per
    # round instead of re-solving the whole accumulated list from scratch.
    base_system = IndexedSystem(inference.lattice)
    base_system.add_many(inference.constraints[:base_constraints])

    previous_summary: dict[str, tuple] | None = None
    assumptions: dict[str, "object"] = {}

    for _round in range(max_iterations):
        # roll back per-function state
        inference.constraints[base_constraints:] = []
        inference.positions.clear()
        inference.signatures = dict(library_sigs)
        inference.schemes = dict(assumptions)

        for fdef in program.functions.values():
            inference.signature_for(fdef)
        # NOTE: function_value prefers schemes, so every call to a
        # defined function instantiates its assumed scheme — recursion
        # included.  (On the first round there are no assumptions yet
        # and calls share the round's signatures, which only makes the
        # first summary more conservative, never unsound.)
        for fdef in program.functions.values():
            inference.analyze_function(fdef)
        inference.analyze_global_initializers()

        solution = _solve_incremental(base_system, inference, base_constraints)
        summary = _signature_summary(inference, solution)
        if summary == previous_summary:
            break
        previous_summary = summary

        # generalise fresh assumptions for the next round
        local = inference.constraints[base_constraints:]
        assumptions = {}
        for name in program.functions:
            sig = inference.signatures[name]
            involved = qual_vars(sig.fun_qtype)
            for c in local:
                for q in (c.lhs, c.rhs):
                    if isinstance(q, QualVar):
                        involved.add(q)
            env_vars = {v for v in involved if v.uid < boundary}
            assumptions[name] = generalize(
                sig.fun_qtype, local, env_vars, lattice=inference.lattice, compress=True
            )
    else:
        solution = _solve_incremental(base_system, inference, base_constraints)

    elapsed = time.perf_counter() - start
    return InferenceRun(
        "polyrec",
        solution,
        inference.positions,
        len(inference.constraints),
        elapsed,
        inference,
    )


def _signature_summary(inference: ConstInference, solution: Solution):
    """Per function, the (least, greatest) bounds of every qualifier
    position in its signature, in deterministic structural order — the
    fixpoint-comparison key for :func:`run_polyrec`."""
    from ..qual.qtypes import quals_of

    out: dict[str, tuple] = {}
    for name, sig in inference.signatures.items():
        bounds = []
        for qual in quals_of(sig.fun_qtype):
            if isinstance(qual, QualVar):
                bounds.append(
                    (solution.least_of(qual).present, solution.greatest_of(qual).present)
                )
            else:
                bounds.append((qual.present, qual.present))
        out[name] = tuple(bounds)
    return out


def _create_shared_cells(inference: ConstInference) -> None:
    """Pre-create every monomorphic shared cell — globals, struct fields,
    and library-function signatures — so the polymorphic engine's
    uid-watermark never mistakes them for SCC-local variables."""
    program = inference.program
    for name in program.globals:
        inference.global_cell(name)
    for tag, struct in program.structs.items():
        for field_decl in struct.fields:
            inference.field_cell(tag, field_decl.name)
    for proto in program.prototypes.values():
        if proto.name not in program.functions:
            inference.prototype_signature(proto)


def _uid_boundary() -> int:
    """Current fresh-variable watermark: variables allocated after this
    call have strictly larger uids."""
    from ..qual.qtypes import fresh_qual_var

    return fresh_qual_var("boundary").uid


def _wrap_unsat(exc: UnsatisfiableError) -> ConstInferenceError:
    """Carry the solver's source-to-sink witness path into the message;
    the one-line summary alone names only the endpoints."""
    message = str(exc)
    if exc.path:
        message = f"{message}\n{exc.explain()}"
    return ConstInferenceError(message)


def _solve(inference: ConstInference) -> Solution:
    extra = [p.var for p in inference.positions]
    try:
        return solve(inference.constraints, inference.lattice, extra_vars=extra)
    except UnsatisfiableError as exc:
        raise _wrap_unsat(exc) from exc


def _solve_incremental(
    base_system: IndexedSystem, inference: ConstInference, base_constraints: int
) -> Solution:
    """Solve the current round's system by forking the pre-indexed shared
    prefix and adding only the constraints generated after it."""
    system = base_system.fork()
    system.add_many(inference.constraints[base_constraints:])
    try:
        return system.solve(extra_vars=[p.var for p in inference.positions])
    except UnsatisfiableError as exc:
        raise _wrap_unsat(exc) from exc
