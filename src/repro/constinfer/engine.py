"""Monomorphic and polymorphic const-inference engines (Section 4.3–4.4).

Both engines share :class:`~repro.constinfer.analysis.ConstInference` for
constraint generation and differ only in how function signatures are
shared:

* **monomorphic** — every call site constrains the one shared signature,
  exactly C's type system;
* **polymorphic** — the function dependence graph's strongly connected
  components are traversed callees-first; each SCC is analysed
  monomorphically, then every member's signature is generalised over the
  qualifier variables created while analysing the SCC (Letv), so later
  call sites instantiate fresh copies (Var').  Global variable
  initialisers are analysed after the traversal, as the paper specifies.

The result carries the solved constraint system plus the classification
of every interesting const position, ready for the Section 4.4 counts.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..cfront.sema import Program
from ..qual.lattice import QualifierLattice
from ..qual.poly import generalize
from ..qual.qtypes import (
    QualVar,
    UidBand,
    advance_fresh_uids,
    fresh_uid_band,
    qual_vars,
)
from ..qual.solver import (
    Classification,
    IndexedSystem,
    Solution,
    UnsatisfiableError,
    solve,
)
from .analysis import ConstInference, ConstPosition
from .fdg import FunctionDependenceGraph


class ConstInferenceError(Exception):
    """The program's const constraints are unsatisfiable — a write through
    a cell that must be const.  Correct C programs never trigger this."""


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock breakdown of one inference run by pipeline stage.

    ``parse_seconds`` is recorded by whoever owns the source text (the
    benchmark suite, the CLI, or the analysis cache); the engines fill
    the rest.  ``from_cache`` marks a warm run whose parse and constraint
    generation were skipped entirely — only the solve was paid.
    """

    parse_seconds: float = 0.0
    congen_seconds: float = 0.0
    solve_seconds: float = 0.0
    generalize_seconds: float = 0.0
    from_cache: bool = False

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.congen_seconds
            + self.solve_seconds
            + self.generalize_seconds
        )

    def summary(self) -> str:
        cached = " [cached]" if self.from_cache else ""
        return (
            f"parse {self.parse_seconds * 1000:.1f} ms, "
            f"congen {self.congen_seconds * 1000:.1f} ms, "
            f"solve {self.solve_seconds * 1000:.1f} ms, "
            f"generalize {self.generalize_seconds * 1000:.1f} ms{cached}"
        )


@dataclass
class InferenceRun:
    """Outcome of one engine run over a whole program."""

    mode: str  # "mono" or "poly"
    solution: Solution
    positions: list[ConstPosition]
    constraint_count: int
    elapsed_seconds: float
    inference: ConstInference | None = field(repr=False, default=None)
    timings: StageTimings | None = None

    def classify(self, position: ConstPosition) -> Classification:
        return self.solution.classify(position.var, "const")

    def classified_positions(
        self,
    ) -> list[tuple[ConstPosition, Classification]]:
        return [(p, self.classify(p)) for p in self.positions]

    # -- the Section 4.4 counts ----------------------------------------
    def declared_count(self) -> int:
        return sum(1 for p in self.positions if p.declared)

    def inferred_const_count(self) -> int:
        """Positions that must or may be const — the paper's (1) + (3),
        i.e. the Mono/Poly columns of Table 2."""
        return sum(
            1
            for p in self.positions
            if self.classify(p) is not Classification.MUST_NOT
        )

    def must_not_count(self) -> int:
        return sum(
            1 for p in self.positions if self.classify(p) is Classification.MUST_NOT
        )

    def either_count(self) -> int:
        return sum(
            1 for p in self.positions if self.classify(p) is Classification.EITHER
        )

    def total_positions(self) -> int:
        return len(self.positions)


def run_mono(
    program: Program,
    lattice: QualifierLattice | None = None,
    **inference_options,
) -> InferenceRun:
    """Monomorphic const inference over a whole program.

    ``inference_options`` are forwarded to
    :class:`~repro.constinfer.analysis.ConstInference` (the Section 4.2
    ablation switches).
    """
    start = time.perf_counter()
    inference = ConstInference(program, lattice, **inference_options)
    _create_shared_cells(inference)

    # Signatures first (shared by every call site), prototypes included.
    for fdef in program.functions.values():
        inference.signature_for(fdef)

    for fdef in program.functions.values():
        inference.analyze_function(fdef)
    inference.analyze_global_initializers()

    congen_done = time.perf_counter()
    solution = _solve(inference)
    end = time.perf_counter()
    timings = StageTimings(
        congen_seconds=congen_done - start, solve_seconds=end - congen_done
    )
    return InferenceRun(
        "mono",
        solution,
        inference.positions,
        len(inference.constraints),
        end - start,
        inference,
        timings,
    )


#: Uid range reserved per SCC (and for the lazy shared-cell pool) in the
#: wavefront scheduler.  Deliberately generous: the largest suite
#: benchmark allocates tens of thousands of variables *in total*, so one
#: SCC can never exhaust 2**20 uids in practice; if one somehow does,
#: :class:`~repro.qual.qtypes.UidBandExhausted` aborts the run loudly
#: rather than silently colliding.
_UID_BAND_SIZE = 1 << 20


def run_poly(
    program: Program,
    lattice: QualifierLattice | None = None,
    jobs: int | None = None,
    **inference_options,
) -> InferenceRun:
    """Polymorphic const inference: per-SCC generalisation (Section 4.3).

    ``jobs=None`` runs the classic sequential callees-first SCC
    traversal.  Any integer ``jobs >= 1`` selects the wavefront
    scheduler instead: SCCs at the same condensation depth are analysed
    concurrently by up to ``jobs`` worker threads, with banded variable
    allocation and a deterministic merge order making the result —
    positions, constraints, classifications, even variable names —
    bit-identical at every job count (``jobs=1`` runs the same schedule
    inline).

    ``inference_options`` are forwarded to
    :class:`~repro.constinfer.analysis.ConstInference`.
    """
    if jobs is not None:
        return _run_poly_wavefront(program, lattice, jobs, inference_options)

    start = time.perf_counter()
    inference = ConstInference(program, lattice, **inference_options)
    _create_shared_cells(inference)

    generalize_seconds = 0.0
    graph = FunctionDependenceGraph.build(program)
    for component in graph.sccs():
        # Variables created from here on are local to this SCC and are
        # candidates for quantification; anything older is "free in the
        # environment" (globals, struct fields, library signatures,
        # previously generalised functions).  Shared cells were all
        # pre-created above, so nothing monomorphic is captured.
        boundary = _uid_boundary()
        mark = len(inference.constraints)
        for name in component:
            inference.signature_for(program.functions[name])
        for name in component:
            inference.analyze_function(program.functions[name])
        local = inference.constraints[mark:]
        gen_start = time.perf_counter()
        for name in component:
            inference.schemes[name] = _generalize_component_member(
                inference, name, local, boundary
            )
        generalize_seconds += time.perf_counter() - gen_start

    inference.analyze_global_initializers()

    congen_done = time.perf_counter()
    solution = _solve(inference)
    end = time.perf_counter()
    timings = StageTimings(
        congen_seconds=congen_done - start - generalize_seconds,
        solve_seconds=end - congen_done,
        generalize_seconds=generalize_seconds,
    )
    return InferenceRun(
        "poly",
        solution,
        inference.positions,
        len(inference.constraints),
        end - start,
        inference,
        timings,
    )


def _generalize_component_member(
    inference: ConstInference,
    name: str,
    local: list,
    boundary: int,
):
    """Generalise one SCC member's signature over the variables created
    while analysing the SCC (uid > ``boundary``); older variables are
    free in the environment and stay monomorphic."""
    sig = inference.signatures[name]
    body = sig.fun_qtype
    involved = qual_vars(body)
    for c in local:
        for q in (c.lhs, c.rhs):
            if isinstance(q, QualVar):
                involved.add(q)
    env_vars = {v for v in involved if v.uid < boundary}
    return generalize(
        body, local, env_vars, lattice=inference.lattice, compress=True
    )


def _analyze_component(
    inference: ConstInference,
    program: Program,
    component: list[str],
    band_start: int,
) -> ConstInference:
    """Worker body for one SCC in a wavefront: generate the component's
    constraints into a local view, allocating every fresh variable from
    the component's reserved uid band so numbering is a pure function of
    the schedule, never of thread interleaving."""
    view = inference.local_view()
    with fresh_uid_band(band_start, _UID_BAND_SIZE):
        for name in component:
            view.signature_for(program.functions[name])
        for name in component:
            view.analyze_function(program.functions[name])
    return view


def _run_poly_wavefront(
    program: Program,
    lattice: QualifierLattice | None,
    jobs: int,
    inference_options: dict,
) -> InferenceRun:
    """Wavefront-parallel polymorphic inference.

    The FDG condensation is processed level by level (leaves first).
    Components within a level never reference each other — an FDG edge
    forces the callee's component strictly deeper — so their constraint
    generation commutes.  Determinism at any job count comes from three
    invariants:

    * every component draws fresh variables from a pre-assigned uid band
      (``level base + index * band``), so allocation is independent of
      which thread runs when;
    * shared cells created lazily mid-wavefront (rare: only cells the
      eager pre-creation pass cannot see) come from one low reserved
      band, below every level boundary, so the uid-watermark
      generalisation still treats them as environment;
    * views are merged and generalised serially, in the level's sorted
      component order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()
    inference = ConstInference(program, lattice, **inference_options)
    _create_shared_cells(inference)

    shared_base = _uid_boundary() + 1
    inference._shared_band = UidBand(shared_base, _UID_BAND_SIZE)
    advance_fresh_uids(shared_base + _UID_BAND_SIZE)

    graph = FunctionDependenceGraph.build(program)
    generalize_seconds = 0.0
    executor: ThreadPoolExecutor | None = None
    try:
        for level in graph.wavefronts():
            boundary = _uid_boundary()
            base = boundary + 1
            advance_fresh_uids(base + len(level) * _UID_BAND_SIZE)
            starts = [base + i * _UID_BAND_SIZE for i in range(len(level))]

            if jobs > 1 and len(level) > 1:
                if executor is None:
                    executor = ThreadPoolExecutor(
                        max_workers=jobs, thread_name_prefix="wavefront"
                    )
                views = list(
                    executor.map(
                        _analyze_component,
                        [inference] * len(level),
                        [program] * len(level),
                        level,
                        starts,
                    )
                )
            else:
                views = [
                    _analyze_component(inference, program, component, band_start)
                    for component, band_start in zip(level, starts)
                ]

            gen_start = time.perf_counter()
            for component, view in zip(level, views):
                inference.absorb(view)
                for name in component:
                    inference.schemes[name] = _generalize_component_member(
                        inference, name, view.constraints, boundary
                    )
            generalize_seconds += time.perf_counter() - gen_start
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
    inference._shared_band = None

    inference.analyze_global_initializers()

    congen_done = time.perf_counter()
    solution = _solve(inference)
    end = time.perf_counter()
    timings = StageTimings(
        congen_seconds=congen_done - start - generalize_seconds,
        solve_seconds=end - congen_done,
        generalize_seconds=generalize_seconds,
    )
    return InferenceRun(
        "poly",
        solution,
        inference.positions,
        len(inference.constraints),
        end - start,
        inference,
        timings,
    )


def run_polyrec(
    program: Program,
    lattice: QualifierLattice | None = None,
    max_iterations: int = 8,
    **inference_options,
) -> InferenceRun:
    """Polymorphic-*recursive* const inference (Section 4.3's preferred
    design: "we would prefer to use polymorphic recursion rather than
    let-style polymorphism to avoid working with the FDG").

    No function dependence graph is computed.  Instead, every call —
    including recursive and mutually recursive ones — instantiates the
    callee's scheme from the *previous* fixpoint iteration (initially
    the fully unconstrained scheme), and iteration repeats until every
    function's signature summary (the least/greatest solution of each
    signature qualifier position) stabilises.  Because the qualifier
    lattice is finite and qualifiers do not change the type structure,
    this is decidable and converges quickly, exactly as the paper
    observes; ``max_iterations`` is a safety cap.

    Shared monomorphic state (globals, struct fields, library
    signatures) is created once and survives all iterations; per-
    function state is rolled back between rounds.
    """
    start = time.perf_counter()
    inference = ConstInference(program, lattice, **inference_options)
    _create_shared_cells(inference)
    boundary = _uid_boundary()
    base_constraints = len(inference.constraints)
    library_sigs = dict(inference.signatures)

    # The shared monomorphic prefix (globals, struct fields, library
    # signatures) is identical in every fixpoint round: categorise and
    # dedupe it into an indexed system once, then fork a cheap copy per
    # round instead of re-solving the whole accumulated list from scratch.
    base_system = IndexedSystem(inference.lattice)
    base_system.add_many(inference.constraints[:base_constraints])

    previous_summary: dict[str, tuple] | None = None
    assumptions: dict[str, "object"] = {}

    for _round in range(max_iterations):
        # roll back per-function state
        inference.constraints[base_constraints:] = []
        inference.positions.clear()
        inference.signatures = dict(library_sigs)
        inference.schemes = dict(assumptions)

        for fdef in program.functions.values():
            inference.signature_for(fdef)
        # NOTE: function_value prefers schemes, so every call to a
        # defined function instantiates its assumed scheme — recursion
        # included.  (On the first round there are no assumptions yet
        # and calls share the round's signatures, which only makes the
        # first summary more conservative, never unsound.)
        for fdef in program.functions.values():
            inference.analyze_function(fdef)
        inference.analyze_global_initializers()

        solution = _solve_incremental(base_system, inference, base_constraints)
        summary = _signature_summary(inference, solution)
        if summary == previous_summary:
            break
        previous_summary = summary

        # generalise fresh assumptions for the next round
        local = inference.constraints[base_constraints:]
        assumptions = {}
        for name in program.functions:
            sig = inference.signatures[name]
            involved = qual_vars(sig.fun_qtype)
            for c in local:
                for q in (c.lhs, c.rhs):
                    if isinstance(q, QualVar):
                        involved.add(q)
            env_vars = {v for v in involved if v.uid < boundary}
            assumptions[name] = generalize(
                sig.fun_qtype, local, env_vars, lattice=inference.lattice, compress=True
            )
    else:
        solution = _solve_incremental(base_system, inference, base_constraints)

    elapsed = time.perf_counter() - start
    return InferenceRun(
        "polyrec",
        solution,
        inference.positions,
        len(inference.constraints),
        elapsed,
        inference,
    )


def _signature_summary(inference: ConstInference, solution: Solution):
    """Per function, the (least, greatest) bounds of every qualifier
    position in its signature, in deterministic structural order — the
    fixpoint-comparison key for :func:`run_polyrec`."""
    from ..qual.qtypes import quals_of

    out: dict[str, tuple] = {}
    for name, sig in inference.signatures.items():
        bounds = []
        for qual in quals_of(sig.fun_qtype):
            if isinstance(qual, QualVar):
                bounds.append(
                    (solution.least_of(qual).present, solution.greatest_of(qual).present)
                )
            else:
                bounds.append((qual.present, qual.present))
        out[name] = tuple(bounds)
    return out


def _create_shared_cells(inference: ConstInference) -> None:
    """Pre-create every monomorphic shared cell — globals, struct fields,
    and library-function signatures — so the polymorphic engine's
    uid-watermark never mistakes them for SCC-local variables."""
    program = inference.program
    for name in program.globals:
        inference.global_cell(name)
    for tag, struct in program.structs.items():
        for field_decl in struct.fields:
            inference.field_cell(tag, field_decl.name)
    for proto in program.prototypes.values():
        if proto.name not in program.functions:
            inference.prototype_signature(proto)


def _uid_boundary() -> int:
    """Current fresh-variable watermark: variables allocated after this
    call have strictly larger uids."""
    from ..qual.qtypes import fresh_qual_var

    return fresh_qual_var("boundary").uid


def _wrap_unsat(exc: UnsatisfiableError) -> ConstInferenceError:
    """Carry the solver's source-to-sink witness path into the message;
    the one-line summary alone names only the endpoints."""
    message = str(exc)
    if exc.path:
        message = f"{message}\n{exc.explain()}"
    return ConstInferenceError(message)


def _solve(inference: ConstInference) -> Solution:
    extra = [p.var for p in inference.positions]
    try:
        return solve(inference.constraints, inference.lattice, extra_vars=extra)
    except UnsatisfiableError as exc:
        raise _wrap_unsat(exc) from exc


def _solve_incremental(
    base_system: IndexedSystem, inference: ConstInference, base_constraints: int
) -> Solution:
    """Solve the current round's system by forking the pre-indexed shared
    prefix and adding only the constraints generated after it."""
    system = base_system.fork()
    system.add_many(inference.constraints[base_constraints:])
    try:
        return system.solve(extra_vars=[p.var for p in inference.positions])
    except UnsatisfiableError as exc:
        raise _wrap_unsat(exc) from exc
