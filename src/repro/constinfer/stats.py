"""Constraint-system statistics for inference runs.

The paper argues the whole approach is practical because the constraint
system stays *small and atomic*: linear in program size, solvable in one
pass.  This module measures that claim on real runs — constraints per
source line, variable counts, the breakdown by constraint form
(var/var edges vs constant bounds), classification tallies — and
renders the result, both per run and as a suite table used in
EXPERIMENTS.md's scaling discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..qual.lattice import LatticeElement
from ..qual.qtypes import QualVar
from ..qual.solver import Classification
from .engine import InferenceRun


@dataclass(frozen=True)
class ConstraintStats:
    """Shape statistics of one inference run's constraint system."""

    mode: str
    constraint_count: int
    variable_count: int
    var_var_edges: int
    constant_lower_bounds: int
    constant_upper_bounds: int
    ground_constraints: int
    positions: int
    must: int
    must_not: int
    either: int
    elapsed_seconds: float
    lines: int | None = None

    @property
    def constraints_per_line(self) -> float | None:
        if not self.lines:
            return None
        return self.constraint_count / self.lines

    @property
    def edges_per_variable(self) -> float:
        if not self.variable_count:
            return 0.0
        return self.var_var_edges / self.variable_count

    def summary(self) -> str:
        per_line = (
            f"{self.constraints_per_line:.2f} constraints/line, "
            if self.constraints_per_line is not None
            else ""
        )
        return (
            f"{self.mode}: {self.constraint_count} constraints over "
            f"{self.variable_count} variables ({per_line}"
            f"{self.edges_per_variable:.2f} edges/var); "
            f"{self.var_var_edges} var<=var, "
            f"{self.constant_lower_bounds} const-lower, "
            f"{self.constant_upper_bounds} const-upper, "
            f"{self.ground_constraints} ground; "
            f"positions: {self.must} must / {self.either} either / "
            f"{self.must_not} must-not; "
            f"{self.elapsed_seconds * 1000:.1f} ms"
        )


def collect_stats(run: InferenceRun, lines: int | None = None) -> ConstraintStats:
    """Measure one engine run."""
    var_var = 0
    lower = 0
    upper = 0
    ground = 0
    variables: set[QualVar] = set()
    if run.inference is None:
        raise ValueError("collect_stats needs a run that kept its ConstInference")
    for c in run.inference.constraints:
        lhs_var = isinstance(c.lhs, QualVar)
        rhs_var = isinstance(c.rhs, QualVar)
        if lhs_var:
            variables.add(c.lhs)
        if rhs_var:
            variables.add(c.rhs)
        if lhs_var and rhs_var:
            var_var += 1
        elif rhs_var:
            lower += 1
        elif lhs_var:
            upper += 1
        else:
            ground += 1

    tallies = {
        Classification.MUST: 0,
        Classification.MUST_NOT: 0,
        Classification.EITHER: 0,
    }
    for _position, verdict in run.classified_positions():
        tallies[verdict] += 1

    return ConstraintStats(
        mode=run.mode,
        constraint_count=len(run.inference.constraints),
        variable_count=len(variables),
        var_var_edges=var_var,
        constant_lower_bounds=lower,
        constant_upper_bounds=upper,
        ground_constraints=ground,
        positions=run.total_positions(),
        must=tallies[Classification.MUST],
        must_not=tallies[Classification.MUST_NOT],
        either=tallies[Classification.EITHER],
        elapsed_seconds=run.elapsed_seconds,
        lines=lines,
    )


def format_stats_table(rows: list[tuple[str, ConstraintStats]]) -> str:
    """Suite-level statistics table (one row per benchmark/run)."""
    header = (
        f"{'Name':<16} {'Mode':<8} {'Lines':>7} {'Constraints':>12} "
        f"{'Vars':>8} {'C/line':>7} {'ms':>8}"
    )
    out = [header]
    for name, stats in rows:
        per_line = (
            f"{stats.constraints_per_line:7.2f}"
            if stats.constraints_per_line is not None
            else "      -"
        )
        out.append(
            f"{name:<16} {stats.mode:<8} {stats.lines or 0:>7} "
            f"{stats.constraint_count:>12} {stats.variable_count:>8} "
            f"{per_line} {stats.elapsed_seconds * 1000:>8.1f}"
        )
    return "\n".join(out)
