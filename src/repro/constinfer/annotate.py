"""Source re-annotation: write inferred consts back into C text.

"Ultimately we would like the analysis result to be the text of the
original C program with some extra const qualifiers inserted"
(Section 4.2).  This module does that for the most useful case — the
directly pointed-to level of pointer-typed function parameters, which is
where the overwhelming majority of interesting const positions live:
``char *s`` becomes ``const char *s`` when inference shows the function
never writes through ``s``.

Deeper levels (``char **argv``'s inner cells) are reported in the textual
summary but not rewritten: inserting them correctly requires declarator
surgery the simple line-based rewriter below deliberately avoids.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..qual.solver import Classification
from .analysis import ConstPosition
from .engine import InferenceRun


@dataclass(frozen=True)
class Suggestion:
    """One const the analysis would add to the program text."""

    function: str
    where: str
    depth: int
    line: int

    def __str__(self) -> str:
        return (
            f"{self.function}: {self.where} (pointer depth {self.depth}, "
            f"line {self.line}) may be declared const"
        )


def suggestions(run: InferenceRun) -> list[Suggestion]:
    """Positions not declared const that inference allows to be const."""
    out = []
    for position, verdict in run.classified_positions():
        if position.declared:
            continue
        if verdict is Classification.MUST_NOT:
            continue
        out.append(
            Suggestion(position.function, position.where, position.depth, position.line)
        )
    return out


_PARAM_NAME = re.compile(r"param \d+ \((?P<name>\w+)\)")


def annotate_source(source: str, run: InferenceRun) -> str:
    """Insert ``const`` into parameter declarations the analysis proved
    const-able (depth-1 only).  Returns the rewritten source text.

    The rewriter is resolutely textual: it finds the parameter by name on
    the function's definition line(s) and prefixes its type with
    ``const`` if the parameter's declarator contains a ``*`` and does not
    already say const.  Anything it cannot confidently rewrite is left
    untouched (the suggestion list still reports it).
    """
    lines = source.split("\n")
    for suggestion in suggestions(run):
        if suggestion.depth != 1:
            continue
        match = _PARAM_NAME.search(suggestion.where)
        if match is None:
            continue
        param = match.group("name")
        line_index = suggestion.line - 1
        if not 0 <= line_index < len(lines):
            continue
        lines[line_index] = _annotate_param(lines[line_index], param)
    return "\n".join(lines)


def _annotate_param(line: str, param: str) -> str:
    """Prefix the declaration of ``param`` on this line with const.

    Only single-star declarators are rewritten: for ``T **p`` a textual
    ``const`` prefix would qualify the *deepest* level, not the depth-1
    position the suggestion refers to, so multi-level pointers are left
    to the suggestion list.
    """
    pattern = re.compile(
        r"(?P<const>\bconst\s+)?"
        r"(?P<spec>\b(?:unsigned\s+|signed\s+)?(?:struct\s+\w+|union\s+\w+|\w+)\s*)"
        r"\*(?!\s*\*)\s*" + re.escape(param) + r"\b"
    )

    def replace(match: re.Match[str]) -> str:
        if match.group("const"):
            return match.group(0)
        return "const " + match.group(0)

    return pattern.sub(replace, line, count=1)


def format_report(run: InferenceRun, limit: int | None = None) -> str:
    """Human-readable classification of every interesting position."""
    out = [
        f"{run.mode} const inference: {run.total_positions()} interesting "
        f"positions, {run.constraint_count} constraints, "
        f"{run.elapsed_seconds:.3f}s",
        "",
    ]
    rows = run.classified_positions()
    if limit is not None:
        rows = rows[:limit]
    for position, verdict in rows:
        marker = {
            Classification.MUST: "must be const",
            Classification.MUST_NOT: "must NOT be const",
            Classification.EITHER: "may be const",
        }[verdict]
        declared = " (declared)" if position.declared else ""
        out.append(f"  {position.describe():<50} {marker}{declared}")
    return "\n".join(out)
