"""Command-line driver for C const inference.

Usage::

    quals-const report FILE...        # classify every interesting position
    quals-const table FILE...         # a Table-2 style row for the input
    quals-const annotate FILE         # rewrite with inferred consts
    quals-const suite                 # run the built-in benchmark suite
    quals-const whole FILE|DIR...     # link units, infer whole-program

The ``suite`` command accepts ``--jobs N`` to fan benchmarks over a
process pool (and to run the polymorphic engine's wavefront scheduler
with N threads), ``--cache-dir DIR`` to choose where the
content-addressed analysis cache lives, and ``--no-cache`` to disable
it; warm reruns skip parsing and constraint generation entirely.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..cfront.sema import Program
from .annotate import annotate_source, format_report, suggestions
from .engine import ConstInferenceError, run_mono, run_poly, run_polyrec
from .results import (
    analyze_program,
    format_figure6,
    format_stage_timings,
    format_table1,
    format_table2,
    format_whole_report,
)


def _load(paths: list[str]) -> tuple[Program, float, int]:
    sources = {}
    total_lines = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        sources[path] = text
        total_lines += text.count("\n") + 1
    start = time.perf_counter()
    program = Program.from_sources(sources)
    return program, time.perf_counter() - start, total_lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="quals-const", description=__doc__)
    parser.add_argument(
        "command", choices=["report", "table", "annotate", "suite", "whole"]
    )
    parser.add_argument("files", nargs="*", help="C source files")
    parser.add_argument("--poly", action="store_true", help="use polymorphic inference for report/annotate")
    parser.add_argument(
        "--engine",
        choices=["mono", "poly", "polyrec"],
        default=None,
        help="inference engine for report/annotate (overrides --poly)",
    )
    parser.add_argument("--limit", type=int, default=None, help="limit report rows")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="suite/whole: worker processes for the benchmarks and worker "
        "threads for the wavefront schedulers (per SCC, or per TU) "
        "(default: serial; results are identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".quals-cache",
        help="suite/whole: directory of the content-addressed analysis cache "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="suite/whole: disable the analysis cache (always parse and "
        "regenerate constraints)",
    )
    args = parser.parse_args(argv)

    if args.command == "suite":
        from ..benchsuite.suite import PAPER_BENCHMARKS, benchmark_rows
        from .cache import CacheStats

        specs = PAPER_BENCHMARKS[: args.limit] if args.limit else PAPER_BENCHMARKS
        cache_stats = CacheStats()
        rows = benchmark_rows(
            specs,
            jobs=args.jobs,
            poly_jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            cache_stats=cache_stats,
        )
        print(format_table1(rows))
        print()
        print(format_table2(rows))
        print()
        print(format_figure6(rows))
        print()
        print(format_stage_timings(rows))
        if not args.no_cache:
            print()
            print(f"analysis cache ({args.cache_dir}): {cache_stats.summary()}")
        return 0

    if not args.files:
        print("error: no input files", file=sys.stderr)
        return 2

    if args.command == "whole":
        from ..whole import link_paths, run_whole_poly
        from .cache import AnalysisCache

        cache = None if args.no_cache else AnalysisCache(args.cache_dir)
        linked = link_paths(args.files)
        try:
            result = run_whole_poly(linked, jobs=args.jobs or 1, cache=cache)
        except ConstInferenceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(format_whole_report(result))
        if args.limit is not None:
            print()
            print(format_report(result.run, args.limit))
        return 1 if linked.diagnostics else 0

    program, compile_seconds, lines = _load(args.files)

    if args.command == "table":
        row = analyze_program(
            program,
            name=args.files[0],
            lines=lines,
            compile_seconds=compile_seconds,
        )
        print(format_table2([row]))
        return 0

    engine = args.engine or ("poly" if args.poly else "mono")
    try:
        run = {"mono": run_mono, "poly": run_poly, "polyrec": run_polyrec}[engine](program)
    except ConstInferenceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.command == "report":
        print(format_report(run, args.limit))
        return 0

    # annotate
    if len(args.files) != 1:
        print("error: annotate takes exactly one file", file=sys.stderr)
        return 2
    with open(args.files[0], "r", encoding="utf-8") as handle:
        source = handle.read()
    print(annotate_source(source, run))
    print(f"/* {len(suggestions(run))} positions may be const */", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
