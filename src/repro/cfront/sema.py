"""Semantic tables for analysed C programs.

Builds the whole-program symbol tables the const inference consumes:
struct/union layouts by tag (field qualifier sharing, Section 4.2), enum
constants, function definitions and prototypes, and global variables.
Several translation units can be merged, matching the paper's setup of
analysing a whole package at once ("we analyzed each set of programs at
once"); colliding function definitions are renamed, as the paper did.

Also provides the body-walking helpers the FDG construction needs: the
set of function names *occurring* in a function's body (Definition 4 says
there is an edge f -> g iff f contains an occurrence of the name g — any
occurrence, not just calls, so function-pointer uses count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .cast import (
    Assignment,
    Binary,
    Call,
    CaseStmt,
    Cast,
    CExpr,
    Comma,
    Compound,
    Conditional,
    CStmt,
    DeclStmt,
    DoWhileStmt,
    EnumDef,
    ExprStmt,
    ForStmt,
    FuncDecl,
    FuncDef,
    GotoStmt,
    Ident,
    IfStmt,
    Index,
    InitList,
    LabeledStmt,
    Member,
    ReturnStmt,
    StructDef,
    SwitchStmt,
    TranslationUnit,
    TypedefDecl,
    Unary,
    VarDecl,
    WhileStmt,
)
from .cparser import parse_c


class SemaError(Exception):
    """Whole-program consistency error."""


@dataclass
class Program:
    """Merged symbol tables for one or more translation units."""

    units: list[TranslationUnit] = field(default_factory=list)
    structs: dict[str, StructDef] = field(default_factory=dict)
    enums: dict[str, EnumDef] = field(default_factory=dict)
    enum_constants: dict[str, int] = field(default_factory=dict)
    functions: dict[str, FuncDef] = field(default_factory=dict)
    prototypes: dict[str, FuncDecl] = field(default_factory=dict)
    globals: dict[str, VarDecl] = field(default_factory=dict)
    typedefs: dict[str, TypedefDecl] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_units(cls, units: list[TranslationUnit]) -> "Program":
        program = cls(units=list(units))
        for unit in units:
            for item in unit.items:
                program._add(item)
        return program

    @classmethod
    def from_source(cls, source: str, filename: str = "<input>") -> "Program":
        return cls.from_units([parse_c(source, filename)])

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Program":
        return cls.from_units(
            [parse_c(text, name) for name, text in sources.items()]
        )

    def _add(self, item) -> None:
        if isinstance(item, StructDef):
            # Later (or more complete) definitions win; empty redeclaration
            # of a known tag keeps the existing fields.
            existing = self.structs.get(item.tag)
            if existing is None or (item.fields and not existing.fields):
                self.structs[item.tag] = item
        elif isinstance(item, EnumDef):
            self.enums[item.tag] = item
            value = 0
            for name, expr in item.enumerators:
                from .cast import IntConst

                if isinstance(expr, IntConst):
                    value = expr.value
                self.enum_constants[name] = value
                value += 1
        elif isinstance(item, FuncDef):
            if item.name in self.functions:
                # The paper renamed functions multiply defined across
                # files; we do the same deterministically.
                suffix = 2
                while f"{item.name}__dup{suffix}" in self.functions:
                    suffix += 1
                item = FuncDef(
                    f"{item.name}__dup{suffix}",
                    item.ret,
                    item.params,
                    item.body,
                    item.varargs,
                    item.storage,
                    item.line,
                    item.col,
                    item.file,
                )
            self.functions[item.name] = item
        elif isinstance(item, FuncDecl):
            self.prototypes.setdefault(item.name, item)
        elif isinstance(item, VarDecl):
            if item.storage != "extern" or item.name not in self.globals:
                self.globals[item.name] = item
        elif isinstance(item, TypedefDecl):
            self.typedefs.setdefault(item.name, item)

    # ------------------------------------------------------------------
    def defined_function_names(self) -> set[str]:
        return set(self.functions)

    def undefined_function_names(self) -> set[str]:
        """Prototyped but never defined: the library functions of
        Section 4.2, treated maximally conservatively."""
        return set(self.prototypes) - set(self.functions)

    def total_lines(self) -> int:
        """Highest source line seen, summed per unit (a proxy for the
        Table 1 'Lines' column when sources came from files)."""
        total = 0
        for unit in self.units:
            last = 0
            for item in unit.items:
                last = max(last, getattr(item, "line", 0))
            total += last
        return total


# ---------------------------------------------------------------------------
# Body traversals
# ---------------------------------------------------------------------------


def subexpressions(expr: CExpr) -> Iterator[CExpr]:
    """Pre-order traversal of an expression."""
    yield expr
    match expr:
        case Unary(operand=inner):
            yield from subexpressions(inner)
        case Binary(left=left, right=right) | Comma(left=left, right=right):
            yield from subexpressions(left)
            yield from subexpressions(right)
        case Assignment(target=target, value=value):
            yield from subexpressions(target)
            yield from subexpressions(value)
        case Conditional(cond=c, then=t, other=o):
            yield from subexpressions(c)
            yield from subexpressions(t)
            yield from subexpressions(o)
        case Call(func=f, args=args):
            yield from subexpressions(f)
            for arg in args:
                yield from subexpressions(arg)
        case Member(base=base):
            yield from subexpressions(base)
        case Index(base=base, index=index):
            yield from subexpressions(base)
            yield from subexpressions(index)
        case Cast(operand=inner):
            yield from subexpressions(inner)
        case InitList(items=items):
            for item in items:
                yield from subexpressions(item)
        case _:
            return


def statements(stmt: CStmt) -> Iterator[CStmt]:
    """Pre-order traversal of a statement tree."""
    yield stmt
    match stmt:
        case Compound(body=body):
            for child in body:
                yield from statements(child)
        case IfStmt(then=t, other=o):
            yield from statements(t)
            if o is not None:
                yield from statements(o)
        case WhileStmt(body=b) | DoWhileStmt(body=b) | SwitchStmt(body=b):
            yield from statements(b)
        case ForStmt(init=init, body=b):
            if isinstance(init, DeclStmt):
                yield from statements(init)
            yield from statements(b)
        case LabeledStmt(stmt=s) | CaseStmt(stmt=s):
            yield from statements(s)
        case _:
            return


def expressions_of(stmt: CStmt) -> Iterator[CExpr]:
    """All expressions syntactically contained in a statement tree,
    including declaration initialisers."""
    for s in statements(stmt):
        match s:
            case ExprStmt(expr=e) | SwitchStmt(value=e) | DoWhileStmt(cond=e):
                yield from subexpressions(e)
            case IfStmt(cond=c) | WhileStmt(cond=c):
                yield from subexpressions(c)
            case ForStmt(init=init, cond=cond, step=step):
                if init is not None and not isinstance(init, DeclStmt):
                    yield from subexpressions(init)
                if cond is not None:
                    yield from subexpressions(cond)
                if step is not None:
                    yield from subexpressions(step)
            case ReturnStmt(value=v):
                if v is not None:
                    yield from subexpressions(v)
            case CaseStmt(value=v):
                if v is not None:
                    yield from subexpressions(v)
            case DeclStmt(decls=decls):
                for decl in decls:
                    if decl.init is not None:
                        yield from subexpressions(decl.init)
            case _:
                continue


def occurring_names(fdef: FuncDef) -> set[str]:
    """All identifier names occurring in a function body (Definition 4's
    'occurrence of the name g', so any mention counts, calls or not)."""
    names: set[str] = set()
    for expr in expressions_of(fdef.body):
        if isinstance(expr, Ident):
            names.add(expr.name)
    return names


def direct_callees(fdef: FuncDef) -> set[str]:
    """Names called directly (``f(...)`` with ``f`` a plain identifier)."""
    names: set[str] = set()
    for expr in expressions_of(fdef.body):
        if isinstance(expr, Call) and isinstance(expr.func, Ident):
            names.add(expr.func.name)
    return names


def address_taken_names(fdef: FuncDef) -> set[str]:
    """Identifiers occurring *outside* the direct-callee position of a
    call — the conservative "address taken" set for function-pointer
    resolution (assignment, argument passing, explicit ``&f``, ...).

    C decays a function name to a pointer in every context except a
    direct call, so any non-callee occurrence is a potential capture.
    The AST is a tree, so node identity distinguishes the same name
    used both as callee and as a value.
    """
    callee_idents: set[int] = set()
    for expr in expressions_of(fdef.body):
        if isinstance(expr, Call) and isinstance(expr.func, Ident):
            callee_idents.add(id(expr.func))
    names: set[str] = set()
    for expr in expressions_of(fdef.body):
        if isinstance(expr, Ident) and id(expr) not in callee_idents:
            names.add(expr.name)
    return names


def indirect_call_sites(fdef: FuncDef, function_names: set[str]) -> list[Call]:
    """Call expressions whose callee is not a known function name —
    calls through function-pointer values needing resolution.

    ``function_names`` should cover defined functions and prototypes;
    a callee Ident outside that set is a function-pointer variable.
    """
    sites: list[Call] = []
    for expr in expressions_of(fdef.body):
        if not isinstance(expr, Call):
            continue
        if isinstance(expr.func, Ident) and expr.func.name in function_names:
            continue
        sites.append(expr)
    return sites
