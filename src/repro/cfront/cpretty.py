"""Pretty-printer for the C subset: AST back to compilable C text.

Used by the tests for parse → print → parse round-trips (the printer is
a faithful inverse of the parser up to layout), and by tooling that
wants to emit analysed-and-transformed programs.  Declarations are
rendered through :func:`repro.cfront.ctypes.format_ctype`, which handles
the inside-out declarator syntax (function pointers, arrays, qualifier
placement).
"""

from __future__ import annotations

from .cast import (
    Assignment,
    Binary,
    BreakStmt,
    Call,
    CaseStmt,
    Cast,
    CExpr,
    CharConst,
    Comma,
    Compound,
    Conditional,
    ContinueStmt,
    CStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    EnumDef,
    ExprStmt,
    FloatConst,
    ForStmt,
    FuncDecl,
    FuncDef,
    GotoStmt,
    Ident,
    IfStmt,
    Index,
    InitList,
    IntConst,
    LabeledStmt,
    Member,
    ReturnStmt,
    SizeofType,
    StringConst,
    StructDef,
    SwitchStmt,
    TopLevel,
    TranslationUnit,
    TypedefDecl,
    Unary,
    VarDecl,
    WhileStmt,
)
from .ctypes import format_ctype

# C operator precedence, higher binds tighter; used to parenthesise
# exactly where needed.
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_PREC_ASSIGN = 0
_PREC_CONDITIONAL = 0.5
_PREC_UNARY = 11
_PREC_POSTFIX = 12
_PREC_PRIMARY = 13


_ESCAPES = {
    "\n": "\\n", "\t": "\\t", "\r": "\\r", "\0": "\\0",
    "\\": "\\\\", '"': '\\"', "\a": "\\a", "\b": "\\b",
    "\f": "\\f", "\v": "\\v",
}


def _escape_string(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


def _escape_char(code: int) -> str:
    ch = chr(code) if 0 <= code < 0x110000 else "?"
    if ch == "'":
        return "\\'"
    if ch in _ESCAPES:
        return _ESCAPES[ch].replace('\\"', '"')
    if 32 <= code < 127:
        return ch
    return f"\\x{code:x}"


def format_expr(expr: CExpr, parent_precedence: float = -1) -> str:
    """Render an expression, parenthesising against the given context."""
    text, precedence = _expr(expr)
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _expr(expr: CExpr) -> tuple[str, float]:
    match expr:
        case Ident(name=name):
            return name, _PREC_PRIMARY
        case IntConst(value=value):
            return str(value), _PREC_PRIMARY
        case FloatConst(text=text):
            return text, _PREC_PRIMARY
        case CharConst(value=value):
            return f"'{_escape_char(value)}'", _PREC_PRIMARY
        case StringConst(value=value):
            return f'"{_escape_string(value)}"', _PREC_PRIMARY
        case Unary(op="sizeof", operand=operand):
            return f"sizeof {format_expr(operand, _PREC_UNARY)}", _PREC_UNARY
        case Unary(op=op, operand=operand, postfix=True):
            return f"{format_expr(operand, _PREC_POSTFIX)}{op}", _PREC_POSTFIX
        case Unary(op=op, operand=operand):
            inner = format_expr(operand, _PREC_UNARY)
            # avoid `- -x` gluing into `--x`
            spacer = " " if op in ("-", "+", "--", "++") and inner.startswith(op[0]) else ""
            return f"{op}{spacer}{inner}", _PREC_UNARY
        case Binary(op=op, left=left, right=right):
            precedence = _BINARY_PRECEDENCE[op]
            left_text = format_expr(left, precedence)
            right_text = format_expr(right, precedence + 0.1)  # left assoc
            return f"{left_text} {op} {right_text}", precedence
        case Assignment(op=op, target=target, value=value):
            target_text = format_expr(target, _PREC_UNARY)
            value_text = format_expr(value, _PREC_ASSIGN)
            return f"{target_text} {op} {value_text}", _PREC_ASSIGN
        case Conditional(cond=cond, then=then, other=other):
            return (
                f"{format_expr(cond, 1)} ? {format_expr(then, _PREC_ASSIGN)} "
                f": {format_expr(other, _PREC_CONDITIONAL)}",
                _PREC_CONDITIONAL,
            )
        case Call(func=func, args=args):
            arg_text = ", ".join(format_expr(a, _PREC_ASSIGN) for a in args)
            return f"{format_expr(func, _PREC_POSTFIX)}({arg_text})", _PREC_POSTFIX
        case Member(base=base, field_name=name, arrow=arrow):
            op = "->" if arrow else "."
            return f"{format_expr(base, _PREC_POSTFIX)}{op}{name}", _PREC_POSTFIX
        case Index(base=base, index=index):
            return (
                f"{format_expr(base, _PREC_POSTFIX)}[{format_expr(index)}]",
                _PREC_POSTFIX,
            )
        case Cast(target_type=target, operand=operand):
            return (
                f"({format_ctype(target)}){format_expr(operand, _PREC_UNARY)}",
                _PREC_UNARY,
            )
        case SizeofType(target_type=target):
            return f"sizeof({format_ctype(target)})", _PREC_UNARY
        case Comma(left=left, right=right):
            return f"{format_expr(left, _PREC_ASSIGN)}, {format_expr(right, -1)}", -1
        case InitList(items=items):
            inner = ", ".join(format_expr(i, _PREC_ASSIGN) for i in items)
            return f"{{ {inner} }}", _PREC_PRIMARY
        case _:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown expression {expr!r}")


def format_stmt(stmt: CStmt, indent: int = 0) -> str:
    pad = "    " * indent
    match stmt:
        case ExprStmt(expr=expr):
            return f"{pad}{format_expr(expr)};"
        case EmptyStmt():
            return f"{pad};"
        case DeclStmt(decls=decls):
            lines = []
            for decl in decls:
                init = f" = {format_expr(decl.init, 0)}" if decl.init is not None else ""
                storage = f"{decl.storage} " if decl.storage else ""
                lines.append(f"{pad}{storage}{format_ctype(decl.type, decl.name)}{init};")
            return "\n".join(lines)
        case Compound(body=body):
            inner = "\n".join(format_stmt(s, indent + 1) for s in body)
            if not inner:
                return f"{pad}{{\n{pad}}}"
            return f"{pad}{{\n{inner}\n{pad}}}"
        case IfStmt(cond=cond, then=then, other=other):
            out = f"{pad}if ({format_expr(cond)})\n{format_stmt(_blockify(then), indent)}"
            if other is not None:
                out += f"\n{pad}else\n{format_stmt(_blockify(other), indent)}"
            return out
        case WhileStmt(cond=cond, body=body):
            return f"{pad}while ({format_expr(cond)})\n{format_stmt(_blockify(body), indent)}"
        case DoWhileStmt(body=body, cond=cond):
            return (
                f"{pad}do\n{format_stmt(_blockify(body), indent)}\n"
                f"{pad}while ({format_expr(cond)});"
            )
        case ForStmt(init=init, cond=cond, step=step, body=body):
            if init is None:
                init_text = ""
            elif isinstance(init, DeclStmt):
                init_text = format_stmt(init).strip().rstrip(";")
            else:
                init_text = format_expr(init)
            cond_text = format_expr(cond) if cond is not None else ""
            step_text = format_expr(step) if step is not None else ""
            return (
                f"{pad}for ({init_text}; {cond_text}; {step_text})\n"
                f"{format_stmt(_blockify(body), indent)}"
            )
        case ReturnStmt(value=value):
            if value is None:
                return f"{pad}return;"
            return f"{pad}return {format_expr(value)};"
        case BreakStmt():
            return f"{pad}break;"
        case ContinueStmt():
            return f"{pad}continue;"
        case GotoStmt(label=label):
            return f"{pad}goto {label};"
        case LabeledStmt(label=label, stmt=inner):
            return f"{pad[4:] if pad else ''}{label}:\n{format_stmt(inner, indent)}"
        case SwitchStmt(value=value, body=body):
            return f"{pad}switch ({format_expr(value)})\n{format_stmt(_blockify(body), indent)}"
        case CaseStmt(value=value, stmt=inner):
            head = f"{pad}case {format_expr(value)}:" if value is not None else f"{pad}default:"
            return f"{head}\n{format_stmt(inner, indent + 1)}"
        case _:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown statement {stmt!r}")


def _blockify(stmt: CStmt) -> CStmt:
    """Wrap non-compound statements so bodies always print as blocks,
    avoiding every dangling-else ambiguity."""
    if isinstance(stmt, Compound):
        return stmt
    return Compound((stmt,))


def normalize_stmt(stmt: CStmt) -> CStmt:
    """Canonicalise statement bodies by blockifying every control-flow
    body.  Two ASTs that differ only in optional braces normalise to the
    same tree; round-trip tests compare modulo this, since the printer
    always emits braces."""
    match stmt:
        case Compound(body=body):
            flat: list[CStmt] = []
            for child in body:
                flat.append(normalize_stmt(child))
            return Compound(tuple(flat))
        case IfStmt(cond=cond, then=then, other=other):
            return IfStmt(
                cond,
                normalize_stmt(_blockify(then)),
                normalize_stmt(_blockify(other)) if other is not None else None,
            )
        case WhileStmt(cond=cond, body=body):
            return WhileStmt(cond, normalize_stmt(_blockify(body)))
        case DoWhileStmt(body=body, cond=cond):
            return DoWhileStmt(normalize_stmt(_blockify(body)), cond)
        case ForStmt(init=init, cond=cond, step=step, body=body):
            return ForStmt(init, cond, step, normalize_stmt(_blockify(body)))
        case SwitchStmt(value=value, body=body):
            return SwitchStmt(value, normalize_stmt(_blockify(body)))
        case CaseStmt(value=value, stmt=inner):
            return CaseStmt(value, normalize_stmt(inner))
        case LabeledStmt(label=label, stmt=inner):
            return LabeledStmt(label, normalize_stmt(inner))
        case _:
            return stmt


def normalize_toplevel(item: TopLevel) -> TopLevel:
    """Normalise a top-level item (function bodies get canonical braces)."""
    if isinstance(item, FuncDef):
        body = normalize_stmt(item.body)
        assert isinstance(body, Compound)
        return FuncDef(
            item.name, item.ret, item.params, body, item.varargs, item.storage, item.line
        )
    return item


def format_toplevel(item: TopLevel) -> str:
    match item:
        case VarDecl(name=name, type=ctype, init=init, storage=storage):
            prefix = f"{storage} " if storage else ""
            init_text = f" = {format_expr(init, 0)}" if init is not None else ""
            return f"{prefix}{format_ctype(ctype, name)}{init_text};"
        case FuncDecl(name=name, ret=ret, params=params, varargs=varargs, storage=storage):
            prefix = f"{storage} " if storage else ""
            return f"{prefix}{_signature(name, ret, params, varargs)};"
        case FuncDef(
            name=name, ret=ret, params=params, body=body, varargs=varargs, storage=storage
        ):
            prefix = f"{storage} " if storage else ""
            return f"{prefix}{_signature(name, ret, params, varargs)}\n{format_stmt(body)}"
        case StructDef(tag=tag, fields=fields, is_union=is_union):
            kw = "union" if is_union else "struct"
            lines = [f"{kw} {tag} {{"]
            for field in fields:
                lines.append(f"    {format_ctype(field.type, field.name)};")
            lines.append("};")
            return "\n".join(lines)
        case EnumDef(tag=tag, enumerators=enumerators):
            parts = []
            for name, value in enumerators:
                if value is not None:
                    parts.append(f"{name} = {format_expr(value)}")
                else:
                    parts.append(name)
            return f"enum {tag} {{ {', '.join(parts)} }};"
        case TypedefDecl(name=name, type=ctype):
            return f"typedef {format_ctype(ctype, name)};"
        case _:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown top-level item {item!r}")


def _signature(name, ret, params, varargs) -> str:
    rendered = [format_ctype(p.type, p.name or "") for p in params]
    if varargs:
        rendered.append("...")
    param_text = ", ".join(rendered) if rendered else "void"
    return f"{format_ctype(ret, '')} {name}({param_text})".replace("  ", " ")


def format_unit(unit: TranslationUnit) -> str:
    """Render a whole translation unit back to C source."""
    return "\n\n".join(format_toplevel(item) for item in unit.items) + "\n"
