"""Lexer for the C subset analysed by the const-inference system.

Handles identifiers, keywords, integer/floating/character/string
constants (with the usual escapes), all the operators and punctuation the
parser needs, ``//`` and ``/* */`` comments, and line continuations.
Preprocessor directives are skipped line-wise: the analysis consumes
post-preprocessing C (the paper's benchmarks were similarly fed through
the system after preprocessing), so ``#include``/``#define`` lines carry
no information here.  (:mod:`repro.cfront.cpp` is the in-tree minimal
preprocessor for sources that still carry their directives.)

Two error disciplines share one scanner: the strict path raises
:class:`CLexError` at the first bad byte (the seed behaviour, kept for
API users that want hard failures), while the *recovery* path — used by
the best-effort corpus pipeline — records a structured
:class:`ParseDiagnostic` per problem and keeps scanning, so one stray
byte never hides the rest of the file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CTokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT_CONST = "int_const"
    FLOAT_CONST = "float_const"
    CHAR_CONST = "char_const"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


C_KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "int", "long", "register", "return", "short", "signed",
        "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while", "inline",
    }
)

# Longest-match-first punctuation table.
_PUNCTUATION = (
    "...",
    "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)


@dataclass(frozen=True)
class CToken:
    kind: CTokenKind
    text: str
    line: int
    column: int
    #: Originating file when it differs from the parse's nominal filename
    #: (tokens pulled in through ``#include`` by the preprocessor).  Empty
    #: means "the file being parsed", which keeps the strict path and
    #: every pre-existing constructor unchanged.
    file: str = field(default="", compare=False)

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"


class CLexError(Exception):
    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"{message} at {line}:{column}")


@dataclass(frozen=True)
class ParseDiagnostic:
    """One structured front-end problem from the recovery path.

    Produced by the recovering lexer (``stage="lex"``), the panic-mode
    parser (``stage="parse"``), and the minimal preprocessor
    (``stage="cpp"``).  ``severity`` is ``"error"`` for input the front
    end could not honour and ``"warning"`` for suspicious-but-accepted
    constructs (macro redefinition, unresolvable includes).
    """

    file: str
    line: int
    column: int
    message: str
    stage: str = "parse"  # "lex" | "parse" | "cpp"
    severity: str = "error"  # "error" | "warning"
    #: What the parser wanted (e.g. ``";"``), when it knows.
    expected: str | None = None
    #: What it saw instead, rendered like ``PUNCT ')'``.
    found: str | None = None
    #: The token text recovery synchronised on (``";"``, ``"}"``, a
    #: declaration keyword, or ``"<eof>"``).
    sync: str | None = None

    def describe(self) -> str:
        """The message with its expected/found context, no location —
        what a checker diagnostic or a daemon response carries."""
        out = self.message
        if self.expected is not None:
            out += f" (expected {self.expected}"
            if self.found is not None:
                out += f", found {self.found}"
            out += ")"
        elif self.found is not None:
            out += f" (found {self.found})"
        return out

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.column}: {self.severity}: {self.describe()}"


def tokenize_c(
    source: str,
    filename: str = "<input>",
    recover: bool = False,
    diagnostics: list[ParseDiagnostic] | None = None,
) -> list[CToken]:
    """Tokenize C source; returns tokens ending with EOF.

    With ``recover=True`` lexical problems (stray bytes, unterminated
    comments/strings) are appended to ``diagnostics`` as
    :class:`ParseDiagnostic` records and scanning continues past them;
    the strict default raises :class:`CLexError` exactly as before.
    """
    tokens: list[CToken] = []
    i = 0
    n = len(source)
    line, col = 1, 1

    def problem(message: str, at_line: int, at_col: int) -> None:
        if not recover:
            raise CLexError(message, at_line, at_col)
        if diagnostics is not None:
            diagnostics.append(
                ParseDiagnostic(
                    file=filename,
                    line=at_line,
                    column=at_col,
                    message=message,
                    stage="lex",
                )
            )

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    def at_line_start() -> bool:
        j = i - 1
        while j >= 0 and source[j] in " \t":
            j -= 1
        return j < 0 or source[j] == "\n"

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "\\" and i + 1 < n and source[i + 1] == "\n":
            advance(2)
            continue
        if ch == "#" and at_line_start():
            # Preprocessor directive: skip to end of (logical) line.
            while i < n and source[i] != "\n":
                if source[i] == "\\" and i + 1 < n and source[i + 1] == "\n":
                    advance(2)
                    continue
                advance(1)
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                advance(1)
            if i + 1 >= n:
                problem("unterminated comment", start_line, start_col)
                advance(n - i)  # recovery: the comment swallows the tail
                continue
            advance(2)
            continue

        tok_line, tok_col = line, col

        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = CTokenKind.KEYWORD if text in C_KEYWORDS else CTokenKind.IDENT
            tokens.append(CToken(kind, text, tok_line, tok_col))
            advance(j - i)
            continue

        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source[j] == "0" and j + 1 < n and source[j + 1] in "xX":
                j += 2
                while j < n and (source[j].isdigit() or source[j].lower() in "abcdef"):
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    while j < n and source[j].isdigit():
                        j += 1
            # integer/float suffixes
            while j < n and source[j] in "uUlLfF":
                if source[j] in "fF":
                    is_float = True
                j += 1
            text = source[i:j]
            kind = CTokenKind.FLOAT_CONST if is_float else CTokenKind.INT_CONST
            tokens.append(CToken(kind, text, tok_line, tok_col))
            advance(j - i)
            continue

        if ch == "'":
            j = i + 1
            while j < n and source[j] != "'" and not (recover and source[j] == "\n"):
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n or source[j] != "'":
                problem("unterminated character constant", tok_line, tok_col)
                advance(j - i)  # recovery: drop the open fragment
                continue
            text = source[i : j + 1]
            tokens.append(CToken(CTokenKind.CHAR_CONST, text, tok_line, tok_col))
            advance(j + 1 - i)
            continue

        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"' and not (recover and source[j] == "\n"):
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n or source[j] != '"':
                problem("unterminated string literal", tok_line, tok_col)
                advance(j - i)  # recovery: drop the open fragment
                continue
            text = source[i : j + 1]
            tokens.append(CToken(CTokenKind.STRING, text, tok_line, tok_col))
            advance(j + 1 - i)
            continue

        for punct in _PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(CToken(CTokenKind.PUNCT, punct, tok_line, tok_col))
                advance(len(punct))
                break
        else:
            problem(f"unexpected character {ch!r}", tok_line, tok_col)
            advance(1)  # recovery: skip the stray byte

    tokens.append(CToken(CTokenKind.EOF, "", line, col))
    return tokens


def parse_int_constant(text: str) -> int:
    """Value of an integer constant token (handles hex, octal, suffixes)."""
    body = text.rstrip("uUlL")
    if body.lower().startswith("0x"):
        return int(body, 16)
    if body.startswith("0") and len(body) > 1:
        return int(body, 8)
    return int(body)


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


def parse_string_literal(body: str) -> str:
    """Decode the escapes inside a string literal's body (no quotes)."""
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\" or i + 1 >= len(body):
            out.append(ch)
            i += 1
            continue
        nxt = body[i + 1]
        if nxt == "x":
            j = i + 2
            while j < len(body) and body[j] in "0123456789abcdefABCDEF":
                j += 1
            out.append(chr(int(body[i + 2 : j], 16)))
            i = j
            continue
        if nxt.isdigit():
            j = i + 1
            while j < len(body) and j < i + 4 and body[j].isdigit():
                j += 1
            out.append(chr(int(body[i + 1 : j], 8)))
            i = j
            continue
        out.append(_ESCAPES.get(nxt, nxt))
        i += 2
    return "".join(out)


def parse_char_constant(text: str) -> int:
    """Value of a character constant token like ``'a'`` or ``'\\n'``."""
    body = text[1:-1]
    if body.startswith("\\"):
        tail = body[1:]
        if tail and tail[0] == "x":
            return int(tail[1:], 16)
        if tail and tail[0].isdigit():
            return int(tail, 8)
        if tail and tail[0] in _ESCAPES:
            return ord(_ESCAPES[tail[0]])
        raise ValueError(f"bad escape in {text!r}")
    if len(body) != 1:
        raise ValueError(f"bad character constant {text!r}")
    return ord(body)
