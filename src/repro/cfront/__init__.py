"""From-scratch C front end (Section 4's substrate).

* :mod:`repro.cfront.clexer` — C lexer (comments, constants, operators,
  preprocessor-line skipping), strict and recovering.
* :mod:`repro.cfront.cparser` — recursive-descent parser: declarators,
  typedefs, structs/unions/enums, statements, the full expression
  grammar; ``parse_c`` raises on the first error, ``parse_c_resilient``
  recovers panic-mode style and returns a partial unit + diagnostics.
* :mod:`repro.cfront.cpp` — minimal preprocessor (includes, object-like
  macros, conditionals) with original-file line maps.
* :mod:`repro.cfront.cast` — the C AST.
* :mod:`repro.cfront.ctypes` — C types and the Section 4.1 ``l``
  translation of C types into qualified ref types.
* :mod:`repro.cfront.sema` — whole-program symbol tables and traversals.
* :mod:`repro.cfront.cpretty` — AST back to C text (round-trip tested).
"""

from .clexer import CLexError, CToken, CTokenKind, ParseDiagnostic, tokenize_c
from .cparser import CParseError, ParseResult, parse_c, parse_c_resilient
from .cpp import PreprocessResult, preprocess
from .cast import TranslationUnit
from .ctypes import (
    CArray,
    CBase,
    CEnum,
    CFunc,
    CPointer,
    CStruct,
    CType,
    LevelInfo,
    TranslatedType,
    decay,
    format_ctype,
    is_const,
    is_pointerish,
    lvalue_qtype,
    pointee,
    pointer_depth,
)
from .cpretty import (
    format_expr,
    format_stmt,
    format_toplevel,
    format_unit,
    normalize_stmt,
    normalize_toplevel,
)
from .sema import Program, SemaError, expressions_of, occurring_names

__all__ = [name for name in dir() if not name.startswith("_")]
