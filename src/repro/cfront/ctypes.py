"""C type representation and the Section 4.1 translation to ref types.

C types (for the analysed subset)::

    CTyp ::= quals base                    -- int/char/.../void/float kinds
           | quals ptr(CTyp)
           | quals array(CTyp, size)
           | quals struct/union tag
           | quals enum tag
           | func(ret, params, varargs)

``quals`` records the source-level ``const`` (and ``volatile``, which the
analysis carries but ignores).  Array types behave like pointers for
qualifier purposes; functions never carry qualifiers.

The paper's translation ``l`` maps a C type to the qualified ref type of
an *l-value* of that type: every C variable denotes an updateable cell,
so the qualified type gains one outer ``ref``, and each C qualifier
shifts up one level to sit on the ref of the cell it actually protects::

    l(CTyp)           = Q' ref(rho)     where (Q', rho) = l'(CTyp)
    l'(Q int)         = (Q, bottom int)
    l'(Q ptr(CTyp))   = (Q, Q'' ref(rho''))  where (Q'', rho'') = l'(CTyp)

:func:`lvalue_qtype` implements ``l`` over the full subset, generating a
fresh qualifier variable at every level and recording, per level, whether
the source declared ``const`` there (the inference adds the corresponding
lower bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Union

from ..qual.qtypes import (
    QCon,
    QType,
    Qual,
    REF,
    TypeConstructor,
    Variance,
    fresh_qual_var,
    intern_constructor,
)


# ---------------------------------------------------------------------------
# C types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CBase:
    """An arithmetic or void base type (int, char, double, void, ...)."""

    kind: str  # normalised: "void", "char", "int", "long", "double", ...
    quals: frozenset[str] = frozenset()

    def __str__(self) -> str:
        prefix = " ".join(sorted(self.quals)) + " " if self.quals else ""
        return f"{prefix}{self.kind}"


@dataclass(frozen=True)
class CPointer:
    target: "CType"
    quals: frozenset[str] = frozenset()

    def __str__(self) -> str:
        suffix = " " + " ".join(sorted(self.quals)) if self.quals else ""
        return f"{self.target} *{suffix}"


@dataclass(frozen=True)
class CArray:
    element: "CType"
    size: int | None = None
    quals: frozenset[str] = frozenset()

    def __str__(self) -> str:
        dim = "" if self.size is None else str(self.size)
        return f"{self.element} [{dim}]"


@dataclass(frozen=True)
class CStruct:
    """Reference to a struct/union type by tag.  Field layouts live in the
    translation unit's struct table (fields are shared per definition,
    Section 4.2)."""

    tag: str
    is_union: bool = False
    quals: frozenset[str] = frozenset()

    def __str__(self) -> str:
        kw = "union" if self.is_union else "struct"
        prefix = " ".join(sorted(self.quals)) + " " if self.quals else ""
        return f"{prefix}{kw} {self.tag}"


@dataclass(frozen=True)
class CEnum:
    tag: str
    quals: frozenset[str] = frozenset()

    def __str__(self) -> str:
        prefix = " ".join(sorted(self.quals)) + " " if self.quals else ""
        return f"{prefix}enum {self.tag}"


@dataclass(frozen=True)
class CFunc:
    ret: "CType"
    params: tuple["CType", ...]
    varargs: bool = False

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.varargs:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret} (*)({params})"


CType = Union[CBase, CPointer, CArray, CStruct, CEnum, CFunc]

VOID = CBase("void")
INT = CBase("int")
CHAR = CBase("char")
DOUBLE = CBase("double")


def with_quals(t: CType, quals: frozenset[str]) -> CType:
    """Return ``t`` with its qualifier set replaced."""
    if isinstance(t, CFunc):
        return t
    return type(t)(**{**t.__dict__, "quals": quals})


def add_qual(t: CType, name: str) -> CType:
    if isinstance(t, CFunc):
        return t
    return with_quals(t, t.quals | {name})


def is_const(t: CType) -> bool:
    return not isinstance(t, CFunc) and "const" in t.quals


def is_pointerish(t: CType) -> bool:
    """Pointers and arrays, which decay to pointers."""
    return isinstance(t, (CPointer, CArray))


def pointee(t: CType) -> CType:
    if isinstance(t, CPointer):
        return t.target
    if isinstance(t, CArray):
        return t.element
    raise TypeError(f"not a pointer type: {t}")


def is_arithmetic(t: CType) -> bool:
    return isinstance(t, (CBase, CEnum)) and not (
        isinstance(t, CBase) and t.kind == "void"
    )


def decay(t: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay."""
    if isinstance(t, CArray):
        return CPointer(t.element, t.quals)
    if isinstance(t, CFunc):
        return CPointer(t)
    return t


def pointer_depth(t: CType) -> int:
    """Number of pointer/array levels in a type."""
    depth = 0
    cur = t
    while is_pointerish(cur):
        depth += 1
        cur = pointee(cur)
    return depth


def pointer_levels(t: CType) -> Iterator[CType]:
    """Yield the successive pointee types of a pointer chain."""
    cur = t
    while is_pointerish(cur):
        cur = pointee(cur)
        yield cur


# ---------------------------------------------------------------------------
# Qualified-type constructors for C shapes
# ---------------------------------------------------------------------------

def base_con(name: str) -> TypeConstructor:
    """A nullary constructor for an opaque C base shape (interned)."""
    return intern_constructor(name, ())


def fun_con(arity: int) -> TypeConstructor:
    """Function-shape constructor with ``arity`` parameters plus a result.

    Parameters are contravariant, the result covariant — the (SubFun)
    rule generalised to n-ary functions.
    """
    variances = tuple([Variance.CONTRAVARIANT] * arity) + (Variance.COVARIANT,)
    return intern_constructor(f"cfun{arity}", variances)


@dataclass
class LevelInfo:
    """Metadata for one qualifier position produced by the translation."""

    var: Qual
    declared_const: bool
    #: depth 0 is the variable's own cell; depth k>0 is the cell reached
    #: through k pointer dereferences.
    depth: int


@dataclass
class TranslatedType:
    """Result of :func:`lvalue_qtype`: the qualified l-value type plus the
    per-level metadata the const counter needs."""

    qtype: QType
    levels: list[LevelInfo] = field(default_factory=list)

    @property
    def rvalue(self) -> QType:
        """Drop the outer ref: the type of the cell's contents."""
        if self.qtype.constructor is not REF:
            raise TypeError(f"not an l-value type: {self.qtype}")
        return self.qtype.args[0]


def lvalue_qtype(
    ct: CType,
    fresh: Callable[[], Qual] = fresh_qual_var,
    struct_shape: Callable[[CStruct], QType] | None = None,
) -> TranslatedType:
    """The ``l`` translation: qualified l-value type of a cell of C type
    ``ct``, with a fresh qualifier variable per level.

    ``struct_shape`` supplies the (shared) qualified shape of struct
    r-values; by default structs become opaque nullary constructors.
    """
    info: list[LevelInfo] = []

    def rvalue_of(t: CType, depth: int) -> QType:
        """Qualified r-value type of contents with C type ``t``.  The C
        qualifiers of ``t`` belong to the *cell* holding it, so they are
        consumed by the caller; here we only build the value shape."""
        if isinstance(t, CFunc):
            # Handled before decay: function-to-pointer decay would loop,
            # and the contents of a function cell is the function shape.
            args = [rvalue_of(p, depth) for p in t.params]
            args.append(rvalue_of(t.ret, depth))
            return QType(fresh(), QCon(fun_con(len(t.params)), tuple(args)))
        t = decay(t)
        if isinstance(t, CPointer):
            # A pointer value is a reference to the pointed-to cell.
            return cell(t.target, depth + 1)
        if isinstance(t, CStruct) and struct_shape is not None:
            return struct_shape(t)
        if isinstance(t, CStruct):
            kw = "union" if t.is_union else "struct"
            return QType(fresh(), QCon(base_con(f"{kw} {t.tag}")))
        if isinstance(t, CEnum):
            return QType(fresh(), QCon(base_con("int")))
        assert isinstance(t, CBase)
        return QType(fresh(), QCon(base_con(t.kind)))

    def cell(t: CType, depth: int) -> QType:
        """Qualified type of a *cell* holding a value of C type ``t``:
        ``Q ref(rvalue)`` where Q is fresh and records declared const."""
        var = fresh()
        info.append(LevelInfo(var, is_const(t) if not isinstance(t, CFunc) else False, depth))
        return QType(var, QCon(REF, (rvalue_of(t, depth),)))

    return TranslatedType(cell(ct, 0), info)


def format_ctype(t: CType, name: str = "") -> str:
    """Render a C type in (approximately) declaration syntax."""
    return _format(t, name).strip()


def _format(t: CType, inner: str) -> str:
    if isinstance(t, CBase):
        prefix = " ".join(sorted(t.quals)) + " " if t.quals else ""
        return f"{prefix}{t.kind} {inner}".rstrip() + ("" if not inner else "")
    if isinstance(t, (CStruct, CEnum)):
        return f"{t} {inner}".rstrip()
    if isinstance(t, CPointer):
        quals = " ".join(sorted(t.quals))
        star = "*" + (quals + " " if quals else "")
        if isinstance(t.target, (CArray, CFunc)):
            return _format(t.target, f"({star}{inner})")
        return _format(t.target, f"{star}{inner}")
    if isinstance(t, CArray):
        dim = "" if t.size is None else str(t.size)
        return _format(t.element, f"{inner}[{dim}]")
    if isinstance(t, CFunc):
        params = ", ".join(format_ctype(p) for p in t.params)
        if t.varargs:
            params = f"{params}, ..." if params else "..."
        return _format(t.ret, f"{inner}({params})")
    raise TypeError(f"unknown C type {t!r}")
