"""Recursive-descent parser for the analysed C subset.

Covers the constructs the paper's benchmarks exercise: declarations with
full declarator syntax (pointers with qualifier lists, arrays, function
declarators and function pointers), struct/union/enum definitions,
typedefs (tracked so the lexer-level ambiguity between type names and
expressions resolves, and expanded macro-style per Section 4.2), function
definitions, the full statement set, and the complete C expression
grammar with standard precedence.  Not covered: K&R-style parameter
declarations, bitfields' widths (parsed and ignored), and designated
initializers.

Typedefs resolve to their underlying :mod:`repro.cfront.ctypes` type at
parse time, which directly implements the paper's rule that typedef'd
declarations share no qualifiers: every declaration gets its own type
value, and the const inference generates fresh qualifier variables per
declaration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .cast import (
    Assignment,
    Binary,
    BreakStmt,
    Call,
    CaseStmt,
    Cast,
    CExpr,
    CharConst,
    Comma,
    Compound,
    Conditional,
    ContinueStmt,
    CStmt,
    DeclStmt,
    DoWhileStmt,
    EmptyStmt,
    EnumDef,
    ExprStmt,
    FieldDecl,
    FloatConst,
    ForStmt,
    FuncDecl,
    FuncDef,
    GotoStmt,
    Ident,
    IfStmt,
    Index,
    InitList,
    IntConst,
    LabeledStmt,
    Member,
    ParamDecl,
    ReturnStmt,
    SizeofType,
    StringConst,
    StructDef,
    SwitchStmt,
    TopLevel,
    TranslationUnit,
    TypedefDecl,
    Unary,
    VarDecl,
    WhileStmt,
)
from .clexer import (
    CLexError,
    CToken,
    CTokenKind,
    ParseDiagnostic,
    parse_char_constant,
    parse_int_constant,
    tokenize_c,
)
from .ctypes import (
    CArray,
    CBase,
    CEnum,
    CFunc,
    CPointer,
    CStruct,
    CType,
    add_qual,
    with_quals,
)


class CParseError(Exception):
    def __init__(self, message: str, token: CToken, expected: str | None = None):
        self.token = token
        self.message = message
        self.expected = expected
        super().__init__(
            f"{message} at {token.line}:{token.column} "
            f"(found {token.kind.name} {token.text!r})"
        )


_TYPE_SPEC_KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double",
        "signed", "unsigned", "struct", "union", "enum",
    }
)
_QUALIFIER_KEYWORDS = frozenset({"const", "volatile"})
_STORAGE_KEYWORDS = frozenset({"typedef", "extern", "static", "auto", "register", "inline"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>="})


class _CParser:
    def __init__(
        self,
        tokens: list[CToken],
        filename: str,
        recover: bool = False,
        diagnostics: list[ParseDiagnostic] | None = None,
    ):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.typedefs: dict[str, CType] = {}
        self.items: list[TopLevel] = []
        self._anon_counter = 0
        self.recover = recover
        self.diagnostics: list[ParseDiagnostic] = (
            diagnostics if diagnostics is not None else []
        )
        #: File of the most recently completed declarator's name token —
        #: how ``#include``-d declarations keep their home file.
        self._last_file = filename

    # -- token plumbing -------------------------------------------------
    def peek(self, ahead: int = 0) -> CToken:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> CToken:
        tok = self.tokens[self.pos]
        if tok.kind is not CTokenKind.EOF:
            self.pos += 1
        return tok

    def at_punct(self, text: str, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return tok.kind is CTokenKind.PUNCT and tok.text == text

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind is CTokenKind.KEYWORD and tok.text in words

    def accept_punct(self, text: str) -> bool:
        if self.at_punct(text):
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> CToken:
        if not self.at_punct(text):
            raise CParseError(f"expected {text!r}", self.peek(), expected=text)
        return self.advance()

    def expect_ident(self) -> CToken:
        tok = self.peek()
        if tok.kind is not CTokenKind.IDENT:
            raise CParseError("expected identifier", tok, expected="identifier")
        return self.advance()

    def _file_of(self, tok: CToken) -> str:
        return tok.file or self.filename

    # -- panic-mode recovery --------------------------------------------
    def _record(
        self, exc: Exception, sync: str | None, at: CToken | None = None
    ) -> None:
        """Turn a parse/lex-adjacent exception into a structured
        diagnostic anchored at the offending token."""
        tok = exc.token if isinstance(exc, CParseError) else (at or self.peek())
        message = exc.message if isinstance(exc, CParseError) else str(exc)
        expected = exc.expected if isinstance(exc, CParseError) else None
        self.diagnostics.append(
            ParseDiagnostic(
                file=self._file_of(tok),
                line=tok.line,
                column=tok.column,
                message=message,
                stage="parse",
                expected=expected,
                found=f"{tok.kind.name} {tok.text!r}",
                sync=sync,
            )
        )

    def _sync_top_level(self) -> str:
        """Skip to the next point an external declaration can restart:
        past a ``;`` or a closing ``}`` at bracket depth 0, or just
        before a storage/type keyword that can open a declaration."""
        depth = 0
        moved = False
        while True:
            tok = self.peek()
            if tok.kind is CTokenKind.EOF:
                return "<eof>"
            if tok.kind is CTokenKind.PUNCT:
                if tok.text in ("(", "[", "{"):
                    depth += 1
                elif tok.text in (")", "]"):
                    depth = max(0, depth - 1)
                elif tok.text == "}":
                    if depth <= 1:
                        self.advance()
                        if depth == 1:
                            # closed the block we errored inside; eat a
                            # trailing ';' (struct definitions) and resume
                            self.accept_punct(";")
                        return "}"
                    depth -= 1
                elif tok.text == ";" and depth == 0:
                    self.advance()
                    return ";"
            elif (
                moved
                and depth == 0
                and tok.kind is CTokenKind.KEYWORD
                and (tok.text in _STORAGE_KEYWORDS or tok.text in _TYPE_SPEC_KEYWORDS)
            ):
                return tok.text
            self.advance()
            moved = True

    def _sync_statement(self) -> str:
        """Skip to the next statement boundary inside a block: past a
        ``;`` at brace depth 0, or *to* (not past) the block's ``}``."""
        depth = 0
        while True:
            tok = self.peek()
            if tok.kind is CTokenKind.EOF:
                return "<eof>"
            if tok.kind is CTokenKind.PUNCT:
                if tok.text == "{":
                    depth += 1
                elif tok.text == "}":
                    if depth == 0:
                        return "}"
                    depth -= 1
                elif tok.text == ";" and depth == 0:
                    self.advance()
                    return ";"
            self.advance()

    # -- type recognition -----------------------------------------------
    def at_type_start(self, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        if tok.kind is CTokenKind.KEYWORD:
            return tok.text in _TYPE_SPEC_KEYWORDS or tok.text in _QUALIFIER_KEYWORDS
        return tok.kind is CTokenKind.IDENT and tok.text in self.typedefs

    def at_declaration_start(self) -> bool:
        tok = self.peek()
        if tok.kind is CTokenKind.KEYWORD and tok.text in _STORAGE_KEYWORDS:
            return True
        return self.at_type_start()

    def _anon_tag(self, prefix: str) -> str:
        self._anon_counter += 1
        return f"__{prefix}_{self._anon_counter}"

    # -- declaration specifiers ------------------------------------------
    def parse_decl_specifiers(self) -> tuple[CType, Optional[str]]:
        """Parse storage classes, qualifiers, and type specifiers.

        Returns the base type and the storage class (if any).
        """
        storage: Optional[str] = None
        quals: set[str] = set()
        kind_words: list[str] = []
        base: Optional[CType] = None
        line = self.peek().line

        while True:
            tok = self.peek()
            if tok.kind is CTokenKind.KEYWORD and tok.text in _STORAGE_KEYWORDS:
                self.advance()
                if tok.text != "inline":
                    storage = tok.text
                continue
            if tok.kind is CTokenKind.KEYWORD and tok.text in _QUALIFIER_KEYWORDS:
                self.advance()
                quals.add(tok.text)
                continue
            if tok.kind is CTokenKind.KEYWORD and tok.text in (
                "void", "char", "short", "int", "long", "float", "double",
                "signed", "unsigned",
            ):
                self.advance()
                kind_words.append(tok.text)
                continue
            if tok.kind is CTokenKind.KEYWORD and tok.text in ("struct", "union"):
                base = self.parse_struct_specifier(tok.text == "union")
                continue
            if tok.kind is CTokenKind.KEYWORD and tok.text == "enum":
                base = self.parse_enum_specifier()
                continue
            if (
                tok.kind is CTokenKind.IDENT
                and tok.text in self.typedefs
                and base is None
                and not kind_words
            ):
                self.advance()
                base = self.typedefs[tok.text]
                continue
            break

        if base is None:
            if kind_words:
                base = CBase(_normalise_kind(kind_words))
            else:
                if not quals and storage is None:
                    raise CParseError("expected declaration specifiers", self.peek())
                base = CBase("int", )  # implicit int (pre-C99 style)
        if quals:
            existing = base.quals if not isinstance(base, CFunc) else frozenset()
            base = with_quals(base, existing | frozenset(quals))
        del line
        return base, storage

    def parse_struct_specifier(self, is_union: bool) -> CType:
        kw = self.advance()  # struct / union
        tag: Optional[str] = None
        if self.peek().kind is CTokenKind.IDENT:
            tag = self.advance().text
        if self.at_punct("{"):
            if tag is None:
                tag = self._anon_tag("union" if is_union else "struct")
            self.advance()
            fields: list[FieldDecl] = []
            while not self.at_punct("}"):
                base, _storage = self.parse_decl_specifiers()
                while True:
                    name, full_type, line, col = self.parse_declarator(base)
                    field_file = self._last_file
                    if self.accept_punct(":"):
                        self.parse_conditional()  # bitfield width, ignored
                    if name is not None:
                        fields.append(
                            FieldDecl(name, full_type, line, col, field_file)
                        )
                    if not self.accept_punct(","):
                        break
                self.expect_punct(";")
            self.expect_punct("}")
            self.items.append(
                StructDef(
                    tag, tuple(fields), is_union, kw.line, kw.column, self._file_of(kw)
                )
            )
        elif tag is None:
            raise CParseError("struct/union requires a tag or a body", self.peek())
        return CStruct(tag, is_union)

    def parse_enum_specifier(self) -> CType:
        kw = self.advance()  # enum
        tag: Optional[str] = None
        if self.peek().kind is CTokenKind.IDENT:
            tag = self.advance().text
        if self.at_punct("{"):
            if tag is None:
                tag = self._anon_tag("enum")
            self.advance()
            enumerators: list[tuple[str, Optional[CExpr]]] = []
            while not self.at_punct("}"):
                name = self.expect_ident().text
                value: Optional[CExpr] = None
                if self.accept_punct("="):
                    value = self.parse_conditional()
                enumerators.append((name, value))
                if not self.accept_punct(","):
                    break
            self.expect_punct("}")
            self.items.append(
                EnumDef(tag, tuple(enumerators), kw.line, kw.column, self._file_of(kw))
            )
        elif tag is None:
            raise CParseError("enum requires a tag or a body", self.peek())
        return CEnum(tag)

    # -- declarators ------------------------------------------------------
    def parse_declarator(
        self, base: CType, abstract: bool = False
    ) -> tuple[Optional[str], CType, int, int]:
        """Parse a (possibly abstract) declarator against a base type.

        Returns (name, full type, line, column).  Uses the standard
        two-phase technique: build a "type transformer" while descending,
        apply it inside-out.
        """
        line = self.peek().line
        col = self.peek().column
        decl_file = self._file_of(self.peek())
        # Pointer prefix: each * may carry qualifiers that attach to the
        # pointer level itself (e.g. ``int * const p``).
        pointer_quals: list[frozenset[str]] = []
        while self.at_punct("*"):
            self.advance()
            quals: set[str] = set()
            while self.at_keyword("const", "volatile"):
                quals.add(self.advance().text)
            pointer_quals.append(frozenset(quals))

        name: Optional[str] = None
        inner_transform = None

        if self.peek().kind is CTokenKind.IDENT:
            name_tok = self.advance()
            name = name_tok.text
            line, col = name_tok.line, name_tok.column
            decl_file = self._file_of(name_tok)
        elif self.at_punct("(") and self._paren_is_declarator(abstract):
            self.advance()
            # Parse the inner declarator with a placeholder base; we apply
            # the outer suffixes first, then the inner transformations.
            inner_name, placeholder_type, line, col = self.parse_declarator(
                CBase("__placeholder"), abstract
            )
            decl_file = self._last_file
            self.expect_punct(")")
            name = inner_name
            inner_transform = placeholder_type
        elif not abstract and not self.at_punct("(") and not self.at_punct("["):
            raise CParseError("expected declarator", self.peek())

        # Suffixes: arrays and function parameter lists (left to right).
        suffixes: list[tuple] = []
        while True:
            if self.at_punct("["):
                self.advance()
                size: Optional[int] = None
                if not self.at_punct("]"):
                    size_expr = self.parse_conditional()
                    if isinstance(size_expr, IntConst):
                        size = size_expr.value
                self.expect_punct("]")
                suffixes.append(("array", size))
            elif self.at_punct("("):
                self.advance()
                params, varargs = self.parse_parameter_list()
                self.expect_punct(")")
                suffixes.append(("func", params, varargs))
            else:
                break

        # Apply inside-out: pointer prefixes bind to the base (so
        # ``int *f(void)`` returns int*), then suffixes wrap that, with
        # the first suffix outermost (``a[3][4]`` is array-3 of array-4).
        result = base
        for quals in pointer_quals:
            result = CPointer(result, quals)
        for suffix in reversed(suffixes):
            if suffix[0] == "array":
                result = CArray(result, suffix[1])
            else:
                _tag, params, varargs = suffix
                result = CFunc(result, tuple(p.type for p in params), varargs)
                # Parameter names survive only on the outermost function
                # declarator, handled by parse_external_declaration.
                self._last_params = params
        if inner_transform is not None:
            result = _substitute_placeholder(inner_transform, result)
        # Publish this declarator's home file last so nested declarator
        # parses (parameters, grouped declarators) cannot clobber it.
        self._last_file = decl_file
        return name, result, line, col

    def _paren_is_declarator(self, abstract: bool) -> bool:
        """Disambiguate ``(`` after a base type: grouped declarator vs
        function parameter list (for abstract declarators)."""
        nxt = self.peek(1)
        if nxt.kind is CTokenKind.PUNCT and nxt.text in ("*", "("):
            return True
        if nxt.kind is CTokenKind.IDENT and nxt.text not in self.typedefs:
            return True
        if not abstract:
            return True
        return False

    def parse_parameter_list(self) -> tuple[list[ParamDecl], bool]:
        params: list[ParamDecl] = []
        varargs = False
        if self.at_punct(")"):
            return params, varargs
        # (void) means no parameters
        if (
            self.at_keyword("void")
            and self.peek(1).kind is CTokenKind.PUNCT
            and self.peek(1).text == ")"
        ):
            self.advance()
            return params, varargs
        while True:
            if self.at_punct("..."):
                self.advance()
                varargs = True
                break
            base, _storage = self.parse_decl_specifiers()
            name, full_type, line, col = self.parse_declarator(base, abstract=True)
            from .ctypes import decay as _decay

            params.append(ParamDecl(name, _decay(full_type), line, col, self._last_file))
            if not self.accept_punct(","):
                break
        return params, varargs

    def parse_type_name(self) -> CType:
        base, _storage = self.parse_decl_specifiers()
        _name, full_type, _line, _col = self.parse_declarator(base, abstract=True)
        return full_type

    # -- external declarations --------------------------------------------
    def parse_translation_unit(self) -> TranslationUnit:
        while self.peek().kind is not CTokenKind.EOF:
            if not self.recover:
                self.parse_external_declaration()
                continue
            start = self.pos
            try:
                self.parse_external_declaration()
            except (CParseError, CLexError, ValueError) as exc:
                at = exc.token if isinstance(exc, CParseError) else self.peek()
                sync = self._sync_top_level()
                if self.pos == start and self.peek().kind is not CTokenKind.EOF:
                    self.advance()  # progress guarantee
                self._record(exc, sync, at)
        return TranslationUnit(self.items, self.filename)

    def parse_external_declaration(self) -> None:
        if self.accept_punct(";"):
            return
        base, storage = self.parse_decl_specifiers()
        if self.accept_punct(";"):
            # Pure struct/union/enum definition (already recorded).
            return

        first = True
        while True:
            self._last_params = []
            name, full_type, line, col = self.parse_declarator(base)
            decl_file = self._last_file
            params: list[ParamDecl] = list(self._last_params)

            if storage == "typedef":
                if name is None:
                    raise CParseError("typedef requires a name", self.peek())
                self.typedefs[name] = full_type
                self.items.append(
                    TypedefDecl(name, full_type, line, col, decl_file)
                )
            elif isinstance(full_type, CFunc) and first and self.at_punct("{"):
                if name is None:
                    raise CParseError("function definition requires a name", self.peek())
                body = self.parse_compound()
                self.items.append(
                    FuncDef(
                        name,
                        full_type.ret,
                        tuple(params),
                        body,
                        full_type.varargs,
                        storage,
                        line,
                        col,
                        decl_file,
                    )
                )
                return
            elif isinstance(full_type, CFunc):
                if name is None:
                    raise CParseError("function declaration requires a name", self.peek())
                self.items.append(
                    FuncDecl(
                        name,
                        full_type.ret,
                        tuple(params),
                        full_type.varargs,
                        storage,
                        line,
                        col,
                        decl_file,
                    )
                )
            else:
                init: Optional[CExpr] = None
                if self.accept_punct("="):
                    init = self.parse_initializer()
                if name is None:
                    raise CParseError("declaration requires a name", self.peek())
                self.items.append(
                    VarDecl(name, full_type, init, storage, line, col, decl_file)
                )

            first = False
            if not self.accept_punct(","):
                break
        self.expect_punct(";")

    def parse_initializer(self) -> CExpr:
        if self.at_punct("{"):
            brace = self.advance()
            items: list[CExpr] = []
            while not self.at_punct("}"):
                items.append(self.parse_initializer())
                if not self.accept_punct(","):
                    break
            self.expect_punct("}")
            return InitList(tuple(items), line=brace.line, col=brace.column)
        return self.parse_assignment_expr()

    # -- statements ---------------------------------------------------------
    def parse_compound(self) -> Compound:
        brace = self.expect_punct("{")
        body: list[CStmt] = []
        while not self.at_punct("}"):
            if not self.recover:
                body.append(self.parse_statement())
                continue
            if self.peek().kind is CTokenKind.EOF:
                self.diagnostics.append(
                    ParseDiagnostic(
                        file=self._file_of(brace),
                        line=brace.line,
                        column=brace.column,
                        message="unterminated block",
                        stage="parse",
                        expected="}",
                        found="EOF ''",
                        sync="<eof>",
                    )
                )
                return Compound(tuple(body), line=brace.line, col=brace.column)
            start = self.pos
            try:
                body.append(self.parse_statement())
            except (CParseError, CLexError, ValueError) as exc:
                at = exc.token if isinstance(exc, CParseError) else self.peek()
                sync = self._sync_statement()
                if (
                    self.pos == start
                    and not self.at_punct("}")
                    and self.peek().kind is not CTokenKind.EOF
                ):
                    self.advance()  # progress guarantee
                self._record(exc, sync, at)
        self.expect_punct("}")
        return Compound(tuple(body), line=brace.line, col=brace.column)

    def parse_local_declaration(self) -> DeclStmt:
        base, storage = self.parse_decl_specifiers()
        decls: list[VarDecl] = []
        if not self.at_punct(";"):
            while True:
                name, full_type, line, col = self.parse_declarator(base)
                decl_file = self._last_file
                if storage == "typedef":
                    if name is None:
                        raise CParseError("typedef requires a name", self.peek())
                    self.typedefs[name] = full_type
                    if not self.accept_punct(","):
                        break
                    continue
                init: Optional[CExpr] = None
                if self.accept_punct("="):
                    init = self.parse_initializer()
                if name is None:
                    raise CParseError("declaration requires a name", self.peek())
                decls.append(
                    VarDecl(name, full_type, init, storage, line, col, decl_file)
                )
                if not self.accept_punct(","):
                    break
        end = self.expect_punct(";")
        return DeclStmt(tuple(decls), line=end.line, col=end.column)

    def parse_statement(self) -> CStmt:
        tok = self.peek()
        if self.at_punct("{"):
            return self.parse_compound()
        if self.at_punct(";"):
            self.advance()
            return EmptyStmt(line=tok.line, col=tok.column)
        if self.at_declaration_start():
            return self.parse_local_declaration()
        if tok.kind is CTokenKind.KEYWORD:
            match tok.text:
                case "if":
                    self.advance()
                    self.expect_punct("(")
                    cond = self.parse_expression()
                    self.expect_punct(")")
                    then = self.parse_statement()
                    other = None
                    if self.at_keyword("else"):
                        self.advance()
                        other = self.parse_statement()
                    return IfStmt(cond, then, other, line=tok.line, col=tok.column)
                case "while":
                    self.advance()
                    self.expect_punct("(")
                    cond = self.parse_expression()
                    self.expect_punct(")")
                    return WhileStmt(cond, self.parse_statement(), line=tok.line, col=tok.column)
                case "do":
                    self.advance()
                    body = self.parse_statement()
                    if not self.at_keyword("while"):
                        raise CParseError("expected while after do-body", self.peek())
                    self.advance()
                    self.expect_punct("(")
                    cond = self.parse_expression()
                    self.expect_punct(")")
                    self.expect_punct(";")
                    return DoWhileStmt(body, cond, line=tok.line, col=tok.column)
                case "for":
                    self.advance()
                    self.expect_punct("(")
                    init: Optional[CExpr | DeclStmt] = None
                    if self.at_declaration_start():
                        init = self.parse_local_declaration()
                    elif not self.at_punct(";"):
                        init = self.parse_expression()
                        self.expect_punct(";")
                    else:
                        self.advance()
                    cond = None
                    if not self.at_punct(";"):
                        cond = self.parse_expression()
                    self.expect_punct(";")
                    step = None
                    if not self.at_punct(")"):
                        step = self.parse_expression()
                    self.expect_punct(")")
                    return ForStmt(init, cond, step, self.parse_statement(), line=tok.line, col=tok.column)
                case "return":
                    self.advance()
                    value = None
                    if not self.at_punct(";"):
                        value = self.parse_expression()
                    self.expect_punct(";")
                    return ReturnStmt(value, line=tok.line, col=tok.column)
                case "break":
                    self.advance()
                    self.expect_punct(";")
                    return BreakStmt(line=tok.line, col=tok.column)
                case "continue":
                    self.advance()
                    self.expect_punct(";")
                    return ContinueStmt(line=tok.line, col=tok.column)
                case "goto":
                    self.advance()
                    label = self.expect_ident().text
                    self.expect_punct(";")
                    return GotoStmt(label, line=tok.line, col=tok.column)
                case "switch":
                    self.advance()
                    self.expect_punct("(")
                    value = self.parse_expression()
                    self.expect_punct(")")
                    return SwitchStmt(value, self.parse_statement(), line=tok.line, col=tok.column)
                case "case":
                    self.advance()
                    value = self.parse_conditional()
                    self.expect_punct(":")
                    return CaseStmt(value, self.parse_statement(), line=tok.line, col=tok.column)
                case "default":
                    self.advance()
                    self.expect_punct(":")
                    return CaseStmt(None, self.parse_statement(), line=tok.line, col=tok.column)
        # Label?
        if (
            tok.kind is CTokenKind.IDENT
            and self.peek(1).kind is CTokenKind.PUNCT
            and self.peek(1).text == ":"
        ):
            self.advance()
            self.advance()
            return LabeledStmt(tok.text, self.parse_statement(), line=tok.line, col=tok.column)
        expr = self.parse_expression()
        self.expect_punct(";")
        return ExprStmt(expr, line=tok.line, col=tok.column)

    # -- expressions ----------------------------------------------------------
    def parse_expression(self) -> CExpr:
        expr = self.parse_assignment_expr()
        while self.at_punct(","):
            op = self.advance()
            expr = Comma(
                expr, self.parse_assignment_expr(), line=op.line, col=op.column
            )
        return expr

    def parse_assignment_expr(self) -> CExpr:
        left = self.parse_conditional()
        tok = self.peek()
        if tok.kind is CTokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self.advance()
            right = self.parse_assignment_expr()
            return Assignment(tok.text, left, right, line=tok.line, col=tok.column)
        return left

    def parse_conditional(self) -> CExpr:
        cond = self.parse_binary(0)
        if self.at_punct("?"):
            op = self.advance()
            then = self.parse_expression()
            self.expect_punct(":")
            other = self.parse_conditional()
            return Conditional(cond, then, other, line=op.line, col=op.column)
        return cond

    _BINARY_LEVELS: list[frozenset[str]] = [
        frozenset({"||"}),
        frozenset({"&&"}),
        frozenset({"|"}),
        frozenset({"^"}),
        frozenset({"&"}),
        frozenset({"==", "!="}),
        frozenset({"<", ">", "<=", ">="}),
        frozenset({"<<", ">>"}),
        frozenset({"+", "-"}),
        frozenset({"*", "/", "%"}),
    ]

    def parse_binary(self, level: int) -> CExpr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_cast_expr()
        left = self.parse_binary(level + 1)
        ops = self._BINARY_LEVELS[level]
        while self.peek().kind is CTokenKind.PUNCT and self.peek().text in ops:
            tok = self.advance()
            right = self.parse_binary(level + 1)
            left = Binary(tok.text, left, right, line=tok.line, col=tok.column)
        return left

    def parse_cast_expr(self) -> CExpr:
        if self.at_punct("(") and self.at_type_start(1):
            paren = self.advance()
            target = self.parse_type_name()
            self.expect_punct(")")
            # Compound literal `(type){...}` parsed as cast of init list.
            if self.at_punct("{"):
                operand = self.parse_initializer()
            else:
                operand = self.parse_cast_expr()
            return Cast(target, operand, line=paren.line, col=paren.column)
        return self.parse_unary()

    def parse_unary(self) -> CExpr:
        tok = self.peek()
        if tok.kind is CTokenKind.PUNCT and tok.text in ("++", "--"):
            self.advance()
            return Unary(tok.text, self.parse_unary(), line=tok.line, col=tok.column)
        if tok.kind is CTokenKind.PUNCT and tok.text in ("&", "*", "+", "-", "~", "!"):
            self.advance()
            return Unary(tok.text, self.parse_cast_expr(), line=tok.line, col=tok.column)
        if tok.kind is CTokenKind.KEYWORD and tok.text == "sizeof":
            self.advance()
            if self.at_punct("(") and self.at_type_start(1):
                self.advance()
                target = self.parse_type_name()
                self.expect_punct(")")
                return SizeofType(target, line=tok.line, col=tok.column)
            return Unary("sizeof", self.parse_unary(), line=tok.line, col=tok.column)
        return self.parse_postfix()

    def parse_postfix(self) -> CExpr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.at_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = Index(expr, index, line=tok.line, col=tok.column)
            elif self.at_punct("("):
                self.advance()
                args: list[CExpr] = []
                if not self.at_punct(")"):
                    while True:
                        args.append(self.parse_assignment_expr())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                expr = Call(expr, tuple(args), line=tok.line, col=tok.column)
            elif self.at_punct("."):
                self.advance()
                field_name = self.expect_ident().text
                expr = Member(expr, field_name, False, line=tok.line, col=tok.column)
            elif self.at_punct("->"):
                self.advance()
                field_name = self.expect_ident().text
                expr = Member(expr, field_name, True, line=tok.line, col=tok.column)
            elif self.at_punct("++") or self.at_punct("--"):
                op = self.advance()
                expr = Unary(op.text, expr, postfix=True, line=op.line, col=op.column)
            else:
                return expr

    def parse_primary(self) -> CExpr:
        tok = self.peek()
        if tok.kind is CTokenKind.IDENT:
            self.advance()
            return Ident(tok.text, line=tok.line, col=tok.column)
        if tok.kind is CTokenKind.INT_CONST:
            self.advance()
            return IntConst(parse_int_constant(tok.text), line=tok.line, col=tok.column)
        if tok.kind is CTokenKind.FLOAT_CONST:
            self.advance()
            return FloatConst(tok.text, line=tok.line, col=tok.column)
        if tok.kind is CTokenKind.CHAR_CONST:
            self.advance()
            return CharConst(parse_char_constant(tok.text), line=tok.line, col=tok.column)
        if tok.kind is CTokenKind.STRING:
            from .clexer import parse_string_literal

            # Adjacent string literals concatenate; escapes are decoded.
            parts = []
            while self.peek().kind is CTokenKind.STRING:
                parts.append(parse_string_literal(self.advance().text[1:-1]))
            return StringConst("".join(parts), line=tok.line, col=tok.column)
        if self.at_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise CParseError("expected an expression", tok)


def _normalise_kind(words: list[str]) -> str:
    """Collapse multi-word arithmetic specifiers to a canonical kind."""
    wordset = set(words)
    if "void" in wordset:
        return "void"
    if "double" in wordset or "float" in wordset:
        return "double" if "double" in wordset else "float"
    if "char" in wordset:
        return "char"
    if words.count("long") >= 2:
        return "long long"
    if "long" in wordset:
        return "long"
    if "short" in wordset:
        return "short"
    return "int"


def _substitute_placeholder(shape: CType, replacement: CType) -> CType:
    """Replace the ``__placeholder`` base inside a grouped declarator's
    type with the type built from the outer context."""
    if isinstance(shape, CBase) and shape.kind == "__placeholder":
        return replacement
    if isinstance(shape, CPointer):
        return CPointer(_substitute_placeholder(shape.target, replacement), shape.quals)
    if isinstance(shape, CArray):
        return CArray(_substitute_placeholder(shape.element, replacement), shape.size, shape.quals)
    if isinstance(shape, CFunc):
        return CFunc(
            _substitute_placeholder(shape.ret, replacement), shape.params, shape.varargs
        )
    return shape


def parse_c(source: str, filename: str = "<input>") -> TranslationUnit:
    """Parse C source into a :class:`TranslationUnit`.

    Raises :class:`CParseError` or :class:`~repro.cfront.clexer.CLexError`
    on malformed input.
    """
    tokens = tokenize_c(source, filename)
    return _CParser(tokens, filename).parse_translation_unit()


@dataclass
class ParseResult:
    """A best-effort parse: the recovered :class:`TranslationUnit` plus
    every front-end problem met along the way.

    ``unit`` holds all declarations the panic-mode parser salvaged —
    possibly every one (``ok``), possibly a subset.  ``diagnostics``
    aggregates preprocessor, lexer, and parser records in source order
    of discovery.
    """

    unit: TranslationUnit
    diagnostics: list[ParseDiagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was recorded (warnings —
        macro redefinitions, unresolved includes — don't clear it)."""
        return not any(d.severity == "error" for d in self.diagnostics)

    @property
    def errors(self) -> list[ParseDiagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]


def parse_c_resilient(
    source: str,
    filename: str = "<input>",
    include_paths: Sequence[str] = (),
    loader=None,
) -> ParseResult:
    """Parse C source, preprocessing directives and recovering from
    errors instead of raising.

    Runs the minimal preprocessor (:mod:`repro.cfront.cpp`), the
    recovering lexer, and the panic-mode parser, and never raises on
    malformed input: the result carries whatever declarations could be
    salvaged plus a :class:`ParseDiagnostic` per problem.  Spans and
    diagnostics point at the original files — including ``#include``-d
    headers — via the preprocessor's line map.
    """
    from .cpp import preprocess

    diagnostics: list[ParseDiagnostic] = []
    pre = preprocess(source, filename, include_paths=include_paths, loader=loader)
    diagnostics.extend(pre.diagnostics)

    lex_from = len(diagnostics)
    tokens = tokenize_c(pre.text, filename, recover=True, diagnostics=diagnostics)
    if pre.line_map is not None:
        remap = pre.line_map

        def _remap_line(line: int) -> tuple[str, int]:
            if 1 <= line <= len(remap):
                return remap[line - 1]
            return filename, line

        new_tokens = []
        for tok in tokens:
            src_file, src_line = _remap_line(tok.line)
            new_tokens.append(
                dataclasses.replace(
                    tok,
                    line=src_line,
                    file="" if src_file == filename else src_file,
                )
            )
        tokens = new_tokens
        for idx in range(lex_from, len(diagnostics)):
            d = diagnostics[idx]
            src_file, src_line = _remap_line(d.line)
            diagnostics[idx] = dataclasses.replace(
                d, file=src_file, line=src_line
            )

    parser = _CParser(tokens, filename, recover=True, diagnostics=diagnostics)
    unit = parser.parse_translation_unit()
    return ParseResult(unit, diagnostics)
