"""Abstract syntax for the analysed C subset.

The AST deliberately stays close to concrete C: declarations carry their
resolved :mod:`repro.cfront.ctypes` types (the parser resolves declarators
and typedefs while parsing), and every node records a source line for
diagnostics and for the source re-annotator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .ctypes import CType


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CExpr:
    line: int = field(default=0, kw_only=True, compare=False)


@dataclass(frozen=True)
class Ident(CExpr):
    name: str


@dataclass(frozen=True)
class IntConst(CExpr):
    value: int


@dataclass(frozen=True)
class FloatConst(CExpr):
    text: str


@dataclass(frozen=True)
class CharConst(CExpr):
    value: int


@dataclass(frozen=True)
class StringConst(CExpr):
    value: str


@dataclass(frozen=True)
class Unary(CExpr):
    """Prefix unary: one of ``- + ~ ! * & ++ --`` (and postfix ``p++ p--``
    distinguished by ``postfix``)."""

    op: str
    operand: CExpr
    postfix: bool = False


@dataclass(frozen=True)
class Binary(CExpr):
    op: str
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class Assignment(CExpr):
    """``lhs op rhs`` where op is ``=`` or a compound assignment."""

    op: str
    target: CExpr
    value: CExpr


@dataclass(frozen=True)
class Conditional(CExpr):
    cond: CExpr
    then: CExpr
    other: CExpr


@dataclass(frozen=True)
class Call(CExpr):
    func: CExpr
    args: tuple[CExpr, ...]


@dataclass(frozen=True)
class Member(CExpr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: CExpr
    field_name: str
    arrow: bool


@dataclass(frozen=True)
class Index(CExpr):
    base: CExpr
    index: CExpr


@dataclass(frozen=True)
class Cast(CExpr):
    target_type: CType
    operand: CExpr


@dataclass(frozen=True)
class SizeofType(CExpr):
    target_type: CType


@dataclass(frozen=True)
class Comma(CExpr):
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class InitList(CExpr):
    items: tuple[CExpr, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CStmt:
    line: int = field(default=0, kw_only=True, compare=False)


@dataclass(frozen=True)
class ExprStmt(CStmt):
    expr: CExpr


@dataclass(frozen=True)
class EmptyStmt(CStmt):
    pass


@dataclass(frozen=True)
class DeclStmt(CStmt):
    decls: tuple["VarDecl", ...]


@dataclass(frozen=True)
class Compound(CStmt):
    body: tuple[CStmt, ...]


@dataclass(frozen=True)
class IfStmt(CStmt):
    cond: CExpr
    then: CStmt
    other: Optional[CStmt]


@dataclass(frozen=True)
class WhileStmt(CStmt):
    cond: CExpr
    body: CStmt


@dataclass(frozen=True)
class DoWhileStmt(CStmt):
    body: CStmt
    cond: CExpr


@dataclass(frozen=True)
class ForStmt(CStmt):
    init: Optional[Union[CExpr, "DeclStmt"]]
    cond: Optional[CExpr]
    step: Optional[CExpr]
    body: CStmt


@dataclass(frozen=True)
class ReturnStmt(CStmt):
    value: Optional[CExpr]


@dataclass(frozen=True)
class BreakStmt(CStmt):
    pass


@dataclass(frozen=True)
class ContinueStmt(CStmt):
    pass


@dataclass(frozen=True)
class GotoStmt(CStmt):
    label: str


@dataclass(frozen=True)
class LabeledStmt(CStmt):
    label: str
    stmt: CStmt


@dataclass(frozen=True)
class SwitchStmt(CStmt):
    value: CExpr
    body: CStmt


@dataclass(frozen=True)
class CaseStmt(CStmt):
    value: Optional[CExpr]  # None for default:
    stmt: CStmt


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamDecl:
    """One function parameter: possibly unnamed in prototypes."""

    name: Optional[str]
    type: CType
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class VarDecl:
    name: str
    type: CType
    init: Optional[CExpr] = None
    storage: Optional[str] = None  # "extern", "static", "typedef" handled upstream
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class FieldDecl:
    name: str
    type: CType
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class StructDef:
    tag: str
    fields: tuple[FieldDecl, ...]
    is_union: bool = False
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class EnumDef:
    tag: str
    enumerators: tuple[tuple[str, Optional[CExpr]], ...]
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class FuncDecl:
    """A function prototype (no body)."""

    name: str
    ret: CType
    params: tuple[ParamDecl, ...]
    varargs: bool = False
    storage: Optional[str] = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class FuncDef:
    """A function definition with a body."""

    name: str
    ret: CType
    params: tuple[ParamDecl, ...]
    body: Compound
    varargs: bool = False
    storage: Optional[str] = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class TypedefDecl:
    name: str
    type: CType
    line: int = field(default=0, compare=False)


TopLevel = Union[VarDecl, FuncDecl, FuncDef, StructDef, EnumDef, TypedefDecl]


@dataclass
class TranslationUnit:
    """A parsed C file (or concatenation of files, as the paper analysed
    whole packages at once)."""

    items: list[TopLevel] = field(default_factory=list)
    filename: str = "<input>"

    def functions(self) -> list[FuncDef]:
        return [d for d in self.items if isinstance(d, FuncDef)]

    def prototypes(self) -> list[FuncDecl]:
        return [d for d in self.items if isinstance(d, FuncDecl)]

    def globals(self) -> list[VarDecl]:
        return [d for d in self.items if isinstance(d, VarDecl)]

    def structs(self) -> list[StructDef]:
        return [d for d in self.items if isinstance(d, StructDef)]
