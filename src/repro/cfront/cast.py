"""Abstract syntax for the analysed C subset.

The AST deliberately stays close to concrete C: declarations carry their
resolved :mod:`repro.cfront.ctypes` types (the parser resolves declarators
and typedefs while parsing), and every node records a source span
(line, column — and on declarations, the file) for diagnostics and for
the source re-annotator.

This module also hosts the syntactic casts-away-const classification
(:func:`classify_cast` / :func:`casts_away_const`) that feeds the
Table 2 "casts away const" discussion and the ``casts-away-const``
qlint check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from .ctypes import CArray, CFunc, CPointer, CType, is_const


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CExpr:
    line: int = field(default=0, kw_only=True, compare=False)
    col: int = field(default=0, kw_only=True, compare=False)


@dataclass(frozen=True)
class Ident(CExpr):
    name: str


@dataclass(frozen=True)
class IntConst(CExpr):
    value: int


@dataclass(frozen=True)
class FloatConst(CExpr):
    text: str


@dataclass(frozen=True)
class CharConst(CExpr):
    value: int


@dataclass(frozen=True)
class StringConst(CExpr):
    value: str


@dataclass(frozen=True)
class Unary(CExpr):
    """Prefix unary: one of ``- + ~ ! * & ++ --`` (and postfix ``p++ p--``
    distinguished by ``postfix``)."""

    op: str
    operand: CExpr
    postfix: bool = False


@dataclass(frozen=True)
class Binary(CExpr):
    op: str
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class Assignment(CExpr):
    """``lhs op rhs`` where op is ``=`` or a compound assignment."""

    op: str
    target: CExpr
    value: CExpr


@dataclass(frozen=True)
class Conditional(CExpr):
    cond: CExpr
    then: CExpr
    other: CExpr


@dataclass(frozen=True)
class Call(CExpr):
    func: CExpr
    args: tuple[CExpr, ...]


@dataclass(frozen=True)
class Member(CExpr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: CExpr
    field_name: str
    arrow: bool


@dataclass(frozen=True)
class Index(CExpr):
    base: CExpr
    index: CExpr


@dataclass(frozen=True)
class Cast(CExpr):
    target_type: CType
    operand: CExpr


@dataclass(frozen=True)
class SizeofType(CExpr):
    target_type: CType


@dataclass(frozen=True)
class Comma(CExpr):
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class InitList(CExpr):
    items: tuple[CExpr, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CStmt:
    line: int = field(default=0, kw_only=True, compare=False)
    col: int = field(default=0, kw_only=True, compare=False)


@dataclass(frozen=True)
class ExprStmt(CStmt):
    expr: CExpr


@dataclass(frozen=True)
class EmptyStmt(CStmt):
    pass


@dataclass(frozen=True)
class DeclStmt(CStmt):
    decls: tuple["VarDecl", ...]


@dataclass(frozen=True)
class Compound(CStmt):
    body: tuple[CStmt, ...]


@dataclass(frozen=True)
class IfStmt(CStmt):
    cond: CExpr
    then: CStmt
    other: Optional[CStmt]


@dataclass(frozen=True)
class WhileStmt(CStmt):
    cond: CExpr
    body: CStmt


@dataclass(frozen=True)
class DoWhileStmt(CStmt):
    body: CStmt
    cond: CExpr


@dataclass(frozen=True)
class ForStmt(CStmt):
    init: Optional[Union[CExpr, "DeclStmt"]]
    cond: Optional[CExpr]
    step: Optional[CExpr]
    body: CStmt


@dataclass(frozen=True)
class ReturnStmt(CStmt):
    value: Optional[CExpr]


@dataclass(frozen=True)
class BreakStmt(CStmt):
    pass


@dataclass(frozen=True)
class ContinueStmt(CStmt):
    pass


@dataclass(frozen=True)
class GotoStmt(CStmt):
    label: str


@dataclass(frozen=True)
class LabeledStmt(CStmt):
    label: str
    stmt: CStmt


@dataclass(frozen=True)
class SwitchStmt(CStmt):
    value: CExpr
    body: CStmt


@dataclass(frozen=True)
class CaseStmt(CStmt):
    value: Optional[CExpr]  # None for default:
    stmt: CStmt


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamDecl:
    """One function parameter: possibly unnamed in prototypes."""

    name: Optional[str]
    type: CType
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


@dataclass(frozen=True)
class VarDecl:
    name: str
    type: CType
    init: Optional[CExpr] = None
    storage: Optional[str] = None  # "extern", "static", "typedef" handled upstream
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


@dataclass(frozen=True)
class FieldDecl:
    name: str
    type: CType
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


@dataclass(frozen=True)
class StructDef:
    tag: str
    fields: tuple[FieldDecl, ...]
    is_union: bool = False
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


@dataclass(frozen=True)
class EnumDef:
    tag: str
    enumerators: tuple[tuple[str, Optional[CExpr]], ...]
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


@dataclass(frozen=True)
class FuncDecl:
    """A function prototype (no body)."""

    name: str
    ret: CType
    params: tuple[ParamDecl, ...]
    varargs: bool = False
    storage: Optional[str] = None
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


@dataclass(frozen=True)
class FuncDef:
    """A function definition with a body."""

    name: str
    ret: CType
    params: tuple[ParamDecl, ...]
    body: Compound
    varargs: bool = False
    storage: Optional[str] = None
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


@dataclass(frozen=True)
class TypedefDecl:
    name: str
    type: CType
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)
    file: str = field(default="", compare=False)


TopLevel = Union[VarDecl, FuncDecl, FuncDef, StructDef, EnumDef, TypedefDecl]


@dataclass
class TranslationUnit:
    """A parsed C file (or concatenation of files, as the paper analysed
    whole packages at once)."""

    items: list[TopLevel] = field(default_factory=list)
    filename: str = "<input>"

    def functions(self) -> list[FuncDef]:
        return [d for d in self.items if isinstance(d, FuncDef)]

    def prototypes(self) -> list[FuncDecl]:
        return [d for d in self.items if isinstance(d, FuncDecl)]

    def globals(self) -> list[VarDecl]:
        return [d for d in self.items if isinstance(d, VarDecl)]

    def structs(self) -> list[StructDef]:
        return [d for d in self.items if isinstance(d, StructDef)]


# ---------------------------------------------------------------------------
# Casts-away-const classification (Table 2)
# ---------------------------------------------------------------------------


class CastClass(enum.Enum):
    """Syntactic classification of a C cast ``(dst) src-expr``.

    The paper's Table 2 discussion distinguishes casts that *remove*
    ``const`` from a referenced type — those are the casts that defeat
    const inference (a ``(char *)`` of a ``const char *`` lets the
    program write through what was promised read-only).
    """

    #: No pointer level on either side: a pure value conversion.
    VALUE = "value"
    #: Qualifiers are preserved at every matched reference level.
    PRESERVES = "preserves"
    #: ``const`` appears on the destination where the source lacked it
    #: (safe: the classic ``char * -> const char *`` widening).
    ADDS_CONST = "adds-const"
    #: ``const`` present on the source is dropped by the destination at
    #: some referenced level — the Table 2 "casts away const" bucket.
    AWAY_CONST = "casts-away-const"


def _ref_levels(t: CType) -> list[tuple[CType, CType]]:
    """The chain of referenced types reachable through pointers/arrays,
    as ``(container, referenced)`` pairs, decaying arrays to pointers."""
    levels: list[tuple[CType, CType]] = []
    decayed = t
    while True:
        if isinstance(decayed, CArray):
            decayed = CPointer(decayed.element, decayed.quals)
        if isinstance(decayed, CPointer):
            levels.append((decayed, decayed.target))
            decayed = decayed.target
        else:
            break
    return levels


def classify_cast(src: CType, dst: CType) -> CastClass:
    """Classify the cast of a value of type ``src`` to type ``dst``.

    Walks the matched pointer levels of both types (arrays decay), and
    recurses through function-pointer parameter and return types, so
    ``void (*)(const int *) -> void (*)(int *)`` is recognised as
    casting away const just like ``const char ** -> char **``.
    """
    src_levels = _ref_levels(src)
    dst_levels = _ref_levels(dst)
    if not src_levels or not dst_levels:
        return CastClass.VALUE

    away = added = False

    def walk(s: CType, d: CType) -> None:
        nonlocal away, added
        for (_, s_ref), (_, d_ref) in zip(_ref_levels(s), _ref_levels(d)):
            s_const, d_const = is_const(s_ref), is_const(d_ref)
            if s_const and not d_const:
                away = True
            elif d_const and not s_const:
                added = True
            if isinstance(s_ref, CFunc) and isinstance(d_ref, CFunc):
                walk_func(s_ref, d_ref)

    def walk_func(s: CFunc, d: CFunc) -> None:
        walk(s.ret, d.ret)
        for sp, dp in zip(s.params, d.params):
            walk(sp, dp)

    walk(src, dst)
    if away:
        return CastClass.AWAY_CONST
    if added:
        return CastClass.ADDS_CONST
    return CastClass.PRESERVES


def casts_away_const(src: CType, dst: CType) -> bool:
    """True iff casting ``src`` to ``dst`` drops ``const`` from a
    referenced type at any matched level (including inside function
    pointer signatures)."""
    return classify_cast(src, dst) is CastClass.AWAY_CONST
