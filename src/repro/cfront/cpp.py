"""Minimal C preprocessor for the resilient ingestion path.

Real C files arrive with their directives still in place; the strict
pipeline simply skips ``#`` lines (see :mod:`repro.cfront.clexer`), which
is fine for curated corpora but loses ``#include``-d declarations and
``#define``-d constants on anything from the wild.  This module covers
the subset that matters for corpus-scale qualifier analysis:

* ``#include "file"`` / ``#include <file>`` with include-path search,
  splicing, and cycle detection — an unresolvable include is a warning,
  not a failure (system headers are expected to be absent);
* object-like ``#define`` / ``#undef`` with redefinition warnings;
  function-like macros are diagnosed and skipped, never half-expanded;
* ``#ifdef`` / ``#ifndef`` / ``#if`` / ``#elif`` / ``#else`` / ``#endif``
  region skipping, with a deliberately small ``#if`` evaluator (integer
  arithmetic/comparison, ``defined``, undefined identifiers count as 0 —
  exactly the C rule); a condition beyond the subset is a warning and
  the region is kept, which is the conservative choice for analysis;
* ``#error`` surfaces as an error diagnostic; ``#pragma``/``#line`` and
  anything else unknown are dropped silently.

Every output line carries a line-map entry ``(file, line)`` pointing at
the original source, so downstream spans — including findings inside an
included header — report the header's own path and line.  When the input
contains no directives at all, :func:`preprocess` returns the text
untouched with ``line_map=None``: the clean-corpus fast path is
byte-identity by construction.

Known simplifications: a ``#`` at the start of a line inside a multi-line
comment is treated as a directive, and macro bodies are re-scanned a
bounded number of times instead of carrying hide sets.
"""

from __future__ import annotations

import os
import re
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .clexer import ParseDiagnostic

#: Maximum whole-line macro re-expansion passes (in lieu of hide sets).
_MAX_EXPANSION_PASSES = 8

#: Maximum include nesting depth (beyond cycle detection).
_MAX_INCLUDE_DEPTH = 32

_DIRECTIVE_RE = re.compile(r"^\s*#\s*([A-Za-z_]\w*)\s*(.*)$", re.DOTALL)
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")
#: Identifier at a word start — the lookbehind keeps the ``x1F`` inside
#: ``0x1F`` from matching as an identifier.
_WORD_IDENT_RE = re.compile(r"(?<!\w)[A-Za-z_]\w*")
_DEFINE_RE = re.compile(r"^([A-Za-z_]\w*)(\(?)\s*(.*)$", re.DOTALL)
_INT_SUFFIX_RE = re.compile(r"\b(0[xX][0-9a-fA-F]+|\d+)[uUlL]+\b")
_DEFINED_RE = re.compile(r"\bdefined\s*(?:\(\s*([A-Za-z_]\w*)\s*\)|([A-Za-z_]\w*))")


@dataclass
class PreprocessResult:
    """Preprocessed text plus everything needed to trace it back.

    ``line_map`` has one ``(original file, original line)`` entry per
    line of ``text`` (1-based access via ``line_map[i - 1]``), or is
    ``None`` when the input had no directives and ``text`` is the input
    byte-for-byte.  ``includes`` lists every file spliced in, in splice
    order, recursively.
    """

    text: str
    line_map: Optional[list[tuple[str, int]]]
    diagnostics: list[ParseDiagnostic] = field(default_factory=list)
    includes: list[str] = field(default_factory=list)


def _read_file(path: str) -> Optional[str]:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return handle.read()
    except OSError:
        return None


@dataclass
class _Cond:
    """One ``#if*`` frame: are we emitting, has any branch taken yet,
    and was the enclosing region itself active."""

    taking: bool
    taken_any: bool
    seen_else: bool
    parent_active: bool


def _strip_line_comments(text: str) -> str:
    """Drop ``//`` and single-line ``/* */`` comments from a directive
    body (macro bodies and conditions must not keep comment text)."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return text.split("//", 1)[0].strip()


def _expand_pass(
    text: str, macros: dict[str, str], in_comment: bool
) -> tuple[str, bool, bool]:
    """One macro-substitution scan over a line of ordinary text.

    Respects string/char literals and both comment styles; returns the
    rewritten line, whether anything changed, and the block-comment
    state at end of line (carried to the next line by the caller).
    """
    out: list[str] = []
    i = 0
    n = len(text)
    changed = False
    while i < n:
        ch = text[i]
        if in_comment:
            end = text.find("*/", i)
            if end == -1:
                out.append(text[i:])
                return "".join(out), changed, True
            out.append(text[i : end + 2])
            i = end + 2
            in_comment = False
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            out.append(text[i:])
            break
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            in_comment = True
            out.append(text[i : i + 2])
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
            continue
        if ch.isalpha() or ch == "_":
            match = _IDENT_RE.match(text, i)
            assert match is not None
            word = match.group(0)
            # A preceding digit glues into a pp-number ("0x1F"): the
            # regex can't start there because \w ran through it.
            if word in macros and (i == 0 or not text[i - 1].isdigit()):
                out.append(macros[word])
                changed = True
            else:
                out.append(word)
            i = match.end()
            continue
        out.append(ch)
        i += 1
    return "".join(out), changed, in_comment


def _expand_line(
    text: str, macros: dict[str, str], in_comment: bool
) -> tuple[str, bool]:
    """Expand object-like macros in one line, bounded re-scanning."""
    for _ in range(_MAX_EXPANSION_PASSES):
        new_text, changed, end_state = _expand_pass(text, macros, in_comment)
        if not changed:
            return new_text, end_state
        text = new_text
    # Last pass just to settle the comment state of the final text.
    final, _changed, end_state = _expand_pass(text, macros, in_comment)
    return final, end_state


def _eval_condition(expr: str, macros: dict[str, str]) -> Optional[bool]:
    """Evaluate a ``#if`` condition under the minimal subset.

    Returns ``None`` when the expression falls outside the subset, so
    the caller can warn and keep the region (conservative for
    analysis: better to look at too much code than too little).
    """
    expr = _strip_line_comments(expr)
    if not expr:
        return None

    def _defined(match: re.Match[str]) -> str:
        name = match.group(1) or match.group(2)
        return "1" if name in macros else "0"

    expr = _DEFINED_RE.sub(_defined, expr)
    # Object-like macro values, bounded like line expansion.
    for _ in range(_MAX_EXPANSION_PASSES):
        new_expr = _WORD_IDENT_RE.sub(
            lambda m: macros.get(m.group(0), m.group(0)), expr
        )
        if new_expr == expr:
            break
        expr = new_expr
    # C rule: remaining identifiers evaluate as 0.
    expr = _WORD_IDENT_RE.sub("0", expr)
    expr = _INT_SUFFIX_RE.sub(r"\1", expr)
    # C operators to python: && || !  (but not !=).
    expr = expr.replace("&&", " and ").replace("||", " or ")
    expr = re.sub(r"!(?!=)", " not ", expr)
    # Everything left must be numbers (incl. hex), the three keywords,
    # comparison/arithmetic/bitwise operators, and parentheses.
    check = re.sub(r"\b(and|or|not)\b", " ", expr)
    if not re.fullmatch(r"[\dxXa-fA-F\s()<>=!+*/%&|^~.-]*", check):
        return None
    try:
        with warnings.catch_warnings():
            # e.g. "0(1)" compiles with a SyntaxWarning before failing
            # at run time; the ParseDiagnostic is the user-facing signal.
            warnings.simplefilter("ignore")
            value = eval(expr, {"__builtins__": {}}, {})  # noqa: S307 - sanitised
    except Exception:
        return None
    if isinstance(value, (bool, int)):
        return bool(value)
    return None


def _resolve_include(
    name: str,
    quoted: bool,
    current_dir: str,
    include_paths: Sequence[str],
    loader: Callable[[str], Optional[str]],
) -> tuple[Optional[str], Optional[str]]:
    """Find an included file: ``(resolved path, text)`` or ``(None, None)``."""
    candidates: list[str] = []
    if quoted:
        candidates.append(os.path.join(current_dir, name) if current_dir else name)
    for path in include_paths:
        candidates.append(os.path.join(path, name) if path else name)
    seen: set[str] = set()
    for candidate in candidates:
        candidate = os.path.normpath(candidate)
        if candidate in seen:
            continue
        seen.add(candidate)
        text = loader(candidate)
        if text is not None:
            return candidate, text
    return None, None


def preprocess(
    source: str,
    filename: str = "<input>",
    include_paths: Sequence[str] = (),
    loader: Optional[Callable[[str], Optional[str]]] = None,
    _macros: Optional[dict[str, str]] = None,
    _stack: Optional[tuple[str, ...]] = None,
    _diagnostics: Optional[list[ParseDiagnostic]] = None,
) -> PreprocessResult:
    """Preprocess C source text.

    ``loader`` maps a candidate include path to its text (or ``None``
    when absent); the default reads the filesystem, tests inject
    in-memory file sets.  Never raises on bad input — every problem
    becomes a ``stage="cpp"`` :class:`ParseDiagnostic`.
    """
    top_level = _stack is None
    if top_level and "#" not in source:
        # Clean-corpus fast path: nothing to do, identity by construction.
        return PreprocessResult(source, None)

    loader = loader or _read_file
    macros: dict[str, str] = {} if _macros is None else _macros
    diagnostics: list[ParseDiagnostic] = (
        [] if _diagnostics is None else _diagnostics
    )
    stack: tuple[str, ...] = (filename,) if top_level else _stack  # type: ignore[assignment]
    current_dir = os.path.dirname(filename)

    out_lines: list[str] = []
    line_map: list[tuple[str, int]] = []
    includes: list[str] = []
    cond_stack: list[_Cond] = []
    in_comment = False

    def diag(
        message: str,
        lineno: int,
        severity: str = "error",
    ) -> None:
        diagnostics.append(
            ParseDiagnostic(
                file=filename,
                line=lineno,
                column=1,
                message=message,
                stage="cpp",
                severity=severity,
            )
        )

    def active() -> bool:
        return all(frame.taking for frame in cond_stack)

    lines = source.split("\n")
    i = 0
    while i < len(lines):
        raw = lines[i]
        lineno = i + 1
        if raw.lstrip().startswith("#"):
            body = raw
            consumed = 1
            while body.endswith("\\") and i + consumed < len(lines):
                body = body[:-1] + lines[i + consumed]
                consumed += 1
            i += consumed
            match = _DIRECTIVE_RE.match(body)
            if match is None:
                continue  # a lone '#'
            name, rest = match.group(1), match.group(2)

            if name in ("ifdef", "ifndef"):
                ident_match = _IDENT_RE.match(rest.strip())
                present = (
                    ident_match is not None and ident_match.group(0) in macros
                )
                if ident_match is None:
                    diag(f"#{name} requires an identifier", lineno)
                cond = present if name == "ifdef" else not present
                cond_stack.append(_Cond(active() and cond, cond, False, active()))
            elif name == "if":
                value = _eval_condition(rest, macros)
                if value is None:
                    if active():
                        diag(
                            f"cannot evaluate #if condition {rest.strip()!r}; "
                            "keeping the region",
                            lineno,
                            severity="warning",
                        )
                    value = True
                cond_stack.append(
                    _Cond(active() and value, value, False, active())
                )
            elif name == "elif":
                if not cond_stack:
                    diag("#elif without matching #if", lineno)
                else:
                    frame = cond_stack[-1]
                    if frame.seen_else:
                        diag("#elif after #else", lineno)
                    value = _eval_condition(rest, macros)
                    if value is None and not frame.taken_any:
                        if frame.parent_active:
                            diag(
                                "cannot evaluate #elif condition "
                                f"{rest.strip()!r}; keeping the region",
                                lineno,
                                severity="warning",
                            )
                        value = True
                    value = bool(value)
                    frame.taking = (
                        frame.parent_active and not frame.taken_any and value
                    )
                    frame.taken_any = frame.taken_any or value
            elif name == "else":
                if not cond_stack:
                    diag("#else without matching #if", lineno)
                else:
                    frame = cond_stack[-1]
                    if frame.seen_else:
                        diag("duplicate #else", lineno)
                    frame.seen_else = True
                    frame.taking = frame.parent_active and not frame.taken_any
                    frame.taken_any = True
            elif name == "endif":
                if not cond_stack:
                    diag("#endif without matching #if", lineno)
                else:
                    cond_stack.pop()
            elif not active():
                pass  # include/define/undef/error inside a skipped region
            elif name == "include":
                target = _strip_line_comments(rest)
                quoted = target.startswith('"') and target.endswith('"')
                angled = target.startswith("<") and target.endswith(">")
                if not (quoted or angled) or len(target) < 2:
                    diag(f"malformed #include {rest.strip()!r}", lineno)
                    continue
                inc_name = target[1:-1]
                resolved, text = _resolve_include(
                    inc_name, quoted, current_dir, include_paths, loader
                )
                if resolved is None:
                    diag(
                        f"include {target} not found; continuing without it",
                        lineno,
                        severity="warning",
                    )
                    continue
                if resolved in stack:
                    cycle = " -> ".join(stack + (resolved,))
                    diag(f"include cycle: {cycle}", lineno)
                    continue
                if len(stack) >= _MAX_INCLUDE_DEPTH:
                    diag("include nesting too deep", lineno)
                    continue
                includes.append(resolved)
                sub = preprocess(
                    text,  # type: ignore[arg-type]
                    resolved,
                    include_paths,
                    loader,
                    _macros=macros,
                    _stack=stack + (resolved,),
                    _diagnostics=diagnostics,
                )
                assert sub.line_map is not None
                out_lines.extend(sub.text.split("\n"))
                line_map.extend(sub.line_map)
                includes.extend(sub.includes)
            elif name == "define":
                define_match = _DEFINE_RE.match(rest.strip())
                if define_match is None:
                    diag(f"malformed #define {rest.strip()!r}", lineno)
                    continue
                macro_name, paren, macro_body = define_match.groups()
                if paren:
                    diag(
                        f"function-like macro {macro_name!r} is not "
                        "supported; its uses are left unexpanded",
                        lineno,
                        severity="warning",
                    )
                    continue
                macro_body = _strip_line_comments(macro_body)
                if macro_name in macros and macros[macro_name] != macro_body:
                    diag(
                        f"macro {macro_name!r} redefined "
                        f"({macros[macro_name]!r} -> {macro_body!r})",
                        lineno,
                        severity="warning",
                    )
                macros[macro_name] = macro_body
            elif name == "undef":
                ident_match = _IDENT_RE.match(rest.strip())
                if ident_match is None:
                    diag(f"malformed #undef {rest.strip()!r}", lineno)
                else:
                    macros.pop(ident_match.group(0), None)
            elif name == "error":
                diag(f"#error: {_strip_line_comments(rest)}", lineno)
            # #pragma, #line, and anything unknown: dropped silently.
            continue

        i += 1
        if not active():
            continue
        text_line = raw
        if macros or in_comment:
            text_line, in_comment = _expand_line(raw, macros, in_comment)
        elif "/*" in raw:
            _ignored, _changed, in_comment = _expand_pass(raw, {}, False)
        out_lines.append(text_line)
        line_map.append((filename, lineno))

    for _frame in cond_stack:
        diag("unterminated conditional (#if without #endif)", len(lines))

    return PreprocessResult(
        "\n".join(out_lines), line_map, diagnostics, includes
    )
