"""``python -m repro.serve`` / ``qlint serve`` — start the daemon.

Transports (mutually exclusive; stdio is the default):

* ``--stdio``         — requests on stdin, responses on stdout;
* ``--socket PATH``   — Unix domain socket (scriptable with ``nc -U``);
* ``--tcp HOST:PORT`` — TCP (scriptable with ``nc``/``curl`` piping).

Everything diagnostic goes to stderr; stdout carries only protocol
lines, so ``--stdio`` pipelines stay clean.
"""

from __future__ import annotations

import argparse
import sys

from .server import Server
from .session import SERVE_MEMORY_ENTRIES, Session


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qlint serve",
        description=(
            "Long-lived qualifier-analysis daemon speaking JSON-RPC 2.0 "
            "over newline-delimited JSON (see docs/SERVING.md)."
        ),
    )
    transport = parser.add_mutually_exclusive_group()
    transport.add_argument(
        "--stdio",
        action="store_true",
        help="serve stdin/stdout (the default)",
    )
    transport.add_argument(
        "--socket",
        metavar="PATH",
        help="listen on a Unix domain socket at PATH",
    )
    transport.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on a TCP host:port",
    )
    parser.add_argument(
        "--checks",
        metavar="NAMES",
        help="comma-separated default check names (per-request 'checks' overrides)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk analysis cache root (default: private temp dir)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes/threads per analysis (default 1)",
    )
    parser.add_argument(
        "--memory-entries",
        type=int,
        default=SERVE_MEMORY_ENTRIES,
        metavar="N",
        help=f"in-memory cache tier bound (default {SERVE_MEMORY_ENTRIES})",
    )
    args = parser.parse_args(argv)

    checks = None
    if args.checks:
        checks = tuple(name.strip() for name in args.checks.split(",") if name.strip())

    try:
        session = Session(
            checks=checks,
            cache_dir=args.cache_dir,
            jobs=args.jobs,
            memory_entries=args.memory_entries,
        )
    except Exception as exc:
        print(f"qlint serve: {exc}", file=sys.stderr)
        return 2
    server = Server(session)
    try:
        if args.tcp:
            host, _, port_text = args.tcp.rpartition(":")
            host = host or "127.0.0.1"
            try:
                port = int(port_text)
            except ValueError:
                print(f"qlint serve: bad --tcp address {args.tcp!r}", file=sys.stderr)
                return 2
            print(f"qlint serve: listening on tcp {host}:{port}", file=sys.stderr)
            return server.serve_tcp(host, port)
        if args.socket:
            print(f"qlint serve: listening on unix {args.socket}", file=sys.stderr)
            return server.serve_unix(args.socket)
        return server.serve_stdio()
    except KeyboardInterrupt:
        return 0
    finally:
        session.close()


if __name__ == "__main__":
    raise SystemExit(main())
