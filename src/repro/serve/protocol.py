"""The daemon's wire protocol: JSON-RPC 2.0 over newline-delimited JSON.

One request per line, one response per line, UTF-8, no framing headers —
the same shape LSP's content would take without its ``Content-Length``
envelope, chosen so a session is scriptable from ``nc``/``socat`` or a
five-line Python loop (see docs/SERVING.md for a transcript).

Encoding is canonical — compact separators, sorted keys — so golden
transcripts in tests can compare whole response lines byte-for-byte.

Error handling follows the JSON-RPC 2.0 spec:

* a line that is not valid JSON  → ``PARSE_ERROR`` with ``id: null``;
* valid JSON that is not a request object → ``INVALID_REQUEST``;
* an unknown ``method``          → ``METHOD_NOT_FOUND``;
* missing/ill-typed ``params``   → ``INVALID_PARAMS``;
* an exception inside a handler  → ``INTERNAL_ERROR``.

A *notification* (no ``id``) never receives a response, per spec — the
two exceptions being parse and invalid-request errors, where the server
cannot know whether an ``id`` was intended and answers with ``id: null``.
The loop itself never dies on bad input; every failure is a response (or
a counted drop), never a crash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: JSON-RPC 2.0 standard error codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

JSONRPC_VERSION = "2.0"


class ProtocolError(Exception):
    """A request that cannot be dispatched; carries its JSON-RPC code."""

    def __init__(self, code: int, message: str, request_id: Any = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


class InvalidParams(ProtocolError):
    """Raised by handlers on missing or ill-typed parameters."""

    def __init__(self, message: str) -> None:
        super().__init__(INVALID_PARAMS, message)


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    method: str
    params: dict[str, Any] = field(default_factory=dict)
    id: Any = None
    #: True when the request carried no ``id`` at all (a notification):
    #: it must not be answered, success or failure.
    is_notification: bool = False


def parse_request(line: str) -> Request:
    """Decode one wire line into a :class:`Request`.

    Raises :class:`ProtocolError` with the appropriate code on malformed
    input; never returns a half-valid request.
    """
    try:
        raw = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(PARSE_ERROR, f"parse error: {exc}") from exc
    if not isinstance(raw, dict):
        raise ProtocolError(
            INVALID_REQUEST, f"request must be an object, got {type(raw).__name__}"
        )
    request_id = raw.get("id")
    if raw.get("jsonrpc", JSONRPC_VERSION) != JSONRPC_VERSION:
        raise ProtocolError(
            INVALID_REQUEST, f"unsupported jsonrpc version {raw['jsonrpc']!r}",
            request_id,
        )
    method = raw.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(
            INVALID_REQUEST, "request has no method", request_id
        )
    params = raw.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_PARAMS,
            f"params must be an object, got {type(params).__name__}",
            request_id,
        )
    return Request(
        method=method,
        params=params,
        id=request_id,
        is_notification="id" not in raw,
    )


def encode(message: dict[str, Any]) -> str:
    """One canonical wire line (compact, sorted keys, trailing newline)."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"


def result_response(request_id: Any, result: Any) -> dict[str, Any]:
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def error_response(
    request_id: Any, code: int, message: str, data: Any = None
) -> dict[str, Any]:
    error: dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "error": error}
