"""Resident analysis state: one :class:`Session` per daemon process.

A session owns everything a request needs that a cold ``python -m
repro.checker`` run would have to rebuild from scratch:

* the **overlay** — in-memory file text pushed by ``didChange`` (unsaved
  editor buffers), consulted before disk everywhere;
* a **parse memo** — translation units keyed by (path, text digest), so
  an unchanged file is never re-parsed, whatever request shape asks;
* a long-lived :class:`~repro.constinfer.cache.AnalysisCache` handle
  whose in-memory LRU tier answers repeated lookups without disk — the
  diagnostics of an unchanged file come back without parse, constraint
  generation, solve, *or* I/O;
* the **whole-program plan** — after a ``--whole-program`` analysis, the
  TU dependence graph and per-unit closure digests
  (:func:`repro.whole.engine.closure_digests`), so an edit can name
  exactly which units a re-link will re-analyse while every other unit's
  summary is served warm.

Analysis itself is *the same code path as the one-shot CLI*
(:func:`repro.checker.runner.analyze` + ``render_report``), so a
daemon response's ``report`` string is byte-identical to the stdout of
``python -m repro.checker`` over the same tree — the differential tests
and the CI replay hold the two against each other.
"""

from __future__ import annotations

import hashlib
import tempfile
import time
from typing import Any

from ..cfront.cparser import parse_c, parse_c_resilient
from ..checker.checks import DEFAULT_CHECKS, check_by_name
from ..checker.render import render_report
from ..checker.runner import analyze as run_analysis
from ..constinfer.cache import AnalysisCache
from ..constinfer.engine import StageTimings
from ..whole.engine import affected_units, closure_digests, tu_dependence_graph
from ..whole.linker import link_units
from .protocol import InvalidParams

#: The daemon's memory tier is its whole point — default far above the
#: one-shot handles' bound so a 40-TU corpus with per-file diagnostics,
#: parsed programs, and summaries stays fully resident.
SERVE_MEMORY_ENTRIES = 4096

_FORMATS = ("human", "json", "sarif")


class Session:
    """All resident state of one serving process."""

    def __init__(
        self,
        checks: tuple[str, ...] | None = None,
        cache_dir: str | None = None,
        jobs: int = 1,
        memory_entries: int = SERVE_MEMORY_ENTRIES,
    ) -> None:
        self.check_names = (
            tuple(checks) if checks else tuple(c.name for c in DEFAULT_CHECKS)
        )
        for name in self.check_names:
            check_by_name(name)  # fail fast on typos
        self.jobs = jobs
        # Without a configured directory the store is still wanted (the
        # memory tier fronts it; warm restarts just start cold): a
        # private temp dir that lives exactly as long as the session.
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if cache_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="qlint-serve-")
            cache_dir = self._tempdir.name
        self.cache = AnalysisCache(cache_dir, memory_entries=memory_entries)

        self.overlay: dict[str, str] = {}
        self.versions: dict[str, int] = {}
        #: path -> (text sha256, parsed unit); consulted by reference,
        #: so an unchanged file parses exactly once per session.
        self._parse_memo: dict[str, tuple[str, Any]] = {}
        #: path -> (text sha256, include paths, ParseResult) — the
        #: resilient twin of the parse memo, shared by ``didChange``
        #: syntax probing and best-effort whole-program analyses.
        self._resilient_memo: dict[str, tuple[str, tuple[str, ...], Any]] = {}
        #: ``-I`` search paths from the most recent ``analyze`` request;
        #: ``didChange`` syntax probes resolve headers the same way the
        #: last analysis did.
        self._include_paths: tuple[str, ...] = ()
        #: path -> rendered finding dicts from the last analysis in
        #: which the file was clean; served when a later edit breaks
        #: the file, so resident diagnostics never vanish mid-typing.
        self._last_good: dict[str, list[dict[str, Any]]] = {}
        #: After a whole-program analyze: (sorted roots, tu graph,
        #: unit -> closure digest) for incremental invalidation.
        self._whole_plan: tuple[tuple[str, ...], Any, dict[str, str]] | None = None

        self.started = time.monotonic()
        self.request_counts: dict[str, int] = {}
        self.error_count = 0
        self._parse_seconds = 0.0
        self._analyze_seconds = 0.0
        self._render_seconds = 0.0
        self._last_analyze_seconds = 0.0
        self._parsed_units = 0
        self._memo_hits = 0

    # -- resident parsing ----------------------------------------------
    def parse_unit(self, name: str, text: str) -> Any:
        """Parse one unit through the resident memo.

        The memo key is the text digest, so a ``didChange`` invalidates
        it implicitly — no explicit eviction to get wrong.
        """
        digest = hashlib.sha256(text.encode()).hexdigest()
        memo = self._parse_memo.get(name)
        if memo is not None and memo[0] == digest:
            self._memo_hits += 1
            return memo[1]
        start = time.perf_counter()
        unit = parse_c(text, name)
        self._parse_seconds += time.perf_counter() - start
        self._parse_memo[name] = (digest, unit)
        self._parsed_units += 1
        return unit

    def parse_unit_resilient(self, name: str, text: str) -> Any:
        """Resilient parse through the memo: returns the
        :class:`~repro.cfront.cparser.ParseResult` for this exact text,
        parsing at most once per (path, digest)."""
        digest = hashlib.sha256(text.encode()).hexdigest()
        memo = self._resilient_memo.get(name)
        if memo is not None and memo[0] == digest and memo[1] == self._include_paths:
            self._memo_hits += 1
            return memo[2]
        start = time.perf_counter()
        result = parse_c_resilient(text, name, include_paths=self._include_paths)
        self._parse_seconds += time.perf_counter() - start
        self._resilient_memo[name] = (digest, self._include_paths, result)
        self._parsed_units += 1
        return result

    # -- request handlers ----------------------------------------------
    def analyze(self, params: dict[str, Any]) -> dict[str, Any]:
        """Run the shared one-shot analysis over the session's view of
        the tree (overlay over disk) and render it exactly as the CLI
        would print it."""
        paths = params.get("paths")
        if isinstance(paths, str):
            paths = [paths]
        if not isinstance(paths, list) or not paths or not all(
            isinstance(p, str) for p in paths
        ):
            raise InvalidParams("analyze needs 'paths': a non-empty list of strings")
        fmt = params.get("format", "json")
        if fmt not in _FORMATS:
            raise InvalidParams(f"unknown format {fmt!r} (expected one of {_FORMATS})")
        checks = params.get("checks")
        if checks is not None:
            if not isinstance(checks, list) or not all(
                isinstance(c, str) for c in checks
            ):
                raise InvalidParams("'checks' must be a list of strings")
            for name in checks:
                try:
                    check_by_name(name)
                except Exception as exc:
                    raise InvalidParams(str(exc)) from exc
        whole = bool(params.get("whole_program", False))
        best_effort = bool(params.get("best_effort", False))
        include_paths = params.get("include_paths", [])
        if isinstance(include_paths, str):
            include_paths = [include_paths]
        if not isinstance(include_paths, list) or not all(
            isinstance(p, str) for p in include_paths
        ):
            raise InvalidParams("'include_paths' must be a list of strings")
        # Remembered session-wide: didChange syntax probes resolve
        # headers exactly as the most recent analysis did.
        self._include_paths = tuple(include_paths)
        show_suppressed = bool(params.get("show_suppressed", False))
        src_root = params.get("src_root")
        if src_root is not None and not isinstance(src_root, str):
            raise InvalidParams("'src_root' must be a string")

        parse_unit = None
        if whole:
            parse_unit = self.parse_unit_resilient if best_effort else self.parse_unit
        start = time.perf_counter()
        report = run_analysis(
            paths,
            checks=tuple(checks) if checks else self.check_names,
            whole_program=whole,
            jobs=self.jobs,
            sources=self.overlay,
            cache=self.cache,
            parse_unit=parse_unit,
            best_effort=best_effort,
            include_paths=self._include_paths,
        )
        analyzed = time.perf_counter()
        rendered = render_report(
            report,
            format=fmt,
            sources=self._render_sources(report.files) if fmt == "human" else None,
            show_suppressed=show_suppressed,
            src_root=src_root,
        )
        end = time.perf_counter()
        self._analyze_seconds += analyzed - start
        self._render_seconds += end - analyzed
        self._last_analyze_seconds = end - start

        if whole:
            self._whole_plan = self._build_whole_plan(report.files)

        # Remember each clean file's findings so a later edit that breaks
        # the file can still serve resident diagnostics (see didChange).
        for file in report.files:
            if file in report.errors:
                continue
            if report.unit_status.get(file, "ok") != "ok":
                continue
            self._last_good[file] = [
                d.to_dict() for d in report.diagnostics if d.span.file == file
            ]

        out: dict[str, Any] = {
            "report": rendered,
            "format": fmt,
            "exit_code": report.exit_code,
            "summary": report.summary(),
            "files": report.files,
            "errors": report.errors,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "elapsed_ms": round((end - start) * 1000, 3),
        }
        if any(status != "ok" for status in report.unit_status.values()):
            # Best-effort degradations only — absent on strict runs and on
            # clean best-effort corpora, so existing golden transcripts
            # stay byte-stable.
            out["units"] = {
                f: s for f, s in sorted(report.unit_status.items()) if s != "ok"
            }
        return out

    def suggest(self, params: dict[str, Any]) -> dict[str, Any]:
        """Annotation-suggestion mode over the session's view of the
        tree (overlay over disk).  Rendering goes through the same
        :mod:`repro.checker.suggest` renderers as ``qlint suggest``, so
        a daemon response's ``report`` string is byte-identical to the
        one-shot CLI's stdout over the same files."""
        from ..checker.runner import discover_files
        from ..checker.suggest import (
            render_suggestions_human,
            render_suggestions_json,
            suggest_paths_whole,
            suggest_source,
        )

        paths = params.get("paths")
        if isinstance(paths, str):
            paths = [paths]
        if not isinstance(paths, list) or not paths or not all(
            isinstance(p, str) for p in paths
        ):
            raise InvalidParams("suggest needs 'paths': a non-empty list of strings")
        fmt = params.get("format", "human")
        if fmt not in ("human", "json"):
            raise InvalidParams(
                f"unknown format {fmt!r} (expected 'human' or 'json')"
            )
        top = params.get("top", 3)
        if not isinstance(top, int) or top < 1:
            raise InvalidParams("'top' must be a positive integer")
        include_paths = params.get("include_paths", [])
        if isinstance(include_paths, str):
            include_paths = [include_paths]
        if not isinstance(include_paths, list) or not all(
            isinstance(p, str) for p in include_paths
        ):
            raise InvalidParams("'include_paths' must be a list of strings")
        whole = bool(params.get("whole_program", False))
        # Resilient probes (didChange) resolve headers with the session's
        # remembered -I paths; keep the memo keys consistent with them.
        self._include_paths = tuple(include_paths)

        start = time.perf_counter()
        files = [str(p) for p in discover_files(paths)]
        suggestions = []
        errors: dict[str, str] = {}
        if whole:
            # Same shared path the CLI takes, with the session's overlay,
            # cache, and resilient parse memo threaded in.  The ownership
            # cache is keyed by dependency-closure source digests, so a
            # didChange on one unit re-links exactly its dependents.
            suggestions, errors = suggest_paths_whole(
                files,
                include_paths=tuple(include_paths),
                top=top,
                sources=self.overlay,
                cache=self.cache,
                parse_unit=self.parse_unit_resilient,
            )
        else:
            for file in files:
                text = self.overlay.get(file)
                if text is None:
                    try:
                        from pathlib import Path

                        text = Path(file).read_text(encoding="utf-8")
                    except OSError as exc:
                        errors[file] = str(exc)
                        continue
                suggestions.extend(
                    suggest_source(
                        text, file, include_paths=tuple(include_paths), top=top
                    )
                )
        analyzed = time.perf_counter()
        if fmt == "json":
            rendered = render_suggestions_json(suggestions)
        else:
            rendered = render_suggestions_human(suggestions)
        end = time.perf_counter()
        self._analyze_seconds += analyzed - start
        self._render_seconds += end - analyzed
        return {
            "report": rendered,
            "format": fmt,
            "suggestions": [s.to_dict() for s in suggestions],
            "files": files,
            "errors": errors,
            "exit_code": 1 if errors else 0,
            "elapsed_ms": round((end - start) * 1000, 3),
        }

    def did_change(self, params: dict[str, Any]) -> dict[str, Any]:
        """Install (or with ``text: null`` revert) one file's overlay
        text.  Names the units the edit invalidates for the last
        whole-program analysis, per the resident dependence graph."""
        file = params.get("file")
        if not isinstance(file, str) or not file:
            raise InvalidParams("didChange needs 'file': a non-empty string")
        text = params.get("text")
        if text is not None and not isinstance(text, str):
            raise InvalidParams("'text' must be a string or null")

        if text is None:
            self.overlay.pop(file, None)
        else:
            self.overlay[file] = text
        version = self.versions.get(file, 0) + 1
        self.versions[file] = version

        invalidated: list[str] | None = None
        if self._whole_plan is not None:
            _roots, tu_graph, _digests = self._whole_plan
            if file in tu_graph.vertices:
                invalidated = list(affected_units(tu_graph, {file}))
        out: dict[str, Any] = {
            "ok": True,
            "file": file,
            "version": version,
            "overlay": text is not None,
        }
        if invalidated is not None:
            out["invalidated_units"] = invalidated
        if text is not None:
            # Probe the new text with the resilient parser.  When the edit
            # no longer parses, the response carries the parse diagnostics
            # *and* the file's last-good qualifier findings, so resident
            # state survives mid-typing syntax errors.  Clean edits add no
            # keys — the existing golden transcripts stay byte-stable.
            result = self.parse_unit_resilient(file, text)
            errors = result.errors
            if errors:
                out["parse_diagnostics"] = [
                    {
                        "file": d.file,
                        "line": d.line,
                        "column": d.column,
                        "severity": d.severity,
                        "message": d.describe(),
                    }
                    for d in result.diagnostics
                ]
                out["last_good"] = self._last_good.get(file, [])
        return out

    def stats(self, params: dict[str, Any]) -> dict[str, Any]:
        """Counters and resident-state shape: cache tiers, memo sizes,
        request counts, and the accumulated stage timings."""
        timings = StageTimings(
            parse_seconds=self._parse_seconds,
            congen_seconds=self._analyze_seconds - self._parse_seconds
            if self._analyze_seconds > self._parse_seconds
            else 0.0,
            solve_seconds=self._render_seconds,
        )
        cache = self.cache.stats
        return {
            "uptime_ms": round((time.monotonic() - self.started) * 1000, 1),
            "checks": list(self.check_names),
            "requests": dict(sorted(self.request_counts.items())),
            "errors": self.error_count,
            "cache": {
                "root": str(self.cache.root),
                "hits": cache.hits,
                "misses": cache.misses,
                "stores": cache.stores,
                "binary_hits": cache.binary_hits,
                "memory_hits": cache.memory_hits,
                "memory_entries": len(self.cache.memory),
                "memory_limit": self.cache.memory.maxsize,
            },
            "resident": {
                "overlay_files": len(self.overlay),
                "parsed_units": len(self._parse_memo),
                "resilient_units": len(self._resilient_memo),
                "parse_memo_hits": self._memo_hits,
                "whole_plan_units": (
                    len(self._whole_plan[2]) if self._whole_plan else 0
                ),
            },
            "stage_totals_ms": {
                "parse": round(self._parse_seconds * 1000, 3),
                "analyze": round(self._analyze_seconds * 1000, 3),
                "render": round(self._render_seconds * 1000, 3),
            },
            "stage_timings": timings.summary(),
            "last_analyze_ms": round(self._last_analyze_seconds * 1000, 3),
        }

    # -- internals ------------------------------------------------------
    def _render_sources(self, files: list[str]) -> dict[str, str]:
        """Source text for human-format excerpts: the session's view —
        overlay first, then disk (matching what was analysed)."""
        out: dict[str, str] = {}
        for file in files:
            text = self.overlay.get(file)
            if text is None:
                try:
                    from pathlib import Path

                    text = Path(file).read_text(encoding="utf-8", errors="replace")
                except OSError:
                    continue
            out[file] = text
        return out

    def _build_whole_plan(
        self, files: list[str]
    ) -> tuple[tuple[str, ...], Any, dict[str, str]] | None:
        """Link the current view of ``files`` (parse memo makes this
        cheap — every unit was just parsed) and snapshot the dependence
        graph plus per-unit closure digests."""
        sources: dict[str, str] = {}
        for file in files:
            text = self.overlay.get(file)
            if text is None:
                try:
                    from pathlib import Path

                    text = Path(file).read_text(encoding="utf-8", errors="replace")
                except OSError:
                    continue
            sources[file] = text
        units = []
        for name in sorted(sources):
            try:
                units.append(self.parse_unit(name, sources[name]))
            except Exception:
                continue  # unparseable units are linked around, as in the runner
        try:
            linked = link_units(units, sources=sources)
            tu_graph = tu_dependence_graph(linked)
            digests = closure_digests(linked, tu_graph)
        except Exception:
            return None
        return (tuple(sorted(files)), tu_graph, digests)

    def close(self) -> None:
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
