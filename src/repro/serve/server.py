"""The request loop: dispatch wire lines against one resident session.

:class:`Server` is transport-agnostic — :meth:`Server.handle_line` maps
one request line to at most one response line, and the transports
(stdio, Unix socket, TCP) are thin wrappers that feed it lines.  The
loop never dies on bad input: every failure mode becomes a JSON-RPC
error response (or, for notifications, a counted drop), per
:mod:`repro.serve.protocol`.

Socket transports serve one connection at a time; the *session* outlives
connections, so a client can disconnect and a later one still finds the
caches warm.  ``shutdown`` ends the process loop from any transport.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Callable, IO

from .protocol import (
    INTERNAL_ERROR,
    METHOD_NOT_FOUND,
    ProtocolError,
    encode,
    error_response,
    parse_request,
    result_response,
)
from .session import Session


class Server:
    """Dispatches decoded requests to session handlers."""

    def __init__(self, session: Session) -> None:
        self.session = session
        self.shutting_down = False
        self.handlers: dict[str, Callable[[dict[str, Any]], Any]] = {
            "analyze": session.analyze,
            "suggest": session.suggest,
            "didChange": session.did_change,
            "stats": session.stats,
            "ping": self._ping,
            "shutdown": self._shutdown,
        }

    def _ping(self, params: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True}

    def _shutdown(self, params: dict[str, Any]) -> dict[str, Any]:
        self.shutting_down = True
        return {"ok": True}

    def handle_line(self, line: str) -> str | None:
        """One wire line in, at most one wire line out.

        Returns ``None`` for blank lines and for notifications (which
        must not be answered); never raises.
        """
        line = line.strip()
        if not line:
            return None
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            # Parse/invalid-request errors answer with id null (or the
            # id when it could be recovered) even for would-be
            # notifications: the sender's intent is unknowable.
            self.session.error_count += 1
            return encode(error_response(exc.request_id, exc.code, exc.message))

        handler = self.handlers.get(request.method)
        if handler is None:
            self.session.error_count += 1
            if request.is_notification:
                return None
            return encode(
                error_response(
                    request.id,
                    METHOD_NOT_FOUND,
                    f"unknown method {request.method!r}",
                )
            )

        counts = self.session.request_counts
        counts[request.method] = counts.get(request.method, 0) + 1
        try:
            result = handler(request.params)
        except ProtocolError as exc:
            self.session.error_count += 1
            if request.is_notification:
                return None
            return encode(error_response(request.id, exc.code, exc.message))
        except Exception as exc:  # the loop survives handler bugs
            self.session.error_count += 1
            if request.is_notification:
                return None
            return encode(
                error_response(
                    request.id, INTERNAL_ERROR, f"{type(exc).__name__}: {exc}"
                )
            )
        if request.is_notification:
            return None
        return encode(result_response(request.id, result))

    # -- transports -----------------------------------------------------
    def serve_stream(self, reader: IO[str], writer: IO[str]) -> int:
        """Pump one line-oriented stream until EOF or ``shutdown``."""
        for line in reader:
            response = self.handle_line(line)
            if response is not None:
                writer.write(response)
                writer.flush()
            if self.shutting_down:
                break
        return 0

    def serve_stdio(self) -> int:
        import sys

        return self.serve_stream(sys.stdin, sys.stdout)

    def serve_unix(self, path: str | Path) -> int:
        """Listen on a Unix domain socket; connections served in turn
        against the same session."""
        sock_path = Path(path)
        if sock_path.exists():
            sock_path.unlink()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(str(sock_path))
            listener.listen(1)
            self._accept_loop(listener)
        finally:
            listener.close()
            sock_path.unlink(missing_ok=True)
        return 0

    def serve_tcp(self, host: str, port: int) -> int:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, port))
            listener.listen(1)
            self._accept_loop(listener)
        finally:
            listener.close()
        return 0

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self.shutting_down:
            conn, _addr = listener.accept()
            with conn:
                reader = conn.makefile("r", encoding="utf-8", newline="\n")
                writer = conn.makefile("w", encoding="utf-8", newline="\n")
                try:
                    self.serve_stream(reader, writer)
                except (BrokenPipeError, ConnectionResetError):
                    continue  # client vanished; session stays warm
