"""Long-lived qualifier-analysis server (``qlint serve``).

One-shot ``python -m repro.checker`` pays interpreter start-up, parsing,
constraint generation, and the solve on every invocation — fine for CI,
wasteful for the edit-analyze loop an editor drives.  This package keeps
the analysis **resident**: a :class:`~repro.serve.session.Session` holds
the interned lattice and parsed units, a read-through in-memory tier
over the content-addressed cache, and the whole-program dependence plan,
so an unchanged file answers without touching disk and an edit
re-analyses only the edited unit (plus, in whole-program mode, exactly
its inverse dependency closure).

The wire protocol is JSON-RPC 2.0 over newline-delimited JSON
(:mod:`repro.serve.protocol`), served over stdio, a Unix socket, or TCP
(:mod:`repro.serve.server`); ``analyze`` responses carry the same
rendered report, byte for byte, as the one-shot CLI.  See
docs/SERVING.md for the protocol reference and a quickstart.
"""

from .protocol import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    InvalidParams,
    ProtocolError,
    Request,
    encode,
    error_response,
    parse_request,
    result_response,
)
from .server import Server
from .session import SERVE_MEMORY_ENTRIES, Session

__all__ = [
    "INTERNAL_ERROR",
    "INVALID_PARAMS",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "PARSE_ERROR",
    "InvalidParams",
    "ProtocolError",
    "Request",
    "SERVE_MEMORY_ENTRIES",
    "Server",
    "Session",
    "encode",
    "error_response",
    "parse_request",
    "result_response",
]
