"""Command-line driver: ``python -m repro.testkit fuzz``.

Runs a seeded, budgeted fuzz session over the full differential /
metamorphic oracle matrix.  On any disagreement the failing program is
delta-debugged to a minimal reproducer and written into ``--out`` as a
ready-to-commit pytest file; the exit status is 1 so CI jobs fail loud.

    python -m repro.testkit fuzz --seed 0 --budget 60s
    python -m repro.testkit fuzz --seed 7 --budget 5m --engines solver,jobs
    python -m repro.testkit fuzz --programs 200 --out artifacts/ --json report.json
"""

from __future__ import annotations

import argparse

from .driver import FuzzSession
from .oracles import ALL_ORACLES, EngineConfig


def parse_budget(text: str) -> float:
    """'90', '90s', '5m' or '1h' — seconds as a float."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith(("s", "m", "h")):
        scale = {"s": 1.0, "m": 60.0, "h": 3600.0}[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"unreadable budget: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError("budget must be positive")
    return value * scale


def parse_engines(text: str) -> frozenset[str]:
    names = frozenset(n.strip() for n in text.split(",") if n.strip())
    unknown = names - set(ALL_ORACLES)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown oracle(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(ALL_ORACLES)}"
        )
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="differential & metamorphic fuzzing of the qualifier engines",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz = commands.add_parser("fuzz", help="run a seeded, budgeted fuzz session")
    fuzz.add_argument("--seed", type=int, default=0, help="session seed (default 0)")
    fuzz.add_argument(
        "--budget",
        type=parse_budget,
        default=60.0,
        help="wall-clock budget, e.g. 60s or 5m (default 60s)",
    )
    fuzz.add_argument(
        "--programs",
        type=int,
        default=None,
        help="stop after this many programs even if budget remains",
    )
    fuzz.add_argument(
        "--engines",
        type=parse_engines,
        default=None,
        help="comma-separated oracle families to run (default: all); known: "
        + ", ".join(ALL_ORACLES),
    )
    fuzz.add_argument(
        "--jobs", type=int, default=2, help="worker count for the parallel pairings"
    )
    fuzz.add_argument(
        "--max-depth", type=int, default=5, help="lambda generator depth budget"
    )
    fuzz.add_argument(
        "--out",
        default=None,
        help="directory for reduced-reproducer regression tests",
    )
    fuzz.add_argument(
        "--json", default=None, help="also write the machine-readable report here"
    )
    fuzz.add_argument(
        "--quiet", action="store_true", help="suppress per-50-programs progress"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = EngineConfig(jobs=args.jobs, oracles=args.engines)
    session = FuzzSession(
        seed=args.seed,
        budget_seconds=args.budget,
        max_programs=args.programs,
        config=config,
        out_dir=args.out,
        max_depth=args.max_depth,
        progress=not args.quiet,
    )
    report = session.run()
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
