"""Seeded random generator of well-typed lambda programs.

Generation is *type-directed*: a random standard type shape is chosen
first and an expression of that shape is grown underneath it, so every
candidate is standard-typable by construction (the environment tracks
each binding's shape, applications are only built from function-typed
operands, and so on).  Qualifier constructs are layered on top with the
rules biased toward consistency:

* an annotation over a term whose top-level qualifier constant is known
  (a literal, or another annotation) uses the lattice *join* of that
  constant and a random element, so the (Annot) premise ``Q <= l``
  holds by construction;
* assertions over such terms use a join the same way; assertions over
  terms with variable qualifiers use lattice top, which every element
  satisfies.

Two deliberate restrictions keep the Figure 5 semantics total on the
output: references only ever hold base-typed values (no Landin's-knot
divergence through the store), and there is no fixpoint operator — so
every generated program terminates and the subject-reduction oracle can
walk its full reduction sequence.

A final ``infer`` pass double-checks qualifier satisfiability; in the
rare case a composition of flows makes the qualifier system unsolvable
(e.g. conflicting constants meeting through an if-join), the generator
strips the program's annotations — the stripped program is always
well-typed — rather than discarding the shape.  The returned
:class:`GeneratedProgram` records which path was taken.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..lam.ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    QualLiteral,
    Ref,
    UnitLit,
    Var,
    strip_expr,
    walk,
)
from ..lam.infer import QualTypeError, QualifiedLanguage, infer
from ..qual.lattice import LatticeElement, QualifierLattice
from ..qual.qualifiers import const_nonzero_lattice


# ---------------------------------------------------------------------------
# Standard type shapes (the generator's own little type language)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Shape:
    """A standard type shape: ``int``, ``unit``, ``ref s`` or ``s -> t``."""

    kind: str  # "int" | "unit" | "ref" | "fun"
    args: tuple["Shape", ...] = ()

    def __str__(self) -> str:
        if self.kind == "fun":
            return f"({self.args[0]} -> {self.args[1]})"
        if self.kind == "ref":
            return f"(ref {self.args[0]})"
        return self.kind


INT = Shape("int")
UNIT = Shape("unit")


def ref_of(s: Shape) -> Shape:
    return Shape("ref", (s,))


def fun(dom: Shape, rng: Shape) -> Shape:
    return Shape("fun", (dom, rng))


@dataclass
class GeneratedProgram:
    """One generator output: the program plus provenance for reports."""

    expr: Expr
    seed: int
    lattice: QualifierLattice
    language: QualifiedLanguage
    #: True when the annotated candidate needed the strip fallback.
    stripped: bool = False

    @property
    def size(self) -> int:
        return sum(1 for _ in walk(self.expr))

    def source(self) -> str:
        return str(self.expr)


class LambdaGenerator:
    """Grows well-typed lambda programs from a seeded RNG."""

    def __init__(
        self,
        seed: int,
        lattice: QualifierLattice | None = None,
        max_depth: int = 5,
    ):
        self.rng = random.Random(seed)
        self.seed = seed
        self.lattice = lattice if lattice is not None else const_nonzero_lattice()
        self.language = QualifiedLanguage(self.lattice, assign_restrictions=("const",))
        self.max_depth = max_depth
        self._fresh = 0

    # -- small helpers -------------------------------------------------
    def _name(self) -> str:
        self._fresh += 1
        return f"v{self._fresh}"

    def _random_element(self) -> LatticeElement:
        """A random lattice element (random subset of qualifier names)."""
        names = [q.name for q in self.lattice.qualifiers if self.rng.random() < 0.5]
        return self.lattice.element(*names)

    def _literal_for(self, element: LatticeElement) -> QualLiteral:
        return QualLiteral(element.present)

    def _known_qual(self, e: Expr) -> LatticeElement | None:
        """The term's top-level qualifier constant, when syntactically
        known: an annotation's level.  (Bare literals enter the system
        with only a *lower* bound, so their top qualifier is a variable
        — returning None keeps the caller conservative.)"""
        if isinstance(e, Annot):
            return e.qual.resolve(self.lattice)
        if isinstance(e, Assert):
            return self._known_qual(e.expr)
        return None

    def _maybe_qualify(self, e: Expr, depth: int) -> Expr:
        """Wrap ``e`` in annotation/assertion layers, biased consistent."""
        if self.rng.random() < 0.55:
            return e
        known = self._known_qual(e)
        if self.rng.random() < 0.6:
            # Annotation l e: need Q <= l.  Over a known constant, join
            # it up; over a fresh-variable term a literal-only lower
            # bound means any level works, but flows *into* the term may
            # have raised it — the driver's final infer pass catches the
            # rare inconsistent composition.
            base = known if known is not None else self.lattice.bottom
            level = self.lattice.join(base, self._random_element())
            return Annot(self._literal_for(level), e)
        # Assertion e|l: need Q <= l; top always satisfies.
        if known is not None:
            level = self.lattice.join(known, self._random_element())
        else:
            level = self.lattice.top
        return Assert(e, self._literal_for(level))

    # -- type-directed expression growth -------------------------------
    def shape(self, depth: int = 0) -> Shape:
        """A random result shape for a whole program (base-biased)."""
        r = self.rng.random()
        if depth >= 2 or r < 0.7:
            return INT if self.rng.random() < 0.8 else UNIT
        if r < 0.85:
            return ref_of(INT)
        return fun(INT, INT)

    def gen(self, want: Shape, env: list[tuple[str, Shape]], depth: int) -> Expr:
        """An expression of shape ``want`` under ``env``."""
        rng = self.rng
        candidates = [(n, s) for n, s in env if s == want]

        # Leaves when the budget runs out.
        if depth >= self.max_depth:
            return self._leaf(want, candidates, env, depth)

        roll = rng.random()
        if candidates and roll < 0.2:
            return Var(rng.choice(candidates)[0])
        if roll < 0.35:
            return self._gen_let(want, env, depth)
        if roll < 0.45:
            return self._gen_if(want, env, depth)
        if roll < 0.6:
            return self._gen_app(want, env, depth)

        match want.kind:
            case "int":
                if rng.random() < 0.3:
                    # read through a reference
                    return Deref(self.gen(ref_of(INT), env, depth + 1))
                return self._maybe_qualify(IntLit(rng.randint(0, 9)), depth)
            case "unit":
                if rng.random() < 0.5:
                    # write through a reference (exercises (Assign'))
                    target = self.gen(ref_of(INT), env, depth + 1)
                    value = self.gen(INT, env, depth + 1)
                    return Assign(target, value)
                return UnitLit()
            case "ref":
                return Ref(self.gen(want.args[0], env, depth + 1))
            case "fun":
                param = self._name()
                body = self.gen(
                    want.args[1], env + [(param, want.args[0])], depth + 1
                )
                return self._maybe_qualify(Lam(param, body), depth)
        raise AssertionError(f"unknown shape {want}")  # pragma: no cover

    def _leaf(
        self,
        want: Shape,
        candidates: list[tuple[str, Shape]],
        env: list[tuple[str, Shape]],
        depth: int,
    ) -> Expr:
        rng = self.rng
        if candidates and rng.random() < 0.6:
            return Var(rng.choice(candidates)[0])
        match want.kind:
            case "int":
                return self._maybe_qualify(IntLit(rng.randint(0, 9)), depth)
            case "unit":
                return UnitLit()
            case "ref":
                return Ref(self._leaf(want.args[0], [], env, depth))
            case "fun":
                param = self._name()
                return Lam(param, self._leaf(want.args[1], [], env, depth))
        raise AssertionError(f"unknown shape {want}")  # pragma: no cover

    def _gen_let(self, want: Shape, env: list[tuple[str, Shape]], depth: int) -> Expr:
        rng = self.rng
        name = self._name()
        # Bind a value sometimes (generalizable under the value
        # restriction — exercises (Letv)/(Var')), sometimes a ref.
        r = rng.random()
        if r < 0.4:
            bound_shape = fun(INT, INT)
            bound: Expr = Lam(
                (p := self._name()),
                self.gen(INT, env + [(p, INT)], depth + 2),
            )
            if rng.random() < 0.4:
                bound = self._maybe_qualify(bound, depth)
        elif r < 0.7:
            bound_shape = ref_of(INT)
            bound = Ref(self.gen(INT, env, depth + 1))
        else:
            bound_shape = INT
            bound = self.gen(INT, env, depth + 1)
        body = self.gen(want, env + [(name, bound_shape)], depth + 1)
        return Let(name, bound, body)

    def _gen_if(self, want: Shape, env: list[tuple[str, Shape]], depth: int) -> Expr:
        cond = self.gen(INT, env, depth + 1)
        then = self.gen(want, env, depth + 1)
        other = self.gen(want, env, depth + 1)
        return If(cond, then, other)

    def _gen_app(self, want: Shape, env: list[tuple[str, Shape]], depth: int) -> Expr:
        dom = INT if self.rng.random() < 0.8 else ref_of(INT)
        f = self.gen(fun(dom, want), env, depth + 1)
        a = self.gen(dom, env, depth + 1)
        return App(f, a)

    # -- the public entry point ----------------------------------------
    def program(self) -> GeneratedProgram:
        """One well-typed program (annotated when possible)."""
        expr = self.gen(self.shape(), [], 0)
        try:
            infer(expr, self.language)
            return GeneratedProgram(expr, self.seed, self.lattice, self.language)
        except QualTypeError:
            stripped = strip_expr(expr)
            # The stripped program has no qualifier constants at all, so
            # its system is trivially satisfiable; assert rather than
            # guess so generator regressions surface loudly.
            infer(stripped, self.language)
            return GeneratedProgram(
                stripped, self.seed, self.lattice, self.language, stripped=True
            )


def generate_lambda(seed: int, max_depth: int = 5) -> GeneratedProgram:
    """One seeded well-typed lambda program."""
    return LambdaGenerator(seed, max_depth=max_depth).program()
