"""Delta-debugging reducers: shrink a failing program to a minimal
reproducer and emit it as a ready-to-commit regression test.

Both reducers take an ``is_failing`` predicate (build one with
:func:`failure_predicate`, which pins the oracle names that fired on the
original program, so the reducer tracks *the same* failure rather than
any failure) and greedily apply shrinking steps while the predicate
stays true:

* lambda programs shrink over the AST — hoist any subexpression into
  its parent's place, or collapse a subtree to a literal — smallest
  candidate first, to a fixpoint;
* C corpora shrink ddmin-style over their module list (chunked drops at
  increasing granularity), then over the translation-unit count.

Candidates that break well-typedness or linkage simply make the
predicate false (the oracles report nothing, or report a different
failure), so no separate validity check is needed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Sequence

from ..lam.ast import (
    Annot,
    App,
    Assert,
    Assign,
    Deref,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Loc,
    Ref,
    UnitLit,
    Var,
    walk,
)
from ..lam.infer import QualifiedLanguage
from .cgen import CCorpus
from .oracles import Disagreement, EngineConfig, check_c_corpus, check_lambda


def size_of(e: Expr) -> int:
    """AST node count — the reducer's minimality metric."""
    return sum(1 for _ in walk(e))


# ---------------------------------------------------------------------------
# Failure predicates
# ---------------------------------------------------------------------------


def failure_predicate(
    language: QualifiedLanguage,
    oracle_names: frozenset[str] | set[str],
    config: EngineConfig | None = None,
) -> Callable[[Expr], bool]:
    """True iff the *same* oracle family still fires on the candidate."""
    names = frozenset(oracle_names)
    cfg = config if config is not None else EngineConfig()
    # Re-running only the oracles that fired keeps reduction fast.
    cfg = replace(cfg, oracles=names)

    def is_failing(candidate: Expr) -> bool:
        try:
            found = check_lambda(candidate, language, cfg)
        except Exception:
            return False
        return bool(names & {d.oracle for d in found})

    return is_failing


def c_failure_predicate(
    oracle_names: frozenset[str] | set[str],
    config: EngineConfig | None = None,
) -> Callable[[CCorpus], bool]:
    """Corpus-side twin of :func:`failure_predicate`."""
    names = frozenset(oracle_names)
    cfg = config if config is not None else EngineConfig()
    cfg = replace(cfg, oracles=names)

    def is_failing(candidate: CCorpus) -> bool:
        try:
            found = check_c_corpus(candidate, cfg)
        except Exception:
            return False
        return bool(names & {d.oracle for d in found})

    return is_failing


# ---------------------------------------------------------------------------
# Lambda reduction
# ---------------------------------------------------------------------------


def _children(e: Expr) -> list[Expr]:
    match e:
        case Var() | IntLit() | UnitLit() | Loc():
            return []
        case Lam(body=b):
            return [b]
        case Let(bound=b, body=body):
            return [b, body]
        case App(func=f, arg=a):
            return [f, a]
        case If(cond=c, then=t, other=o):
            return [c, t, o]
        case Ref(init=i):
            return [i]
        case Deref(ref=r):
            return [r]
        case Assign(target=t, value=v):
            return [t, v]
        case Annot(expr=inner) | Assert(expr=inner):
            return [inner]
    raise TypeError(f"unknown expression {e!r}")  # pragma: no cover


def _rebuild(e: Expr, kids: Sequence[Expr]) -> Expr:
    match e:
        case Lam(param=p):
            return Lam(p, kids[0], span=e.span)
        case Let(name=n):
            return Let(n, kids[0], kids[1], span=e.span)
        case App():
            return App(kids[0], kids[1], span=e.span)
        case If():
            return If(kids[0], kids[1], kids[2], span=e.span)
        case Ref():
            return Ref(kids[0], span=e.span)
        case Deref():
            return Deref(kids[0], span=e.span)
        case Assign():
            return Assign(kids[0], kids[1], span=e.span)
        case Annot(qual=q):
            return Annot(q, kids[0], span=e.span)
        case Assert(qual=q):
            return Assert(kids[0], q, span=e.span)
    raise TypeError(f"unknown expression {e!r}")  # pragma: no cover


def _variants(e: Expr) -> Iterator[Expr]:
    """Every single-step shrink of ``e``: hoist a child over its parent,
    collapse to a literal, or apply either deeper in the tree."""
    kids = _children(e)
    yield from kids
    if not isinstance(e, IntLit):
        yield IntLit(0)
    if not isinstance(e, UnitLit):
        yield UnitLit()
    for i, kid in enumerate(kids):
        for v in _variants(kid):
            patched = list(kids)
            patched[i] = v
            yield _rebuild(e, patched)


def reduce_lambda(
    expr: Expr,
    is_failing: Callable[[Expr], bool],
    max_checks: int = 10_000,
) -> Expr:
    """Greedy smallest-first shrink of ``expr`` to a local minimum of
    ``is_failing``.  The input itself must be failing."""
    if not is_failing(expr):
        raise ValueError("reduce_lambda needs a failing input")
    current = expr
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in sorted(_variants(current), key=size_of):
            if size_of(candidate) >= size_of(current):
                break  # sorted: nothing smaller remains
            checks += 1
            if is_failing(candidate):
                current = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    return current


# ---------------------------------------------------------------------------
# C corpus reduction
# ---------------------------------------------------------------------------


def _without_modules(corpus: CCorpus, dropped: set[int]) -> CCorpus:
    modules = [m for i, m in enumerate(corpus.modules) if i not in dropped]
    assignment = [
        a for i, a in enumerate(corpus.assignment) if i not in dropped
    ]
    return CCorpus(corpus.seed, modules, assignment, corpus.n_units)


def _with_units(corpus: CCorpus, n_units: int) -> CCorpus:
    return CCorpus(
        corpus.seed,
        list(corpus.modules),
        [a % n_units for a in corpus.assignment],
        n_units,
    )


def reduce_c_corpus(
    corpus: CCorpus,
    is_failing: Callable[[CCorpus], bool],
    max_checks: int = 500,
) -> CCorpus:
    """ddmin over the module list, then shrink the unit count."""
    if not is_failing(corpus):
        raise ValueError("reduce_c_corpus needs a failing input")
    current = corpus
    checks = 0

    # Chunked drops at doubling granularity (classic ddmin), restarted
    # from the coarsest level after every successful shrink.
    chunk = max(1, len(current.modules) // 2)
    while chunk >= 1 and checks < max_checks:
        n = len(current.modules)
        shrunk = False
        for start in range(0, n, chunk):
            dropped = set(range(start, min(start + chunk, n)))
            if len(dropped) == n:
                continue  # never empty the corpus
            candidate = _without_modules(current, dropped)
            checks += 1
            if is_failing(candidate):
                current = candidate
                chunk = max(1, len(current.modules) // 2)
                shrunk = True
                break
            if checks >= max_checks:
                break
        if not shrunk:
            chunk //= 2

    for units in range(1, current.n_units):
        candidate = _with_units(current, units)
        checks += 1
        if is_failing(candidate):
            current = candidate
            break
    return current


# ---------------------------------------------------------------------------
# Regression-test emission
# ---------------------------------------------------------------------------

_LAMBDA_TEMPLATE = '''\
"""Regression: reduced reproducer from ``repro.testkit`` fuzzing.

Found by seed {seed}, oracle(s) {oracles}; reduced to {size} AST nodes.
"""

from repro.lam.parser import parse
from repro.lam.infer import QualifiedLanguage
from repro.qual.qualifiers import const_nonzero_lattice
from repro.testkit.oracles import check_lambda

SOURCE = {source!r}


def test_reduced_reproducer():
    language = QualifiedLanguage(
        const_nonzero_lattice(), assign_restrictions=("const",)
    )
    disagreements = check_lambda(parse(SOURCE), language)
    assert disagreements == [], "\\n".join(map(str, disagreements))
'''

_C_TEMPLATE = '''\
"""Regression: reduced reproducer from ``repro.testkit`` fuzzing.

Found by seed {seed}, oracle(s) {oracles}; reduced to {n_modules}
module(s) over {n_units} translation unit(s).
"""

from repro.testkit.cgen import CCorpus, Module
from repro.testkit.oracles import check_c_corpus

CORPUS = {corpus!r}


def test_reduced_reproducer():
    disagreements = check_c_corpus(CORPUS)
    assert disagreements == [], "\\n".join(map(str, disagreements))
'''


def emit_lambda_regression(
    expr: Expr, disagreements: Sequence[Disagreement], seed: int
) -> str:
    """A ready-to-commit pytest module asserting the oracles stay clean
    on the reduced program (the dataclass reprs round-trip as literals)."""
    return _LAMBDA_TEMPLATE.format(
        seed=seed,
        oracles=", ".join(sorted({d.oracle for d in disagreements})) or "unknown",
        size=size_of(expr),
        source=str(expr),
    )


def emit_c_regression(
    corpus: CCorpus, disagreements: Sequence[Disagreement], seed: int
) -> str:
    return _C_TEMPLATE.format(
        seed=seed,
        oracles=", ".join(sorted({d.oracle for d in disagreements})) or "unknown",
        n_modules=len(corpus.modules),
        n_units=corpus.n_units,
        corpus=corpus,
    )
